//! CSV-backed lazy source: a directory of `.csv` waveform files.
//!
//! The backend registers **only** CSV files — mounting the same directory
//! as both an mSEED repository and a CSV source never double-counts — and
//! otherwise behaves like a local directory: entries expose their path,
//! change detection is the usual size/mtime walk. Decoding the text into
//! columnar batches is the extractor's job (the warehouse's format
//! registry dispatches on the `.csv` extension); this module only owns
//! *which files exist* and *how their bytes are fetched*.
//!
//! The file layout the bundled extractor expects is documented in
//! [`CSV_HEADER_PREFIX`]'s docs: `#`-prefixed `key=value` header lines
//! carrying the stream identity and sample rate, then a `time_us,value`
//! column header, then one integer/decimal sample per line.

use crate::source::{read_file_range, LazySource};
use crate::{AccessProfile, ChangeSet, FileEntry, FileId, RepoError, Repository};
use lazyetl_mseed::Timestamp;
use std::path::PathBuf;

/// First line of every lazyetl CSV waveform file: a format marker the
/// extractor validates before trusting the rest of the header.
pub const CSV_HEADER_PREFIX: &str = "# lazyetl-csv v1";

/// A rooted directory of CSV waveform files.
#[derive(Debug)]
pub struct CsvSource {
    inner: Repository,
}

impl CsvSource {
    /// Open a CSV source rooted at `root`, scanning it immediately.
    pub fn open(root: impl Into<PathBuf>) -> Result<CsvSource, RepoError> {
        Ok(CsvSource {
            inner: Repository::open_with_extensions(root, &["csv"])?,
        })
    }
}

impl LazySource for CsvSource {
    fn kind(&self) -> &'static str {
        "csv"
    }

    fn files(&self) -> &[FileEntry] {
        self.inner.files()
    }

    fn by_uri(&self, uri: &str) -> Option<&FileEntry> {
        self.inner.by_uri(uri)
    }

    fn by_id(&self, id: FileId) -> Option<&FileEntry> {
        self.inner.by_id(id)
    }

    fn current_mtime(&self, uri: &str) -> Result<Timestamp, RepoError> {
        self.inner.current_mtime(uri)
    }

    fn scan_changes(&self) -> Result<ChangeSet, RepoError> {
        self.inner.scan_changes()
    }

    fn rescan(&mut self) -> Result<ChangeSet, RepoError> {
        self.inner.rescan()
    }

    fn access(&self) -> AccessProfile {
        self.inner.access
    }

    fn set_access(&mut self, profile: AccessProfile) {
        self.inner.access = profile;
    }

    fn fetch_range(&self, entry: &FileEntry, offset: u64, len: u64) -> Result<Vec<u8>, RepoError> {
        read_file_range(&entry.path, offset, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_only_csv_files() {
        let dir = std::env::temp_dir().join(format!("lazyetl_csvsrc_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(dir.join("NL/HGN")).unwrap();
        std::fs::write(dir.join("NL/HGN/a.csv"), "# lazyetl-csv v1\n").unwrap();
        std::fs::write(dir.join("NL/HGN/b.mseed"), b"not csv").unwrap();
        std::fs::write(dir.join("NL/HGN/c.sac"), b"not csv").unwrap();
        let src = CsvSource::open(&dir).unwrap();
        assert_eq!(src.kind(), "csv");
        assert_eq!(src.len(), 1);
        assert_eq!(src.files()[0].uri, "NL/HGN/a.csv");
        let got = src.fetch_range(&src.files()[0], 2, 7).unwrap();
        assert_eq!(got, b"lazyetl");
        std::fs::remove_dir_all(&dir).ok();
    }
}
