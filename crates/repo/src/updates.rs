//! Repository update operations for the refresh experiments.
//!
//! The paper argues Lazy ETL "makes updating and extending a warehouse with
//! modified and additional files more efficient" (§1) and handles
//! refreshments lazily in the cache (§3.3). These helpers produce the three
//! kinds of repository change those claims are benchmarked against:
//! appending new records to an existing file, adding a brand-new file, and
//! touching a file without changing content (a false-positive staleness
//! signal the cache must tolerate).

use crate::{RepoError, Repository};
use lazyetl_mseed::encoding::DataEncoding;
use lazyetl_mseed::gen::{append_to_file, file_rel_path, synthesize_segment, GeneratorConfig};
use lazyetl_mseed::record::SourceId;
use lazyetl_mseed::write::{write_records, WriteOptions};
use lazyetl_mseed::{scan_metadata_file, SamplesRef, Timestamp};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::SystemTime;

/// Append `extra_secs` of new waveform to the file at `uri`.
///
/// Returns the number of samples appended. The file's mtime moves forward,
/// which a subsequent [`Repository::rescan`] reports as a modification and
/// the lazy cache treats as staleness.
pub fn append_records(
    repo: &mut Repository,
    uri: &str,
    extra_secs: u32,
    seed: u64,
) -> Result<usize, RepoError> {
    let entry = repo
        .by_uri(uri)
        .ok_or_else(|| RepoError::UnknownUri(uri.to_string()))?
        .clone();
    let scan = scan_metadata_file(&entry.path)
        .map_err(|e| RepoError::Io(std::io::Error::other(e.to_string())))?;
    let meta = scan
        .records
        .first()
        .ok_or_else(|| RepoError::Io(std::io::Error::other("empty mSEED file")))?;
    let n = append_to_file(
        &entry.path,
        &meta.source,
        meta.sample_rate,
        extra_secs,
        120.0,
        seed,
        meta.record_length as usize,
        meta.encoding,
    )
    .map_err(|e| RepoError::Io(std::io::Error::other(e.to_string())))?;
    repo.rescan()?;
    Ok(n)
}

/// Add a brand-new file for `source` starting at `start`, holding
/// `duration_secs` of synthetic waveform. Returns its repository URI.
pub fn add_file(
    repo: &mut Repository,
    source: &SourceId,
    start: Timestamp,
    duration_secs: u32,
    seed: u64,
) -> Result<String, RepoError> {
    let cfg = GeneratorConfig::default();
    let n = (duration_secs as f64 * cfg.sample_rate) as usize;
    let mut rng = SmallRng::seed_from_u64(seed);
    let samples = synthesize_segment(&mut rng, n, cfg.sample_rate, cfg.noise_amplitude, &[]);
    let rel = file_rel_path(source, start);
    let path = repo.root().join(&rel);
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let opts = WriteOptions {
        record_length: cfg.record_length,
        encoding: DataEncoding::Steim2,
        ..Default::default()
    };
    let bytes = write_records(
        source,
        start,
        cfg.sample_rate,
        SamplesRef::Ints(&samples),
        &opts,
    )
    .map_err(|e| RepoError::Io(std::io::Error::other(e.to_string())))?;
    std::fs::write(&path, bytes)?;
    repo.rescan()?;
    Ok(rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/"))
}

/// Bump a file's mtime without changing its content.
///
/// Emulates tools that rewrite files in place; the cache sees a staleness
/// signal, re-extracts, and obtains identical data — correctness must hold
/// even for these false positives.
pub fn touch(repo: &mut Repository, uri: &str) -> Result<(), RepoError> {
    let entry = repo
        .by_uri(uri)
        .ok_or_else(|| RepoError::UnknownUri(uri.to_string()))?
        .clone();
    let bytes = std::fs::read(&entry.path)?;
    // Rewrite content and ensure the mtime visibly advances even on
    // filesystems with coarse timestamps.
    std::fs::write(&entry.path, &bytes)?;
    let file = std::fs::OpenOptions::new().write(true).open(&entry.path)?;
    file.set_modified(SystemTime::now())?;
    drop(file);
    repo.rescan()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazyetl_mseed::gen::generate_repository;
    use std::path::PathBuf;

    fn setup(tag: &str) -> (PathBuf, Repository) {
        let dir =
            std::env::temp_dir().join(format!("lazyetl_updates_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        generate_repository(&dir, &GeneratorConfig::tiny(3)).unwrap();
        let repo = Repository::open(&dir).unwrap();
        (dir, repo)
    }

    #[test]
    fn append_grows_file() {
        let (dir, mut repo) = setup("append");
        let uri = repo.files()[0].uri.clone();
        let size_before = repo.by_uri(&uri).unwrap().size;
        let n = append_records(&mut repo, &uri, 5, 42).unwrap();
        assert_eq!(n, 200); // 5 s at 40 Hz
        assert!(repo.by_uri(&uri).unwrap().size > size_before);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn add_file_appears_in_registry() {
        let (dir, mut repo) = setup("add");
        let before = repo.len();
        let src = SourceId::new("NL", "OPLO", "", "BHZ").unwrap();
        let uri = add_file(
            &mut repo,
            &src,
            Timestamp::from_ymd_hms(2010, 2, 1, 0, 0, 0, 0),
            20,
            7,
        )
        .unwrap();
        assert_eq!(repo.len(), before + 1);
        let entry = repo.by_uri(&uri).expect("new file registered");
        let scan = scan_metadata_file(&entry.path).unwrap();
        assert_eq!(scan.total_samples(), 800);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn touch_changes_mtime_only() {
        let (dir, mut repo) = setup("touch");
        let uri = repo.files()[0].uri.clone();
        let entry = repo.by_uri(&uri).unwrap().clone();
        let content_before = std::fs::read(&entry.path).unwrap();
        touch(&mut repo, &uri).unwrap();
        let after = repo.by_uri(&uri).unwrap();
        assert_eq!(std::fs::read(&after.path).unwrap(), content_before);
        assert!(after.mtime >= entry.mtime);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_uri_errors_for_every_operation() {
        let (dir, mut repo) = setup("unknown");
        assert!(matches!(
            append_records(&mut repo, "no/such.mseed", 5, 1),
            Err(RepoError::UnknownUri(_))
        ));
        assert!(matches!(
            touch(&mut repo, "no/such.mseed"),
            Err(RepoError::UnknownUri(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_preserves_existing_records() {
        let (dir, mut repo) = setup("append_keep");
        let uri = repo.files()[0].uri.clone();
        let path = repo.by_uri(&uri).unwrap().path.clone();
        let before = scan_metadata_file(&path).unwrap();
        let prefix_len: usize = before
            .records
            .iter()
            .map(|r| r.record_length as usize)
            .sum();
        let bytes_before = std::fs::read(&path).unwrap();
        append_records(&mut repo, &uri, 5, 42).unwrap();
        let bytes_after = std::fs::read(&path).unwrap();
        assert_eq!(
            &bytes_after[..prefix_len],
            &bytes_before[..prefix_len],
            "append never rewrites the existing records"
        );
        let after = scan_metadata_file(&path).unwrap();
        assert!(after.records.len() > before.records.len());
        // Sequence numbers continue monotonically.
        let seqs: Vec<i64> = after
            .records
            .iter()
            .map(|r| r.sequence_number as i64)
            .collect();
        let mut sorted = seqs.clone();
        sorted.sort();
        assert_eq!(seqs, sorted, "sequence numbers stay ordered");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn appended_records_continue_the_timeline() {
        let (dir, mut repo) = setup("append_time");
        let uri = repo.files()[0].uri.clone();
        let path = repo.by_uri(&uri).unwrap().path.clone();
        let end_before = scan_metadata_file(&path).unwrap().max_end().unwrap();
        append_records(&mut repo, &uri, 5, 42).unwrap();
        let after = scan_metadata_file(&path).unwrap();
        let new_first = after
            .records
            .iter()
            .filter(|r| r.start >= end_before)
            .map(|r| r.start)
            .min()
            .expect("appended records exist");
        assert_eq!(new_first, end_before, "no gap and no overlap at the seam");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn add_file_uri_is_slash_separated_and_stable() {
        let (dir, mut repo) = setup("uri_shape");
        let src = SourceId::new("XX", "NEWST", "00", "HHZ").unwrap();
        let uri = add_file(
            &mut repo,
            &src,
            Timestamp::from_ymd_hms(2011, 3, 4, 5, 6, 7, 0),
            10,
            9,
        )
        .unwrap();
        assert!(uri.starts_with("XX/NEWST/"), "{uri}");
        assert!(uri.ends_with(".mseed"), "{uri}");
        assert!(!uri.contains('\\'), "URIs are platform-independent: {uri}");
        // The same (source, start) maps to the same URI — adding again
        // overwrites rather than duplicating.
        let before = repo.len();
        let uri2 = add_file(
            &mut repo,
            &src,
            Timestamp::from_ymd_hms(2011, 3, 4, 5, 6, 7, 0),
            10,
            10,
        )
        .unwrap();
        assert_eq!(uri, uri2);
        assert_eq!(repo.len(), before, "overwrite, not duplicate");
        std::fs::remove_dir_all(&dir).ok();
    }
}
