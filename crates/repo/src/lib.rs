//! File-repository substrate for the Lazy ETL reproduction.
//!
//! The paper's source datastore is "a repository containing files in mSEED
//! format" — millions of them on remote FTP servers in the real deployment.
//! This crate models that repository:
//!
//! * [`Repository`] — a rooted directory of MiniSEED files with a stable
//!   registry of [`FileEntry`]s (URI, size, modification time);
//! * [`ChangeSet`] — rescan-based change detection, the signal lazy
//!   refresh (§3.3 of the paper) keys on;
//! * [`AccessProfile`] — a simulated remote-access cost model (per-file
//!   latency plus bandwidth), standing in for FTP access to ORFEUS;
//! * [`updates`] — update operations (append, add, touch) used by the
//!   refresh experiments.

#![warn(missing_docs)]

pub mod csv_source;
pub mod remote;
pub mod source;
pub mod updates;

pub use csv_source::CsvSource;
pub use remote::RemoteSource;
pub use source::{read_file_range, LazySource, SourceIoStats};

use lazyetl_mseed::Timestamp;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Stable identifier of a file within a repository scan.
///
/// Assigned in URI order at scan time and kept stable across rescans for
/// files whose URI is unchanged (the warehouse's `F` table keys on it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u32);

impl std::fmt::Display for FileId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "file#{}", self.0)
    }
}

/// One file known to the repository.
#[derive(Debug, Clone, PartialEq)]
pub struct FileEntry {
    /// Stable identifier.
    pub id: FileId,
    /// Repository-relative URI with `/` separators (the paper identifies
    /// each mSEED file by its URI).
    pub uri: String,
    /// Absolute filesystem path.
    pub path: PathBuf,
    /// File size in bytes at scan time.
    pub size: u64,
    /// Last-modified time at scan time (µs since epoch). Lazy refresh
    /// compares this against cache admission timestamps.
    pub mtime: Timestamp,
}

/// Difference between two repository scans.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChangeSet {
    /// URIs present now but not before.
    pub added: Vec<String>,
    /// URIs whose size or mtime changed.
    pub modified: Vec<String>,
    /// URIs that disappeared.
    pub removed: Vec<String>,
}

impl ChangeSet {
    /// True when nothing changed.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.modified.is_empty() && self.removed.is_empty()
    }
}

/// Errors from repository operations.
#[derive(Debug)]
pub enum RepoError {
    /// Root directory missing or unreadable.
    Io(std::io::Error),
    /// A URI was requested that the registry does not contain.
    UnknownUri(String),
    /// A ranged fetch against a source failed (remote transfer error,
    /// range beyond the advertised file, backend-specific failure).
    Fetch {
        /// URI the fetch targeted.
        uri: String,
        /// What went wrong, in backend terms.
        detail: String,
    },
    /// The operation is not supported by this source backend.
    Unsupported(String),
    /// A mount index does not fit the high half of a warehouse-global
    /// file id (`(mount << 32) | local`): packing it would overflow i64
    /// and silently alias another mount's files.
    IdOverflow {
        /// Mount index that exceeded the packing budget.
        mount: usize,
    },
}

impl RepoError {
    /// Stable machine-readable code for this error, following the same
    /// convention as `QueryError::code` / `EtlError::code`: the serving
    /// layer's error frames carry `code` + rendered message, so
    /// source-fetch failures arrive typed instead of stringly.
    pub fn code(&self) -> &'static str {
        match self {
            RepoError::Io(_) => "repo.io",
            RepoError::UnknownUri(_) => "repo.unknown_uri",
            RepoError::Fetch { .. } => "repo.fetch",
            RepoError::Unsupported(_) => "repo.unsupported",
            RepoError::IdOverflow { .. } => "repo.id_overflow",
        }
    }
}

impl std::fmt::Display for RepoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RepoError::Io(e) => write!(f, "repository I/O error: {e}"),
            RepoError::UnknownUri(u) => write!(f, "unknown repository URI: {u}"),
            RepoError::Fetch { uri, detail } => {
                write!(f, "source fetch failed for {uri}: {detail}")
            }
            RepoError::Unsupported(what) => write!(f, "unsupported source operation: {what}"),
            RepoError::IdOverflow { mount } => write!(
                f,
                "mount index {mount} does not fit the high half of a global file id"
            ),
        }
    }
}

impl std::error::Error for RepoError {}

impl From<std::io::Error> for RepoError {
    fn from(e: std::io::Error) -> Self {
        RepoError::Io(e)
    }
}

/// Simulated remote-access cost model.
///
/// The paper's repositories live behind FTP; reading a file costs a
/// round-trip plus transfer time. The profile converts a byte count into a
/// [`Duration`] which callers may account (benchmarks) or actually sleep
/// (demos). `local()` is the zero-cost profile for on-disk repositories.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessProfile {
    /// Fixed per-request latency.
    pub per_request: Duration,
    /// Transfer bandwidth in bytes/second (`u64::MAX` = infinite).
    pub bytes_per_sec: u64,
}

impl AccessProfile {
    /// Zero-cost local access.
    pub fn local() -> AccessProfile {
        AccessProfile {
            per_request: Duration::ZERO,
            bytes_per_sec: u64::MAX,
        }
    }

    /// A plausible WAN FTP profile: 20 ms RTT, 20 MB/s.
    pub fn wan() -> AccessProfile {
        AccessProfile {
            per_request: Duration::from_millis(20),
            bytes_per_sec: 20 * 1024 * 1024,
        }
    }

    /// Cost of one request transferring `bytes`.
    pub fn cost(&self, bytes: u64) -> Duration {
        if self.bytes_per_sec == u64::MAX {
            return self.per_request;
        }
        let transfer = Duration::from_secs_f64(bytes as f64 / self.bytes_per_sec as f64);
        self.per_request + transfer
    }
}

/// File extensions a default [`Repository`] scan registers: every format
/// the warehouse's extractor registry understands.
pub const DEFAULT_EXTENSIONS: &[&str] = &["mseed", "miniseed", "msd", "sac", "csv"];

/// A rooted directory of source files with a stable file registry.
#[derive(Debug)]
pub struct Repository {
    root: PathBuf,
    entries: Vec<FileEntry>,
    by_uri: BTreeMap<String, usize>,
    next_id: u32,
    extensions: Vec<String>,
    /// Access-cost model for reads against this repository.
    pub access: AccessProfile,
}

fn mtime_of(path: &Path) -> std::io::Result<Timestamp> {
    let md = std::fs::metadata(path)?;
    let st = md.modified()?;
    let micros = match st.duration_since(std::time::UNIX_EPOCH) {
        Ok(d) => d.as_micros() as i64,
        Err(e) => -(e.duration().as_micros() as i64),
    };
    Ok(Timestamp(micros))
}

fn walk(dir: &Path, extensions: &[String], out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            walk(&path, extensions, out)?;
        } else if path
            .extension()
            .is_some_and(|e| extensions.iter().any(|x| e.eq_ignore_ascii_case(x)))
        {
            out.push(path);
        }
    }
    Ok(())
}

impl Repository {
    /// Open a repository rooted at `root`, scanning it immediately for
    /// every extension in [`DEFAULT_EXTENSIONS`].
    pub fn open(root: impl Into<PathBuf>) -> Result<Repository, RepoError> {
        Self::open_with_extensions(root, DEFAULT_EXTENSIONS)
    }

    /// Open a repository registering only files with the given extensions
    /// (case-insensitive, without the leading dot).
    pub fn open_with_extensions(
        root: impl Into<PathBuf>,
        extensions: &[&str],
    ) -> Result<Repository, RepoError> {
        let mut repo = Repository {
            root: root.into(),
            entries: Vec::new(),
            by_uri: BTreeMap::new(),
            next_id: 0,
            extensions: extensions.iter().map(|s| s.to_string()).collect(),
            access: AccessProfile::local(),
        };
        repo.rescan()?;
        Ok(repo)
    }

    /// Root directory of the repository.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// All known files, sorted by URI.
    pub fn files(&self) -> &[FileEntry] {
        &self.entries
    }

    /// Number of known files.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the repository holds no files.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total bytes across all files.
    pub fn total_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.size).sum()
    }

    /// Look up a file by URI.
    pub fn by_uri(&self, uri: &str) -> Option<&FileEntry> {
        self.by_uri.get(uri).map(|&i| &self.entries[i])
    }

    /// Look up a file by id.
    pub fn by_id(&self, id: FileId) -> Option<&FileEntry> {
        self.entries.iter().find(|e| e.id == id)
    }

    /// Current on-disk mtime of a URI (for staleness checks without a full
    /// rescan).
    pub fn current_mtime(&self, uri: &str) -> Result<Timestamp, RepoError> {
        let e = self
            .by_uri(uri)
            .ok_or_else(|| RepoError::UnknownUri(uri.to_string()))?;
        Ok(mtime_of(&e.path)?)
    }

    /// Walk the root and map URI -> path for every file currently on disk.
    fn walk_uris(&self) -> Result<BTreeMap<String, PathBuf>, RepoError> {
        let mut paths = Vec::new();
        walk(&self.root, &self.extensions, &mut paths)?;
        let mut found: BTreeMap<String, PathBuf> = BTreeMap::new();
        for p in paths {
            let rel = p
                .strip_prefix(&self.root)
                .expect("walk yields paths under root")
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            found.insert(rel, p);
        }
        Ok(found)
    }

    /// Compute what a [`Self::rescan`] would report **without mutating the
    /// registry**: the same walk and size/mtime comparison, read-only.
    ///
    /// Lets read-mostly callers (the warehouse's per-query auto-refresh)
    /// detect the no-change common case under a shared lock and only
    /// escalate to an exclusive rescan when something actually changed.
    pub fn scan_changes(&self) -> Result<ChangeSet, RepoError> {
        let found = self.walk_uris()?;
        let mut change = ChangeSet::default();
        for (uri, path) in &found {
            let size = std::fs::metadata(path)?.len();
            let mtime = mtime_of(path)?;
            match self.by_uri.get(uri) {
                Some(&idx) => {
                    let old = &self.entries[idx];
                    if old.size != size || old.mtime != mtime {
                        change.modified.push(uri.clone());
                    }
                }
                None => change.added.push(uri.clone()),
            }
        }
        for uri in self.by_uri.keys() {
            if !found.contains_key(uri) {
                change.removed.push(uri.clone());
            }
        }
        Ok(change)
    }

    /// Rescan the directory tree, updating the registry and returning what
    /// changed. New files get fresh ids; unchanged URIs keep theirs.
    pub fn rescan(&mut self) -> Result<ChangeSet, RepoError> {
        let found = self.walk_uris()?;
        let mut change = ChangeSet::default();
        let mut new_entries: Vec<FileEntry> = Vec::with_capacity(found.len());
        for (uri, path) in &found {
            let size = std::fs::metadata(path)?.len();
            let mtime = mtime_of(path)?;
            match self.by_uri.get(uri) {
                Some(&idx) => {
                    let old = &self.entries[idx];
                    if old.size != size || old.mtime != mtime {
                        change.modified.push(uri.clone());
                    }
                    new_entries.push(FileEntry {
                        id: old.id,
                        uri: uri.clone(),
                        path: path.clone(),
                        size,
                        mtime,
                    });
                }
                None => {
                    change.added.push(uri.clone());
                    let id = FileId(self.next_id);
                    self.next_id += 1;
                    new_entries.push(FileEntry {
                        id,
                        uri: uri.clone(),
                        path: path.clone(),
                        size,
                        mtime,
                    });
                }
            }
        }
        for uri in self.by_uri.keys() {
            if !found.contains_key(uri) {
                change.removed.push(uri.clone());
            }
        }
        self.entries = new_entries;
        self.by_uri = self
            .entries
            .iter()
            .enumerate()
            .map(|(i, e)| (e.uri.clone(), i))
            .collect();
        Ok(change)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazyetl_mseed::gen::{generate_repository, GeneratorConfig};

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("lazyetl_repo_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn scan_finds_generated_files() {
        let dir = tmpdir("scan");
        let cfg = GeneratorConfig::tiny(1);
        let gen = generate_repository(&dir, &cfg).unwrap();
        let repo = Repository::open(&dir).unwrap();
        assert_eq!(repo.len(), gen.files.len());
        assert_eq!(repo.total_bytes(), gen.total_bytes);
        // URIs are relative with forward slashes and stable ordering.
        let uris: Vec<_> = repo.files().iter().map(|e| e.uri.clone()).collect();
        let mut sorted = uris.clone();
        sorted.sort();
        assert_eq!(uris, sorted);
        assert!(uris[0].contains('/'));
        assert!(repo.by_uri(&uris[0]).is_some());
        assert!(repo.by_id(repo.files()[0].id).is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rescan_detects_changes_and_keeps_ids() {
        let dir = tmpdir("rescan");
        let cfg = GeneratorConfig::tiny(2);
        generate_repository(&dir, &cfg).unwrap();
        let mut repo = Repository::open(&dir).unwrap();
        let first_uri = repo.files()[0].uri.clone();
        let first_id = repo.files()[0].id;
        let unchanged = repo.rescan().unwrap();
        assert!(unchanged.is_empty());

        // Modify one file (grow it so size changes even if mtime is coarse).
        let path = repo.by_uri(&first_uri).unwrap().path.clone();
        let mut bytes = std::fs::read(&path).unwrap();
        let extra = bytes[..512.min(bytes.len())].to_vec();
        bytes.extend_from_slice(&extra);
        std::fs::write(&path, bytes).unwrap();
        // Add one file.
        let new_path = dir.join("XX/NEW/XX.NEW.--.BHZ.2020.001.000000.mseed");
        std::fs::create_dir_all(new_path.parent().unwrap()).unwrap();
        std::fs::write(&new_path, b"not-yet-real").unwrap();

        let change = repo.rescan().unwrap();
        assert_eq!(change.modified, vec![first_uri.clone()]);
        assert_eq!(change.added.len(), 1);
        assert!(change.removed.is_empty());
        assert_eq!(repo.by_uri(&first_uri).unwrap().id, first_id, "id stable");

        // Remove the added file.
        std::fs::remove_file(&new_path).unwrap();
        let change = repo.rescan().unwrap();
        assert_eq!(change.removed.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scan_changes_previews_rescan_without_mutating() {
        let dir = tmpdir("scan_changes");
        let cfg = GeneratorConfig::tiny(2);
        generate_repository(&dir, &cfg).unwrap();
        let mut repo = Repository::open(&dir).unwrap();
        assert!(repo.scan_changes().unwrap().is_empty());

        // Grow one file and add another.
        let first_uri = repo.files()[0].uri.clone();
        let path = repo.by_uri(&first_uri).unwrap().path.clone();
        let mut bytes = std::fs::read(&path).unwrap();
        let extra = bytes[..512.min(bytes.len())].to_vec();
        bytes.extend_from_slice(&extra);
        std::fs::write(&path, bytes).unwrap();
        let new_path = dir.join("XX/NEW/XX.NEW.--.BHZ.2020.001.000000.mseed");
        std::fs::create_dir_all(new_path.parent().unwrap()).unwrap();
        std::fs::write(&new_path, b"not-yet-real").unwrap();

        let n_before = repo.len();
        let preview = repo.scan_changes().unwrap();
        assert_eq!(preview.modified, vec![first_uri]);
        assert_eq!(preview.added.len(), 1);
        assert!(preview.removed.is_empty());
        // The registry was not touched…
        assert_eq!(repo.len(), n_before);
        // …and a subsequent rescan reports the identical changeset.
        let applied = repo.rescan().unwrap();
        assert_eq!(applied.modified, preview.modified);
        assert_eq!(applied.added, preview.added);
        // Once applied, the preview is clean again.
        assert!(repo.scan_changes().unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn access_profile_costs() {
        let local = AccessProfile::local();
        assert_eq!(local.cost(1 << 30), Duration::ZERO);
        let wan = AccessProfile::wan();
        let c = wan.cost(20 * 1024 * 1024);
        assert!(c >= Duration::from_millis(1019) && c <= Duration::from_millis(1021));
        // Metadata-sized read is dominated by the round trip.
        let small = wan.cost(64);
        assert!(small < Duration::from_millis(21));
    }

    #[test]
    fn unknown_uri_is_an_error() {
        let dir = tmpdir("unknown");
        let repo = Repository::open(&dir).unwrap();
        assert!(matches!(
            repo.current_mtime("nope/missing.mseed"),
            Err(RepoError::UnknownUri(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_missing_root_fails() {
        let missing = std::env::temp_dir().join("lazyetl_repo_definitely_missing_xyz");
        std::fs::remove_dir_all(&missing).ok();
        assert!(Repository::open(&missing).is_err());
    }
}
