//! Latency-injected simulated-remote source.
//!
//! The paper's repositories live on FTP servers at ORFEUS; this backend
//! stands in for them without a network. It wraps a local directory (the
//! "origin") but **hides its paths** from the warehouse: `local_path`
//! returns `None`, so every read — metadata scans and record-group
//! extraction alike — is forced through [`LazySource::fetch_range`],
//! exactly the shape of an HTTP range request. Each fetch is counted
//! (requests + bytes, see [`LazySource::io_stats`]), accounted under the
//! source's [`AccessProfile`], and — when real latency injection is
//! enabled via [`RemoteSource::with_sleep`] — actually slept, so
//! cold-touch latency measurements (bench E16) see wall-clock effects,
//! not just modeled ones.
//!
//! Change detection delegates to the origin directory: the simulated
//! server's content drifts exactly when the files under it do.

use crate::source::{read_file_range, LazySource, SourceIoStats};
use crate::{AccessProfile, ChangeSet, FileEntry, FileId, RepoError, Repository};
use lazyetl_mseed::Timestamp;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A simulated remote repository: range-fetch-only access to a local
/// origin directory, with per-fetch accounting and optional real latency.
#[derive(Debug)]
pub struct RemoteSource {
    inner: Repository,
    sleep: bool,
    requests: AtomicU64,
    bytes: AtomicU64,
}

impl RemoteSource {
    /// Open a simulated remote over the origin directory at `root`,
    /// costing fetches under [`AccessProfile::wan`] (accounting only; no
    /// real sleeping unless [`Self::with_sleep`] is applied).
    pub fn open(root: impl Into<PathBuf>) -> Result<RemoteSource, RepoError> {
        let mut inner = Repository::open(root)?;
        inner.access = AccessProfile::wan();
        Ok(RemoteSource {
            inner,
            sleep: false,
            requests: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        })
    }

    /// Enable (or disable) real latency injection: every fetch sleeps its
    /// modeled [`AccessProfile::cost`] before returning.
    pub fn with_sleep(mut self, sleep: bool) -> RemoteSource {
        self.sleep = sleep;
        self
    }

    /// Replace the access profile, builder-style.
    pub fn with_access(mut self, profile: AccessProfile) -> RemoteSource {
        self.inner.access = profile;
        self
    }
}

impl LazySource for RemoteSource {
    fn kind(&self) -> &'static str {
        "remote"
    }

    fn files(&self) -> &[FileEntry] {
        self.inner.files()
    }

    fn by_uri(&self, uri: &str) -> Option<&FileEntry> {
        self.inner.by_uri(uri)
    }

    fn by_id(&self, id: FileId) -> Option<&FileEntry> {
        self.inner.by_id(id)
    }

    fn current_mtime(&self, uri: &str) -> Result<Timestamp, RepoError> {
        self.inner.current_mtime(uri)
    }

    fn scan_changes(&self) -> Result<ChangeSet, RepoError> {
        self.inner.scan_changes()
    }

    fn rescan(&mut self) -> Result<ChangeSet, RepoError> {
        self.inner.rescan()
    }

    fn access(&self) -> AccessProfile {
        self.inner.access
    }

    fn set_access(&mut self, profile: AccessProfile) {
        self.inner.access = profile;
    }

    /// No local path: the warehouse must fetch ranges, as over a WAN.
    fn local_path<'a>(&self, _entry: &'a FileEntry) -> Option<&'a Path> {
        None
    }

    fn fetch_range(&self, entry: &FileEntry, offset: u64, len: u64) -> Result<Vec<u8>, RepoError> {
        let buf = read_file_range(&entry.path, offset, len).map_err(|e| RepoError::Fetch {
            uri: entry.uri.clone(),
            detail: e.to_string(),
        })?;
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(buf.len() as u64, Ordering::Relaxed);
        if self.sleep {
            std::thread::sleep(self.inner.access.cost(buf.len() as u64));
        }
        Ok(buf)
    }

    fn io_stats(&self) -> SourceIoStats {
        SourceIoStats {
            fetch_requests: self.requests.load(Ordering::Relaxed),
            fetched_bytes: self.bytes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazyetl_mseed::gen::{generate_repository, GeneratorConfig};

    fn origin(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("lazyetl_remote_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        std::fs::create_dir_all(&d).unwrap();
        generate_repository(&d, &GeneratorConfig::tiny(41)).unwrap();
        d
    }

    #[test]
    fn hides_paths_and_counts_fetches() {
        let dir = origin("count");
        let src = RemoteSource::open(&dir).unwrap();
        assert_eq!(src.kind(), "remote");
        assert!(!src.is_empty());
        let entry = src.files()[0].clone();
        assert!(src.local_path(&entry).is_none(), "remote exposes no path");
        assert_eq!(src.io_stats(), SourceIoStats::default());
        let head = src.fetch_range(&entry, 0, 64).unwrap();
        assert_eq!(head.len(), 64);
        let tail = src.fetch_range(&entry, entry.size - 10, 100).unwrap();
        assert_eq!(tail.len(), 10, "range truncated at EOF");
        let stats = src.io_stats();
        assert_eq!(stats.fetch_requests, 2);
        assert_eq!(stats.fetched_bytes, 74);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fetch_of_missing_origin_is_a_typed_fetch_error() {
        let dir = origin("err");
        let src = RemoteSource::open(&dir).unwrap();
        let mut entry = src.files()[0].clone();
        entry.path = PathBuf::from("/nonexistent/gone.mseed");
        let err = src.fetch_range(&entry, 0, 16).unwrap_err();
        assert_eq!(err.code(), "repo.fetch");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn change_detection_delegates_to_origin() {
        let dir = origin("drift");
        let mut src = RemoteSource::open(&dir).unwrap();
        assert!(src.scan_changes().unwrap().is_empty());
        let target = src.files()[0].path.clone();
        let mut bytes = std::fs::read(&target).unwrap();
        let extra = bytes[..256.min(bytes.len())].to_vec();
        bytes.extend_from_slice(&extra);
        std::fs::write(&target, bytes).unwrap();
        let probe = src.scan_changes().unwrap();
        assert_eq!(probe.modified.len(), 1);
        let applied = src.rescan().unwrap();
        assert_eq!(applied.modified, probe.modified);
        assert!(src.scan_changes().unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
