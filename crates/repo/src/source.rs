//! The pluggable lazy-source boundary.
//!
//! The paper's claim — ETL work deferred until a query first touches the
//! data — is format- and location-agnostic, but the original code spoke
//! only to the concrete local [`Repository`]. [`LazySource`] extracts the
//! contract the warehouse actually needs from a source of files:
//!
//! * **enumerate** — a stable registry of [`FileEntry`]s with ids, sizes
//!   and modification times ([`LazySource::files`] and friends);
//! * **detect change** — a read-only probe ([`LazySource::scan_changes`])
//!   and an authoritative rescan ([`LazySource::rescan`]), the signals
//!   lazy refresh keys on;
//! * **fetch on first touch** — a byte-range fetch
//!   ([`LazySource::fetch_range`]), HTTP-range-shaped so remote backends
//!   map onto it directly; sources that are really local directories
//!   short-circuit it by exposing [`LazySource::local_path`];
//! * **report cost** — an [`AccessProfile`] for simulated-transfer
//!   accounting plus live fetch counters ([`LazySource::io_stats`]).
//!
//! The warehouse mounts one or more `Box<dyn LazySource>`s; everything
//! above this boundary (catalog, record cache, refresh, snapshot drift
//! validation, parallel extraction) is source-agnostic.

use crate::{AccessProfile, ChangeSet, FileEntry, FileId, RepoError, Repository};
use lazyetl_mseed::Timestamp;
use std::path::Path;

/// Cumulative fetch counters of one source (all zeros for sources that
/// never route reads through [`LazySource::fetch_range`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SourceIoStats {
    /// Ranged fetches issued against the source.
    pub fetch_requests: u64,
    /// Bytes transferred by those fetches.
    pub fetched_bytes: u64,
}

/// Read `len` bytes at `offset` from a local file, truncating at EOF.
///
/// The shared fetch implementation for path-backed sources: returns fewer
/// than `len` bytes when the range extends past the end of the file, and
/// an empty vector when `offset` is at or past it — callers detect short
/// reads themselves, mirroring how an HTTP range request behaves.
pub fn read_file_range(path: &Path, offset: u64, len: u64) -> Result<Vec<u8>, RepoError> {
    use std::io::{Read, Seek, SeekFrom};
    let mut file = std::fs::File::open(path)?;
    let size = file.metadata()?.len();
    if offset >= size {
        return Ok(Vec::new());
    }
    let take = len.min(size - offset);
    file.seek(SeekFrom::Start(offset))?;
    let mut buf = vec![0u8; take as usize];
    file.read_exact(&mut buf)?;
    Ok(buf)
}

/// A source of lazily-extracted files: what the warehouse needs to know
/// about *any* repository, local or remote, whatever the file format.
///
/// Object-safe on purpose — the warehouse holds `Box<dyn LazySource>`
/// mounts and extraction workers borrow `&dyn LazySource` across scoped
/// threads, hence `Send + Sync`.
pub trait LazySource: Send + Sync + std::fmt::Debug {
    /// Short backend identifier (`"local"`, `"csv"`, `"remote"`, …) used
    /// in stats reporting and logs.
    fn kind(&self) -> &'static str;

    /// All known files, sorted by URI. Ids are stable across rescans for
    /// unchanged URIs.
    fn files(&self) -> &[FileEntry];

    /// Look up a file by URI.
    fn by_uri(&self, uri: &str) -> Option<&FileEntry>;

    /// Look up a file by id.
    fn by_id(&self, id: FileId) -> Option<&FileEntry> {
        self.files().iter().find(|e| e.id == id)
    }

    /// Number of known files.
    fn len(&self) -> usize {
        self.files().len()
    }

    /// True when the source holds no files.
    fn is_empty(&self) -> bool {
        self.files().is_empty()
    }

    /// Total bytes across all files.
    fn total_bytes(&self) -> u64 {
        self.files().iter().map(|e| e.size).sum()
    }

    /// Current modification time of a URI (staleness probe without a full
    /// rescan).
    fn current_mtime(&self, uri: &str) -> Result<Timestamp, RepoError>;

    /// Compute what a [`Self::rescan`] would report **without mutating
    /// the registry** — the read-only probe lazy refresh runs under a
    /// shared lock.
    fn scan_changes(&self) -> Result<ChangeSet, RepoError>;

    /// Rescan the source, updating the registry and returning what
    /// changed. New files get fresh ids; unchanged URIs keep theirs.
    fn rescan(&mut self) -> Result<ChangeSet, RepoError>;

    /// The access-cost model reads against this source are accounted
    /// under.
    fn access(&self) -> AccessProfile;

    /// Replace the access-cost model (warehouse construction applies the
    /// configured profile to every mount).
    fn set_access(&mut self, profile: AccessProfile);

    /// The local filesystem path of an entry, when the source is a plain
    /// directory the extractor may read directly. Remote backends return
    /// `None`, forcing every read through [`Self::fetch_range`] so
    /// transfers are observable and costed.
    fn local_path<'a>(&self, entry: &'a FileEntry) -> Option<&'a Path> {
        Some(&entry.path)
    }

    /// Fetch `len` bytes of `entry` starting at `offset` (truncated at
    /// EOF, like an HTTP range request). The lazy warehouse calls this on
    /// first touch of a record group when [`Self::local_path`] is `None`.
    fn fetch_range(&self, entry: &FileEntry, offset: u64, len: u64) -> Result<Vec<u8>, RepoError>;

    /// Cumulative fetch counters (zeros for sources whose reads bypass
    /// [`Self::fetch_range`]).
    fn io_stats(&self) -> SourceIoStats {
        SourceIoStats::default()
    }
}

impl LazySource for Repository {
    fn kind(&self) -> &'static str {
        "local"
    }

    fn files(&self) -> &[FileEntry] {
        Repository::files(self)
    }

    fn by_uri(&self, uri: &str) -> Option<&FileEntry> {
        Repository::by_uri(self, uri)
    }

    fn by_id(&self, id: FileId) -> Option<&FileEntry> {
        Repository::by_id(self, id)
    }

    fn current_mtime(&self, uri: &str) -> Result<Timestamp, RepoError> {
        Repository::current_mtime(self, uri)
    }

    fn scan_changes(&self) -> Result<ChangeSet, RepoError> {
        Repository::scan_changes(self)
    }

    fn rescan(&mut self) -> Result<ChangeSet, RepoError> {
        Repository::rescan(self)
    }

    fn access(&self) -> AccessProfile {
        self.access
    }

    fn set_access(&mut self, profile: AccessProfile) {
        self.access = profile;
    }

    fn fetch_range(&self, entry: &FileEntry, offset: u64, len: u64) -> Result<Vec<u8>, RepoError> {
        read_file_range(&entry.path, offset, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("lazyetl_source_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn repository_implements_the_source_contract() {
        let dir = tmpdir("contract");
        let cfg = lazyetl_mseed::gen::GeneratorConfig::tiny(31);
        lazyetl_mseed::gen::generate_repository(&dir, &cfg).unwrap();
        let repo = Repository::open(&dir).unwrap();
        let src: &dyn LazySource = &repo;
        assert_eq!(src.kind(), "local");
        assert!(!src.is_empty());
        assert_eq!(src.len(), src.files().len());
        let entry = &src.files()[0];
        assert!(src.by_uri(&entry.uri).is_some());
        assert!(src.by_id(entry.id).is_some());
        assert_eq!(src.local_path(entry), Some(entry.path.as_path()));
        assert!(src.scan_changes().unwrap().is_empty());
        assert_eq!(src.io_stats(), SourceIoStats::default());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fetch_range_truncates_at_eof() {
        let dir = tmpdir("range");
        let path = dir.join("f.csv");
        std::fs::write(&path, b"0123456789").unwrap();
        let got = read_file_range(&path, 4, 3).unwrap();
        assert_eq!(got, b"456");
        let tail = read_file_range(&path, 8, 100).unwrap();
        assert_eq!(tail, b"89");
        assert!(read_file_range(&path, 10, 5).unwrap().is_empty());
        assert!(read_file_range(&path, 99, 5).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn error_codes_are_stable() {
        assert_eq!(RepoError::Io(std::io::Error::other("x")).code(), "repo.io");
        assert_eq!(RepoError::UnknownUri("u".into()).code(), "repo.unknown_uri");
        assert_eq!(
            RepoError::Fetch {
                uri: "u".into(),
                detail: "d".into()
            }
            .code(),
            "repo.fetch"
        );
        assert_eq!(
            RepoError::Unsupported("op".into()).code(),
            "repo.unsupported"
        );
    }
}
