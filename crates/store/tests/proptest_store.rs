//! Property tests for the storage substrate: columnar operations preserve
//! values, persistence round-trips arbitrary tables, and SQL comparison
//! semantics behave like an order.

use lazyetl_store::persist::{read_table, write_table};
use lazyetl_store::{Column, DataType, Field, Schema, Table, Value};
use proptest::prelude::*;

/// Strategy: an arbitrary nullable scalar of a given type.
fn value_of(dt: DataType) -> BoxedStrategy<Value> {
    let non_null = match dt {
        DataType::Bool => any::<bool>().prop_map(Value::Bool).boxed(),
        DataType::Int32 => any::<i32>().prop_map(Value::Int32).boxed(),
        DataType::Int64 => any::<i64>().prop_map(Value::Int64).boxed(),
        DataType::Float64 => (-1e15f64..1e15).prop_map(Value::Float64).boxed(),
        DataType::Utf8 => "[a-zA-Z0-9_.-]{0,12}".prop_map(Value::Utf8).boxed(),
        DataType::Timestamp => any::<i64>().prop_map(Value::Timestamp).boxed(),
    };
    prop_oneof![
        9 => non_null,
        1 => Just(Value::Null),
    ]
    .boxed()
}

fn any_type() -> impl Strategy<Value = DataType> {
    prop_oneof![
        Just(DataType::Bool),
        Just(DataType::Int32),
        Just(DataType::Int64),
        Just(DataType::Float64),
        Just(DataType::Utf8),
        Just(DataType::Timestamp),
    ]
}

/// Strategy: a small table with 1-4 nullable columns and 0-40 rows.
fn any_table() -> impl Strategy<Value = Table> {
    (prop::collection::vec(any_type(), 1..4), 0usize..40).prop_flat_map(|(types, n_rows)| {
        let fields: Vec<Field> = types
            .iter()
            .enumerate()
            .map(|(i, t)| Field::nullable(&format!("c{i}"), *t))
            .collect();
        let row_strategies: Vec<BoxedStrategy<Value>> =
            types.iter().map(|t| value_of(*t)).collect();
        prop::collection::vec(row_strategies, n_rows..=n_rows).prop_map(move |rows| {
            let schema = Schema::new(fields.clone()).unwrap();
            let mut t = Table::empty(schema);
            for row in rows {
                t.append_row(row).unwrap();
            }
            t
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Persistence round-trips arbitrary tables exactly.
    #[test]
    fn persist_roundtrip(table in any_table()) {
        let mut buf = Vec::new();
        write_table(&table, &mut buf).unwrap();
        let back = read_table(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(&back.schema, &table.schema);
        prop_assert_eq!(back.num_rows(), table.num_rows());
        for i in 0..table.num_rows() {
            prop_assert_eq!(back.row(i).unwrap(), table.row(i).unwrap());
        }
    }

    /// filter(mask) keeps exactly the masked rows in order.
    #[test]
    fn filter_keeps_masked_rows(table in any_table(), seed in any::<u64>()) {
        let n = table.num_rows();
        let mask: Vec<bool> = (0..n).map(|i| (seed >> (i % 64)) & 1 == 1).collect();
        let out = table.filter(&mask).unwrap();
        let expected: Vec<usize> = (0..n).filter(|&i| mask[i]).collect();
        prop_assert_eq!(out.num_rows(), expected.len());
        for (j, &i) in expected.iter().enumerate() {
            prop_assert_eq!(out.row(j).unwrap(), table.row(i).unwrap());
        }
    }

    /// take(indices) gathers rows, allowing repeats.
    #[test]
    fn take_gathers(table in any_table(), picks in prop::collection::vec(any::<prop::sample::Index>(), 0..20)) {
        if table.num_rows() == 0 {
            return Ok(());
        }
        let indices: Vec<usize> = picks.iter().map(|p| p.index(table.num_rows())).collect();
        let out = table.take(&indices).unwrap();
        prop_assert_eq!(out.num_rows(), indices.len());
        for (j, &i) in indices.iter().enumerate() {
            prop_assert_eq!(out.row(j).unwrap(), table.row(i).unwrap());
        }
    }

    /// append_column concatenates without disturbing existing rows.
    #[test]
    fn append_preserves_prefix(t1 in any_table()) {
        let mut doubled = t1.clone();
        doubled.append_table(&t1).unwrap();
        prop_assert_eq!(doubled.num_rows(), t1.num_rows() * 2);
        for i in 0..t1.num_rows() {
            prop_assert_eq!(doubled.row(i).unwrap(), t1.row(i).unwrap());
            prop_assert_eq!(doubled.row(t1.num_rows() + i).unwrap(), t1.row(i).unwrap());
        }
    }

    /// sql_cmp is antisymmetric and consistent with sql_eq for non-null
    /// comparable numeric values.
    #[test]
    fn sql_cmp_antisymmetric(a in any::<i64>(), b in any::<i64>()) {
        let va = Value::Int64(a);
        let vb = Value::Int64(b);
        let ab = va.sql_cmp(&vb).unwrap();
        let ba = vb.sql_cmp(&va).unwrap();
        prop_assert_eq!(ab, ba.reverse());
        prop_assert_eq!(va.sql_eq(&vb), Some(a == b));
    }

    /// Cross-type numeric comparison agrees with f64 ordering where exact.
    #[test]
    fn cross_type_cmp(a in -1_000_000i32..1_000_000, b in -1e6f64..1e6) {
        let va = Value::Int32(a);
        let vb = Value::Float64(b);
        let ord = va.sql_cmp(&vb).unwrap();
        prop_assert_eq!(ord, (a as f64).total_cmp(&b));
    }

    /// Column byte_size is monotone in row count.
    #[test]
    fn byte_size_monotone(values in prop::collection::vec(any::<i64>(), 1..50)) {
        let mut col = Column::empty(DataType::Int64);
        let mut last = col.byte_size();
        for v in values {
            col.push(Value::Int64(v)).unwrap();
            let now = col.byte_size();
            prop_assert!(now > last);
            last = now;
        }
    }

    /// Arbitrary byte-level corruption of a persisted table never panics:
    /// the reader either returns an error or a (possibly different) valid
    /// table — a database file format must not be a crash vector.
    #[test]
    fn corrupted_persisted_bytes_never_panic(
        n_rows in 0usize..40,
        mutations in prop::collection::vec((0usize..4096, any::<u8>()), 1..16),
        truncate_to in prop::option::of(0usize..4096),
    ) {
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::nullable("name", DataType::Utf8),
            Field::new("v", DataType::Float64),
        ]).unwrap();
        let mut t = Table::empty(schema);
        for i in 0..n_rows {
            t.append_row(vec![
                Value::Int64(i as i64),
                if i % 5 == 0 { Value::Null } else { Value::Utf8(format!("s{i}")) },
                Value::Float64(i as f64 * 0.5),
            ]).unwrap();
        }
        let mut buf = Vec::new();
        write_table(&t, &mut buf).unwrap();
        for (pos, byte) in mutations {
            if !buf.is_empty() {
                let idx = pos % buf.len();
                buf[idx] = byte;
            }
        }
        if let Some(cut) = truncate_to {
            buf.truncate(cut.min(buf.len()));
        }
        // Must not panic; both Ok and Err are acceptable outcomes.
        let _ = read_table(&mut buf.as_slice());
    }
}
