//! Hand-rolled binary persistence for tables.
//!
//! Used by the eager warehouse to materialize its load and by experiment E2
//! to measure the on-disk footprint of an eagerly loaded database against
//! the raw (Steim-compressed) repository — the "up to 10 times the original
//! storage size" claim of §4.
//!
//! Format (all little-endian):
//! ```text
//! magic "LZTB" | u16 version | u32 n_cols | u64 n_rows
//! per column: u16 name_len | name bytes | u8 type tag | u8 nullable
//! per column: u8 has_validity | [validity as packed bits] | payload
//! payload:    fixed-width values back-to-back; strings as u32 len + bytes
//! ```
//!
//! # Durable writes
//!
//! The saved-warehouse path (`lazyetl-core::persistence`) needs writes
//! that either land completely or not at all, and reads that detect any
//! torn or bit-flipped file. Two orthogonal primitives provide that:
//!
//! * **Atomic replacement** ([`write_file_atomic`]): the bytes go to a
//!   `<name>.tmp` sibling, are fsynced, and are renamed over the target;
//!   the directory is fsynced so the rename itself is durable. A crash at
//!   any instant leaves either the old file or the new one — never a mix.
//! * **Checksummed footer** ([`append_footer`] / [`split_footer`]): a
//!   20-byte trailer (`payload_len | fnv1a-64 | "LZSF"`) appended after
//!   the payload. Readers verify length and checksum before parsing, so
//!   truncation and corruption are detected instead of mis-parsed. The
//!   footer is *additive*: [`read_table`] ignores trailing bytes, so a
//!   footered `.lztb` file still loads with the plain v1 reader.

use crate::column::{Column, ColumnData};
use crate::error::{Result, StoreError};
use crate::schema::{Field, Schema};
use crate::table::Table;
use crate::types::DataType;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"LZTB";
const VERSION: u16 = 1;

fn type_tag(dt: DataType) -> u8 {
    match dt {
        DataType::Bool => 0,
        DataType::Int32 => 1,
        DataType::Int64 => 2,
        DataType::Float64 => 3,
        DataType::Utf8 => 4,
        DataType::Timestamp => 5,
    }
}

fn tag_type(tag: u8) -> Result<DataType> {
    Ok(match tag {
        0 => DataType::Bool,
        1 => DataType::Int32,
        2 => DataType::Int64,
        3 => DataType::Float64,
        4 => DataType::Utf8,
        5 => DataType::Timestamp,
        other => return Err(StoreError::Corrupt(format!("unknown type tag {other}"))),
    })
}

fn pack_bits(bits: &[bool]) -> Vec<u8> {
    let mut out = vec![0u8; bits.len().div_ceil(8)];
    for (i, &b) in bits.iter().enumerate() {
        if b {
            out[i / 8] |= 1 << (i % 8);
        }
    }
    out
}

fn unpack_bits(bytes: &[u8], n: usize) -> Vec<bool> {
    (0..n).map(|i| bytes[i / 8] & (1 << (i % 8)) != 0).collect()
}

/// Serialize a table to a writer.
pub fn write_table<W: Write>(table: &Table, w: &mut W) -> Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(table.num_columns() as u32).to_le_bytes())?;
    w.write_all(&(table.num_rows() as u64).to_le_bytes())?;
    for f in &table.schema.fields {
        let name = f.name.as_bytes();
        w.write_all(&(name.len() as u16).to_le_bytes())?;
        w.write_all(name)?;
        w.write_all(&[type_tag(f.data_type), f.nullable as u8])?;
    }
    for (f, col) in table.schema.fields.iter().zip(&table.columns) {
        let n = col.len();
        let validity: Option<Vec<bool>> = if col.null_count() > 0 {
            Some((0..n).map(|i| !col.is_null(i)).collect())
        } else {
            None
        };
        match &validity {
            Some(bits) => {
                w.write_all(&[1u8])?;
                w.write_all(&pack_bits(bits))?;
            }
            None => w.write_all(&[0u8])?,
        }
        match col.data() {
            ColumnData::Bool(v) => {
                let bits: Vec<bool> = v.clone();
                w.write_all(&pack_bits(&bits))?;
            }
            ColumnData::Int32(v) => {
                for x in v {
                    w.write_all(&x.to_le_bytes())?;
                }
            }
            ColumnData::Int64(v) | ColumnData::Timestamp(v) => {
                for x in v {
                    w.write_all(&x.to_le_bytes())?;
                }
            }
            ColumnData::Float64(v) => {
                for x in v {
                    w.write_all(&x.to_le_bytes())?;
                }
            }
            ColumnData::Utf8(v) => {
                for s in v {
                    w.write_all(&(s.len() as u32).to_le_bytes())?;
                    w.write_all(s.as_bytes())?;
                }
            }
        }
        let _ = f;
    }
    Ok(())
}

/// Read exactly `n` bytes, growing the buffer chunk by chunk.
///
/// `n` comes from on-disk length fields, which corruption can turn into
/// absurd values; allocating incrementally means a short stream errors
/// after at most one spare chunk instead of aborting the process on a
/// multi-exabyte `vec![0; n]`.
fn read_exact_vec<R: Read>(r: &mut R, n: usize) -> Result<Vec<u8>> {
    const CHUNK: usize = 1 << 20;
    let mut buf = Vec::with_capacity(n.min(CHUNK));
    let mut remaining = n;
    while remaining > 0 {
        let take = remaining.min(CHUNK);
        let start = buf.len();
        buf.resize(start + take, 0);
        r.read_exact(&mut buf[start..])
            .map_err(|e| StoreError::Corrupt(format!("short read: {e}")))?;
        remaining -= take;
    }
    Ok(buf)
}

/// `count * width` with overflow reported as corruption.
fn payload_len(count: usize, width: usize) -> Result<usize> {
    count
        .checked_mul(width)
        .ok_or_else(|| StoreError::Corrupt(format!("implausible row count {count}")))
}

/// Deserialize a table from a reader.
pub fn read_table<R: Read>(r: &mut R) -> Result<Table> {
    let magic = read_exact_vec(r, 4)?;
    if magic != MAGIC {
        return Err(StoreError::Corrupt("bad magic".into()));
    }
    let version = u16::from_le_bytes(read_exact_vec(r, 2)?.try_into().unwrap());
    if version != VERSION {
        return Err(StoreError::Corrupt(format!(
            "unsupported version {version}"
        )));
    }
    let n_cols = u32::from_le_bytes(read_exact_vec(r, 4)?.try_into().unwrap()) as usize;
    let n_rows = u64::from_le_bytes(read_exact_vec(r, 8)?.try_into().unwrap()) as usize;
    if n_cols > 4096 {
        return Err(StoreError::Corrupt(format!("implausible n_cols {n_cols}")));
    }
    let mut fields = Vec::with_capacity(n_cols);
    for _ in 0..n_cols {
        let name_len = u16::from_le_bytes(read_exact_vec(r, 2)?.try_into().unwrap()) as usize;
        let name = String::from_utf8(read_exact_vec(r, name_len)?)
            .map_err(|_| StoreError::Corrupt("non-UTF8 column name".into()))?;
        let meta = read_exact_vec(r, 2)?;
        fields.push(Field {
            name,
            data_type: tag_type(meta[0])?,
            nullable: meta[1] != 0,
        });
    }
    let schema = Schema::new(fields)?;
    let mut columns = Vec::with_capacity(n_cols);
    for f in &schema.fields {
        let has_validity = read_exact_vec(r, 1)?[0] != 0;
        let validity = if has_validity {
            let packed = read_exact_vec(r, n_rows.div_ceil(8))?;
            Some(unpack_bits(&packed, n_rows))
        } else {
            None
        };
        let data = match f.data_type {
            DataType::Bool => {
                let packed = read_exact_vec(r, n_rows.div_ceil(8))?;
                ColumnData::Bool(unpack_bits(&packed, n_rows))
            }
            DataType::Int32 => {
                let raw = read_exact_vec(r, payload_len(n_rows, 4)?)?;
                ColumnData::Int32(
                    raw.chunks_exact(4)
                        .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
                        .collect(),
                )
            }
            DataType::Int64 | DataType::Timestamp => {
                let raw = read_exact_vec(r, payload_len(n_rows, 8)?)?;
                let vals: Vec<i64> = raw
                    .chunks_exact(8)
                    .map(|c| i64::from_le_bytes(c.try_into().unwrap()))
                    .collect();
                if f.data_type == DataType::Int64 {
                    ColumnData::Int64(vals)
                } else {
                    ColumnData::Timestamp(vals)
                }
            }
            DataType::Float64 => {
                let raw = read_exact_vec(r, payload_len(n_rows, 8)?)?;
                ColumnData::Float64(
                    raw.chunks_exact(8)
                        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                        .collect(),
                )
            }
            DataType::Utf8 => {
                let mut vals = Vec::with_capacity(n_rows.min(1 << 20));
                for _ in 0..n_rows {
                    let len =
                        u32::from_le_bytes(read_exact_vec(r, 4)?.try_into().unwrap()) as usize;
                    if len > (1 << 28) {
                        return Err(StoreError::Corrupt(format!(
                            "implausible string length {len}"
                        )));
                    }
                    vals.push(
                        String::from_utf8(read_exact_vec(r, len)?)
                            .map_err(|_| StoreError::Corrupt("non-UTF8 string".into()))?,
                    );
                }
                ColumnData::Utf8(vals)
            }
        };
        let col = match validity {
            Some(bits) => Column::with_validity(data, bits)?,
            None => Column::new(data),
        };
        columns.push(col);
    }
    Table::new(schema, columns)
}

/// Save a table to a file.
pub fn save_table(table: &Table, path: &Path) -> Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    write_table(table, &mut w)?;
    w.flush()?;
    Ok(())
}

/// Load a table from a file.
pub fn load_table(path: &Path) -> Result<Table> {
    let mut r = BufReader::new(std::fs::File::open(path)?);
    read_table(&mut r)
}

/// Trailing magic of a checksummed footer.
pub const FOOTER_MAGIC: &[u8; 4] = b"LZSF";
/// Size of a checksummed footer in bytes.
pub const FOOTER_LEN: usize = 20;

/// FNV-1a 64-bit checksum — dependency-free, stable across platforms, and
/// sensitive to every bit of the payload (the point is detecting torn
/// writes and media corruption, not adversaries).
pub fn checksum64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Append the 20-byte integrity footer to a serialized payload:
/// `payload_len: u64 | checksum64(payload): u64 | "LZSF"`.
pub fn append_footer(buf: &mut Vec<u8>) {
    let len = buf.len() as u64;
    let sum = checksum64(buf);
    buf.extend_from_slice(&len.to_le_bytes());
    buf.extend_from_slice(&sum.to_le_bytes());
    buf.extend_from_slice(FOOTER_MAGIC);
}

/// Verify a footered byte buffer and return `(payload, checksum)`.
///
/// Rejects missing/garbled magic, a length field that disagrees with the
/// file size (truncation, concatenation) and any checksum mismatch
/// (bit flips, torn writes).
pub fn split_footer(bytes: &[u8]) -> Result<(&[u8], u64)> {
    if bytes.len() < FOOTER_LEN {
        return Err(StoreError::Corrupt(format!(
            "file too short for integrity footer ({} bytes)",
            bytes.len()
        )));
    }
    let (rest, footer) = bytes.split_at(bytes.len() - FOOTER_LEN);
    if &footer[16..20] != FOOTER_MAGIC {
        return Err(StoreError::Corrupt("missing integrity footer".into()));
    }
    let len = u64::from_le_bytes(footer[0..8].try_into().unwrap());
    let sum = u64::from_le_bytes(footer[8..16].try_into().unwrap());
    if len != rest.len() as u64 {
        return Err(StoreError::Corrupt(format!(
            "footer length {len} != payload length {} (truncated?)",
            rest.len()
        )));
    }
    let actual = checksum64(rest);
    if actual != sum {
        return Err(StoreError::Corrupt(format!(
            "checksum mismatch: footer {sum:#018x}, payload {actual:#018x}"
        )));
    }
    Ok((rest, sum))
}

/// Read the checksum a footered buffer carries without re-hashing the
/// payload — for callers that just built the buffer via
/// [`append_footer`] and would otherwise scan every byte twice.
pub fn embedded_footer_checksum(bytes: &[u8]) -> Option<u64> {
    if bytes.len() < FOOTER_LEN || &bytes[bytes.len() - 4..] != FOOTER_MAGIC {
        return None;
    }
    Some(u64::from_le_bytes(
        bytes[bytes.len() - 12..bytes.len() - 4].try_into().unwrap(),
    ))
}

/// Write `bytes` to `path` atomically: `<path>.tmp` + fsync + rename +
/// directory fsync. A crash leaves either the previous file or the new
/// one, never a prefix of the new one under the final name.
pub fn write_file_atomic(path: &Path, bytes: &[u8]) -> Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let tmp = tmp_path(path);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    sync_parent_dir(path);
    Ok(())
}

/// The `<path>.tmp` sibling used by [`write_file_atomic`].
pub fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Fsync a file's parent directory so a completed rename survives a
/// crash. Best-effort: some filesystems refuse directory fsync; the
/// rename is still atomic there.
pub fn sync_parent_dir(path: &Path) {
    if let Some(parent) = path.parent() {
        if let Ok(dir) = std::fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
}

/// Serialize a table with an integrity footer.
pub fn table_to_footered_bytes(table: &Table) -> Result<Vec<u8>> {
    let mut buf = Vec::new();
    write_table(table, &mut buf)?;
    append_footer(&mut buf);
    Ok(buf)
}

/// Save a table atomically (see [`write_file_atomic`]) with an integrity
/// footer. Returns `(bytes_written, payload_checksum)`. The file still
/// loads with the plain [`load_table`] reader, which ignores the footer.
pub fn save_table_atomic(table: &Table, path: &Path) -> Result<(u64, u64)> {
    let buf = table_to_footered_bytes(table)?;
    let sum = checksum64(&buf[..buf.len() - FOOTER_LEN]);
    write_file_atomic(path, &buf)?;
    Ok((buf.len() as u64, sum))
}

/// Load a table written by [`save_table_atomic`], verifying the footer
/// before parsing. Returns the table and its payload checksum so callers
/// can cross-check a manifest entry.
pub fn load_table_verified(path: &Path) -> Result<(Table, u64)> {
    let bytes = std::fs::read(path)?;
    let (payload, sum) = split_footer(&bytes)?;
    let table = read_table(&mut &payload[..])?;
    Ok((table, sum))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Value;

    fn mixed_table() -> Table {
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::nullable("v", DataType::Float64),
            Field::new("s", DataType::Utf8),
            Field::new("t", DataType::Timestamp),
            Field::nullable("flag", DataType::Bool),
            Field::new("small", DataType::Int32),
        ])
        .unwrap();
        let mut t = Table::empty(schema);
        for i in 0..100i64 {
            t.append_row(vec![
                Value::Int64(i),
                if i % 7 == 0 {
                    Value::Null
                } else {
                    Value::Float64(i as f64 * 0.5)
                },
                Value::Utf8(format!("station-{i}")),
                Value::Timestamp(1_263_000_000_000_000 + i * 1_000_000),
                if i % 3 == 0 {
                    Value::Null
                } else {
                    Value::Bool(i % 2 == 0)
                },
                Value::Int32(i as i32 - 50),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn roundtrip_via_memory() {
        let t = mixed_table();
        let mut buf = Vec::new();
        write_table(&t, &mut buf).unwrap();
        let back = read_table(&mut buf.as_slice()).unwrap();
        assert_eq!(back.schema, t.schema);
        assert_eq!(back.num_rows(), t.num_rows());
        for i in [0usize, 1, 7, 21, 99] {
            assert_eq!(back.row(i).unwrap(), t.row(i).unwrap(), "row {i}");
        }
    }

    #[test]
    fn roundtrip_via_file() {
        let t = mixed_table();
        let path =
            std::env::temp_dir().join(format!("lazyetl_persist_{}.lztb", std::process::id()));
        save_table(&t, &path).unwrap();
        let back = load_table(&path).unwrap();
        assert_eq!(back.num_rows(), 100);
        assert_eq!(back.row(42).unwrap(), t.row(42).unwrap());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_table_roundtrip() {
        let t = Table::empty(Schema::new(vec![Field::new("x", DataType::Utf8)]).unwrap());
        let mut buf = Vec::new();
        write_table(&t, &mut buf).unwrap();
        let back = read_table(&mut buf.as_slice()).unwrap();
        assert_eq!(back.num_rows(), 0);
        assert_eq!(back.schema, t.schema);
    }

    #[test]
    fn corruption_detected() {
        let t = mixed_table();
        let mut buf = Vec::new();
        write_table(&t, &mut buf).unwrap();
        // Bad magic.
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(read_table(&mut bad.as_slice()).is_err());
        // Truncation.
        let short = &buf[..buf.len() / 2];
        assert!(read_table(&mut &short[..]).is_err());
        // Bad version.
        let mut bad = buf.clone();
        bad[4] = 99;
        assert!(read_table(&mut bad.as_slice()).is_err());
    }

    #[test]
    fn footer_roundtrip_and_detection() {
        let mut buf = b"hello payload".to_vec();
        append_footer(&mut buf);
        let (payload, sum) = split_footer(&buf).unwrap();
        assert_eq!(payload, b"hello payload");
        assert_eq!(sum, checksum64(b"hello payload"));
        assert_eq!(embedded_footer_checksum(&buf), Some(sum));
        assert_eq!(embedded_footer_checksum(b"short"), None);
        // Truncation anywhere invalidates it.
        for cut in [1usize, FOOTER_LEN - 1, FOOTER_LEN, buf.len() - 1] {
            assert!(split_footer(&buf[..buf.len() - cut]).is_err(), "cut={cut}");
        }
        // A single bit flip in the payload is caught.
        let mut flipped = buf.clone();
        flipped[3] ^= 0x40;
        assert!(split_footer(&flipped).is_err());
        // A flip inside the footer checksum is caught too.
        let mut flipped = buf.clone();
        let at = buf.len() - 10;
        flipped[at] ^= 0x01;
        assert!(split_footer(&flipped).is_err());
    }

    #[test]
    fn atomic_save_roundtrips_and_stays_v1_readable() {
        let t = mixed_table();
        let dir = std::env::temp_dir().join(format!("lazyetl_atomic_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let path = dir.join("t.lztb");
        let (bytes, sum) = save_table_atomic(&t, &path).unwrap();
        assert_eq!(bytes, std::fs::metadata(&path).unwrap().len());
        assert!(!tmp_path(&path).exists(), "tmp file renamed away");
        let (back, sum2) = load_table_verified(&path).unwrap();
        assert_eq!(sum, sum2);
        assert_eq!(back.row(11).unwrap(), t.row(11).unwrap());
        // The footer is invisible to the plain v1 reader.
        let v1 = load_table(&path).unwrap();
        assert_eq!(v1.num_rows(), t.num_rows());
        // Corruption in the table payload fails the verified load.
        let mut raw = std::fs::read(&path).unwrap();
        raw[40] ^= 0x10;
        std::fs::write(&path, &raw).unwrap();
        assert!(load_table_verified(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_file_atomic_replaces_existing() {
        let dir = std::env::temp_dir().join(format!("lazyetl_replace_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let path = dir.join("x.bin");
        write_file_atomic(&path, b"old contents").unwrap();
        write_file_atomic(&path, b"new").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"new");
        assert!(!tmp_path(&path).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checksum64_is_stable_and_sensitive() {
        assert_eq!(checksum64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(checksum64(b"a"), checksum64(b"b"));
        assert_ne!(checksum64(b"ab"), checksum64(b"ba"));
    }

    #[test]
    fn bit_packing_roundtrip() {
        for n in [0usize, 1, 7, 8, 9, 64, 100] {
            let bits: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
            assert_eq!(unpack_bits(&pack_bits(&bits), n), bits, "n={n}");
        }
    }
}
