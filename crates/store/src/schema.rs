//! Schemas: named, typed, nullable fields.

use crate::error::{Result, StoreError};
use crate::types::DataType;

/// One column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name (lower-cased by the SQL layer).
    pub name: String,
    /// Logical type.
    pub data_type: DataType,
    /// Whether NULLs are permitted.
    pub nullable: bool,
}

impl Field {
    /// A non-nullable field.
    pub fn new(name: &str, data_type: DataType) -> Field {
        Field {
            name: name.to_string(),
            data_type,
            nullable: false,
        }
    }

    /// A nullable field.
    pub fn nullable(name: &str, data_type: DataType) -> Field {
        Field {
            name: name.to_string(),
            data_type,
            nullable: true,
        }
    }
}

/// An ordered list of fields.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    /// The fields in column order.
    pub fields: Vec<Field>,
}

impl Schema {
    /// Build from a field list, rejecting duplicate names.
    pub fn new(fields: Vec<Field>) -> Result<Schema> {
        for (i, f) in fields.iter().enumerate() {
            if fields[..i].iter().any(|g| g.name == f.name) {
                return Err(StoreError::Catalog(format!(
                    "duplicate column name {:?}",
                    f.name
                )));
            }
        }
        Ok(Schema { fields })
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of a field by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Field by name.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// Concatenate two schemas (for joins), qualifying duplicate names from
    /// the right side with `right_prefix`.
    pub fn join(&self, other: &Schema, right_prefix: &str) -> Result<Schema> {
        let mut fields = self.fields.clone();
        for f in &other.fields {
            let name = if self.index_of(&f.name).is_some() {
                format!("{right_prefix}.{}", f.name)
            } else {
                f.name.clone()
            };
            fields.push(Field {
                name,
                data_type: f.data_type,
                nullable: f.nullable,
            });
        }
        Schema::new(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_names_rejected() {
        assert!(Schema::new(vec![
            Field::new("a", DataType::Int32),
            Field::new("a", DataType::Utf8),
        ])
        .is_err());
    }

    #[test]
    fn lookup() {
        let s = Schema::new(vec![
            Field::new("x", DataType::Int32),
            Field::nullable("y", DataType::Float64),
        ])
        .unwrap();
        assert_eq!(s.index_of("y"), Some(1));
        assert_eq!(s.index_of("z"), None);
        assert!(s.field("y").unwrap().nullable);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn join_qualifies_duplicates() {
        let a = Schema::new(vec![Field::new("id", DataType::Int64)]).unwrap();
        let b = Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("v", DataType::Float64),
        ])
        .unwrap();
        let j = a.join(&b, "r").unwrap();
        assert_eq!(j.fields[1].name, "r.id");
        assert_eq!(j.fields[2].name, "v");
    }
}
