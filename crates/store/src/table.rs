//! Tables: a schema plus equal-length columns, with row-wise append.

use crate::column::Column;
use crate::error::{Result, StoreError};
use crate::schema::Schema;
use crate::types::Value;

/// An in-memory columnar table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Column definitions.
    pub schema: Schema,
    /// Column storage, parallel to `schema.fields`.
    pub columns: Vec<Column>,
}

impl Table {
    /// An empty table with the given schema.
    pub fn empty(schema: Schema) -> Table {
        let columns = schema
            .fields
            .iter()
            .map(|f| Column::empty(f.data_type))
            .collect();
        Table { schema, columns }
    }

    /// Build from a schema and pre-built columns (lengths must agree).
    pub fn new(schema: Schema, columns: Vec<Column>) -> Result<Table> {
        if schema.len() != columns.len() {
            return Err(StoreError::RaggedTable {
                expected: schema.len(),
                found: columns.len(),
                column: "<column count>".into(),
            });
        }
        let n = columns.first().map_or(0, |c| c.len());
        for (f, c) in schema.fields.iter().zip(&columns) {
            if c.len() != n {
                return Err(StoreError::RaggedTable {
                    expected: n,
                    found: c.len(),
                    column: f.name.clone(),
                });
            }
            if c.data_type() != f.data_type {
                return Err(StoreError::TypeMismatch {
                    expected: f.data_type.name().into(),
                    found: c.data_type().name().into(),
                });
            }
        }
        Ok(Table { schema, columns })
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.columns.first().map_or(0, |c| c.len())
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Append one row of values (must match schema arity and types).
    pub fn append_row(&mut self, row: Vec<Value>) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(StoreError::RaggedTable {
                expected: self.schema.len(),
                found: row.len(),
                column: "<row arity>".into(),
            });
        }
        for (field, value) in self.schema.fields.iter().zip(&row) {
            if value.is_null() && !field.nullable {
                return Err(StoreError::TypeMismatch {
                    expected: format!("non-null {}", field.data_type.name()),
                    found: "NULL".into(),
                });
            }
        }
        // Validate all pushes will succeed before mutating any column, so a
        // failed append cannot leave the table ragged.
        for (col, value) in self.columns.iter().zip(&row) {
            if !value.is_null() {
                let compatible = match (col.data_type(), value.data_type()) {
                    (a, Some(b)) if a == b => true,
                    (crate::types::DataType::Int64, Some(crate::types::DataType::Int32)) => true,
                    (crate::types::DataType::Float64, Some(crate::types::DataType::Int32)) => true,
                    (crate::types::DataType::Float64, Some(crate::types::DataType::Int64)) => true,
                    (crate::types::DataType::Timestamp, Some(crate::types::DataType::Int64)) => {
                        true
                    }
                    _ => false,
                };
                if !compatible {
                    return Err(StoreError::TypeMismatch {
                        expected: col.data_type().name().into(),
                        found: value
                            .data_type()
                            .map(|d| d.name().to_string())
                            .unwrap_or_else(|| "NULL".into()),
                    });
                }
            }
        }
        for (col, value) in self.columns.iter_mut().zip(row) {
            col.push(value).expect("validated above");
        }
        Ok(())
    }

    /// Fetch one row as values.
    pub fn row(&self, i: usize) -> Result<Vec<Value>> {
        self.columns.iter().map(|c| c.get(i)).collect()
    }

    /// Column by name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.schema.index_of(name).map(|i| &self.columns[i])
    }

    /// Append all rows of another table with an identical schema.
    pub fn append_table(&mut self, other: &Table) -> Result<()> {
        if self.schema != other.schema {
            return Err(StoreError::Catalog(
                "append_table requires identical schemas".into(),
            ));
        }
        for (a, b) in self.columns.iter_mut().zip(&other.columns) {
            a.append_column(b)?;
        }
        Ok(())
    }

    /// Keep rows where `mask` is true.
    pub fn filter(&self, mask: &[bool]) -> Result<Table> {
        let columns = self
            .columns
            .iter()
            .map(|c| c.filter(mask))
            .collect::<Result<Vec<_>>>()?;
        Ok(Table {
            schema: self.schema.clone(),
            columns,
        })
    }

    /// Gather rows at `indices`.
    pub fn take(&self, indices: &[usize]) -> Result<Table> {
        let columns = self
            .columns
            .iter()
            .map(|c| c.take(indices))
            .collect::<Result<Vec<_>>>()?;
        Ok(Table {
            schema: self.schema.clone(),
            columns,
        })
    }

    /// Copy of rows `[offset, offset + len)` — one morsel of this table.
    /// Morsel-driven operators slice their input into fixed-size row
    /// ranges, run each morsel independently, and concatenate the
    /// results in morsel order.
    pub fn slice(&self, offset: usize, len: usize) -> Result<Table> {
        let columns = self
            .columns
            .iter()
            .map(|c| c.slice(offset, len))
            .collect::<Result<Vec<_>>>()?;
        Ok(Table {
            schema: self.schema.clone(),
            columns,
        })
    }

    /// Approximate heap footprint in bytes.
    pub fn byte_size(&self) -> usize {
        self.columns.iter().map(|c| c.byte_size()).sum()
    }

    /// Render as an aligned ASCII table (for the demo/examples).
    pub fn to_ascii(&self, max_rows: usize) -> String {
        let mut header: Vec<String> = self.schema.fields.iter().map(|f| f.name.clone()).collect();
        let shown = self.num_rows().min(max_rows);
        let mut rows: Vec<Vec<String>> = Vec::with_capacity(shown);
        for i in 0..shown {
            rows.push(
                self.columns
                    .iter()
                    .map(|c| c.get(i).map(|v| v.to_string()).unwrap_or_default())
                    .collect(),
            );
        }
        let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
        for row in &rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        for (h, w) in header.iter_mut().zip(&widths) {
            *h = format!("{h:<w$}");
        }
        let sep: String = widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("-+-");
        let mut out = String::new();
        out.push_str(&header.join(" | "));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in rows {
            let cells: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            out.push_str(&cells.join(" | "));
            out.push('\n');
        }
        if self.num_rows() > shown {
            out.push_str(&format!("... {} more rows\n", self.num_rows() - shown));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;
    use crate::types::DataType;

    fn station_schema() -> Schema {
        Schema::new(vec![
            Field::new("station", DataType::Utf8),
            Field::new("value", DataType::Float64),
            Field::nullable("note", DataType::Utf8),
        ])
        .unwrap()
    }

    #[test]
    fn append_and_fetch_rows() {
        let mut t = Table::empty(station_schema());
        t.append_row(vec![
            Value::Utf8("ISK".into()),
            Value::Float64(1.5),
            Value::Null,
        ])
        .unwrap();
        t.append_row(vec![
            Value::Utf8("HGN".into()),
            Value::Int32(2), // widens to f64
            Value::Utf8("ok".into()),
        ])
        .unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.row(1).unwrap()[1], Value::Float64(2.0));
        assert_eq!(t.column("station").unwrap().len(), 2);
        assert!(t.column("missing").is_none());
    }

    #[test]
    fn non_nullable_rejects_null_atomically() {
        let mut t = Table::empty(station_schema());
        let err = t.append_row(vec![Value::Null, Value::Float64(0.0), Value::Null]);
        assert!(err.is_err());
        assert_eq!(t.num_rows(), 0, "failed append must not leave debris");
        // Type error in later column must also leave nothing behind.
        let err = t.append_row(vec![
            Value::Utf8("X".into()),
            Value::Utf8("not a number".into()),
            Value::Null,
        ]);
        assert!(err.is_err());
        assert_eq!(t.num_rows(), 0);
        assert_eq!(t.columns[0].len(), 0, "no partial row");
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut t = Table::empty(station_schema());
        assert!(t.append_row(vec![Value::Utf8("X".into())]).is_err());
    }

    #[test]
    fn ragged_construction_rejected() {
        let schema = station_schema();
        let cols = vec![
            Column::from_values(DataType::Utf8, &[Value::Utf8("a".into())]).unwrap(),
            Column::empty(DataType::Float64),
            Column::empty(DataType::Utf8),
        ];
        assert!(Table::new(schema, cols).is_err());
    }

    #[test]
    fn filter_take_append() {
        let mut t = Table::empty(station_schema());
        for i in 0..5 {
            t.append_row(vec![
                Value::Utf8(format!("S{i}")),
                Value::Float64(i as f64),
                Value::Null,
            ])
            .unwrap();
        }
        let f = t.filter(&[true, false, true, false, true]).unwrap();
        assert_eq!(f.num_rows(), 3);
        let g = t.take(&[4, 0]).unwrap();
        assert_eq!(g.row(0).unwrap()[0], Value::Utf8("S4".into()));
        let mut h = Table::empty(station_schema());
        h.append_table(&t).unwrap();
        h.append_table(&f).unwrap();
        assert_eq!(h.num_rows(), 8);
    }

    #[test]
    fn ascii_rendering() {
        let mut t = Table::empty(station_schema());
        t.append_row(vec![
            Value::Utf8("ISK".into()),
            Value::Float64(1.25),
            Value::Null,
        ])
        .unwrap();
        let s = t.to_ascii(10);
        assert!(s.contains("station"));
        assert!(s.contains("ISK"));
        assert!(s.contains("1.25"));
        let s2 = t.to_ascii(0);
        assert!(s2.contains("1 more rows"));
    }
}
