//! Typed batch kernels — the vectorized execution primitives.
//!
//! MonetDB's speed comes from column-at-a-time *primitives*: tight typed
//! loops over contiguous arrays, one operator invocation per column
//! instead of one interpreter dispatch per value. This module is that
//! layer for the reproduction. Every kernel:
//!
//! * consumes [`Column`]s (typed vectors + optional validity masks),
//! * dispatches **once** on the type pairing, then runs a branch-light
//!   loop over the raw slices,
//! * is null-mask-aware (SQL three-valued semantics for booleans, NULL-in
//!   → NULL-out for arithmetic),
//! * returns `None` when it has no fast path for the requested shape —
//!   callers fall back to the scalar evaluator, which remains the
//!   semantic reference.
//!
//! Boolean results are [`BoolMask`]s: a packed `Vec<bool>` plus an
//! optional validity vector, combinable with Kleene AND/OR/NOT without
//! re-boxing into `Value`s.

use crate::column::{Column, ColumnData};
use crate::types::Value;
use std::cmp::Ordering;

/// The six comparison operators, decoupled from the SQL expression tree so
/// the store can implement them without depending on the query crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
}

impl CmpOp {
    /// Does `ord` (of left vs right) satisfy this operator?
    #[inline]
    pub fn matches(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::NotEq => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::LtEq => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::GtEq => ord != Ordering::Less,
        }
    }

    /// The operator with its operands swapped (`a < b` ⇔ `b > a`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::NotEq => CmpOp::NotEq,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::LtEq => CmpOp::GtEq,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::GtEq => CmpOp::LtEq,
        }
    }
}

/// The five arithmetic operators the kernels cover.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (always DOUBLE, `x / 0` → NULL)
    Div,
    /// `%` (`x % 0` → NULL)
    Mod,
}

/// A packed boolean vector with SQL NULL tracking.
///
/// `bits[i]` is the value of row `i` (`false` where NULL); a row is NULL
/// when `validity` is present and `validity[i]` is `false`. `validity:
/// None` means every row is definite — the common all-valid case stays
/// allocation-free and combines with plain slice loops.
#[derive(Debug, Clone, PartialEq)]
pub struct BoolMask {
    /// Packed values (`false` where the row is NULL).
    pub bits: Vec<bool>,
    /// `false` marks a NULL row; `None` = all rows definite.
    pub validity: Option<Vec<bool>>,
}

impl BoolMask {
    /// An all-definite mask.
    pub fn from_bits(bits: Vec<bool>) -> BoolMask {
        BoolMask {
            bits,
            validity: None,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// True when the mask covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// View a `Bool` column as a mask (shares SQL NULL semantics).
    /// Returns `None` for non-boolean columns.
    pub fn from_column(col: &Column) -> Option<BoolMask> {
        match col.data() {
            ColumnData::Bool(v) => Some(BoolMask {
                bits: v.clone(),
                validity: col.validity().cloned(),
            }),
            _ => None,
        }
    }

    /// Tri-state view of row `i`: `Some(bool)` definite, `None` = NULL.
    #[inline]
    fn tri(&self, i: usize) -> Option<bool> {
        if self.validity.as_ref().is_none_or(|v| v[i]) {
            Some(self.bits[i])
        } else {
            None
        }
    }

    /// Kleene AND: `false` dominates NULL.
    pub fn and(&self, other: &BoolMask) -> BoolMask {
        debug_assert_eq!(self.len(), other.len());
        let n = self.len();
        let bits: Vec<bool> = (0..n).map(|i| self.bits[i] && other.bits[i]).collect();
        let validity = match (&self.validity, &other.validity) {
            (None, None) => None,
            _ => {
                // Row is definite when both sides are definite, or one
                // side is a definite false.
                let mut valid = Vec::with_capacity(n);
                for i in 0..n {
                    let a = self.tri(i);
                    let b = other.tri(i);
                    // Definite when both sides are, or either is a
                    // definite false (false dominates NULL).
                    valid.push(matches!(
                        (a, b),
                        (Some(false), _) | (_, Some(false)) | (Some(_), Some(_))
                    ));
                }
                Some(valid)
            }
        };
        BoolMask { bits, validity }.normalized()
    }

    /// Kleene OR: `true` dominates NULL.
    pub fn or(&self, other: &BoolMask) -> BoolMask {
        debug_assert_eq!(self.len(), other.len());
        let n = self.len();
        let bits: Vec<bool> = (0..n).map(|i| self.bits[i] || other.bits[i]).collect();
        let validity = match (&self.validity, &other.validity) {
            (None, None) => None,
            _ => {
                let mut valid = Vec::with_capacity(n);
                for i in 0..n {
                    let a = self.tri(i);
                    let b = other.tri(i);
                    // Definite when both sides are, or either is a
                    // definite true (true dominates NULL).
                    valid.push(matches!(
                        (a, b),
                        (Some(true), _) | (_, Some(true)) | (Some(_), Some(_))
                    ));
                }
                Some(valid)
            }
        };
        BoolMask { bits, validity }.normalized()
    }

    /// Three-valued NOT: definite values flip, NULL stays NULL.
    pub fn not(&self) -> BoolMask {
        let bits = self
            .bits
            .iter()
            .enumerate()
            .map(|(i, &b)| {
                let definite = self.validity.as_ref().is_none_or(|v| v[i]);
                definite && !b
            })
            .collect();
        BoolMask {
            bits,
            validity: self.validity.clone(),
        }
    }

    /// Collapse to a selection vector: NULL rows select nothing (the SQL
    /// `WHERE` rule).
    pub fn into_selection(self) -> Vec<bool> {
        match self.validity {
            None => self.bits,
            Some(valid) => self
                .bits
                .into_iter()
                .zip(valid)
                .map(|(b, ok)| b && ok)
                .collect(),
        }
    }

    /// Convert to a nullable `Bool` column.
    pub fn into_column(self) -> Column {
        match self.validity {
            None => Column::new(ColumnData::Bool(self.bits)),
            Some(valid) => Column::with_validity(ColumnData::Bool(self.bits), valid)
                .expect("mask vectors are equal length"),
        }
    }

    /// Drop an all-true validity vector (keeps the all-valid case cheap
    /// for downstream combinators).
    fn normalized(mut self) -> BoolMask {
        if let Some(v) = &self.validity {
            if v.iter().all(|&ok| ok) {
                self.validity = None;
            }
        }
        self
    }
}

/// Wrap packed bits with an optional validity vector, zeroing the bit of
/// every NULL row so padded payloads never leak into the mask. The one
/// NULL-normalization point for all boolean kernels.
fn masked(bits: Vec<bool>, validity: Option<Vec<bool>>) -> BoolMask {
    match validity {
        None => BoolMask::from_bits(bits),
        Some(valid) => BoolMask {
            bits: bits
                .into_iter()
                .zip(&valid)
                .map(|(b, &ok)| b && ok)
                .collect(),
            validity: Some(valid),
        },
    }
}

/// [`masked`] against one column's own validity.
#[inline]
fn mask_of(col: &Column, bits: Vec<bool>) -> BoolMask {
    masked(bits, col.validity().cloned())
}

/// Compare every row of `col` against one literal.
///
/// Covered pairings — exactly the ones `Value::sql_cmp` orders, so a
/// kernel answer and the scalar reference can never disagree; every
/// other pairing (notably `Timestamp` vs `Int32`/`Float64`, which
/// `sql_cmp` rejects) returns `None` and the scalar evaluator owns the
/// semantics, error included:
///
/// | column        | literal               | loop compares      |
/// |---------------|-----------------------|--------------------|
/// | `Int64`       | int-like / `Float64`  | `i64` / widened f64|
/// | `Timestamp`   | `Int64` / `Timestamp` | `i64` vs `i64`     |
/// | `Int32`       | `Int32`/`Int64`/`Float64` | widened        |
/// | `Float64`     | `Int32`/`Int64`/`Float64` | `total_cmp`    |
/// | `Utf8`        | `Utf8`                | `&str` (no clones) |
/// | `Bool`        | `Bool`                | `bool`             |
pub fn compare_scalar(col: &Column, op: CmpOp, lit: &Value) -> Option<BoolMask> {
    if lit.is_null() {
        return None; // NULL comparisons: let the scalar evaluator do 3VL
    }
    macro_rules! kernel {
        ($data:expr, $target:expr, $cmp:expr) => {{
            let target = $target;
            let bits: Vec<bool> = $data.iter().map(|v| op.matches($cmp(v, &target))).collect();
            Some(mask_of(col, bits))
        }};
    }
    match (col.data(), lit) {
        (ColumnData::Int64(d), Value::Int32(_) | Value::Int64(_) | Value::Timestamp(_))
        | (ColumnData::Timestamp(d), Value::Int64(_) | Value::Timestamp(_)) => {
            kernel!(d, lit.as_i64()?, |a: &i64, b: &i64| a.cmp(b))
        }
        (ColumnData::Int32(d), Value::Int32(_) | Value::Int64(_)) => {
            kernel!(d, lit.as_i64()?, |a: &i32, b: &i64| (*a as i64).cmp(b))
        }
        (ColumnData::Int32(d), Value::Float64(t)) => {
            kernel!(d, *t, |a: &i32, b: &f64| (*a as f64).total_cmp(b))
        }
        (ColumnData::Int64(d), Value::Float64(t)) => {
            kernel!(d, *t, |a: &i64, b: &f64| (*a as f64).total_cmp(b))
        }
        (ColumnData::Float64(d), Value::Int32(_) | Value::Int64(_) | Value::Float64(_)) => {
            kernel!(d, lit.as_f64()?, |a: &f64, b: &f64| a.total_cmp(b))
        }
        (ColumnData::Utf8(d), Value::Utf8(t)) => {
            kernel!(d, t.as_str(), |a: &String, b: &&str| a.as_str().cmp(b))
        }
        (ColumnData::Bool(d), Value::Bool(t)) => {
            kernel!(d, *t, |a: &bool, b: &bool| a.cmp(b))
        }
        _ => None,
    }
}

/// Compare two columns row-by-row (same pairings as [`compare_scalar`],
/// plus mixed integer widths). Lengths must agree; `None` when the type
/// pairing has no kernel.
pub fn compare_columns(left: &Column, right: &Column, op: CmpOp) -> Option<BoolMask> {
    if left.len() != right.len() {
        return None;
    }
    // A row is NULL when either input is NULL.
    let n = left.len();
    let validity = validity_union(left.validity(), right.validity(), n);
    macro_rules! kernel {
        ($l:expr, $r:expr, $cmp:expr) => {{
            let bits: Vec<bool> = $l
                .iter()
                .zip($r.iter())
                .map(|(a, b)| op.matches($cmp(a, b)))
                .collect();
            Some(masked(bits, validity))
        }};
    }
    use ColumnData as CD;
    match (left.data(), right.data()) {
        (CD::Int64(l), CD::Int64(r))
        | (CD::Int64(l), CD::Timestamp(r))
        | (CD::Timestamp(l), CD::Int64(r))
        | (CD::Timestamp(l), CD::Timestamp(r)) => kernel!(l, r, |a: &i64, b: &i64| a.cmp(b)),
        (CD::Int32(l), CD::Int32(r)) => kernel!(l, r, |a: &i32, b: &i32| a.cmp(b)),
        (CD::Int32(l), CD::Int64(r)) => kernel!(l, r, |a: &i32, b: &i64| (*a as i64).cmp(b)),
        (CD::Int64(l), CD::Int32(r)) => kernel!(l, r, |a: &i64, b: &i32| a.cmp(&(*b as i64))),
        (CD::Float64(l), CD::Float64(r)) => kernel!(l, r, |a: &f64, b: &f64| a.total_cmp(b)),
        (CD::Float64(l), CD::Int32(r)) => {
            kernel!(l, r, |a: &f64, b: &i32| a.total_cmp(&(*b as f64)))
        }
        (CD::Float64(l), CD::Int64(r)) => {
            kernel!(l, r, |a: &f64, b: &i64| a.total_cmp(&(*b as f64)))
        }
        (CD::Int32(l), CD::Float64(r)) => {
            kernel!(l, r, |a: &i32, b: &f64| (*a as f64).total_cmp(b))
        }
        (CD::Int64(l), CD::Float64(r)) => {
            kernel!(l, r, |a: &i64, b: &f64| (*a as f64).total_cmp(b))
        }
        (CD::Utf8(l), CD::Utf8(r)) => kernel!(l, r, |a: &String, b: &String| a.cmp(b)),
        (CD::Bool(l), CD::Bool(r)) => kernel!(l, r, |a: &bool, b: &bool| a.cmp(b)),
        _ => None,
    }
}

/// Union of two optional validity vectors (row valid when both are).
fn validity_union(l: Option<&Vec<bool>>, r: Option<&Vec<bool>>, n: usize) -> Option<Vec<bool>> {
    match (l, r) {
        (None, None) => None,
        (l, r) => Some(
            (0..n)
                .map(|i| l.is_none_or(|v| v[i]) && r.is_none_or(|v| v[i]))
                .collect(),
        ),
    }
}

/// Wrap typed output data with a validity vector, dropping all-true masks.
fn column_with(data: ColumnData, validity: Option<Vec<bool>>) -> Column {
    match validity {
        Some(v) if !v.iter().all(|&ok| ok) => {
            Column::with_validity(data, v).expect("kernel output lengths agree")
        }
        _ => Column::new(data),
    }
}

/// Integer arithmetic loop shared by the scalar and column-column
/// kernels. Returns `None` on overflow or on a would-be `Int32`-typed
/// result that no longer fits `i32` — the scalar evaluator then owns the
/// (error) semantics.
fn int_arith(
    op: ArithOp,
    pairs: impl Iterator<Item = (i64, i64)>,
    n: usize,
    validity: Option<Vec<bool>>,
    narrow_to_i32: bool,
) -> Option<Column> {
    let mut out: Vec<i64> = Vec::with_capacity(n);
    let mut nulls = validity;
    for (i, (a, b)) in pairs.enumerate() {
        if nulls.as_ref().is_some_and(|v| !v[i]) {
            out.push(0);
            continue;
        }
        let v = match op {
            ArithOp::Add => a.checked_add(b)?,
            ArithOp::Sub => a.checked_sub(b)?,
            ArithOp::Mul => a.checked_mul(b)?,
            ArithOp::Mod => {
                if b == 0 {
                    // SQL: x % 0 -> NULL.
                    nulls.get_or_insert_with(|| vec![true; n])[i] = false;
                    out.push(0);
                    continue;
                }
                a.checked_rem(b)?
            }
            ArithOp::Div => unreachable!("division always takes the float kernel"),
        };
        if narrow_to_i32 && i32::try_from(v).is_err() {
            return None; // scalar path reports the narrowing failure
        }
        out.push(v);
    }
    let data = if narrow_to_i32 {
        ColumnData::Int32(out.into_iter().map(|v| v as i32).collect())
    } else {
        ColumnData::Int64(out)
    };
    Some(column_with(data, nulls))
}

/// Float arithmetic loop (`/ 0` and `% 0` yield NULL).
fn float_arith(
    op: ArithOp,
    pairs: impl Iterator<Item = (f64, f64)>,
    n: usize,
    validity: Option<Vec<bool>>,
) -> Column {
    let mut out: Vec<f64> = Vec::with_capacity(n);
    let mut nulls = validity;
    for (i, (a, b)) in pairs.enumerate() {
        if nulls.as_ref().is_some_and(|v| !v[i]) {
            out.push(0.0);
            continue;
        }
        let v = match op {
            ArithOp::Add => a + b,
            ArithOp::Sub => a - b,
            ArithOp::Mul => a * b,
            ArithOp::Div | ArithOp::Mod => {
                if b == 0.0 {
                    nulls.get_or_insert_with(|| vec![true; n])[i] = false;
                    out.push(0.0);
                    continue;
                }
                if op == ArithOp::Div {
                    a / b
                } else {
                    a % b
                }
            }
        };
        out.push(v);
    }
    column_with(ColumnData::Float64(out), nulls)
}

/// Integer view of a numeric column's raw slice, widened to `i64`.
/// Borrows when the physical type already is `i64`; only `Int32`
/// widening allocates. Shared with the executor's join-key packing.
pub fn as_i64_slice(col: &Column) -> Option<std::borrow::Cow<'_, [i64]>> {
    use std::borrow::Cow;
    match col.data() {
        ColumnData::Int64(v) | ColumnData::Timestamp(v) => Some(Cow::Borrowed(v.as_slice())),
        ColumnData::Int32(v) => Some(Cow::Owned(v.iter().map(|&x| x as i64).collect())),
        _ => None,
    }
}

/// Float view of a numeric column's raw slice (borrowed for `Float64`,
/// widened copies for the integer types).
fn as_f64_slice(col: &Column) -> Option<std::borrow::Cow<'_, [f64]>> {
    use std::borrow::Cow;
    match col.data() {
        ColumnData::Float64(v) => Some(Cow::Borrowed(v.as_slice())),
        ColumnData::Int64(v) | ColumnData::Timestamp(v) => {
            Some(Cow::Owned(v.iter().map(|&x| x as f64).collect()))
        }
        ColumnData::Int32(v) => Some(Cow::Owned(v.iter().map(|&x| x as f64).collect())),
        _ => None,
    }
}

/// Arithmetic of a column against one literal.
///
/// Dispatch mirrors the scalar evaluator's type rules: integer ⊗ integer
/// stays integral (with `Int32` narrowing when both sides are `Int32`),
/// division and any float operand go through `f64`, `Timestamp ± integer`
/// keeps the timestamp type, `Timestamp - Timestamp` yields `Int64`.
/// Integer overflow declines to the scalar path.
pub fn arith_scalar(col: &Column, op: ArithOp, lit: &Value, lit_on_left: bool) -> Option<Column> {
    if lit.is_null() {
        return None; // NULL ⊗ x: scalar path materializes the NULL column
    }
    let n = col.len();
    let validity = col.validity().cloned();
    use ColumnData as CD;
    // Timestamp special cases (only the shapes the scalar path types as
    // timestamp arithmetic; everything else declines).
    match (col.data(), lit, op, lit_on_left) {
        (
            CD::Timestamp(d),
            Value::Int32(_) | Value::Int64(_),
            ArithOp::Add | ArithOp::Sub,
            false,
        ) => {
            let delta = lit.as_i64()?;
            let out: Vec<i64> = d
                .iter()
                .map(|&a| {
                    if op == ArithOp::Add {
                        a + delta
                    } else {
                        a - delta
                    }
                })
                .collect();
            return Some(column_with(CD::Timestamp(out), validity));
        }
        (CD::Timestamp(d), Value::Timestamp(t), ArithOp::Sub, false) => {
            let out: Vec<i64> = d.iter().map(|&a| a - t).collect();
            return Some(column_with(CD::Int64(out), validity));
        }
        (CD::Timestamp(_), _, _, _) => return None,
        (_, Value::Timestamp(_), _, _) => return None,
        _ => {}
    }
    let col_is_int = matches!(col.data(), CD::Int32(_) | CD::Int64(_));
    let lit_is_int = matches!(lit, Value::Int32(_) | Value::Int64(_));
    if col_is_int && lit_is_int && op != ArithOp::Div {
        let narrow = matches!(col.data(), CD::Int32(_)) && matches!(lit, Value::Int32(_));
        let a = as_i64_slice(col)?;
        let b = lit.as_i64()?;
        let pairs = a
            .iter()
            .map(move |&x| if lit_on_left { (b, x) } else { (x, b) });
        return int_arith(op, pairs, n, validity, narrow);
    }
    // Float path: any numeric pairing, and all division.
    let a = as_f64_slice(col)?;
    let b = lit.as_f64()?;
    let pairs = a
        .iter()
        .map(move |&x| if lit_on_left { (b, x) } else { (x, b) });
    Some(float_arith(op, pairs, n, validity))
}

/// Arithmetic of two equal-length columns (same type rules as
/// [`arith_scalar`]).
pub fn arith_columns(left: &Column, right: &Column, op: ArithOp) -> Option<Column> {
    if left.len() != right.len() {
        return None;
    }
    let n = left.len();
    let validity = validity_union(left.validity(), right.validity(), n);
    use ColumnData as CD;
    match (left.data(), right.data(), op) {
        (CD::Timestamp(l), CD::Timestamp(r), ArithOp::Sub) => {
            let out: Vec<i64> = l.iter().zip(r).map(|(&a, &b)| a - b).collect();
            return Some(column_with(CD::Int64(out), validity));
        }
        (CD::Timestamp(l), CD::Int32(_) | CD::Int64(_), ArithOp::Add | ArithOp::Sub) => {
            let r = as_i64_slice(right)?;
            let out: Vec<i64> = l
                .iter()
                .zip(r.iter())
                .map(|(&a, &b)| if op == ArithOp::Add { a + b } else { a - b })
                .collect();
            return Some(column_with(CD::Timestamp(out), validity));
        }
        (CD::Timestamp(_), _, _) | (_, CD::Timestamp(_), _) => return None,
        _ => {}
    }
    let both_int = matches!(left.data(), CD::Int32(_) | CD::Int64(_))
        && matches!(right.data(), CD::Int32(_) | CD::Int64(_));
    if both_int && op != ArithOp::Div {
        let narrow = matches!(left.data(), CD::Int32(_)) && matches!(right.data(), CD::Int32(_));
        let a = as_i64_slice(left)?;
        let b = as_i64_slice(right)?;
        return int_arith(
            op,
            a.iter().copied().zip(b.iter().copied()),
            n,
            validity,
            narrow,
        );
    }
    let a = as_f64_slice(left)?;
    let b = as_f64_slice(right)?;
    Some(float_arith(
        op,
        a.iter().copied().zip(b.iter().copied()),
        n,
        validity,
    ))
}

/// `expr IS [NOT] NULL` as a definite (never-NULL) mask.
pub fn is_null_mask(col: &Column, negated: bool) -> BoolMask {
    let bits = match col.validity() {
        None => vec![negated; col.len()],
        Some(valid) => valid.iter().map(|&ok| ok == negated).collect(),
    };
    BoolMask::from_bits(bits)
}

/// `col [NOT] IN (literals)` for `Utf8` and integer-typed columns.
///
/// Preconditions (else `None`): every list element is a non-NULL literal
/// of a type `Value::sql_cmp` orders against the column — an element it
/// *cannot* order would make the scalar reference answer NULL instead of
/// FALSE, so those lists decline wholesale. NULL rows of the column
/// yield NULL (SQL semantics); matched rows yield `!negated`, unmatched
/// rows `negated` — `mask_of` restores the NULL rows at the end.
pub fn in_list_scalar(col: &Column, list: &[Value], negated: bool) -> Option<BoolMask> {
    if list.iter().any(|v| v.is_null()) {
        return None; // NULL list elements need 3VL; scalar path owns it
    }
    // Per column family, the element types sql_cmp can order.
    let int_elems = |ok: fn(&Value) -> bool| -> Option<std::collections::HashSet<i64>> {
        list.iter()
            .map(|v| if ok(v) { v.as_i64() } else { None })
            .collect()
    };
    let bits: Vec<bool> = match col.data() {
        ColumnData::Utf8(d) => {
            let set: std::collections::HashSet<&str> =
                list.iter().map(|v| v.as_str()).collect::<Option<_>>()?;
            d.iter()
                .map(|s| set.contains(s.as_str()) != negated)
                .collect()
        }
        ColumnData::Int64(d) => {
            let set = int_elems(|v| {
                matches!(v, Value::Int32(_) | Value::Int64(_) | Value::Timestamp(_))
            })?;
            d.iter().map(|v| set.contains(v) != negated).collect()
        }
        ColumnData::Timestamp(d) => {
            let set = int_elems(|v| matches!(v, Value::Int64(_) | Value::Timestamp(_)))?;
            d.iter().map(|v| set.contains(v) != negated).collect()
        }
        ColumnData::Int32(d) => {
            let set = int_elems(|v| matches!(v, Value::Int32(_) | Value::Int64(_)))?;
            d.iter()
                .map(|&v| set.contains(&(v as i64)) != negated)
                .collect()
        }
        _ => return None,
    };
    Some(mask_of(col, bits))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DataType;

    fn int_col(vals: &[Option<i64>]) -> Column {
        let values: Vec<Value> = vals
            .iter()
            .map(|v| v.map_or(Value::Null, Value::Int64))
            .collect();
        Column::from_values(DataType::Int64, &values).unwrap()
    }

    #[test]
    fn compare_scalar_int_with_nulls() {
        let col = int_col(&[Some(1), None, Some(5), Some(3)]);
        let m = compare_scalar(&col, CmpOp::Gt, &Value::Int64(2)).unwrap();
        assert_eq!(m.bits, vec![false, false, true, true]);
        assert_eq!(m.validity.as_deref(), Some(&[true, false, true, true][..]));
        assert_eq!(m.into_selection(), vec![false, false, true, true]);
    }

    #[test]
    fn compare_scalar_utf8_borrows() {
        let col = Column::from_values(
            DataType::Utf8,
            &[Value::Utf8("HGN".into()), Value::Utf8("ISK".into())],
        )
        .unwrap();
        let m = compare_scalar(&col, CmpOp::Eq, &Value::Utf8("ISK".into())).unwrap();
        assert_eq!(m.bits, vec![false, true]);
        assert!(m.validity.is_none());
    }

    #[test]
    fn compare_columns_mixed_widths() {
        let a = Column::from_values(DataType::Int32, &[Value::Int32(1), Value::Int32(7)]).unwrap();
        let b = int_col(&[Some(5), Some(7)]);
        let m = compare_columns(&a, &b, CmpOp::LtEq).unwrap();
        assert_eq!(m.bits, vec![true, true]);
        let m = compare_columns(&a, &b, CmpOp::Eq).unwrap();
        assert_eq!(m.bits, vec![false, true]);
    }

    #[test]
    fn kleene_combinators() {
        // a = [T, N, F], b = [N, N, T]
        let a = BoolMask {
            bits: vec![true, false, false],
            validity: Some(vec![true, false, true]),
        };
        let b = BoolMask {
            bits: vec![false, false, true],
            validity: Some(vec![false, false, true]),
        };
        let and = a.and(&b);
        // T∧N=N, N∧N=N, F∧T=F
        assert_eq!(and.into_selection(), vec![false, false, false]);
        let or = a.or(&b);
        // T∨N=T, N∨N=N, F∨T=T
        assert_eq!(or.bits, vec![true, false, true]);
        assert_eq!(or.validity.as_deref(), Some(&[true, false, true][..]));
        let not_a = a.not();
        assert_eq!(not_a.bits, vec![false, false, true]);
        assert_eq!(not_a.validity.as_deref(), Some(&[true, false, true][..]));
    }

    #[test]
    fn arith_scalar_int_and_float() {
        let col = int_col(&[Some(2), None, Some(4)]);
        let out = arith_scalar(&col, ArithOp::Mul, &Value::Int64(3), false).unwrap();
        assert_eq!(out.get(0).unwrap(), Value::Int64(6));
        assert!(out.get(1).unwrap().is_null());
        assert_eq!(out.get(2).unwrap(), Value::Int64(12));
        // Division always floats, and /0 is NULL.
        let out = arith_scalar(&col, ArithOp::Div, &Value::Int64(0), false).unwrap();
        assert!(out.get(0).unwrap().is_null());
        let out = arith_scalar(&col, ArithOp::Div, &Value::Int64(2), false).unwrap();
        assert_eq!(out.get(0).unwrap(), Value::Float64(1.0));
        // Literal-on-left subtraction orients correctly.
        let out = arith_scalar(&col, ArithOp::Sub, &Value::Int64(10), true).unwrap();
        assert_eq!(out.get(0).unwrap(), Value::Int64(8));
    }

    #[test]
    fn arith_overflow_declines() {
        let col = int_col(&[Some(i64::MAX)]);
        assert!(arith_scalar(&col, ArithOp::Add, &Value::Int64(1), false).is_none());
        let narrow = Column::from_values(DataType::Int32, &[Value::Int32(i32::MAX)]).unwrap();
        assert!(arith_scalar(&narrow, ArithOp::Add, &Value::Int32(1), false).is_none());
    }

    #[test]
    fn timestamp_arith() {
        let col = Column::from_values(
            DataType::Timestamp,
            &[Value::Timestamp(100), Value::Timestamp(200)],
        )
        .unwrap();
        let out = arith_scalar(&col, ArithOp::Add, &Value::Int64(5), false).unwrap();
        assert_eq!(out.get(0).unwrap(), Value::Timestamp(105));
        let out = arith_scalar(&col, ArithOp::Sub, &Value::Timestamp(40), false).unwrap();
        assert_eq!(out.get(1).unwrap(), Value::Int64(160));
        let other = Column::from_values(
            DataType::Timestamp,
            &[Value::Timestamp(90), Value::Timestamp(50)],
        )
        .unwrap();
        let out = arith_columns(&col, &other, ArithOp::Sub).unwrap();
        assert_eq!(out.get(1).unwrap(), Value::Int64(150));
    }

    #[test]
    fn mod_by_zero_is_null() {
        let col = int_col(&[Some(7)]);
        let out = arith_scalar(&col, ArithOp::Mod, &Value::Int64(0), false).unwrap();
        assert!(out.get(0).unwrap().is_null());
        let f = Column::from_values(DataType::Float64, &[Value::Float64(7.0)]).unwrap();
        let out = arith_scalar(&f, ArithOp::Mod, &Value::Float64(0.0), false).unwrap();
        assert!(out.get(0).unwrap().is_null());
    }

    #[test]
    fn is_null_and_in_list() {
        let col = int_col(&[Some(1), None, Some(3)]);
        let m = is_null_mask(&col, false);
        assert_eq!(m.bits, vec![false, true, false]);
        assert!(m.validity.is_none(), "IS NULL is never NULL itself");
        let m = in_list_scalar(&col, &[Value::Int64(1), Value::Int64(3)], false).unwrap();
        assert_eq!(m.into_selection(), vec![true, false, true]);
        let m = in_list_scalar(&col, &[Value::Int64(1)], true).unwrap();
        // NOT IN: row 0 matched -> false; NULL row stays NULL -> false in
        // selection; row 2 unmatched -> true.
        assert_eq!(m.into_selection(), vec![false, false, true]);
        assert!(
            in_list_scalar(&col, &[Value::Null], false).is_none(),
            "NULL list elements decline"
        );
    }

    #[test]
    fn unorderable_pairings_decline() {
        // Pairings Value::sql_cmp refuses to order must decline to the
        // scalar path (which raises "cannot compare") instead of
        // answering — otherwise the two paths diverge.
        let ts = Column::from_values(DataType::Timestamp, &[Value::Timestamp(100)]).unwrap();
        assert!(compare_scalar(&ts, CmpOp::Gt, &Value::Float64(50.0)).is_none());
        assert!(compare_scalar(&ts, CmpOp::Gt, &Value::Int32(50)).is_none());
        assert!(compare_scalar(&ts, CmpOp::Gt, &Value::Int64(50)).is_some());
        let f = Column::from_values(DataType::Float64, &[Value::Float64(1.0)]).unwrap();
        assert!(compare_scalar(&f, CmpOp::Lt, &Value::Timestamp(5)).is_none());
        assert!(compare_scalar(&f, CmpOp::Lt, &Value::Int64(5)).is_some());
        // Same rule for IN lists: an unorderable element would make the
        // scalar reference answer NULL where the kernel answers FALSE.
        assert!(in_list_scalar(&ts, &[Value::Int32(100)], false).is_none());
        assert!(in_list_scalar(&ts, &[Value::Int64(100)], false).is_some());
        let i32c = Column::from_values(DataType::Int32, &[Value::Int32(7)]).unwrap();
        assert!(in_list_scalar(&i32c, &[Value::Timestamp(7)], false).is_none());
    }

    #[test]
    fn cmp_op_flip() {
        assert_eq!(CmpOp::Lt.flip(), CmpOp::Gt);
        assert_eq!(CmpOp::LtEq.flip(), CmpOp::GtEq);
        assert_eq!(CmpOp::Eq.flip(), CmpOp::Eq);
        assert!(CmpOp::NotEq.matches(Ordering::Less));
        assert!(!CmpOp::NotEq.matches(Ordering::Equal));
    }
}
