//! Columnar storage substrate for the Lazy ETL reproduction.
//!
//! The paper hosts Lazy ETL inside MonetDB, a column store. This crate is
//! the minimal column-store core the reproduction needs:
//!
//! * [`types`] — logical types and scalar [`types::Value`]s with SQL
//!   three-valued comparison semantics;
//! * [`mod@column`] — typed columns with validity masks (the BAT analogue);
//! * [`kernels`] — vectorized batch primitives: typed compare/arith/
//!   boolean kernels over column slices, the execution layer's fast path;
//! * [`parallel`] — the scoped worker pool (ordered results, per-item
//!   panic containment) behind morsel-driven execution and parallel
//!   extraction;
//! * [`schema`] / [`table`] — schemas and equal-length column collections;
//! * [`catalog`] — named tables, **non-materialized views** (the lazy
//!   transformation vehicle) and foreign-key metadata;
//! * [`persist`] — hand-rolled binary table persistence (used to measure
//!   eager-warehouse footprint);
//! * [`stats`] — per-column min/max/null statistics.

#![warn(missing_docs)]

pub mod catalog;
pub mod column;
pub mod error;
pub mod kernels;
pub mod parallel;
pub mod persist;
pub mod schema;
pub mod stats;
pub mod table;
pub mod types;

pub use catalog::{Catalog, ForeignKey, ViewDef};
pub use column::{Column, ColumnData};
pub use error::{Result, StoreError};
pub use kernels::{ArithOp, BoolMask, CmpOp};
pub use parallel::{parallel_map, try_parallel_map, WorkerPanic};
pub use schema::{Field, Schema};
pub use stats::{
    column_stats, stats_from_bytes, stats_to_bytes, table_stats, ColumnStats, DistinctSketch,
    Histogram,
};
pub use table::Table;
pub use types::{DataType, GroupKey, Value};
