//! Typed columns with validity bitmaps — the store's BAT analogue.
//!
//! MonetDB stores every attribute as a Binary Association Table; our
//! [`Column`] is the equivalent unit: a typed, contiguous vector plus an
//! optional validity mask. All executor operators consume and produce
//! columns, giving the column-at-a-time execution style of the paper's
//! host system.

use crate::error::{Result, StoreError};
use crate::types::{DataType, Value};

/// Physical storage for one column.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// Booleans.
    Bool(Vec<bool>),
    /// 32-bit integers.
    Int32(Vec<i32>),
    /// 64-bit integers.
    Int64(Vec<i64>),
    /// Doubles.
    Float64(Vec<f64>),
    /// Strings.
    Utf8(Vec<String>),
    /// Timestamps (µs since epoch).
    Timestamp(Vec<i64>),
}

impl ColumnData {
    fn len(&self) -> usize {
        match self {
            ColumnData::Bool(v) => v.len(),
            ColumnData::Int32(v) => v.len(),
            ColumnData::Int64(v) => v.len(),
            ColumnData::Float64(v) => v.len(),
            ColumnData::Utf8(v) => v.len(),
            ColumnData::Timestamp(v) => v.len(),
        }
    }

    fn data_type(&self) -> DataType {
        match self {
            ColumnData::Bool(_) => DataType::Bool,
            ColumnData::Int32(_) => DataType::Int32,
            ColumnData::Int64(_) => DataType::Int64,
            ColumnData::Float64(_) => DataType::Float64,
            ColumnData::Utf8(_) => DataType::Utf8,
            ColumnData::Timestamp(_) => DataType::Timestamp,
        }
    }
}

/// A typed column with an optional validity mask.
///
/// `validity[i] == false` marks row `i` as NULL; a `None` mask means all
/// rows are valid (the common case, kept allocation-free).
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    data: ColumnData,
    validity: Option<Vec<bool>>,
}

impl Column {
    /// Wrap raw data with no NULLs.
    pub fn new(data: ColumnData) -> Column {
        Column {
            data,
            validity: None,
        }
    }

    /// Wrap raw data with a validity mask (must match length).
    pub fn with_validity(data: ColumnData, validity: Vec<bool>) -> Result<Column> {
        if validity.len() != data.len() {
            return Err(StoreError::RaggedTable {
                expected: data.len(),
                found: validity.len(),
                column: "<validity>".into(),
            });
        }
        // Drop an all-true mask eagerly.
        if validity.iter().all(|&v| v) {
            return Ok(Column {
                data,
                validity: None,
            });
        }
        Ok(Column {
            data,
            validity: Some(validity),
        })
    }

    /// An empty column of the given type.
    pub fn empty(dt: DataType) -> Column {
        let data = match dt {
            DataType::Bool => ColumnData::Bool(Vec::new()),
            DataType::Int32 => ColumnData::Int32(Vec::new()),
            DataType::Int64 => ColumnData::Int64(Vec::new()),
            DataType::Float64 => ColumnData::Float64(Vec::new()),
            DataType::Utf8 => ColumnData::Utf8(Vec::new()),
            DataType::Timestamp => ColumnData::Timestamp(Vec::new()),
        };
        Column::new(data)
    }

    /// Build a column from scalar values in a single typed pass.
    ///
    /// Dispatches on `dt` once, then appends raw payloads directly —
    /// no per-`Value` [`Column::push`] type check. The widening rules are
    /// the same as `push`: `Int32` loads into `Int64`/`Float64` columns,
    /// `Int64` into `Float64` and `Timestamp`.
    pub fn from_values(dt: DataType, values: &[Value]) -> Result<Column> {
        let n = values.len();
        let mut validity: Option<Vec<bool>> = None;
        let mismatch = |value: &Value| StoreError::TypeMismatch {
            expected: dt.name().to_string(),
            found: value
                .data_type()
                .map(|d| d.name().to_string())
                .unwrap_or_else(|| "NULL".to_string()),
        };
        macro_rules! build {
            ($variant:ident, $zero:expr, |$v:ident| $extract:expr) => {{
                let mut out = Vec::with_capacity(n);
                for (i, $v) in values.iter().enumerate() {
                    match $extract {
                        Some(x) => out.push(x),
                        None if $v.is_null() => {
                            validity.get_or_insert_with(|| vec![true; n])[i] = false;
                            out.push($zero);
                        }
                        None => return Err(mismatch($v)),
                    }
                }
                ColumnData::$variant(out)
            }};
        }
        let data = match dt {
            DataType::Bool => build!(Bool, false, |v| v.as_bool()),
            DataType::Int32 => build!(Int32, 0i32, |v| match v {
                Value::Int32(x) => Some(*x),
                _ => None,
            }),
            DataType::Int64 => build!(Int64, 0i64, |v| match v {
                Value::Int64(x) => Some(*x),
                Value::Int32(x) => Some(*x as i64),
                _ => None,
            }),
            DataType::Float64 => build!(Float64, 0.0f64, |v| match v {
                Value::Float64(x) => Some(*x),
                Value::Int32(x) => Some(*x as f64),
                Value::Int64(x) => Some(*x as f64),
                _ => None,
            }),
            DataType::Utf8 => build!(Utf8, String::new(), |v| match v {
                Value::Utf8(s) => Some(s.clone()),
                _ => None,
            }),
            DataType::Timestamp => build!(Timestamp, 0i64, |v| match v {
                Value::Timestamp(x) | Value::Int64(x) => Some(*x),
                _ => None,
            }),
        };
        Ok(Column { data, validity })
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Logical type.
    pub fn data_type(&self) -> DataType {
        self.data.data_type()
    }

    /// Raw data access.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// Raw validity access (`None` = all rows valid). Kernel loops pair
    /// this with [`Column::data`] to stay off the boxed-`Value` path.
    pub fn validity(&self) -> Option<&Vec<bool>> {
        self.validity.as_ref()
    }

    /// True when row `i` is NULL.
    pub fn is_null(&self, i: usize) -> bool {
        self.validity.as_ref().is_some_and(|v| !v[i])
    }

    /// Count of NULL rows.
    pub fn null_count(&self) -> usize {
        self.validity
            .as_ref()
            .map_or(0, |v| v.iter().filter(|&&ok| !ok).count())
    }

    /// The value at row `i` (bounds-checked).
    pub fn get(&self, i: usize) -> Result<Value> {
        if i >= self.len() {
            return Err(StoreError::OutOfBounds {
                index: i,
                len: self.len(),
            });
        }
        if self.is_null(i) {
            return Ok(Value::Null);
        }
        Ok(match &self.data {
            ColumnData::Bool(v) => Value::Bool(v[i]),
            ColumnData::Int32(v) => Value::Int32(v[i]),
            ColumnData::Int64(v) => Value::Int64(v[i]),
            ColumnData::Float64(v) => Value::Float64(v[i]),
            ColumnData::Utf8(v) => Value::Utf8(v[i].clone()),
            ColumnData::Timestamp(v) => Value::Timestamp(v[i]),
        })
    }

    fn ensure_validity(&mut self) -> &mut Vec<bool> {
        let len = self.len();
        self.validity.get_or_insert_with(|| vec![true; len])
    }

    /// Append one value, which must match the column type or be NULL.
    ///
    /// Int32 widens into Int64/Float64 columns and Int64 into Float64, so
    /// integer literals load into wider columns without ceremony.
    pub fn push(&mut self, value: Value) -> Result<()> {
        if value.is_null() {
            self.ensure_validity().push(false);
            match &mut self.data {
                ColumnData::Bool(v) => v.push(false),
                ColumnData::Int32(v) => v.push(0),
                ColumnData::Int64(v) => v.push(0),
                ColumnData::Float64(v) => v.push(0.0),
                ColumnData::Utf8(v) => v.push(String::new()),
                ColumnData::Timestamp(v) => v.push(0),
            }
            return Ok(());
        }
        let mismatch = |col: &Column, value: &Value| StoreError::TypeMismatch {
            expected: col.data_type().name().to_string(),
            found: value
                .data_type()
                .map(|d| d.name().to_string())
                .unwrap_or_else(|| "NULL".to_string()),
        };
        match (&mut self.data, &value) {
            (ColumnData::Bool(v), Value::Bool(b)) => v.push(*b),
            (ColumnData::Int32(v), Value::Int32(x)) => v.push(*x),
            (ColumnData::Int64(v), Value::Int64(x)) => v.push(*x),
            (ColumnData::Int64(v), Value::Int32(x)) => v.push(*x as i64),
            (ColumnData::Float64(v), Value::Float64(x)) => v.push(*x),
            (ColumnData::Float64(v), Value::Int32(x)) => v.push(*x as f64),
            (ColumnData::Float64(v), Value::Int64(x)) => v.push(*x as f64),
            (ColumnData::Utf8(v), Value::Utf8(s)) => v.push(s.clone()),
            (ColumnData::Timestamp(v), Value::Timestamp(t)) => v.push(*t),
            (ColumnData::Timestamp(v), Value::Int64(t)) => v.push(*t),
            _ => return Err(mismatch(self, &value)),
        }
        if let Some(mask) = &mut self.validity {
            mask.push(true);
        }
        Ok(())
    }

    /// New column keeping rows where `mask` is true.
    ///
    /// One type dispatch, then a bulk copy into a pre-sized buffer —
    /// primitive payloads move as plain `Copy` loads, never through a
    /// boxed [`Value`].
    pub fn filter(&self, mask: &[bool]) -> Result<Column> {
        if mask.len() != self.len() {
            return Err(StoreError::RaggedTable {
                expected: self.len(),
                found: mask.len(),
                column: "<filter mask>".into(),
            });
        }
        let kept = mask.iter().filter(|&&m| m).count();
        macro_rules! filt_copy {
            ($v:expr, $variant:ident) => {{
                let mut out = Vec::with_capacity(kept);
                out.extend($v.iter().zip(mask).filter(|(_, &m)| m).map(|(&x, _)| x));
                ColumnData::$variant(out)
            }};
        }
        let data = match &self.data {
            ColumnData::Bool(v) => filt_copy!(v, Bool),
            ColumnData::Int32(v) => filt_copy!(v, Int32),
            ColumnData::Int64(v) => filt_copy!(v, Int64),
            ColumnData::Float64(v) => filt_copy!(v, Float64),
            ColumnData::Timestamp(v) => filt_copy!(v, Timestamp),
            ColumnData::Utf8(v) => {
                let mut out = Vec::with_capacity(kept);
                out.extend(
                    v.iter()
                        .zip(mask)
                        .filter(|(_, &m)| m)
                        .map(|(x, _)| x.clone()),
                );
                ColumnData::Utf8(out)
            }
        };
        let validity = self.validity.as_ref().map(|val| {
            let mut out = Vec::with_capacity(kept);
            out.extend(val.iter().zip(mask).filter(|(_, &m)| m).map(|(&ok, _)| ok));
            out
        });
        Ok(Column { data, validity })
    }

    /// New column of the rows at `indices` (gather), with the same
    /// dispatch-once bulk-copy shape as [`Column::filter`].
    pub fn take(&self, indices: &[usize]) -> Result<Column> {
        let len = self.len();
        if let Some(&bad) = indices.iter().find(|&&i| i >= len) {
            return Err(StoreError::OutOfBounds { index: bad, len });
        }
        macro_rules! gather_copy {
            ($v:expr, $variant:ident) => {{
                let mut out = Vec::with_capacity(indices.len());
                out.extend(indices.iter().map(|&i| $v[i]));
                ColumnData::$variant(out)
            }};
        }
        let data = match &self.data {
            ColumnData::Bool(v) => gather_copy!(v, Bool),
            ColumnData::Int32(v) => gather_copy!(v, Int32),
            ColumnData::Int64(v) => gather_copy!(v, Int64),
            ColumnData::Float64(v) => gather_copy!(v, Float64),
            ColumnData::Timestamp(v) => gather_copy!(v, Timestamp),
            ColumnData::Utf8(v) => {
                let mut out = Vec::with_capacity(indices.len());
                out.extend(indices.iter().map(|&i| v[i].clone()));
                ColumnData::Utf8(out)
            }
        };
        let validity = self.validity.as_ref().map(|val| {
            let mut out = Vec::with_capacity(indices.len());
            out.extend(indices.iter().map(|&i| val[i]));
            out
        });
        Ok(Column { data, validity })
    }

    /// New column holding rows `[offset, offset + len)` — the unit of
    /// morsel-driven execution. One type dispatch, then a bulk range
    /// copy; `offset + len` must stay in bounds.
    pub fn slice(&self, offset: usize, len: usize) -> Result<Column> {
        let end = offset.checked_add(len).filter(|&e| e <= self.len()).ok_or(
            StoreError::OutOfBounds {
                index: offset + len,
                len: self.len(),
            },
        )?;
        macro_rules! range_copy {
            ($v:expr, $variant:ident) => {
                ColumnData::$variant($v[offset..end].to_vec())
            };
        }
        let data = match &self.data {
            ColumnData::Bool(v) => range_copy!(v, Bool),
            ColumnData::Int32(v) => range_copy!(v, Int32),
            ColumnData::Int64(v) => range_copy!(v, Int64),
            ColumnData::Float64(v) => range_copy!(v, Float64),
            ColumnData::Timestamp(v) => range_copy!(v, Timestamp),
            ColumnData::Utf8(v) => ColumnData::Utf8(v[offset..end].to_vec()),
        };
        let validity = self.validity.as_ref().map(|v| v[offset..end].to_vec());
        Ok(Column { data, validity })
    }

    /// Append all rows of `other` (types must match exactly).
    pub fn append_column(&mut self, other: &Column) -> Result<()> {
        if self.data_type() != other.data_type() {
            return Err(StoreError::TypeMismatch {
                expected: self.data_type().name().into(),
                found: other.data_type().name().into(),
            });
        }
        if other.validity.is_some() || self.validity.is_some() {
            let n_self = self.len();
            let mask = self.ensure_validity();
            match &other.validity {
                Some(v) => mask.extend_from_slice(v),
                None => mask.extend(std::iter::repeat_n(true, other.len())),
            }
            debug_assert_eq!(mask.len(), n_self + other.len());
        }
        match (&mut self.data, &other.data) {
            (ColumnData::Bool(a), ColumnData::Bool(b)) => a.extend_from_slice(b),
            (ColumnData::Int32(a), ColumnData::Int32(b)) => a.extend_from_slice(b),
            (ColumnData::Int64(a), ColumnData::Int64(b)) => a.extend_from_slice(b),
            (ColumnData::Float64(a), ColumnData::Float64(b)) => a.extend_from_slice(b),
            (ColumnData::Utf8(a), ColumnData::Utf8(b)) => a.extend_from_slice(b),
            (ColumnData::Timestamp(a), ColumnData::Timestamp(b)) => a.extend_from_slice(b),
            _ => unreachable!("type equality checked above"),
        }
        Ok(())
    }

    /// Approximate heap footprint in bytes (used for cache budgeting).
    pub fn byte_size(&self) -> usize {
        let data = match &self.data {
            ColumnData::Bool(v) => v.len(),
            ColumnData::Int32(v) => v.len() * 4,
            ColumnData::Int64(v) => v.len() * 8,
            ColumnData::Float64(v) => v.len() * 8,
            ColumnData::Timestamp(v) => v.len() * 8,
            ColumnData::Utf8(v) => v.iter().map(|s| s.len() + 24).sum(),
        };
        data + self.validity.as_ref().map_or(0, |v| v.len())
    }

    /// Iterate values (clones; use typed access in hot paths).
    pub fn iter_values(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |i| self.get(i).expect("index in range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get_with_nulls() {
        let mut col = Column::empty(DataType::Int64);
        col.push(Value::Int64(1)).unwrap();
        col.push(Value::Null).unwrap();
        col.push(Value::Int32(3)).unwrap(); // widens
        assert_eq!(col.len(), 3);
        assert_eq!(col.null_count(), 1);
        assert_eq!(col.get(0).unwrap(), Value::Int64(1));
        assert!(col.get(1).unwrap().is_null());
        assert_eq!(col.get(2).unwrap(), Value::Int64(3));
        assert!(col.get(3).is_err());
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut col = Column::empty(DataType::Utf8);
        assert!(col.push(Value::Int32(1)).is_err());
        let mut col = Column::empty(DataType::Int32);
        assert!(col.push(Value::Int64(1)).is_err(), "no silent narrowing");
        assert!(col.push(Value::Float64(1.0)).is_err());
    }

    #[test]
    fn filter_preserves_validity() {
        let col = Column::from_values(
            DataType::Float64,
            &[
                Value::Float64(1.0),
                Value::Null,
                Value::Float64(3.0),
                Value::Float64(4.0),
            ],
        )
        .unwrap();
        let out = col.filter(&[true, true, false, true]).unwrap();
        assert_eq!(out.len(), 3);
        assert!(out.get(1).unwrap().is_null());
        assert_eq!(out.get(2).unwrap(), Value::Float64(4.0));
        assert!(col.filter(&[true]).is_err(), "mask length checked");
    }

    #[test]
    fn take_gathers_with_repeats() {
        let col = Column::from_values(
            DataType::Utf8,
            &[
                Value::Utf8("a".into()),
                Value::Utf8("b".into()),
                Value::Utf8("c".into()),
            ],
        )
        .unwrap();
        let out = col.take(&[2, 0, 2]).unwrap();
        assert_eq!(out.get(0).unwrap(), Value::Utf8("c".into()));
        assert_eq!(out.get(1).unwrap(), Value::Utf8("a".into()));
        assert_eq!(out.get(2).unwrap(), Value::Utf8("c".into()));
        assert!(col.take(&[3]).is_err());
    }

    #[test]
    fn append_column_merges_masks() {
        let mut a = Column::from_values(DataType::Int32, &[Value::Int32(1)]).unwrap();
        let b = Column::from_values(DataType::Int32, &[Value::Null, Value::Int32(2)]).unwrap();
        a.append_column(&b).unwrap();
        assert_eq!(a.len(), 3);
        assert!(a.get(1).unwrap().is_null());
        assert_eq!(a.get(2).unwrap(), Value::Int32(2));
        let c = Column::empty(DataType::Utf8);
        assert!(a.append_column(&c).is_err());
    }

    #[test]
    fn all_true_mask_is_dropped() {
        let col = Column::with_validity(ColumnData::Int32(vec![1, 2]), vec![true, true]).unwrap();
        assert_eq!(col.null_count(), 0);
        // Internal representation has no mask; filter keeps it that way.
        let f = col.filter(&[true, false]).unwrap();
        assert_eq!(f.null_count(), 0);
    }

    #[test]
    fn byte_size_tracks_payload() {
        let ints = Column::from_values(
            DataType::Int64,
            &(0..100).map(Value::Int64).collect::<Vec<_>>(),
        )
        .unwrap();
        assert_eq!(ints.byte_size(), 800);
        let strs = Column::from_values(DataType::Utf8, &[Value::Utf8("hello".into())]).unwrap();
        assert!(strs.byte_size() >= 5);
    }

    #[test]
    fn timestamp_accepts_int64() {
        let mut col = Column::empty(DataType::Timestamp);
        col.push(Value::Timestamp(100)).unwrap();
        col.push(Value::Int64(200)).unwrap();
        assert_eq!(col.get(1).unwrap(), Value::Timestamp(200));
    }
}
