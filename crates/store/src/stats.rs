//! Per-column statistics: min/max/null counts.
//!
//! The lazy rewriter uses record-level metadata for pruning, but the store
//! also keeps ordinary column statistics so EXPLAIN output and the demo's
//! metadata browser can show value ranges, and so tests can assert loaded
//! data matches the repository's ground truth.

use crate::column::Column;
use crate::table::Table;
use crate::types::Value;

/// Summary statistics for one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Column name.
    pub name: String,
    /// Row count.
    pub count: usize,
    /// NULL count.
    pub nulls: usize,
    /// Minimum non-null value (None when all NULL or empty).
    pub min: Option<Value>,
    /// Maximum non-null value.
    pub max: Option<Value>,
}

/// Compute statistics for a single column.
pub fn column_stats(name: &str, col: &Column) -> ColumnStats {
    let mut min: Option<Value> = None;
    let mut max: Option<Value> = None;
    for i in 0..col.len() {
        let v = col.get(i).expect("index in range");
        if v.is_null() {
            continue;
        }
        match &min {
            None => min = Some(v.clone()),
            Some(m) => {
                if v.sql_cmp(m) == Some(std::cmp::Ordering::Less) {
                    min = Some(v.clone());
                }
            }
        }
        match &max {
            None => max = Some(v),
            Some(m) => {
                if v.sql_cmp(m) == Some(std::cmp::Ordering::Greater) {
                    max = Some(v);
                }
            }
        }
    }
    ColumnStats {
        name: name.to_string(),
        count: col.len(),
        nulls: col.null_count(),
        min,
        max,
    }
}

/// Compute statistics for every column of a table.
pub fn table_stats(table: &Table) -> Vec<ColumnStats> {
    table
        .schema
        .fields
        .iter()
        .zip(&table.columns)
        .map(|(f, c)| column_stats(&f.name, c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Field, Schema};
    use crate::types::DataType;

    #[test]
    fn stats_over_mixed_column() {
        let col = Column::from_values(
            DataType::Float64,
            &[
                Value::Float64(3.0),
                Value::Null,
                Value::Float64(-1.0),
                Value::Float64(10.0),
            ],
        )
        .unwrap();
        let s = column_stats("v", &col);
        assert_eq!(s.count, 4);
        assert_eq!(s.nulls, 1);
        assert_eq!(s.min, Some(Value::Float64(-1.0)));
        assert_eq!(s.max, Some(Value::Float64(10.0)));
    }

    #[test]
    fn stats_all_null_or_empty() {
        let col = Column::from_values(DataType::Int32, &[Value::Null, Value::Null]).unwrap();
        let s = column_stats("x", &col);
        assert_eq!(s.min, None);
        assert_eq!(s.max, None);
        assert_eq!(s.nulls, 2);
        let empty = Column::empty(DataType::Utf8);
        let s = column_stats("y", &empty);
        assert_eq!(s.count, 0);
        assert_eq!(s.min, None);
    }

    #[test]
    fn table_stats_cover_all_columns() {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int32),
            Field::new("b", DataType::Utf8),
        ])
        .unwrap();
        let mut t = Table::empty(schema);
        t.append_row(vec![Value::Int32(2), Value::Utf8("x".into())])
            .unwrap();
        t.append_row(vec![Value::Int32(1), Value::Utf8("z".into())])
            .unwrap();
        let stats = table_stats(&t);
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].min, Some(Value::Int32(1)));
        assert_eq!(stats[1].max, Some(Value::Utf8("z".into())));
    }
}
