//! Per-column statistics: min/max/null counts.
//!
//! The lazy rewriter uses record-level metadata for pruning, but the store
//! also keeps ordinary column statistics so EXPLAIN output and the demo's
//! metadata browser can show value ranges, and so tests can assert loaded
//! data matches the repository's ground truth.

use crate::column::Column;
use crate::table::Table;
use crate::types::Value;

/// Summary statistics for one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Column name.
    pub name: String,
    /// Row count.
    pub count: usize,
    /// NULL count.
    pub nulls: usize,
    /// Minimum non-null value (None when all NULL or empty).
    pub min: Option<Value>,
    /// Maximum non-null value.
    pub max: Option<Value>,
}

/// Compute statistics for a single column.
///
/// Runs as one typed pass over the raw slice (the zone-map build path —
/// [`crate::catalog::Catalog::zone_map`] — calls this per catalog table,
/// so it must not box a [`Value`] per row).
pub fn column_stats(name: &str, col: &Column) -> ColumnStats {
    use crate::column::ColumnData as CD;
    let valid = |i: usize| !col.is_null(i);
    // Fold (min, max) over the valid rows of a typed slice.
    fn minmax<T: PartialOrd + Copy>(data: &[T], valid: impl Fn(usize) -> bool) -> Option<(T, T)> {
        let mut best: Option<(T, T)> = None;
        for (i, &x) in data.iter().enumerate() {
            if !valid(i) {
                continue;
            }
            match &mut best {
                None => best = Some((x, x)),
                Some((lo, hi)) => {
                    if x < *lo {
                        *lo = x;
                    }
                    if x > *hi {
                        *hi = x;
                    }
                }
            }
        }
        best
    }
    let (min, max) = match col.data() {
        CD::Bool(v) => match minmax(v, valid) {
            Some((lo, hi)) => (Some(Value::Bool(lo)), Some(Value::Bool(hi))),
            None => (None, None),
        },
        CD::Int32(v) => match minmax(v, valid) {
            Some((lo, hi)) => (Some(Value::Int32(lo)), Some(Value::Int32(hi))),
            None => (None, None),
        },
        CD::Int64(v) => match minmax(v, valid) {
            Some((lo, hi)) => (Some(Value::Int64(lo)), Some(Value::Int64(hi))),
            None => (None, None),
        },
        CD::Timestamp(v) => match minmax(v, valid) {
            Some((lo, hi)) => (Some(Value::Timestamp(lo)), Some(Value::Timestamp(hi))),
            None => (None, None),
        },
        // f64: PartialOrd comparisons against NaN are always false, so a
        // NaN neither replaces a min/max nor survives as one unless it is
        // the only value — match the old sql_cmp/total_cmp behaviour by
        // folding with total_cmp explicitly.
        CD::Float64(v) => {
            let mut best: Option<(f64, f64)> = None;
            for (i, &x) in v.iter().enumerate() {
                if col.is_null(i) {
                    continue;
                }
                match &mut best {
                    None => best = Some((x, x)),
                    Some((lo, hi)) => {
                        if x.total_cmp(lo).is_lt() {
                            *lo = x;
                        }
                        if x.total_cmp(hi).is_gt() {
                            *hi = x;
                        }
                    }
                }
            }
            match best {
                Some((lo, hi)) => (Some(Value::Float64(lo)), Some(Value::Float64(hi))),
                None => (None, None),
            }
        }
        // Strings: track best by reference, clone exactly twice at the end.
        CD::Utf8(v) => {
            let mut best: Option<(&str, &str)> = None;
            for (i, x) in v.iter().enumerate() {
                if col.is_null(i) {
                    continue;
                }
                match &mut best {
                    None => best = Some((x, x)),
                    Some((lo, hi)) => {
                        if x.as_str() < *lo {
                            *lo = x;
                        }
                        if x.as_str() > *hi {
                            *hi = x;
                        }
                    }
                }
            }
            match best {
                Some((lo, hi)) => (
                    Some(Value::Utf8(lo.to_string())),
                    Some(Value::Utf8(hi.to_string())),
                ),
                None => (None, None),
            }
        }
    };
    ColumnStats {
        name: name.to_string(),
        count: col.len(),
        nulls: col.null_count(),
        min,
        max,
    }
}

/// Compute statistics for every column of a table.
pub fn table_stats(table: &Table) -> Vec<ColumnStats> {
    table
        .schema
        .fields
        .iter()
        .zip(&table.columns)
        .map(|(f, c)| column_stats(&f.name, c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Field, Schema};
    use crate::types::DataType;

    #[test]
    fn stats_over_mixed_column() {
        let col = Column::from_values(
            DataType::Float64,
            &[
                Value::Float64(3.0),
                Value::Null,
                Value::Float64(-1.0),
                Value::Float64(10.0),
            ],
        )
        .unwrap();
        let s = column_stats("v", &col);
        assert_eq!(s.count, 4);
        assert_eq!(s.nulls, 1);
        assert_eq!(s.min, Some(Value::Float64(-1.0)));
        assert_eq!(s.max, Some(Value::Float64(10.0)));
    }

    #[test]
    fn stats_all_null_or_empty() {
        let col = Column::from_values(DataType::Int32, &[Value::Null, Value::Null]).unwrap();
        let s = column_stats("x", &col);
        assert_eq!(s.min, None);
        assert_eq!(s.max, None);
        assert_eq!(s.nulls, 2);
        let empty = Column::empty(DataType::Utf8);
        let s = column_stats("y", &empty);
        assert_eq!(s.count, 0);
        assert_eq!(s.min, None);
    }

    #[test]
    fn table_stats_cover_all_columns() {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int32),
            Field::new("b", DataType::Utf8),
        ])
        .unwrap();
        let mut t = Table::empty(schema);
        t.append_row(vec![Value::Int32(2), Value::Utf8("x".into())])
            .unwrap();
        t.append_row(vec![Value::Int32(1), Value::Utf8("z".into())])
            .unwrap();
        let stats = table_stats(&t);
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].min, Some(Value::Int32(1)));
        assert_eq!(stats[1].max, Some(Value::Utf8("z".into())));
    }
}
