//! Per-column statistics: min/max/null/NaN counts, distinct-count
//! estimates and equi-width histograms.
//!
//! The lazy rewriter uses record-level metadata for pruning, but the store
//! also keeps ordinary column statistics so the cost-based planner can
//! estimate scan/filter/join cardinalities, EXPLAIN output and the demo's
//! metadata browser can show value ranges, and tests can assert loaded
//! data matches the repository's ground truth.
//!
//! # NaN handling
//!
//! Float columns may contain NaN (a sensor gap widened to f64, a folded
//! `0.0/0.0`). Under the engine's `total_cmp` comparison semantics a NaN
//! orders *beyond* ±∞, so folding it into `[min, max]` poisons the range:
//! every interval containing NaN is unbounded on that side and histogram
//! bucket widths become NaN. Statistics therefore **exclude NaN from
//! min/max and histograms** and report it separately in
//! [`ColumnStats::nans`]; range-based consumers (zone-map pruning, the
//! cost model) must treat `nans > 0` as "the range does not cover every
//! row" and stay conservative.

use crate::column::Column;
use crate::error::{Result, StoreError};
use crate::table::Table;
use crate::types::Value;

/// Number of buckets in an equi-width histogram.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// Bits in the distinct-count sketch (a linear-probabilistic counter).
const SKETCH_BITS: usize = 1024;
const SKETCH_WORDS: usize = SKETCH_BITS / 64;

/// Equi-width histogram over a numeric column's non-null, non-NaN values.
///
/// `counts[i]` holds the values in `[lo + i*w, lo + (i+1)*w)` for
/// `w = (hi - lo) / counts.len()`; the last bucket is closed at `hi`.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Inclusive lower bound of the histogram range (= column min).
    pub lo: f64,
    /// Inclusive upper bound (= column max).
    pub hi: f64,
    /// Per-bucket value counts.
    pub counts: Vec<u64>,
}

impl Histogram {
    /// Total values the histogram covers.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Estimated fraction of covered values that are `<= x`, by linear
    /// interpolation inside the bucket containing `x`. Clamped to [0, 1].
    pub fn fraction_le(&self, x: f64) -> f64 {
        let total = self.total();
        if total == 0 || !x.is_finite() {
            // NaN/inf probes get the conservative middle ground.
            return 0.5;
        }
        if x < self.lo {
            return 0.0;
        }
        if x >= self.hi {
            return 1.0;
        }
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        if width <= 0.0 {
            return 1.0; // degenerate single-point histogram, x >= lo
        }
        let bucket = (((x - self.lo) / width) as usize).min(self.counts.len() - 1);
        let below: u64 = self.counts[..bucket].iter().sum();
        let within = self.counts[bucket] as f64;
        let frac_in_bucket = ((x - (self.lo + bucket as f64 * width)) / width).clamp(0.0, 1.0);
        ((below as f64 + within * frac_in_bucket) / total as f64).clamp(0.0, 1.0)
    }

    /// Estimated fraction of covered values inside the closed range
    /// `[a, b]` (either side unbounded when `None`).
    pub fn fraction_between(&self, a: Option<f64>, b: Option<f64>) -> f64 {
        let lo = a.map_or(0.0, |v| self.fraction_le(v));
        let hi = b.map_or(1.0, |v| self.fraction_le(v));
        (hi - lo).max(0.0)
    }
}

/// Distinct-count estimator: a fixed 1024-bit linear-probabilistic
/// counting sketch. Insertion sets bit `hash % 1024`; the estimate is
/// `m · ln(m / zero_bits)`, exact for small cardinalities and within a
/// few percent up to a few thousand distinct values — plenty for join
/// ordering, which only needs relative magnitudes.
#[derive(Debug, Clone)]
pub struct DistinctSketch {
    bits: [u64; SKETCH_WORDS],
}

impl Default for DistinctSketch {
    fn default() -> Self {
        DistinctSketch {
            bits: [0; SKETCH_WORDS],
        }
    }
}

impl DistinctSketch {
    /// A fresh, empty sketch.
    pub fn new() -> DistinctSketch {
        DistinctSketch::default()
    }

    /// Record one value by its hash.
    pub fn insert_hash(&mut self, hash: u64) {
        let bit = (hash % SKETCH_BITS as u64) as usize;
        self.bits[bit / 64] |= 1 << (bit % 64);
    }

    /// Estimated distinct count.
    pub fn estimate(&self) -> u64 {
        let zeros: u32 = self
            .bits
            .iter()
            .map(|w| w.count_zeros())
            .sum::<u32>()
            .max(1); // saturated sketch: report the sketch capacity bound
        let m = SKETCH_BITS as f64;
        (m * (m / zeros as f64).ln()).round() as u64
    }
}

/// FNV-1a hash of a byte slice — the sketch's dependency-free hash,
/// stable across platforms and runs.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Summary statistics for one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Column name.
    pub name: String,
    /// Row count.
    pub count: usize,
    /// NULL count.
    pub nulls: usize,
    /// NaN count (float columns only; NaN is excluded from `min`/`max`
    /// and `histogram`, so a non-zero value taints the range — see the
    /// module docs).
    pub nans: usize,
    /// Minimum non-null, non-NaN value (None when no such value exists).
    pub min: Option<Value>,
    /// Maximum non-null, non-NaN value.
    pub max: Option<Value>,
    /// Estimated distinct count of non-null values (None when unknown,
    /// e.g. statistics loaded from a pre-upgrade snapshot).
    pub distinct: Option<u64>,
    /// Equi-width histogram over non-null, non-NaN numeric values (None
    /// for non-numeric columns, empty columns, or pre-upgrade stats).
    pub histogram: Option<Histogram>,
}

impl ColumnStats {
    /// A named, all-empty statistics entry (useful for tests and
    /// pre-upgrade snapshots where only part of the data is known).
    pub fn empty(name: &str) -> ColumnStats {
        ColumnStats {
            name: name.to_string(),
            count: 0,
            nulls: 0,
            nans: 0,
            min: None,
            max: None,
            distinct: None,
            histogram: None,
        }
    }

    /// Is the `[min, max]` range trusted to cover every non-null row?
    ///
    /// False when the column holds NaNs (excluded from the range) or when
    /// a bound itself is NaN (stats computed by a pre-fix build folded
    /// NaN into min/max via `total_cmp`). Zone-map exclusion and range
    /// selectivity must not fire on an untrusted range.
    pub fn range_trusted(&self) -> bool {
        let bound_nan = |v: &Option<Value>| matches!(v, Some(Value::Float64(f)) if f.is_nan());
        self.nans == 0 && !bound_nan(&self.min) && !bound_nan(&self.max)
    }
}

/// Compute statistics for a single column.
///
/// Runs as two typed passes over the raw slice (the zone-map build path —
/// [`crate::catalog::Catalog::zone_map`] — calls this per catalog table,
/// so it must not box a [`Value`] per row): one for min/max/NaN/distinct,
/// one for the histogram (whose bucket bounds need min/max first).
pub fn column_stats(name: &str, col: &Column) -> ColumnStats {
    use crate::column::ColumnData as CD;
    let valid = |i: usize| !col.is_null(i);
    // Fold (min, max) over the valid rows of a typed slice.
    fn minmax<T: PartialOrd + Copy>(data: &[T], valid: impl Fn(usize) -> bool) -> Option<(T, T)> {
        let mut best: Option<(T, T)> = None;
        for (i, &x) in data.iter().enumerate() {
            if !valid(i) {
                continue;
            }
            match &mut best {
                None => best = Some((x, x)),
                Some((lo, hi)) => {
                    if x < *lo {
                        *lo = x;
                    }
                    if x > *hi {
                        *hi = x;
                    }
                }
            }
        }
        best
    }
    let mut sketch = DistinctSketch::new();
    let mut nans = 0usize;
    let (min, max) = match col.data() {
        CD::Bool(v) => {
            for (i, x) in v.iter().enumerate() {
                if valid(i) {
                    sketch.insert_hash(*x as u64);
                }
            }
            match minmax(v, valid) {
                Some((lo, hi)) => (Some(Value::Bool(lo)), Some(Value::Bool(hi))),
                None => (None, None),
            }
        }
        CD::Int32(v) => {
            for (i, x) in v.iter().enumerate() {
                if valid(i) {
                    sketch.insert_hash(fnv1a(&(*x as i64).to_le_bytes()));
                }
            }
            match minmax(v, valid) {
                Some((lo, hi)) => (Some(Value::Int32(lo)), Some(Value::Int32(hi))),
                None => (None, None),
            }
        }
        CD::Int64(v) => {
            for (i, x) in v.iter().enumerate() {
                if valid(i) {
                    sketch.insert_hash(fnv1a(&x.to_le_bytes()));
                }
            }
            match minmax(v, valid) {
                Some((lo, hi)) => (Some(Value::Int64(lo)), Some(Value::Int64(hi))),
                None => (None, None),
            }
        }
        CD::Timestamp(v) => {
            for (i, x) in v.iter().enumerate() {
                if valid(i) {
                    sketch.insert_hash(fnv1a(&x.to_le_bytes()));
                }
            }
            match minmax(v, valid) {
                Some((lo, hi)) => (Some(Value::Timestamp(lo)), Some(Value::Timestamp(hi))),
                None => (None, None),
            }
        }
        // f64: NaN is counted, not folded — a NaN min/max would poison
        // every range computation downstream (module docs).
        CD::Float64(v) => {
            let mut best: Option<(f64, f64)> = None;
            for (i, &x) in v.iter().enumerate() {
                if col.is_null(i) {
                    continue;
                }
                if x.is_nan() {
                    nans += 1;
                    sketch.insert_hash(fnv1a(&f64::NAN.to_bits().to_le_bytes()));
                    continue;
                }
                // Normalize -0.0 like `group_key` so distinct counting
                // agrees with join/group semantics.
                let norm = if x == 0.0 { 0.0f64 } else { x };
                sketch.insert_hash(fnv1a(&norm.to_bits().to_le_bytes()));
                match &mut best {
                    None => best = Some((x, x)),
                    Some((lo, hi)) => {
                        if x < *lo {
                            *lo = x;
                        }
                        if x > *hi {
                            *hi = x;
                        }
                    }
                }
            }
            match best {
                Some((lo, hi)) => (Some(Value::Float64(lo)), Some(Value::Float64(hi))),
                None => (None, None),
            }
        }
        // Strings: track best by reference, clone exactly twice at the end.
        CD::Utf8(v) => {
            let mut best: Option<(&str, &str)> = None;
            for (i, x) in v.iter().enumerate() {
                if col.is_null(i) {
                    continue;
                }
                sketch.insert_hash(fnv1a(x.as_bytes()));
                match &mut best {
                    None => best = Some((x, x)),
                    Some((lo, hi)) => {
                        if x.as_str() < *lo {
                            *lo = x;
                        }
                        if x.as_str() > *hi {
                            *hi = x;
                        }
                    }
                }
            }
            match best {
                Some((lo, hi)) => (
                    Some(Value::Utf8(lo.to_string())),
                    Some(Value::Utf8(hi.to_string())),
                ),
                None => (None, None),
            }
        }
    };
    let distinct = if col.len() > col.null_count() {
        Some(sketch.estimate())
    } else {
        None
    };
    let histogram = build_histogram(col, &min, &max);
    ColumnStats {
        name: name.to_string(),
        count: col.len(),
        nulls: col.null_count(),
        nans,
        min,
        max,
        distinct,
        histogram,
    }
}

/// Second statistics pass: equi-width bucket counts over the numeric
/// values of `col`, bounded by the (NaN-free) min/max of the first pass.
fn build_histogram(col: &Column, min: &Option<Value>, max: &Option<Value>) -> Option<Histogram> {
    use crate::column::ColumnData as CD;
    let lo = min.as_ref()?.as_f64()?;
    let hi = max.as_ref()?.as_f64()?;
    if !lo.is_finite() || !hi.is_finite() {
        return None; // ±∞ values make equi-width buckets meaningless
    }
    let mut counts = vec![0u64; HISTOGRAM_BUCKETS];
    let width = (hi - lo) / HISTOGRAM_BUCKETS as f64;
    let mut add = |x: f64| {
        if x.is_nan() {
            return;
        }
        let b = if width > 0.0 {
            (((x - lo) / width) as usize).min(HISTOGRAM_BUCKETS - 1)
        } else {
            0
        };
        counts[b] += 1;
    };
    match col.data() {
        CD::Int32(v) => {
            for (i, x) in v.iter().enumerate() {
                if !col.is_null(i) {
                    add(*x as f64);
                }
            }
        }
        CD::Int64(v) | CD::Timestamp(v) => {
            for (i, x) in v.iter().enumerate() {
                if !col.is_null(i) {
                    add(*x as f64);
                }
            }
        }
        CD::Float64(v) => {
            for (i, x) in v.iter().enumerate() {
                if !col.is_null(i) {
                    add(*x);
                }
            }
        }
        CD::Bool(_) | CD::Utf8(_) => return None,
    }
    Some(Histogram { lo, hi, counts })
}

/// Compute statistics for every column of a table.
pub fn table_stats(table: &Table) -> Vec<ColumnStats> {
    table
        .schema
        .fields
        .iter()
        .zip(&table.columns)
        .map(|(f, c)| column_stats(&f.name, c))
        .collect()
}

// ---------------------------------------------------------------------
// Serialization — the persisted statistics section of a saved warehouse.
//
// Format (little-endian, no framing — the caller owns integrity):
//   magic "LZST" | u16 version | u32 n_tables
//   per table:  u16 name_len | name | u32 n_cols | n_cols × column
//   per column: u16 name_len | name | u64 count | u64 nulls | u64 nans
//               | value min | value max
//               | u8 has_distinct [u64 distinct]
//               | u8 has_histogram [f64 lo | f64 hi | u32 n | n × u64]
//   value:      u8 tag (0 absent, 1 bool, 2 i32, 3 i64, 4 f64, 5 utf8,
//               6 timestamp) | payload
// ---------------------------------------------------------------------

const STATS_MAGIC: &[u8; 4] = b"LZST";
const STATS_VERSION: u16 = 1;

fn write_value(out: &mut Vec<u8>, v: &Option<Value>) {
    match v {
        None | Some(Value::Null) => out.push(0),
        Some(Value::Bool(b)) => {
            out.push(1);
            out.push(*b as u8);
        }
        Some(Value::Int32(x)) => {
            out.push(2);
            out.extend_from_slice(&x.to_le_bytes());
        }
        Some(Value::Int64(x)) => {
            out.push(3);
            out.extend_from_slice(&x.to_le_bytes());
        }
        Some(Value::Float64(x)) => {
            out.push(4);
            out.extend_from_slice(&x.to_le_bytes());
        }
        Some(Value::Utf8(s)) => {
            out.push(5);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Some(Value::Timestamp(x)) => {
            out.push(6);
            out.extend_from_slice(&x.to_le_bytes());
        }
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(StoreError::Corrupt("statistics section truncated".into()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn string(&mut self, len: usize) -> Result<String> {
        String::from_utf8(self.take(len)?.to_vec())
            .map_err(|_| StoreError::Corrupt("non-UTF8 name in statistics section".into()))
    }
}

fn read_value(c: &mut Cursor) -> Result<Option<Value>> {
    Ok(match c.u8()? {
        0 => None,
        1 => Some(Value::Bool(c.u8()? != 0)),
        2 => Some(Value::Int32(i32::from_le_bytes(
            c.take(4)?.try_into().unwrap(),
        ))),
        3 => Some(Value::Int64(i64::from_le_bytes(
            c.take(8)?.try_into().unwrap(),
        ))),
        4 => Some(Value::Float64(c.f64()?)),
        5 => {
            let len = c.u32()? as usize;
            if len > (1 << 24) {
                return Err(StoreError::Corrupt(format!(
                    "implausible string length {len} in statistics section"
                )));
            }
            Some(Value::Utf8(c.string(len)?))
        }
        6 => Some(Value::Timestamp(i64::from_le_bytes(
            c.take(8)?.try_into().unwrap(),
        ))),
        other => {
            return Err(StoreError::Corrupt(format!(
                "unknown value tag {other} in statistics section"
            )))
        }
    })
}

/// Serialize per-table statistics (table name → column stats) to bytes.
pub fn stats_to_bytes(tables: &[(String, Vec<ColumnStats>)]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(STATS_MAGIC);
    out.extend_from_slice(&STATS_VERSION.to_le_bytes());
    out.extend_from_slice(&(tables.len() as u32).to_le_bytes());
    for (name, cols) in tables {
        out.extend_from_slice(&(name.len() as u16).to_le_bytes());
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(&(cols.len() as u32).to_le_bytes());
        for s in cols {
            out.extend_from_slice(&(s.name.len() as u16).to_le_bytes());
            out.extend_from_slice(s.name.as_bytes());
            out.extend_from_slice(&(s.count as u64).to_le_bytes());
            out.extend_from_slice(&(s.nulls as u64).to_le_bytes());
            out.extend_from_slice(&(s.nans as u64).to_le_bytes());
            write_value(&mut out, &s.min);
            write_value(&mut out, &s.max);
            match s.distinct {
                Some(d) => {
                    out.push(1);
                    out.extend_from_slice(&d.to_le_bytes());
                }
                None => out.push(0),
            }
            match &s.histogram {
                Some(h) => {
                    out.push(1);
                    out.extend_from_slice(&h.lo.to_le_bytes());
                    out.extend_from_slice(&h.hi.to_le_bytes());
                    out.extend_from_slice(&(h.counts.len() as u32).to_le_bytes());
                    for c in &h.counts {
                        out.extend_from_slice(&c.to_le_bytes());
                    }
                }
                None => out.push(0),
            }
        }
    }
    out
}

/// Parse a statistics section written by [`stats_to_bytes`].
pub fn stats_from_bytes(bytes: &[u8]) -> Result<Vec<(String, Vec<ColumnStats>)>> {
    let mut c = Cursor { buf: bytes, pos: 0 };
    if c.take(4)? != STATS_MAGIC {
        return Err(StoreError::Corrupt("bad statistics magic".into()));
    }
    let version = c.u16()?;
    if version != STATS_VERSION {
        return Err(StoreError::Corrupt(format!(
            "unsupported statistics version {version}"
        )));
    }
    let n_tables = c.u32()? as usize;
    if n_tables > 1 << 16 {
        return Err(StoreError::Corrupt(format!(
            "implausible table count {n_tables} in statistics section"
        )));
    }
    let mut tables = Vec::with_capacity(n_tables);
    for _ in 0..n_tables {
        let name_len = c.u16()? as usize;
        let tname = c.string(name_len)?;
        let n_cols = c.u32()? as usize;
        if n_cols > 4096 {
            return Err(StoreError::Corrupt(format!(
                "implausible column count {n_cols} in statistics section"
            )));
        }
        let mut cols = Vec::with_capacity(n_cols);
        for _ in 0..n_cols {
            let name_len = c.u16()? as usize;
            let name = c.string(name_len)?;
            let count = c.u64()? as usize;
            let nulls = c.u64()? as usize;
            let nans = c.u64()? as usize;
            let min = read_value(&mut c)?;
            let max = read_value(&mut c)?;
            let distinct = if c.u8()? != 0 { Some(c.u64()?) } else { None };
            let histogram = if c.u8()? != 0 {
                let lo = c.f64()?;
                let hi = c.f64()?;
                let n = c.u32()? as usize;
                if n > 1 << 16 {
                    return Err(StoreError::Corrupt(format!(
                        "implausible histogram bucket count {n}"
                    )));
                }
                let mut counts = Vec::with_capacity(n);
                for _ in 0..n {
                    counts.push(c.u64()?);
                }
                Some(Histogram { lo, hi, counts })
            } else {
                None
            };
            cols.push(ColumnStats {
                name,
                count,
                nulls,
                nans,
                min,
                max,
                distinct,
                histogram,
            });
        }
        tables.push((tname, cols));
    }
    Ok(tables)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Field, Schema};
    use crate::types::DataType;

    #[test]
    fn stats_over_mixed_column() {
        let col = Column::from_values(
            DataType::Float64,
            &[
                Value::Float64(3.0),
                Value::Null,
                Value::Float64(-1.0),
                Value::Float64(10.0),
            ],
        )
        .unwrap();
        let s = column_stats("v", &col);
        assert_eq!(s.count, 4);
        assert_eq!(s.nulls, 1);
        assert_eq!(s.nans, 0);
        assert_eq!(s.min, Some(Value::Float64(-1.0)));
        assert_eq!(s.max, Some(Value::Float64(10.0)));
        assert_eq!(s.distinct, Some(3));
        let h = s.histogram.expect("numeric column gets a histogram");
        assert_eq!(h.total(), 3);
        assert_eq!((h.lo, h.hi), (-1.0, 10.0));
    }

    #[test]
    fn nan_excluded_from_range_and_counted() {
        let col = Column::from_values(
            DataType::Float64,
            &[
                Value::Float64(5.0),
                Value::Float64(f64::NAN),
                Value::Float64(7.0),
                Value::Float64(-f64::NAN),
            ],
        )
        .unwrap();
        let s = column_stats("v", &col);
        assert_eq!(s.nans, 2);
        assert_eq!(s.min, Some(Value::Float64(5.0)));
        assert_eq!(s.max, Some(Value::Float64(7.0)));
        assert!(!s.range_trusted(), "NaN taints the range");
        let h = s.histogram.expect("finite range still gets a histogram");
        assert_eq!(h.total(), 2, "NaN stays out of the buckets");
        // A NaN bound (old-snapshot stats) is also untrusted.
        let tainted = ColumnStats {
            max: Some(Value::Float64(f64::NAN)),
            nans: 0,
            ..ColumnStats::empty("v")
        };
        assert!(!tainted.range_trusted());
    }

    #[test]
    fn stats_all_null_or_empty() {
        let col = Column::from_values(DataType::Int32, &[Value::Null, Value::Null]).unwrap();
        let s = column_stats("x", &col);
        assert_eq!(s.min, None);
        assert_eq!(s.max, None);
        assert_eq!(s.nulls, 2);
        assert_eq!(s.distinct, None);
        let empty = Column::empty(DataType::Utf8);
        let s = column_stats("y", &empty);
        assert_eq!(s.count, 0);
        assert_eq!(s.min, None);
        assert_eq!(s.histogram, None);
    }

    #[test]
    fn table_stats_cover_all_columns() {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int32),
            Field::new("b", DataType::Utf8),
        ])
        .unwrap();
        let mut t = Table::empty(schema);
        t.append_row(vec![Value::Int32(2), Value::Utf8("x".into())])
            .unwrap();
        t.append_row(vec![Value::Int32(1), Value::Utf8("z".into())])
            .unwrap();
        let stats = table_stats(&t);
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].min, Some(Value::Int32(1)));
        assert_eq!(stats[1].max, Some(Value::Utf8("z".into())));
        assert_eq!(stats[1].distinct, Some(2));
        assert!(stats[1].histogram.is_none(), "strings have no histogram");
    }

    #[test]
    fn distinct_sketch_tracks_cardinality() {
        let mut s = DistinctSketch::new();
        for i in 0..200u64 {
            // Hash properly: raw sequential ints would collide mod 1024
            // only at wrap-around and overstate uniformity.
            s.insert_hash(fnv1a(&i.to_le_bytes()));
        }
        let est = s.estimate();
        assert!(
            (150..=260).contains(&est),
            "estimate {est} too far from 200"
        );
        // Duplicates do not grow the estimate.
        let mut d = DistinctSketch::new();
        for _ in 0..1000 {
            d.insert_hash(fnv1a(&42u64.to_le_bytes()));
        }
        assert_eq!(d.estimate(), 1);
    }

    #[test]
    fn histogram_fractions_interpolate() {
        let col = Column::from_values(
            DataType::Int64,
            &(0..100).map(Value::Int64).collect::<Vec<_>>(),
        )
        .unwrap();
        let s = column_stats("x", &col);
        let h = s.histogram.unwrap();
        assert_eq!(h.total(), 100);
        assert_eq!(h.fraction_le(-5.0), 0.0);
        assert_eq!(h.fraction_le(99.0), 1.0);
        let half = h.fraction_le(49.5);
        assert!((0.4..=0.6).contains(&half), "median ~0.5, got {half}");
        let quarter = h.fraction_between(Some(25.0), Some(49.5));
        assert!((0.15..=0.35).contains(&quarter), "got {quarter}");
    }

    #[test]
    fn stats_serialization_roundtrip() {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::nullable("b", DataType::Float64),
            Field::new("c", DataType::Utf8),
        ])
        .unwrap();
        let mut t = Table::empty(schema);
        for i in 0..50i64 {
            t.append_row(vec![
                Value::Int64(i),
                if i % 5 == 0 {
                    Value::Null
                } else if i % 7 == 0 {
                    Value::Float64(f64::NAN)
                } else {
                    Value::Float64(i as f64 / 3.0)
                },
                Value::Utf8(format!("s{}", i % 4)),
            ])
            .unwrap();
        }
        let stats = vec![
            ("t1".to_string(), table_stats(&t)),
            ("empty".to_string(), vec![ColumnStats::empty("x")]),
        ];
        let bytes = stats_to_bytes(&stats);
        let back = stats_from_bytes(&bytes).unwrap();
        assert_eq!(back, stats);
        // Truncation is detected, not mis-parsed.
        assert!(stats_from_bytes(&bytes[..bytes.len() - 3]).is_err());
        assert!(stats_from_bytes(b"XXXX").is_err());
    }
}
