//! Scoped worker pool: the one thread-fanning primitive every layer
//! shares.
//!
//! This lives in the store crate — the bottom of the workspace graph — so
//! both the query executor (morsel-driven pipelines) and the warehouse
//! (parallel lazy extraction, parallel segment encoding) can use the same
//! pool without a dependency cycle; `lazyetl_core::parallel` re-exports
//! it under its historical path.
//!
//! Work is claimed by atomic counter, so uneven item costs balance
//! themselves; results always return in **input order**, which is what
//! keeps every parallel caller semantically identical to its serial
//! path. [`try_parallel_map`] additionally catches panics per item, so
//! one poisoned morsel fails one query instead of unwinding through the
//! pool and killing the serving worker that ran it.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// A worker panic caught by [`try_parallel_map`], rendered to text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPanic {
    /// The panic payload (`&str`/`String` payloads verbatim, anything
    /// else a placeholder).
    pub message: String,
}

impl std::fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "worker panicked: {}", self.message)
    }
}

impl std::error::Error for WorkerPanic {}

fn render_panic(payload: Box<dyn std::any::Any + Send>) -> WorkerPanic {
    let message = if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    };
    WorkerPanic { message }
}

/// Map `f` over `items` on up to `threads` scoped worker threads,
/// returning results in input order.
///
/// With `threads <= 1` (or one item) everything runs on the calling
/// thread in order, which keeps sequential semantics — and deterministic
/// crash-point numbering in the durable save path — intact. A panicking
/// item panics the caller (after the other workers drain), exactly like
/// the serial loop would; use [`try_parallel_map`] to keep panics
/// contained per item.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    try_parallel_map(items, threads, f)
        .into_iter()
        .map(|r| match r {
            Ok(r) => r,
            Err(p) => panic!("{p}"),
        })
        .collect()
}

/// [`parallel_map`] with per-item panic containment: each item's result
/// is `Ok(R)` or the caught [`WorkerPanic`], in input order.
///
/// A panic in one item never tears down the pool — the worker that
/// caught it moves on to the next item, and every other item still
/// completes. The caller decides what a panic means (the executor turns
/// the first one, in input order, into a `QueryError`; extraction turns
/// it into that file's `EtlError`).
pub fn try_parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<Result<R, WorkerPanic>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let run_one = |item: &T| catch_unwind(AssertUnwindSafe(|| f(item))).map_err(render_panic);
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(run_one).collect();
    }
    let mut out: Vec<Option<Result<R, WorkerPanic>>> = items.iter().map(|_| None).collect();
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, Result<R, WorkerPanic>)>();
    std::thread::scope(|s| {
        for _ in 0..threads.min(items.len()) {
            let tx = tx.clone();
            let next = &next;
            let run_one = &run_one;
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                if tx.send((i, run_one(item))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        for (i, r) in rx {
            out[i] = Some(r);
        }
    });
    out.into_iter()
        .map(|o| o.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_input_order_at_any_thread_count() {
        let items: Vec<u64> = (0..37).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [0usize, 1, 2, 4, 16] {
            assert_eq!(parallel_map(&items, threads, |&x| x * x), expect);
        }
        let empty: Vec<u64> = Vec::new();
        assert!(parallel_map(&empty, 4, |&x: &u64| x).is_empty());
    }

    #[test]
    fn panics_are_contained_per_item() {
        let items: Vec<u64> = (0..16).collect();
        for threads in [1usize, 4] {
            let out = try_parallel_map(&items, threads, |&x| {
                if x % 5 == 3 {
                    panic!("bad morsel {x}");
                }
                x * 2
            });
            assert_eq!(out.len(), items.len());
            for (i, r) in out.iter().enumerate() {
                if i % 5 == 3 {
                    let p = r.as_ref().unwrap_err();
                    assert_eq!(p.message, format!("bad morsel {i}"));
                } else {
                    assert_eq!(*r.as_ref().unwrap(), (i as u64) * 2, "item {i} survived");
                }
            }
        }
    }

    #[test]
    fn parallel_map_repanics_like_the_serial_loop() {
        let items: Vec<u64> = (0..8).collect();
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            parallel_map(&items, 4, |&x| {
                if x == 5 {
                    panic!("boom");
                }
                x
            })
        }));
        assert!(caught.is_err(), "panic must still propagate to the caller");
    }
}
