//! Error type for the storage layer.

use std::fmt;

/// Errors raised by the columnar store.
#[derive(Debug)]
pub enum StoreError {
    /// A value's type did not match the column's type.
    TypeMismatch {
        /// What the column stores.
        expected: String,
        /// What was supplied.
        found: String,
    },
    /// Row or column index out of bounds.
    OutOfBounds {
        /// The offending index.
        index: usize,
        /// The container length.
        len: usize,
    },
    /// Catalog name collision or miss.
    Catalog(String),
    /// Columns of a table disagree on length.
    RaggedTable {
        /// Expected row count.
        expected: usize,
        /// Found row count.
        found: usize,
        /// Column at fault.
        column: String,
    },
    /// Persistence format violation.
    Corrupt(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: column stores {expected}, got {found}")
            }
            StoreError::OutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for length {len}")
            }
            StoreError::Catalog(msg) => write!(f, "catalog error: {msg}"),
            StoreError::RaggedTable {
                expected,
                found,
                column,
            } => write!(
                f,
                "ragged table: column {column} has {found} rows, expected {expected}"
            ),
            StoreError::Corrupt(msg) => write!(f, "corrupt persisted data: {msg}"),
            StoreError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, StoreError>;
