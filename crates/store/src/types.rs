//! Logical data types and scalar values.

use std::cmp::Ordering;
use std::fmt;

/// Logical column types supported by the store.
///
/// `Timestamp` is microseconds since the Unix epoch — the representation
/// the mSEED substrate produces — kept distinct from `Int64` so the SQL
/// layer can parse time literals in comparisons against it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Boolean.
    Bool,
    /// 32-bit signed integer.
    Int32,
    /// 64-bit signed integer.
    Int64,
    /// 64-bit IEEE float.
    Float64,
    /// UTF-8 string.
    Utf8,
    /// Microseconds since the Unix epoch.
    Timestamp,
}

impl DataType {
    /// Name as used in `DESCRIBE`-style output.
    pub fn name(self) -> &'static str {
        match self {
            DataType::Bool => "BOOLEAN",
            DataType::Int32 => "INTEGER",
            DataType::Int64 => "BIGINT",
            DataType::Float64 => "DOUBLE",
            DataType::Utf8 => "VARCHAR",
            DataType::Timestamp => "TIMESTAMP",
        }
    }

    /// True for Int32/Int64/Float64.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int32 | DataType::Int64 | DataType::Float64)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A scalar value of any supported type, including SQL NULL.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// 32-bit integer.
    Int32(i32),
    /// 64-bit integer.
    Int64(i64),
    /// Double-precision float.
    Float64(f64),
    /// String.
    Utf8(String),
    /// Microseconds since epoch.
    Timestamp(i64),
}

impl Value {
    /// The value's type, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int32(_) => Some(DataType::Int32),
            Value::Int64(_) => Some(DataType::Int64),
            Value::Float64(_) => Some(DataType::Float64),
            Value::Utf8(_) => Some(DataType::Utf8),
            Value::Timestamp(_) => Some(DataType::Timestamp),
        }
    }

    /// True iff this is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view as f64 (ints widen; bools and strings do not).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int32(v) => Some(*v as f64),
            Value::Int64(v) => Some(*v as f64),
            Value::Float64(v) => Some(*v),
            Value::Timestamp(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Integer view as i64 (floats do not implicitly narrow).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int32(v) => Some(*v as i64),
            Value::Int64(v) => Some(*v),
            Value::Timestamp(v) => Some(*v),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Utf8(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// SQL comparison semantics: NULL compares as unknown (`None`); numeric
    /// types compare cross-type by value; floats use IEEE total order so
    /// NaN sorts deterministically.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Utf8(a), Utf8(b)) => Some(a.cmp(b)),
            (Timestamp(a), Timestamp(b)) => Some(a.cmp(b)),
            // Timestamps also compare against plain integers (µs values).
            (Timestamp(a), Int64(b)) | (Int64(a), Timestamp(b)) => Some(a.cmp(b)),
            (Int32(a), Int32(b)) => Some(a.cmp(b)),
            (Int64(a), Int64(b)) => Some(a.cmp(b)),
            (Int32(a), Int64(b)) => Some((*a as i64).cmp(b)),
            (Int64(a), Int32(b)) => Some(a.cmp(&(*b as i64))),
            (Float64(a), Float64(b)) => Some(a.total_cmp(b)),
            (Float64(a), Int32(b)) => Some(a.total_cmp(&(*b as f64))),
            (Float64(a), Int64(b)) => Some(a.total_cmp(&(*b as f64))),
            (Int32(a), Float64(b)) => Some((*a as f64).total_cmp(b)),
            (Int64(a), Float64(b)) => Some((*a as f64).total_cmp(b)),
            _ => None,
        }
    }

    /// Equality under SQL semantics (`NULL = x` is unknown -> `None`).
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.sql_cmp(other).map(|o| o == Ordering::Equal)
    }

    /// A hashable key for group-by/join. NULLs group together (SQL GROUP BY
    /// semantics); floats key by bit pattern; ints and timestamps share a
    /// normalized i64 representation so `Int32(1)` joins `Int64(1)`.
    pub fn group_key(&self) -> GroupKey {
        match self {
            Value::Null => GroupKey::Null,
            Value::Bool(b) => GroupKey::Bool(*b),
            Value::Int32(v) => GroupKey::Int(*v as i64),
            Value::Int64(v) => GroupKey::Int(*v),
            Value::Timestamp(v) => GroupKey::Int(*v),
            Value::Float64(v) => {
                // Normalize -0.0 to 0.0 and all NaNs to one bit pattern so
                // equal-comparing floats land in the same group.
                let v = if *v == 0.0 { 0.0 } else { *v };
                let bits = if v.is_nan() {
                    f64::NAN.to_bits()
                } else {
                    v.to_bits()
                };
                GroupKey::Float(bits)
            }
            Value::Utf8(s) => GroupKey::Str(s.clone()),
        }
    }
}

/// Hashable normalization of a [`Value`] used by group-by and joins.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum GroupKey {
    /// NULL key (all NULLs group together).
    Null,
    /// Boolean key.
    Bool(bool),
    /// Normalized integer/timestamp key.
    Int(i64),
    /// Float key by bit pattern.
    Float(u64),
    /// String key.
    Str(String),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int32(v) => write!(f, "{v}"),
            Value::Int64(v) => write!(f, "{v}"),
            Value::Float64(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Value::Utf8(s) => write!(f, "{s}"),
            Value::Timestamp(us) => write!(f, "{}", lazyetl_timestamp_display(*us)),
        }
    }
}

/// Render a timestamp without depending on the mseed crate (the store is
/// dependency-free): simple civil conversion duplicated from first
/// principles.
fn lazyetl_timestamp_display(us: i64) -> String {
    let secs = us.div_euclid(1_000_000);
    let micros = us.rem_euclid(1_000_000);
    let days = secs.div_euclid(86_400);
    let sod = secs.rem_euclid(86_400);
    let z = days + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!(
        "{:04}-{:02}-{:02}T{:02}:{:02}:{:02}.{:06}",
        y,
        m,
        d,
        sod / 3600,
        (sod % 3600) / 60,
        sod % 60,
        micros
    )
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        // Structural equality (NULL == NULL) for use in tests and keys;
        // SQL three-valued equality lives in `sql_eq`.
        match (self, other) {
            (Value::Null, Value::Null) => true,
            _ => self.sql_eq(other).unwrap_or(false),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_type_numeric_comparison() {
        assert_eq!(
            Value::Int32(2).sql_cmp(&Value::Float64(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Int64(3).sql_cmp(&Value::Int32(3)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Float64(1.0).sql_cmp(&Value::Int64(1)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Timestamp(5).sql_cmp(&Value::Int64(6)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int32(1)), None);
        assert_eq!(Value::Int32(1).sql_eq(&Value::Null), None);
        // but structural equality groups NULLs
        assert_eq!(Value::Null, Value::Null);
    }

    #[test]
    fn incompatible_types_do_not_compare() {
        assert_eq!(Value::Utf8("a".into()).sql_cmp(&Value::Int32(1)), None);
        assert_eq!(Value::Bool(true).sql_cmp(&Value::Utf8("t".into())), None);
    }

    #[test]
    fn group_keys_normalize() {
        assert_eq!(Value::Int32(7).group_key(), Value::Int64(7).group_key());
        assert_eq!(
            Value::Float64(0.0).group_key(),
            Value::Float64(-0.0).group_key()
        );
        assert_eq!(
            Value::Float64(f64::NAN).group_key(),
            Value::Float64(-f64::NAN).group_key()
        );
        assert_ne!(
            Value::Float64(1.0).group_key(),
            Value::Float64(2.0).group_key()
        );
        assert_eq!(Value::Null.group_key(), Value::Null.group_key());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int32(-5).to_string(), "-5");
        assert_eq!(Value::Float64(2.0).to_string(), "2.0");
        assert_eq!(Value::Float64(2.25).to_string(), "2.25");
        assert_eq!(Value::Utf8("ISK".into()).to_string(), "ISK");
        assert_eq!(
            Value::Timestamp(1_263_334_500_000_000).to_string(),
            "2010-01-12T22:15:00.000000"
        );
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int32(3).as_f64(), Some(3.0));
        assert_eq!(Value::Utf8("x".into()).as_f64(), None);
        assert_eq!(Value::Float64(2.5).as_i64(), None);
        assert_eq!(Value::Timestamp(9).as_i64(), Some(9));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert!(Value::Null.is_null());
        assert_eq!(Value::Null.data_type(), None);
        assert_eq!(Value::Int64(1).data_type(), Some(DataType::Int64));
    }

    #[test]
    fn type_names() {
        assert_eq!(DataType::Float64.name(), "DOUBLE");
        assert_eq!(DataType::Utf8.to_string(), "VARCHAR");
        assert!(DataType::Int32.is_numeric());
        assert!(!DataType::Utf8.is_numeric());
    }
}
