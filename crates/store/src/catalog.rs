//! The warehouse catalog: named tables, non-materialized views, and
//! foreign-key metadata.
//!
//! Views are stored as SQL text and expanded into query plans at
//! optimization time — the paper's lazy-transformation mechanism: "we
//! implement all necessary transformations as non-materialized views …
//! view definitions are simply expanded into the query" (§3.2).

use crate::error::{Result, StoreError};
use crate::stats::{table_stats, ColumnStats};
use crate::table::Table;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// A foreign-key relationship recorded for documentation/validation.
///
/// The paper's schema derives FK constraints from mSEED file/record
/// pointers; the catalog records them so integrity checks and the demo's
/// metadata browser can surface them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    /// Referencing table.
    pub table: String,
    /// Referencing columns.
    pub columns: Vec<String>,
    /// Referenced table.
    pub ref_table: String,
    /// Referenced columns.
    pub ref_columns: Vec<String>,
}

/// A registered non-materialized view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewDef {
    /// View name.
    pub name: String,
    /// `SELECT ...` text that defines the view.
    pub sql: String,
}

/// Named collection of tables, views and constraints.
///
/// Tables are stored behind `Arc` so query scans are zero-copy; mutation
/// goes through [`Catalog::table_mut`], which clones only when a scan still
/// holds a reference.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: BTreeMap<String, Arc<Table>>,
    views: BTreeMap<String, ViewDef>,
    foreign_keys: Vec<ForeignKey>,
    /// Per-table mutation counters: any path that can change a table's
    /// rows bumps its version, invalidating the memoized zone map below.
    versions: BTreeMap<String, u64>,
    /// Memoized per-table column statistics (the zone maps), keyed by the
    /// version they were computed at. Interior mutability lets read-only
    /// query execution fill the cache under the warehouse's shared lock.
    zone_maps: Mutex<ZoneMapCache>,
}

/// Table name → (version it was computed at, its column statistics).
type ZoneMapCache = BTreeMap<String, (u64, Arc<Vec<ColumnStats>>)>;

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register a table; fails on name collision with a table or view.
    pub fn create_table(&mut self, name: &str, table: Table) -> Result<()> {
        let key = name.to_ascii_lowercase();
        if self.tables.contains_key(&key) || self.views.contains_key(&key) {
            return Err(StoreError::Catalog(format!("name {name:?} already exists")));
        }
        self.bump_version(&key);
        self.tables.insert(key, Arc::new(table));
        Ok(())
    }

    /// Replace a table's contents (e.g. after a bulk load).
    pub fn replace_table(&mut self, name: &str, table: Table) -> Result<()> {
        let key = name.to_ascii_lowercase();
        if !self.tables.contains_key(&key) {
            return Err(StoreError::Catalog(format!("no table named {name:?}")));
        }
        self.bump_version(&key);
        self.tables.insert(key, Arc::new(table));
        Ok(())
    }

    fn bump_version(&mut self, key: &str) {
        *self.versions.entry(key.to_string()).or_insert(0) += 1;
    }

    /// Register a non-materialized view over a SQL definition.
    pub fn create_view(&mut self, name: &str, sql: &str) -> Result<()> {
        let key = name.to_ascii_lowercase();
        if self.tables.contains_key(&key) || self.views.contains_key(&key) {
            return Err(StoreError::Catalog(format!("name {name:?} already exists")));
        }
        self.views.insert(
            key.clone(),
            ViewDef {
                name: key,
                sql: sql.to_string(),
            },
        );
        Ok(())
    }

    /// Record a foreign-key relationship.
    pub fn add_foreign_key(&mut self, fk: ForeignKey) {
        self.foreign_keys.push(fk);
    }

    /// Declared foreign keys.
    pub fn foreign_keys(&self) -> &[ForeignKey] {
        &self.foreign_keys
    }

    /// Immutable table lookup (case-insensitive).
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(&name.to_ascii_lowercase()).map(|t| &**t)
    }

    /// Shared handle to a table (zero-copy scans).
    pub fn table_arc(&self, name: &str) -> Option<Arc<Table>> {
        self.tables.get(&name.to_ascii_lowercase()).cloned()
    }

    /// Mutable table lookup (copy-on-write if a scan still holds the Arc).
    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        let key = name.to_ascii_lowercase();
        if self.tables.contains_key(&key) {
            // Handing out `&mut Table` invalidates the memoized zone map.
            self.bump_version(&key);
        }
        self.tables.get_mut(&key).map(Arc::make_mut)
    }

    /// Per-column min/max/null statistics of a table — its zone map.
    ///
    /// Computed on first request at the table's current version and
    /// memoized; any mutation path ([`Catalog::replace_table`],
    /// [`Catalog::table_mut`]) invalidates the entry, so a returned map is
    /// always consistent with the rows a concurrent scan sees. The
    /// executor consults this to skip scans whose filter provably excludes
    /// the whole `[min, max]` range.
    pub fn zone_map(&self, name: &str) -> Option<Arc<Vec<ColumnStats>>> {
        let key = name.to_ascii_lowercase();
        let table = self.tables.get(&key)?;
        let version = self.versions.get(&key).copied().unwrap_or(0);
        {
            let maps = self.zone_maps.lock().expect("zone map cache poisoned");
            if let Some((v, stats)) = maps.get(&key) {
                if *v == version {
                    return Some(stats.clone());
                }
            }
        }
        // Compute outside the lock: the statistics pass is O(rows ×
        // columns) and must not serialize other queries' (warm) lookups.
        // Two racing threads at most duplicate the computation; the table
        // itself cannot change underneath — mutation requires `&mut self`.
        let stats = Arc::new(table_stats(table));
        self.zone_maps
            .lock()
            .expect("zone map cache poisoned")
            .insert(key, (version, stats.clone()));
        Some(stats)
    }

    /// Seed the memoized zone map of `name` with externally computed
    /// statistics (e.g. the stats section of a persisted snapshot),
    /// pinned to the table's **current** version. Callers must only seed
    /// stats that describe the table's present rows — any later mutation
    /// invalidates the entry exactly like a computed one. Returns `false`
    /// (and seeds nothing) when no such table exists.
    pub fn seed_zone_map(&self, name: &str, stats: Vec<ColumnStats>) -> bool {
        let key = name.to_ascii_lowercase();
        if !self.tables.contains_key(&key) {
            return false;
        }
        let version = self.versions.get(&key).copied().unwrap_or(0);
        self.zone_maps
            .lock()
            .expect("zone map cache poisoned")
            .insert(key, (version, Arc::new(stats)));
        true
    }

    /// View lookup (case-insensitive).
    pub fn view(&self, name: &str) -> Option<&ViewDef> {
        self.views.get(&name.to_ascii_lowercase())
    }

    /// Names of all tables.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }

    /// Names of all views.
    pub fn view_names(&self) -> Vec<String> {
        self.views.keys().cloned().collect()
    }

    /// Total bytes across all resident tables (warehouse footprint).
    pub fn resident_bytes(&self) -> usize {
        self.tables.values().map(|t| t.byte_size()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Field, Schema};
    use crate::types::DataType;

    fn t() -> Table {
        Table::empty(Schema::new(vec![Field::new("x", DataType::Int32)]).unwrap())
    }

    #[test]
    fn create_and_lookup() {
        let mut c = Catalog::new();
        c.create_table("Files", t()).unwrap();
        assert!(c.table("files").is_some(), "case-insensitive");
        assert!(c.table("FILES").is_some());
        assert!(c.table("records").is_none());
        assert_eq!(c.table_names(), vec!["files"]);
    }

    #[test]
    fn name_collisions() {
        let mut c = Catalog::new();
        c.create_table("files", t()).unwrap();
        assert!(c.create_table("FILES", t()).is_err());
        assert!(c.create_view("files", "SELECT 1").is_err());
        c.create_view("dataview", "SELECT * FROM files").unwrap();
        assert!(c.create_table("dataview", t()).is_err());
        assert_eq!(c.view("DATAVIEW").unwrap().sql, "SELECT * FROM files");
    }

    #[test]
    fn replace_requires_existing() {
        let mut c = Catalog::new();
        assert!(c.replace_table("nope", t()).is_err());
        c.create_table("a", t()).unwrap();
        c.replace_table("a", t()).unwrap();
    }

    #[test]
    fn zone_map_memoizes_and_invalidates() {
        use crate::types::Value;
        let mut c = Catalog::new();
        let schema = Schema::new(vec![Field::new("x", DataType::Int32)]).unwrap();
        let mut table = Table::empty(schema);
        table.append_row(vec![Value::Int32(3)]).unwrap();
        table.append_row(vec![Value::Int32(9)]).unwrap();
        c.create_table("t", table).unwrap();
        let zm = c.zone_map("t").unwrap();
        assert_eq!(zm[0].min, Some(Value::Int32(3)));
        assert_eq!(zm[0].max, Some(Value::Int32(9)));
        // Memoized: same Arc returned while the table is untouched.
        let again = c.zone_map("T").unwrap();
        assert!(Arc::ptr_eq(&zm, &again), "unchanged table reuses the map");
        // Mutation invalidates.
        c.table_mut("t")
            .unwrap()
            .append_row(vec![Value::Int32(-1)])
            .unwrap();
        let fresh = c.zone_map("t").unwrap();
        assert_eq!(fresh[0].min, Some(Value::Int32(-1)));
        assert!(c.zone_map("missing").is_none());
    }

    #[test]
    fn seeded_zone_map_is_served_until_mutation() {
        use crate::stats::ColumnStats;
        use crate::types::Value;
        let mut c = Catalog::new();
        let schema = Schema::new(vec![Field::new("x", DataType::Int32)]).unwrap();
        let mut table = Table::empty(schema);
        table.append_row(vec![Value::Int32(5)]).unwrap();
        c.create_table("t", table).unwrap();
        assert!(!c.seed_zone_map("missing", Vec::new()), "unknown table");
        // Seed a recognizable (here: deliberately fake) stat and observe
        // it served verbatim instead of being recomputed.
        let mut fake = ColumnStats::empty("x");
        fake.count = 99;
        assert!(c.seed_zone_map("T", vec![fake]));
        assert_eq!(c.zone_map("t").unwrap()[0].count, 99, "seed served");
        // Mutation invalidates the seed like any memoized map.
        c.table_mut("t")
            .unwrap()
            .append_row(vec![Value::Int32(7)])
            .unwrap();
        assert_eq!(c.zone_map("t").unwrap()[0].count, 2, "recomputed");
    }

    #[test]
    fn foreign_keys_recorded() {
        let mut c = Catalog::new();
        c.add_foreign_key(ForeignKey {
            table: "records".into(),
            columns: vec!["file_id".into()],
            ref_table: "files".into(),
            ref_columns: vec!["file_id".into()],
        });
        assert_eq!(c.foreign_keys().len(), 1);
        assert_eq!(c.foreign_keys()[0].ref_table, "files");
    }
}
