//! The warehouse catalog: named tables, non-materialized views, and
//! foreign-key metadata.
//!
//! Views are stored as SQL text and expanded into query plans at
//! optimization time — the paper's lazy-transformation mechanism: "we
//! implement all necessary transformations as non-materialized views …
//! view definitions are simply expanded into the query" (§3.2).

use crate::error::{Result, StoreError};
use crate::table::Table;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A foreign-key relationship recorded for documentation/validation.
///
/// The paper's schema derives FK constraints from mSEED file/record
/// pointers; the catalog records them so integrity checks and the demo's
/// metadata browser can surface them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    /// Referencing table.
    pub table: String,
    /// Referencing columns.
    pub columns: Vec<String>,
    /// Referenced table.
    pub ref_table: String,
    /// Referenced columns.
    pub ref_columns: Vec<String>,
}

/// A registered non-materialized view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewDef {
    /// View name.
    pub name: String,
    /// `SELECT ...` text that defines the view.
    pub sql: String,
}

/// Named collection of tables, views and constraints.
///
/// Tables are stored behind `Arc` so query scans are zero-copy; mutation
/// goes through [`Catalog::table_mut`], which clones only when a scan still
/// holds a reference.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: BTreeMap<String, Arc<Table>>,
    views: BTreeMap<String, ViewDef>,
    foreign_keys: Vec<ForeignKey>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register a table; fails on name collision with a table or view.
    pub fn create_table(&mut self, name: &str, table: Table) -> Result<()> {
        let key = name.to_ascii_lowercase();
        if self.tables.contains_key(&key) || self.views.contains_key(&key) {
            return Err(StoreError::Catalog(format!("name {name:?} already exists")));
        }
        self.tables.insert(key, Arc::new(table));
        Ok(())
    }

    /// Replace a table's contents (e.g. after a bulk load).
    pub fn replace_table(&mut self, name: &str, table: Table) -> Result<()> {
        let key = name.to_ascii_lowercase();
        if !self.tables.contains_key(&key) {
            return Err(StoreError::Catalog(format!("no table named {name:?}")));
        }
        self.tables.insert(key, Arc::new(table));
        Ok(())
    }

    /// Register a non-materialized view over a SQL definition.
    pub fn create_view(&mut self, name: &str, sql: &str) -> Result<()> {
        let key = name.to_ascii_lowercase();
        if self.tables.contains_key(&key) || self.views.contains_key(&key) {
            return Err(StoreError::Catalog(format!("name {name:?} already exists")));
        }
        self.views.insert(
            key.clone(),
            ViewDef {
                name: key,
                sql: sql.to_string(),
            },
        );
        Ok(())
    }

    /// Record a foreign-key relationship.
    pub fn add_foreign_key(&mut self, fk: ForeignKey) {
        self.foreign_keys.push(fk);
    }

    /// Declared foreign keys.
    pub fn foreign_keys(&self) -> &[ForeignKey] {
        &self.foreign_keys
    }

    /// Immutable table lookup (case-insensitive).
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(&name.to_ascii_lowercase()).map(|t| &**t)
    }

    /// Shared handle to a table (zero-copy scans).
    pub fn table_arc(&self, name: &str) -> Option<Arc<Table>> {
        self.tables.get(&name.to_ascii_lowercase()).cloned()
    }

    /// Mutable table lookup (copy-on-write if a scan still holds the Arc).
    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables
            .get_mut(&name.to_ascii_lowercase())
            .map(Arc::make_mut)
    }

    /// View lookup (case-insensitive).
    pub fn view(&self, name: &str) -> Option<&ViewDef> {
        self.views.get(&name.to_ascii_lowercase())
    }

    /// Names of all tables.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }

    /// Names of all views.
    pub fn view_names(&self) -> Vec<String> {
        self.views.keys().cloned().collect()
    }

    /// Total bytes across all resident tables (warehouse footprint).
    pub fn resident_bytes(&self) -> usize {
        self.tables.values().map(|t| t.byte_size()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Field, Schema};
    use crate::types::DataType;

    fn t() -> Table {
        Table::empty(Schema::new(vec![Field::new("x", DataType::Int32)]).unwrap())
    }

    #[test]
    fn create_and_lookup() {
        let mut c = Catalog::new();
        c.create_table("Files", t()).unwrap();
        assert!(c.table("files").is_some(), "case-insensitive");
        assert!(c.table("FILES").is_some());
        assert!(c.table("records").is_none());
        assert_eq!(c.table_names(), vec!["files"]);
    }

    #[test]
    fn name_collisions() {
        let mut c = Catalog::new();
        c.create_table("files", t()).unwrap();
        assert!(c.create_table("FILES", t()).is_err());
        assert!(c.create_view("files", "SELECT 1").is_err());
        c.create_view("dataview", "SELECT * FROM files").unwrap();
        assert!(c.create_table("dataview", t()).is_err());
        assert_eq!(c.view("DATAVIEW").unwrap().sql, "SELECT * FROM files");
    }

    #[test]
    fn replace_requires_existing() {
        let mut c = Catalog::new();
        assert!(c.replace_table("nope", t()).is_err());
        c.create_table("a", t()).unwrap();
        c.replace_table("a", t()).unwrap();
    }

    #[test]
    fn foreign_keys_recorded() {
        let mut c = Catalog::new();
        c.add_foreign_key(ForeignKey {
            table: "records".into(),
            columns: vec!["file_id".into()],
            ref_table: "files".into(),
            ref_columns: vec!["file_id".into()],
        });
        assert_eq!(c.foreign_keys().len(), 1);
        assert_eq!(c.foreign_keys()[0].ref_table, "files");
    }
}
