//! Saving and reopening warehouses without re-running ETL.
//!
//! A lazy warehouse's state is small (metadata tables + nothing else), so
//! persisting it makes the *next* bootstrap free: attach, load two tables,
//! reconcile any repository drift via the ordinary refresh path. An eager
//! warehouse persists its `D` table too — which is also how experiment E2
//! measures the on-disk footprint honestly.

use crate::error::{EtlError, Result};
use crate::schema::{DATA_TABLE, FILES_TABLE, RECORDS_TABLE};
use crate::warehouse::{Mode, Warehouse};
use lazyetl_store::persist::{load_table, save_table};
use std::path::Path;

/// Name of the manifest file inside a saved-warehouse directory.
pub const MANIFEST_NAME: &str = "MANIFEST";
const MANIFEST_VERSION: &str = "lazyetl-warehouse-v1";

/// What [`save_warehouse`] wrote.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SaveReport {
    /// Mode that was saved.
    pub mode: Mode,
    /// Total bytes written.
    pub bytes: u64,
    /// Table files written.
    pub tables: Vec<String>,
}

/// Persist a warehouse's catalog tables under `dir`.
pub fn save_warehouse(wh: &Warehouse, dir: &Path) -> Result<SaveReport> {
    std::fs::create_dir_all(dir).map_err(|e| EtlError::Internal(e.to_string()))?;
    let mode = wh.mode();
    let tables: Vec<&str> = match mode {
        Mode::Lazy => vec![FILES_TABLE, RECORDS_TABLE],
        Mode::Eager => vec![FILES_TABLE, RECORDS_TABLE, DATA_TABLE],
    };
    let mut bytes = 0u64;
    let mut written = Vec::new();
    let catalog = wh.catalog();
    for name in tables {
        let table = catalog
            .table(name)
            .ok_or_else(|| EtlError::Internal(format!("table {name} missing")))?;
        let path = dir.join(format!("{name}.lztb"));
        save_table(table, &path)?;
        bytes += std::fs::metadata(&path)
            .map_err(|e| EtlError::Internal(e.to_string()))?
            .len();
        written.push(format!("{name}.lztb"));
    }
    let manifest = format!(
        "{MANIFEST_VERSION}\nmode={}\n",
        match mode {
            Mode::Lazy => "lazy",
            Mode::Eager => "eager",
        }
    );
    std::fs::write(dir.join(MANIFEST_NAME), manifest)
        .map_err(|e| EtlError::Internal(e.to_string()))?;
    Ok(SaveReport {
        mode,
        bytes,
        tables: written,
    })
}

/// Read the mode recorded in a saved-warehouse directory.
pub fn saved_mode(dir: &Path) -> Result<Mode> {
    let manifest = std::fs::read_to_string(dir.join(MANIFEST_NAME))
        .map_err(|e| EtlError::Internal(format!("no warehouse manifest in {dir:?}: {e}")))?;
    let mut lines = manifest.lines();
    if lines.next() != Some(MANIFEST_VERSION) {
        return Err(EtlError::Internal(format!(
            "unsupported warehouse manifest version in {dir:?}"
        )));
    }
    match lines.next() {
        Some("mode=lazy") => Ok(Mode::Lazy),
        Some("mode=eager") => Ok(Mode::Eager),
        other => Err(EtlError::Internal(format!(
            "bad manifest mode line {other:?}"
        ))),
    }
}

/// Load the persisted tables of a saved warehouse.
///
/// Returns `(files, records, data)`; `data` is present for eager saves.
pub fn load_saved_tables(
    dir: &Path,
) -> Result<(
    lazyetl_store::Table,
    lazyetl_store::Table,
    Option<lazyetl_store::Table>,
)> {
    let mode = saved_mode(dir)?;
    let files = load_table(&dir.join(format!("{FILES_TABLE}.lztb")))?;
    let records = load_table(&dir.join(format!("{RECORDS_TABLE}.lztb")))?;
    let data = match mode {
        Mode::Lazy => None,
        Mode::Eager => Some(load_table(&dir.join(format!("{DATA_TABLE}.lztb")))?),
    };
    Ok((files, records, data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::warehouse::WarehouseConfig;
    use lazyetl_mseed::gen::{generate_repository, GeneratorConfig};
    use std::path::PathBuf;

    fn setup(tag: &str) -> (PathBuf, PathBuf) {
        let root =
            std::env::temp_dir().join(format!("lazyetl_persist_wh_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&root).ok();
        let repo = root.join("repo");
        std::fs::create_dir_all(&repo).unwrap();
        generate_repository(&repo, &GeneratorConfig::tiny(31)).unwrap();
        (root, repo)
    }

    fn cfg() -> WarehouseConfig {
        WarehouseConfig {
            auto_refresh: false,
            ..Default::default()
        }
    }

    #[test]
    fn save_and_reload_lazy() {
        let (root, repo) = setup("lazy");
        let wh = Warehouse::open_lazy(&repo, cfg()).unwrap();
        let saved = root.join("saved");
        let report = save_warehouse(&wh, &saved).unwrap();
        assert_eq!(report.mode, Mode::Lazy);
        assert_eq!(report.tables.len(), 2);
        assert!(report.bytes > 0);
        assert_eq!(saved_mode(&saved).unwrap(), Mode::Lazy);
        let (files, records, data) = load_saved_tables(&saved).unwrap();
        assert_eq!(files.num_rows(), wh.load_report().files);
        assert_eq!(records.num_rows(), wh.load_report().records);
        assert!(data.is_none());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn save_and_reload_eager_keeps_data() {
        let (root, repo) = setup("eager");
        let wh = Warehouse::open_eager(&repo, cfg()).unwrap();
        let saved = root.join("saved");
        let report = save_warehouse(&wh, &saved).unwrap();
        assert_eq!(report.tables.len(), 3);
        let (_, _, data) = load_saved_tables(&saved).unwrap();
        let d = data.expect("eager saves D");
        assert_eq!(d.num_rows() as u64, wh.load_report().samples_loaded);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn missing_or_corrupt_manifest_rejected() {
        let dir = std::env::temp_dir().join(format!("lazyetl_persist_bad_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        assert!(saved_mode(&dir).is_err());
        std::fs::write(dir.join(MANIFEST_NAME), "garbage\nmode=lazy\n").unwrap();
        assert!(saved_mode(&dir).is_err());
        std::fs::write(
            dir.join(MANIFEST_NAME),
            "lazyetl-warehouse-v1\nmode=sideways\n",
        )
        .unwrap();
        assert!(saved_mode(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
