//! Saving and reopening warehouses without re-running ETL.
//!
//! The paper's amortization argument — lazy extraction pays for itself
//! across a *session* — extends across process lifetimes here: a save
//! persists not just the metadata tables (`F`/`R`, plus `D` for eager
//! warehouses) but the **record cache itself**, one checksummed segment
//! file per shard, so a reopened lazy warehouse answers its first query
//! from a warm cache instead of re-paying extraction.
//!
//! # On-disk layout (`lazy-warehouse-v2`)
//!
//! ```text
//! MANIFEST                     committed snapshot descriptor (see below)
//! JOURNAL                      replayable save journal (ETL-log lines)
//! files.e<N>.lztb              F table, footered (epoch N)
//! records.e<N>.lztb            R table, footered
//! data.e<N>.lztb               D table, footered (eager saves only)
//! stats.e<N>.lzst              per-table column statistics, footered
//! timeindex.e<N>.lztb          ordered record time-range index, footered
//! segments.e<N>/shard_KKK.lzsg one record-cache shard each (lazy saves)
//! ```
//!
//! The `stats` and `timeindex` sections feed cost-based planning and the
//! record-level pruning seek on reopen; manifests written before they
//! existed simply lack the lines, and such snapshots open **statless** —
//! zone maps recompute on demand and the optimizer falls back to its
//! heuristics, exactly as before the upgrade.
//!
//! # Crash consistency
//!
//! Every file is written via temp-file + fsync + rename
//! ([`lazyetl_store::persist::write_file_atomic`]) and carries an
//! integrity footer. A save writes the *next* epoch's files beside the
//! current epoch's, then atomically renames `MANIFEST.tmp` over
//! `MANIFEST` — **that rename is the commit point**. Only after the
//! commit are the previous epoch's files deleted. The ETL log doubles as
//! a replayable journal: each durable step appends one fsynced line to
//! `JOURNAL` ([`crate::log::EtlOp::journal_line`]), so recovery can
//! replay exactly how far an interrupted save got. A crash at any
//! instant therefore leaves either the old snapshot (manifest not yet
//! renamed; partial next-epoch files are swept by [`recover_saved_dir`])
//! or the new one (manifest renamed; leftover old-epoch files are swept)
//! — never a torn state. `tests/crash_recovery.rs` proves this by
//! enumerating every durable step via [`save_warehouse_crashing_at`] and
//! killing the save at each one.
//!
//! The v1 format (plain `MANIFEST` + unfootered `.lztb` files) is still
//! read for backward compatibility; saves always write v2.

use crate::cache::PendingSegment;
use crate::error::{EtlError, Result};
use crate::log::{EtlLog, EtlOp};
use crate::parallel::parallel_map;
use crate::rewrite::LocatorIndex;
use crate::schema::{DATA_TABLE, FILES_TABLE, RECORDS_TABLE};
use crate::segment::{encode_segment, segment_info, SegmentEntry};
use crate::warehouse::{Mode, Warehouse};
use lazyetl_store::persist::{
    append_footer, embedded_footer_checksum, load_table, load_table_verified, split_footer,
    sync_parent_dir, table_to_footered_bytes, tmp_path,
};
use lazyetl_store::stats::{stats_from_bytes, stats_to_bytes, table_stats, ColumnStats};
use lazyetl_store::Table;
use std::io::Write;
use std::path::Path;

/// Name of the manifest file inside a saved-warehouse directory.
pub const MANIFEST_NAME: &str = "MANIFEST";
/// Name of the save journal inside a saved-warehouse directory.
pub const JOURNAL_NAME: &str = "JOURNAL";
const MANIFEST_V1: &str = "lazyetl-warehouse-v1";
const MANIFEST_V2: &str = "lazyetl-warehouse-v2";
/// Base name of the persisted statistics file (`stats.e<N>.lzst`).
const STATS_BASE: &str = "stats";
/// Base name of the persisted time index (`timeindex.e<N>.lztb`).
const TIMEINDEX_BASE: &str = "timeindex";
/// Error-message marker of an injected crash (test hook).
pub const CRASH_MARKER: &str = "crash-injected";

fn internal(e: impl std::fmt::Display) -> EtlError {
    EtlError::Internal(e.to_string())
}

/// What [`save_warehouse`] wrote.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SaveReport {
    /// Mode that was saved.
    pub mode: Mode,
    /// Total bytes written (tables + segments, footers included).
    pub bytes: u64,
    /// Table files written.
    pub tables: Vec<String>,
    /// Cache segment files written (lazy saves; empty shards skipped).
    pub segments: Vec<String>,
    /// Column-statistics file written alongside the tables.
    pub stats_file: Option<String>,
    /// Ordered time-range index file written alongside the tables.
    pub index_file: Option<String>,
    /// Snapshot epoch this save committed.
    pub epoch: u64,
    /// Number of durable steps the save performed — the domain of
    /// [`save_warehouse_crashing_at`]'s crash points.
    pub crash_points: usize,
}

/// One file recorded in a v2 manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SavedFile {
    /// Path relative to the saved directory.
    pub name: String,
    /// File size in bytes (footer included).
    pub bytes: u64,
    /// Body checksum (what the footer carries).
    pub checksum: u64,
    /// Entries (segments) — 0 for tables.
    pub entries: usize,
    /// Source cache shard (segments) — 0 for tables.
    pub shard: usize,
}

/// Parsed contents of a saved-warehouse manifest (v1 or v2).
#[derive(Debug, Clone)]
pub struct SavedManifest {
    /// Format version: 1 (legacy) or 2.
    pub version: u16,
    /// Mode that was saved.
    pub mode: Mode,
    /// Snapshot epoch (0 for v1).
    pub epoch: u64,
    /// Cache shard count at save time (0 for v1 / eager saves).
    pub shards: usize,
    /// Catalog table files in F, R\[, D\] order.
    pub tables: Vec<SavedFile>,
    /// Cache segment files.
    pub segments: Vec<SavedFile>,
    /// Persisted column statistics (absent in v1 and pre-upgrade v2
    /// snapshots — those open statless).
    pub stats: Option<SavedFile>,
    /// Persisted ordered time-range index (absent pre-upgrade).
    pub time_index: Option<SavedFile>,
}

fn mode_str(mode: Mode) -> &'static str {
    match mode {
        Mode::Lazy => "lazy",
        Mode::Eager => "eager",
    }
}

/// Read and parse the manifest of a saved-warehouse directory.
pub fn read_manifest(dir: &Path) -> Result<SavedManifest> {
    let text = std::fs::read_to_string(dir.join(MANIFEST_NAME))
        .map_err(|e| internal(format!("no warehouse manifest in {dir:?}: {e}")))?;
    let mut lines = lines_of(&text);
    let version = match lines.next() {
        Some(MANIFEST_V1) => 1u16,
        Some(MANIFEST_V2) => 2,
        other => {
            return Err(internal(format!(
                "unsupported warehouse manifest version {other:?} in {dir:?}"
            )))
        }
    };
    let mode = match lines.next() {
        Some("mode=lazy") => Mode::Lazy,
        Some("mode=eager") => Mode::Eager,
        other => return Err(internal(format!("bad manifest mode line {other:?}"))),
    };
    if version == 1 {
        let mut tables = vec![v1_file(FILES_TABLE), v1_file(RECORDS_TABLE)];
        if mode == Mode::Eager {
            tables.push(v1_file(DATA_TABLE));
        }
        return Ok(SavedManifest {
            version,
            mode,
            epoch: 0,
            shards: 0,
            tables,
            segments: Vec::new(),
            stats: None,
            time_index: None,
        });
    }
    let epoch = kv_line(lines.next(), "epoch")?
        .parse::<u64>()
        .map_err(|e| internal(format!("bad manifest epoch: {e}")))?;
    let shards = kv_line(lines.next(), "shards")?
        .parse::<usize>()
        .map_err(|e| internal(format!("bad manifest shards: {e}")))?;
    let mut tables = Vec::new();
    let mut segments = Vec::new();
    let mut stats = None;
    let mut time_index = None;
    for line in lines {
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some(kind @ ("stats" | "index")) => {
                // stats|index <bytes> <checksum-hex> <name>
                let bytes = parse_num(parts.next(), "stats bytes")?;
                let checksum = parse_hex(parts.next(), "stats checksum")?;
                let name = parts.collect::<Vec<_>>().join(" ");
                let file = SavedFile {
                    name,
                    bytes,
                    checksum,
                    entries: 0,
                    shard: 0,
                };
                if kind == "stats" {
                    stats = Some(file);
                } else {
                    time_index = Some(file);
                }
            }
            Some("table") => {
                // table <bytes> <checksum-hex> <name>
                let bytes = parse_num(parts.next(), "table bytes")?;
                let checksum = parse_hex(parts.next(), "table checksum")?;
                let name = parts.collect::<Vec<_>>().join(" ");
                tables.push(SavedFile {
                    name,
                    bytes,
                    checksum,
                    entries: 0,
                    shard: 0,
                });
            }
            Some("segment") => {
                // segment <shard> <entries> <bytes> <checksum-hex> <path>
                let shard = parse_num(parts.next(), "segment shard")? as usize;
                let entries = parse_num(parts.next(), "segment entries")? as usize;
                let bytes = parse_num(parts.next(), "segment bytes")?;
                let checksum = parse_hex(parts.next(), "segment checksum")?;
                let name = parts.collect::<Vec<_>>().join(" ");
                segments.push(SavedFile {
                    name,
                    bytes,
                    checksum,
                    entries,
                    shard,
                });
            }
            Some(other) => return Err(internal(format!("unknown manifest line kind {other:?}"))),
            None => {}
        }
    }
    if tables.len() < 2 {
        return Err(internal("manifest lists fewer than two tables"));
    }
    Ok(SavedManifest {
        version,
        mode,
        epoch,
        shards,
        tables,
        segments,
        stats,
        time_index,
    })
}

fn lines_of(text: &str) -> impl Iterator<Item = &str> {
    text.lines().map(str::trim).filter(|l| !l.is_empty())
}

fn v1_file(table: &str) -> SavedFile {
    SavedFile {
        name: format!("{table}.lztb"),
        bytes: 0,
        checksum: 0,
        entries: 0,
        shard: 0,
    }
}

fn kv_line<'a>(line: Option<&'a str>, key: &str) -> Result<&'a str> {
    line.and_then(|l| l.strip_prefix(key).and_then(|r| r.strip_prefix('=')))
        .ok_or_else(|| internal(format!("manifest missing {key}= line")))
}

fn parse_num(tok: Option<&str>, what: &str) -> Result<u64> {
    tok.and_then(|t| t.parse::<u64>().ok())
        .ok_or_else(|| internal(format!("bad manifest field: {what}")))
}

fn parse_hex(tok: Option<&str>, what: &str) -> Result<u64> {
    tok.and_then(|t| u64::from_str_radix(t, 16).ok())
        .ok_or_else(|| internal(format!("bad manifest field: {what}")))
}

/// Read the mode recorded in a saved-warehouse directory (v1 or v2).
pub fn saved_mode(dir: &Path) -> Result<Mode> {
    Ok(read_manifest(dir)?.mode)
}

/// Load the persisted catalog tables of a saved warehouse.
///
/// Returns `(files, records, data)`; `data` is present for eager saves.
/// v2 tables are checksum-verified against both their footer and the
/// manifest; v1 tables load with the legacy reader.
pub fn load_saved_tables(dir: &Path) -> Result<(Table, Table, Option<Table>)> {
    let manifest = read_manifest(dir)?;
    let mut loaded = Vec::with_capacity(manifest.tables.len());
    for f in &manifest.tables {
        let path = dir.join(&f.name);
        let table = if manifest.version == 1 {
            load_table(&path)?
        } else {
            let (table, sum) = load_table_verified(&path)?;
            if sum != f.checksum {
                return Err(internal(format!(
                    "table {} checksum {sum:#x} != manifest {:#x}",
                    f.name, f.checksum
                )));
            }
            table
        };
        loaded.push(table);
    }
    let mut it = loaded.into_iter();
    let files = it.next().ok_or_else(|| internal("files table missing"))?;
    let records = it.next().ok_or_else(|| internal("records table missing"))?;
    Ok((files, records, it.next()))
}

// ---------------------------------------------------------------------------
// Journal
// ---------------------------------------------------------------------------

/// Append-only, fsynced writer for the on-disk save journal. Every
/// appended op is also pushed to the warehouse's ETL log, which is what
/// makes the log "double as" the journal.
struct Journal {
    file: std::fs::File,
}

impl Journal {
    /// Start a fresh journal for one save (truncates any previous one —
    /// recovery has already consumed it by the time a save begins).
    fn create(dir: &Path) -> Result<Journal> {
        let file = std::fs::File::create(dir.join(JOURNAL_NAME)).map_err(internal)?;
        Ok(Journal { file })
    }

    fn append(&mut self, log: &EtlLog, op: EtlOp) -> Result<()> {
        let line = op
            .journal_line()
            .ok_or_else(|| internal("op is not journalable"))?;
        self.file
            .write_all(format!("{line}\n").as_bytes())
            .and_then(|_| self.file.sync_all())
            .map_err(internal)?;
        log.push(op);
        Ok(())
    }
}

/// Replay the journal of a saved directory into operations, oldest
/// first. Torn or foreign lines (a crash can cut the last append short)
/// are skipped.
pub fn replay_journal(dir: &Path) -> Vec<EtlOp> {
    let Ok(text) = std::fs::read_to_string(dir.join(JOURNAL_NAME)) else {
        return Vec::new();
    };
    text.lines().filter_map(EtlOp::parse_journal_line).collect()
}

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

/// What [`recover_saved_dir`] did.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Epoch of an interrupted (begun, never committed) save that was
    /// rolled back, if any.
    pub rolled_back: Option<u64>,
    /// Files and directories removed (relative names).
    pub removed: Vec<String>,
    /// Journal operations replayed (for the reopened warehouse's log).
    pub replayed: Vec<EtlOp>,
}

fn epoch_of_table_file(name: &str) -> Option<u64> {
    let rest = name
        .strip_suffix(".lztb")
        .or_else(|| name.strip_suffix(".lzst"))?;
    let (base, epoch) = rest.rsplit_once(".e")?;
    if base != FILES_TABLE
        && base != RECORDS_TABLE
        && base != DATA_TABLE
        && base != STATS_BASE
        && base != TIMEINDEX_BASE
    {
        return None;
    }
    epoch.parse().ok()
}

fn epoch_of_segments_dir(name: &str) -> Option<u64> {
    name.strip_prefix("segments.e")?.parse().ok()
}

/// The single definition of save-directory debris: stray temp files,
/// epoch-stamped files/directories not belonging to the committed epoch,
/// and — once a v2 manifest is committed — the superseded unstamped v1
/// tables (a v1→v2 upgrade save killed between commit and cleanup must
/// not orphan them forever). Shared by the recovery sweep and the
/// [`stray_files`] diagnostic so the two can never drift apart.
fn is_stale_name(name: &str, live_epoch: Option<u64>, live_is_v2: bool) -> bool {
    if name.ends_with(".tmp") {
        return true;
    }
    if live_is_v2
        && [FILES_TABLE, RECORDS_TABLE, DATA_TABLE]
            .iter()
            .any(|t| name == format!("{t}.lztb"))
    {
        return true;
    }
    epoch_of_table_file(name)
        .or_else(|| epoch_of_segments_dir(name))
        .is_some_and(|ep| live_epoch != Some(ep))
}

/// Does a (possibly `.tmp`-suffixed) name carry epoch `epoch`'s stamp?
fn belongs_to_epoch(name: &str, epoch: u64) -> bool {
    let base = name.strip_suffix(".tmp").unwrap_or(name);
    epoch_of_table_file(base)
        .or_else(|| epoch_of_segments_dir(base))
        .is_some_and(|ep| ep == epoch)
}

/// Bring a saved directory back to a consistent snapshot after a crash.
///
/// Replays the journal, then sweeps the directory: stray `*.tmp` files
/// always go; epoch-stamped files and segment directories that do not
/// belong to the committed manifest epoch are removed (they are either a
/// rolled-back in-flight save or an already-superseded old snapshot whose
/// cleanup was interrupted). With no manifest at all, any epoch debris is
/// from a first save that never committed and is likewise removed. A
/// *corrupt* manifest is left alone — recovery cannot tell which epoch is
/// live, and the subsequent open fails loudly instead. Idempotent; called
/// by both [`save_warehouse`] and `Warehouse::open_saved`.
pub fn recover_saved_dir(dir: &Path) -> Result<RecoveryReport> {
    let mut report = RecoveryReport {
        replayed: replay_journal(dir),
        ..Default::default()
    };
    if !dir.exists() {
        return Ok(report);
    }
    let manifest_exists = dir.join(MANIFEST_NAME).exists();
    let manifest = read_manifest(dir).ok();
    if manifest_exists && manifest.is_none() {
        // Corrupt manifest: sweep nothing we could regret.
        return Ok(report);
    }
    let live_epoch = manifest.as_ref().map(|m| m.epoch);
    let live_is_v2 = manifest.as_ref().is_some_and(|m| m.version == 2);

    // Which epoch did an interrupted save try to write?
    let mut begun: Option<u64> = None;
    let mut committed: Option<u64> = None;
    for op in &report.replayed {
        match op {
            EtlOp::SaveBegin { epoch } => begun = Some(*epoch),
            EtlOp::SaveCommit { epoch } => committed = Some(*epoch),
            _ => {}
        }
    }
    if manifest.is_none() && committed.is_some() {
        // The journal proves a commit happened, yet the manifest is gone
        // — external damage (partial copy, stray delete), not a crashed
        // save, which always leaves the old or new manifest in place.
        // Same policy as a corrupt manifest: preserve everything so a
        // backup of MANIFEST can restore the warehouse.
        return Ok(report);
    }

    let entries = std::fs::read_dir(dir).map_err(internal)?;
    for entry in entries {
        let entry = entry.map_err(internal)?;
        let name = entry.file_name().to_string_lossy().to_string();
        let path = entry.path();
        if is_stale_name(&name, live_epoch, live_is_v2) {
            let removed = if path.is_dir() {
                std::fs::remove_dir_all(&path).is_ok()
            } else {
                std::fs::remove_file(&path).is_ok()
            };
            if removed {
                report.removed.push(name);
            }
        }
    }

    // A rollback is only reported when this sweep actually removed the
    // interrupted epoch's files — the journal keeps its begin-without-
    // commit record until the next save truncates it, and re-announcing
    // an already-completed rollback on every reopen would read as
    // repeated crashes.
    if let (Some(b), true) = (begun, committed != begun) {
        if live_epoch != Some(b) && report.removed.iter().any(|n| belongs_to_epoch(n, b)) {
            report.rolled_back = Some(b);
        }
    }
    if report.rolled_back.is_some() || !report.removed.is_empty() {
        sync_parent_dir(&dir.join(MANIFEST_NAME));
    }
    Ok(report)
}

// ---------------------------------------------------------------------------
// Save
// ---------------------------------------------------------------------------

/// Counts the save's durable steps and, in the crash-injection harness,
/// aborts the save exactly where a kill signal would have caught it.
struct SaveCtx {
    stop_at: Option<usize>,
    steps: usize,
}

impl SaveCtx {
    /// One crash point: a place where the process could die with all
    /// previous side effects on disk and none of the following ones.
    fn step(&mut self) -> Result<()> {
        self.steps += 1;
        if self.stop_at == Some(self.steps) {
            return Err(internal(format!("{CRASH_MARKER} at step {}", self.steps)));
        }
        Ok(())
    }

    /// Atomic file write instrumented with three crash points: before
    /// anything, after a *torn* temp file (the half-written page a real
    /// kill leaves behind), and after the durable temp but before the
    /// rename.
    fn write_atomic(&mut self, path: &Path, bytes: &[u8]) -> Result<()> {
        self.step()?;
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).map_err(internal)?;
        }
        let tmp = tmp_path(path);
        self.steps += 1;
        if self.stop_at == Some(self.steps) {
            std::fs::write(&tmp, &bytes[..bytes.len() / 2]).map_err(internal)?;
            return Err(internal(format!("{CRASH_MARKER} at step {}", self.steps)));
        }
        {
            let mut f = std::fs::File::create(&tmp).map_err(internal)?;
            f.write_all(bytes)
                .and_then(|_| f.sync_all())
                .map_err(internal)?;
        }
        self.step()?;
        std::fs::rename(&tmp, path).map_err(internal)?;
        sync_parent_dir(path);
        Ok(())
    }

    fn remove(&mut self, path: &Path, removed: &mut u64) -> Result<()> {
        self.step()?;
        let ok = if path.is_dir() {
            std::fs::remove_dir_all(path).is_ok()
        } else {
            std::fs::remove_file(path).is_ok()
        };
        *removed += u64::from(ok);
        Ok(())
    }
}

/// Persist a warehouse durably under `dir` (format v2; see the module
/// docs for the layout and the crash-consistency protocol).
///
/// Concurrent queries may keep running — the catalog is snapshotted under
/// the shared read lock and the cache shard by shard — but two *saves*
/// into the same directory must not overlap.
pub fn save_warehouse(wh: &Warehouse, dir: &Path) -> Result<SaveReport> {
    save_inner(wh, dir, None)
}

/// Crash-injection variant of [`save_warehouse`]: performs the save's
/// durable steps up to (but excluding) step `crash_at`, then aborts with
/// a [`CRASH_MARKER`] error — on-disk state is exactly what a process
/// kill at that instant would leave. [`SaveReport::crash_points`] of a
/// completed save enumerates the valid range. Test/bench hook.
pub fn save_warehouse_crashing_at(
    wh: &Warehouse,
    dir: &Path,
    crash_at: usize,
) -> Result<SaveReport> {
    save_inner(wh, dir, Some(crash_at))
}

fn save_inner(wh: &Warehouse, dir: &Path, stop_at: Option<usize>) -> Result<SaveReport> {
    std::fs::create_dir_all(dir).map_err(internal)?;
    let recovery = recover_saved_dir(dir)?;
    // A manifest that is unreadable — or missing while the journal
    // proves a commit happened — is externally damaged state recovery
    // deliberately preserved for offline repair; writing over its epoch
    // files here would destroy that option. Fail loudly, like
    // `open_saved` does.
    let prev = match read_manifest(dir) {
        Ok(m) => Some(m),
        Err(_) if !dir.join(MANIFEST_NAME).exists() => {
            if recovery
                .replayed
                .iter()
                .any(|op| matches!(op, EtlOp::SaveCommit { .. }))
            {
                return Err(internal(format!(
                    "refusing to save over {dir:?}: its manifest is missing but the \
                     journal records a committed snapshot"
                )));
            }
            None
        }
        Err(e) => {
            return Err(internal(format!(
                "refusing to save over an unreadable manifest in {dir:?}: {e}"
            )))
        }
    };
    let epoch = prev.as_ref().map_or(0, |m| m.epoch) + 1;
    let mode = wh.mode();
    let log = wh.etl_log();
    let mut ctx = SaveCtx { stop_at, steps: 0 };

    ctx.step()?;
    let mut journal = Journal::create(dir)?;
    journal.append(log, EtlOp::SaveBegin { epoch })?;

    // Snapshot the catalog tables under the shared read lock, then let
    // queries flow again while everything is encoded and written.
    let table_names: &[&str] = match mode {
        Mode::Lazy => &[FILES_TABLE, RECORDS_TABLE],
        Mode::Eager => &[FILES_TABLE, RECORDS_TABLE, DATA_TABLE],
    };
    let snapshots: Vec<(String, Table)> = {
        let catalog = wh.catalog();
        table_names
            .iter()
            .map(|name| {
                catalog
                    .table(name)
                    .cloned()
                    .map(|t| (name.to_string(), t))
                    .ok_or_else(|| internal(format!("table {name} missing")))
            })
            .collect::<Result<_>>()?
    };

    let mut bytes_total = 0u64;
    let mut tables = Vec::new();
    let mut manifest_tables = Vec::new();
    for (name, table) in &snapshots {
        let fname = format!("{name}.e{epoch}.lztb");
        let buf = table_to_footered_bytes(table)?;
        let checksum =
            embedded_footer_checksum(&buf).expect("footered tables always carry a footer");
        ctx.write_atomic(&dir.join(&fname), &buf)?;
        ctx.step()?;
        journal.append(
            log,
            EtlOp::SaveTable {
                name: fname.clone(),
                bytes: buf.len() as u64,
                checksum,
            },
        )?;
        bytes_total += buf.len() as u64;
        manifest_tables.push(SavedFile {
            name: fname.clone(),
            bytes: buf.len() as u64,
            checksum,
            entries: 0,
            shard: 0,
        });
        tables.push(fname);
    }

    // Column statistics + the ordered time index ride along with every
    // save, computed from the very snapshots written above so they can
    // never describe different rows. Reopen seeds zone maps and the
    // pruning seek from them instead of recomputing.
    let stats_payload: Vec<(String, Vec<ColumnStats>)> = snapshots
        .iter()
        .map(|(name, table)| (name.clone(), table_stats(table)))
        .collect();
    let mut stats_buf = stats_to_bytes(&stats_payload);
    append_footer(&mut stats_buf);
    let stats_name = format!("{STATS_BASE}.e{epoch}.lzst");
    let stats_checksum = embedded_footer_checksum(&stats_buf).expect("footer appended just above");
    ctx.write_atomic(&dir.join(&stats_name), &stats_buf)?;
    ctx.step()?;
    journal.append(
        log,
        EtlOp::SaveTable {
            name: stats_name.clone(),
            bytes: stats_buf.len() as u64,
            checksum: stats_checksum,
        },
    )?;
    bytes_total += stats_buf.len() as u64;
    let manifest_stats = SavedFile {
        name: stats_name,
        bytes: stats_buf.len() as u64,
        checksum: stats_checksum,
        entries: 0,
        shard: 0,
    };

    let records_snapshot = snapshots
        .iter()
        .find(|(n, _)| n == RECORDS_TABLE)
        .map(|(_, t)| t)
        .ok_or_else(|| internal("records snapshot missing"))?;
    let index_table = LocatorIndex::build(records_snapshot)?.to_time_index_table()?;
    let index_buf = table_to_footered_bytes(&index_table)?;
    let index_name = format!("{TIMEINDEX_BASE}.e{epoch}.lztb");
    let index_checksum =
        embedded_footer_checksum(&index_buf).expect("footered tables always carry a footer");
    ctx.write_atomic(&dir.join(&index_name), &index_buf)?;
    ctx.step()?;
    journal.append(
        log,
        EtlOp::SaveTable {
            name: index_name.clone(),
            bytes: index_buf.len() as u64,
            checksum: index_checksum,
        },
    )?;
    bytes_total += index_buf.len() as u64;
    let manifest_index = SavedFile {
        name: index_name,
        bytes: index_buf.len() as u64,
        checksum: index_checksum,
        entries: 0,
        shard: 0,
    };

    // Cache segments (lazy mode): encode shards in parallel on the same
    // worker pool as extraction, write sequentially (ordered crash
    // points). Empty shards produce no file.
    let mut segments = Vec::new();
    let mut manifest_segments = Vec::new();
    let mut saved_shards = 0usize;
    if mode == Mode::Lazy {
        let shards = wh.record_cache().export_shards();
        saved_shards = shards.len();
        let threads = if stop_at.is_some() {
            1
        } else {
            wh.config().extraction_threads.max(1)
        };
        let indexed: Vec<(usize, &Vec<SegmentEntry>)> = shards
            .iter()
            .enumerate()
            .filter(|(_, entries)| !entries.is_empty())
            .collect();
        let encoded: Vec<Result<Vec<u8>>> =
            parallel_map(&indexed, threads, |(_, entries)| encode_segment(entries));
        for ((shard, entries), buf) in indexed.into_iter().zip(encoded) {
            let buf = buf?;
            let info = segment_info(entries.len(), &buf);
            let rel = format!("segments.e{epoch}/shard_{shard:03}.lzsg");
            ctx.write_atomic(&dir.join(&rel), &buf)?;
            ctx.step()?;
            journal.append(
                log,
                EtlOp::SaveSegment {
                    shard,
                    path: rel.clone(),
                    entries: info.entries,
                    bytes: info.bytes,
                    checksum: info.checksum,
                },
            )?;
            bytes_total += info.bytes;
            manifest_segments.push(SavedFile {
                name: rel.clone(),
                bytes: info.bytes,
                checksum: info.checksum,
                entries: info.entries,
                shard,
            });
            segments.push(rel);
        }
    }

    // Commit: render the manifest and rename it into place.
    let mut manifest = format!(
        "{MANIFEST_V2}\nmode={}\nepoch={epoch}\nshards={saved_shards}\n",
        mode_str(mode)
    );
    for t in &manifest_tables {
        manifest.push_str(&format!("table {} {:x} {}\n", t.bytes, t.checksum, t.name));
    }
    manifest.push_str(&format!(
        "stats {} {:x} {}\n",
        manifest_stats.bytes, manifest_stats.checksum, manifest_stats.name
    ));
    manifest.push_str(&format!(
        "index {} {:x} {}\n",
        manifest_index.bytes, manifest_index.checksum, manifest_index.name
    ));
    for s in &manifest_segments {
        manifest.push_str(&format!(
            "segment {} {} {} {:x} {}\n",
            s.shard, s.entries, s.bytes, s.checksum, s.name
        ));
    }
    ctx.write_atomic(&dir.join(MANIFEST_NAME), manifest.as_bytes())?;
    ctx.step()?;
    journal.append(log, EtlOp::SaveCommit { epoch })?;

    // Cleanup: the previous epoch's files are now unreachable.
    let mut removed = 0u64;
    if let Some(prev) = &prev {
        for f in prev
            .tables
            .iter()
            .chain(&prev.segments)
            .chain(&prev.stats)
            .chain(&prev.time_index)
        {
            ctx.remove(&dir.join(&f.name), &mut removed)?;
        }
        if prev.version == 2 {
            ctx.remove(&dir.join(format!("segments.e{}", prev.epoch)), &mut removed)?;
        }
    }
    ctx.step()?;
    journal.append(log, EtlOp::SaveCleanup { epoch })?;

    Ok(SaveReport {
        mode,
        bytes: bytes_total,
        tables,
        segments,
        stats_file: Some(manifest_stats.name.clone()),
        index_file: Some(manifest_index.name.clone()),
        epoch,
        crash_points: ctx.steps,
    })
}

/// Per-table column statistics as persisted in the snapshot's stats
/// section: one `(table name, per-column stats)` entry per saved table.
pub type SavedStats = Vec<(String, Vec<ColumnStats>)>;

/// Load the persisted column statistics of a saved warehouse, verified
/// against both the embedded footer and the manifest checksum. Returns
/// `Ok(None)` for snapshots that predate the stats section.
pub fn load_saved_stats(dir: &Path, manifest: &SavedManifest) -> Result<Option<SavedStats>> {
    let Some(f) = &manifest.stats else {
        return Ok(None);
    };
    let bytes = std::fs::read(dir.join(&f.name)).map_err(internal)?;
    let (payload, sum) = split_footer(&bytes)?;
    if sum != f.checksum {
        return Err(internal(format!(
            "stats {} checksum {sum:#x} != manifest {:#x}",
            f.name, f.checksum
        )));
    }
    Ok(Some(stats_from_bytes(payload)?))
}

/// Load the persisted ordered time index of a saved warehouse, verified
/// against the manifest checksum. Returns `Ok(None)` for snapshots that
/// predate the index section.
pub fn load_saved_time_index(dir: &Path, manifest: &SavedManifest) -> Result<Option<Table>> {
    let Some(f) = &manifest.time_index else {
        return Ok(None);
    };
    let (table, sum) = load_table_verified(&dir.join(&f.name))?;
    if sum != f.checksum {
        return Err(internal(format!(
            "time index {} checksum {sum:#x} != manifest {:#x}",
            f.name, f.checksum
        )));
    }
    Ok(Some(table))
}

/// The segments a reopening warehouse should attach for rehydration:
/// `(saved shard count, [(shard, pending segment)])`. `valid` maps
/// file_id → current mtime for files whose saved rows survived the
/// reopen reconciliation unchanged.
pub fn segments_to_attach(
    dir: &Path,
    manifest: &SavedManifest,
    valid: std::collections::HashMap<i64, lazyetl_mseed::Timestamp>,
) -> (usize, Vec<(usize, PendingSegment)>) {
    // One shared map: the reconciliation verdict is per-file, so every
    // segment reads (and every revocation writes) the same instance.
    let valid = std::sync::Arc::new(std::sync::Mutex::new(valid));
    let segs = manifest
        .segments
        .iter()
        .map(|s| {
            (
                s.shard,
                PendingSegment {
                    path: dir.join(&s.name),
                    checksum: s.checksum,
                    valid: valid.clone(),
                },
            )
        })
        .collect();
    (manifest.shards, segs)
}

/// Write a **v1** save (metadata tables + plain manifest) — kept only so
/// tests can prove v2 code still opens legacy directories.
pub fn save_warehouse_v1(wh: &Warehouse, dir: &Path) -> Result<SaveReport> {
    std::fs::create_dir_all(dir).map_err(internal)?;
    let mode = wh.mode();
    let table_names: &[&str] = match mode {
        Mode::Lazy => &[FILES_TABLE, RECORDS_TABLE],
        Mode::Eager => &[FILES_TABLE, RECORDS_TABLE, DATA_TABLE],
    };
    let mut bytes = 0u64;
    let mut tables = Vec::new();
    let catalog = wh.catalog();
    for name in table_names {
        let table = catalog
            .table(name)
            .ok_or_else(|| internal(format!("table {name} missing")))?;
        let path = dir.join(format!("{name}.lztb"));
        lazyetl_store::persist::save_table(table, &path)?;
        bytes += std::fs::metadata(&path).map_err(internal)?.len();
        tables.push(format!("{name}.lztb"));
    }
    // Even the legacy manifest is written atomically now (tmp + fsync +
    // rename): the file that names the snapshot must never be torn.
    let manifest = format!("{MANIFEST_V1}\nmode={}\n", mode_str(mode));
    lazyetl_store::persist::write_file_atomic(&dir.join(MANIFEST_NAME), manifest.as_bytes())?;
    Ok(SaveReport {
        mode,
        bytes,
        tables,
        segments: Vec::new(),
        stats_file: None,
        index_file: None,
        epoch: 0,
        crash_points: 0,
    })
}

/// Stray temp files or epoch debris present in a saved directory —
/// diagnostics for tests asserting a directory is clean.
pub fn stray_files(dir: &Path) -> Vec<String> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let manifest = read_manifest(dir).ok();
    let live = manifest.as_ref().map(|m| m.epoch);
    let live_is_v2 = manifest.is_some_and(|m| m.version == 2);
    entries
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().to_string())
        .filter(|name| is_stale_name(name, live, live_is_v2))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::warehouse::WarehouseConfig;
    use lazyetl_mseed::gen::{generate_repository, GeneratorConfig};
    use std::path::PathBuf;

    fn setup(tag: &str) -> (PathBuf, PathBuf) {
        let root =
            std::env::temp_dir().join(format!("lazyetl_persist_wh_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&root).ok();
        let repo = root.join("repo");
        std::fs::create_dir_all(&repo).unwrap();
        generate_repository(&repo, &GeneratorConfig::tiny(31)).unwrap();
        (root, repo)
    }

    fn cfg() -> WarehouseConfig {
        WarehouseConfig {
            auto_refresh: false,
            ..Default::default()
        }
    }

    #[test]
    fn save_and_reload_lazy() {
        let (root, repo) = setup("lazy");
        let wh = Warehouse::open_lazy(&repo, cfg()).unwrap();
        let saved = root.join("saved");
        let report = save_warehouse(&wh, &saved).unwrap();
        assert_eq!(report.mode, Mode::Lazy);
        assert_eq!(report.tables.len(), 2);
        assert_eq!(report.epoch, 1);
        assert!(report.bytes > 0);
        assert!(report.crash_points > 5);
        assert_eq!(saved_mode(&saved).unwrap(), Mode::Lazy);
        let (files, records, data) = load_saved_tables(&saved).unwrap();
        assert_eq!(files.num_rows(), wh.load_report().files);
        assert_eq!(records.num_rows(), wh.load_report().records);
        assert!(data.is_none());
        // Stats + time index ride along with every v2 save.
        assert_eq!(report.stats_file.as_deref(), Some("stats.e1.lzst"));
        assert_eq!(report.index_file.as_deref(), Some("timeindex.e1.lztb"));
        let manifest = read_manifest(&saved).unwrap();
        let stats = load_saved_stats(&saved, &manifest)
            .unwrap()
            .expect("stats persisted");
        assert!(stats.iter().any(|(n, _)| n == FILES_TABLE));
        assert!(stats.iter().any(|(n, _)| n == RECORDS_TABLE));
        let idx = load_saved_time_index(&saved, &manifest)
            .unwrap()
            .expect("time index persisted");
        assert_eq!(idx.num_rows(), wh.load_report().records);
        assert!(stray_files(&saved).is_empty());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn pre_upgrade_v2_manifest_opens_statless() {
        let (root, repo) = setup("statless");
        let wh = Warehouse::open_lazy(&repo, cfg()).unwrap();
        let saved = root.join("saved");
        save_warehouse(&wh, &saved).unwrap();
        // Rewrite the manifest without its stats/index lines — exactly
        // what a snapshot written before the sections existed looks like
        // — and delete the now-unreferenced files.
        let text = std::fs::read_to_string(saved.join(MANIFEST_NAME)).unwrap();
        let stripped: String = text
            .lines()
            .filter(|l| !l.starts_with("stats ") && !l.starts_with("index "))
            .map(|l| format!("{l}\n"))
            .collect();
        lazyetl_store::persist::write_file_atomic(&saved.join(MANIFEST_NAME), stripped.as_bytes())
            .unwrap();
        std::fs::remove_file(saved.join("stats.e1.lzst")).unwrap();
        std::fs::remove_file(saved.join("timeindex.e1.lztb")).unwrap();
        let manifest = read_manifest(&saved).unwrap();
        assert!(manifest.stats.is_none());
        assert!(manifest.time_index.is_none());
        assert!(load_saved_stats(&saved, &manifest).unwrap().is_none());
        assert!(load_saved_time_index(&saved, &manifest).unwrap().is_none());
        // The tables themselves still load: the snapshot is usable.
        assert!(load_saved_tables(&saved).is_ok());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn save_and_reload_eager_keeps_data() {
        let (root, repo) = setup("eager");
        let wh = Warehouse::open_eager(&repo, cfg()).unwrap();
        let saved = root.join("saved");
        let report = save_warehouse(&wh, &saved).unwrap();
        assert_eq!(report.tables.len(), 3);
        assert!(report.segments.is_empty(), "eager mode has no record cache");
        let (_, _, data) = load_saved_tables(&saved).unwrap();
        let d = data.expect("eager saves D");
        assert_eq!(d.num_rows() as u64, wh.load_report().samples_loaded);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn missing_or_corrupt_manifest_rejected() {
        let dir = std::env::temp_dir().join(format!("lazyetl_persist_bad_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        assert!(saved_mode(&dir).is_err());
        std::fs::write(dir.join(MANIFEST_NAME), "garbage\nmode=lazy\n").unwrap();
        assert!(saved_mode(&dir).is_err());
        std::fs::write(
            dir.join(MANIFEST_NAME),
            "lazyetl-warehouse-v1\nmode=sideways\n",
        )
        .unwrap();
        assert!(saved_mode(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn second_save_bumps_epoch_and_cleans_previous() {
        let (root, repo) = setup("epochs");
        let wh = Warehouse::open_lazy(&repo, cfg()).unwrap();
        let saved = root.join("saved");
        let r1 = save_warehouse(&wh, &saved).unwrap();
        // Warm the cache so the second save has segments too.
        wh.query("SELECT COUNT(D.sample_value) FROM mseed.dataview")
            .unwrap();
        let r2 = save_warehouse(&wh, &saved).unwrap();
        assert_eq!(r1.epoch, 1);
        assert_eq!(r2.epoch, 2);
        assert!(!r2.segments.is_empty(), "warm cache produced segments");
        assert!(saved.join("files.e2.lztb").exists());
        assert!(!saved.join("files.e1.lztb").exists(), "old epoch swept");
        assert!(saved.join("stats.e2.lzst").exists());
        assert!(!saved.join("stats.e1.lzst").exists(), "old stats swept");
        assert!(saved.join("timeindex.e2.lztb").exists());
        assert!(!saved.join("timeindex.e1.lztb").exists());
        assert!(stray_files(&saved).is_empty());
        let manifest = read_manifest(&saved).unwrap();
        assert_eq!(manifest.epoch, 2);
        assert_eq!(manifest.segments.len(), r2.segments.len());
        // The journal replays begin → tables → segments → commit → cleanup.
        let ops = replay_journal(&saved);
        assert!(matches!(ops.first(), Some(EtlOp::SaveBegin { epoch: 2 })));
        assert!(ops
            .iter()
            .any(|op| matches!(op, EtlOp::SaveCommit { epoch: 2 })));
        assert!(ops
            .iter()
            .any(|op| matches!(op, EtlOp::SaveCleanup { epoch: 2 })));
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn v1_layout_still_parses() {
        let (root, repo) = setup("v1compat");
        let wh = Warehouse::open_lazy(&repo, cfg()).unwrap();
        let saved = root.join("saved_v1");
        let report = save_warehouse_v1(&wh, &saved).unwrap();
        assert_eq!(report.epoch, 0);
        let manifest = read_manifest(&saved).unwrap();
        assert_eq!(manifest.version, 1);
        assert_eq!(manifest.mode, Mode::Lazy);
        let (files, records, data) = load_saved_tables(&saved).unwrap();
        assert_eq!(files.num_rows(), wh.load_report().files);
        assert_eq!(records.num_rows(), wh.load_report().records);
        assert!(data.is_none());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn missing_manifest_with_committed_journal_is_preserved() {
        let (root, repo) = setup("lostmani");
        let wh = Warehouse::open_lazy(&repo, cfg()).unwrap();
        let saved = root.join("saved");
        save_warehouse(&wh, &saved).unwrap();
        std::fs::remove_file(saved.join(MANIFEST_NAME)).unwrap();
        // The journal proves a commit: recovery must not sweep, the open
        // must fail loudly, and a fresh save must refuse to clobber.
        let report = recover_saved_dir(&saved).unwrap();
        assert!(report.removed.is_empty(), "swept: {:?}", report.removed);
        assert!(saved.join("files.e1.lztb").exists());
        assert!(saved.join("records.e1.lztb").exists());
        assert!(read_manifest(&saved).is_err());
        let err = save_warehouse(&wh, &saved).unwrap_err();
        assert!(err.to_string().contains("refusing"), "{err}");
        assert!(saved.join("files.e1.lztb").exists(), "data survived");
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn upgrade_leftover_v1_tables_are_swept() {
        let (root, repo) = setup("v1sweep");
        let wh = Warehouse::open_lazy(&repo, cfg()).unwrap();
        let saved = root.join("saved");
        save_warehouse(&wh, &saved).unwrap();
        // Simulate a v1→v2 upgrade save killed between commit and
        // cleanup: the committed manifest is v2, unstamped v1 tables
        // linger.
        std::fs::write(saved.join("files.lztb"), b"legacy leftovers").unwrap();
        std::fs::write(saved.join("records.lztb"), b"legacy leftovers").unwrap();
        assert_eq!(stray_files(&saved).len(), 2);
        let report = recover_saved_dir(&saved).unwrap();
        assert!(report.removed.contains(&"files.lztb".to_string()));
        assert!(!saved.join("records.lztb").exists());
        assert!(stray_files(&saved).is_empty());
        // The committed v2 snapshot is untouched.
        assert!(load_saved_tables(&saved).is_ok());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn recovery_sweeps_uncommitted_epoch() {
        let (root, repo) = setup("recover");
        let wh = Warehouse::open_lazy(&repo, cfg()).unwrap();
        let saved = root.join("saved");
        save_warehouse(&wh, &saved).unwrap();
        // Fake an interrupted second save: epoch-2 debris + tmp + journal
        // with begin but no commit.
        std::fs::write(saved.join("files.e2.lztb"), b"partial").unwrap();
        std::fs::write(saved.join("MANIFEST.tmp"), b"half a manifest").unwrap();
        std::fs::create_dir_all(saved.join("segments.e2")).unwrap();
        std::fs::write(saved.join(JOURNAL_NAME), "begin epoch=2\n").unwrap();
        let report = recover_saved_dir(&saved).unwrap();
        assert_eq!(report.rolled_back, Some(2));
        assert!(!saved.join("files.e2.lztb").exists());
        assert!(!saved.join("MANIFEST.tmp").exists());
        assert!(!saved.join("segments.e2").exists());
        // Epoch 1 (committed) is untouched and still opens.
        assert_eq!(read_manifest(&saved).unwrap().epoch, 1);
        assert!(load_saved_tables(&saved).is_ok());
        std::fs::remove_dir_all(&root).ok();
    }
}
