//! Result-level recycling: caching the **end result** of a query.
//!
//! §3.3 of the paper describes loading as "simply caching the result of a
//! view definition" via MonetDB's intermediate-result recycler \[8\], and
//! notes that "usually, the end result of a view is saved in the cache".
//! The per-record cache in [`crate::cache`] recycles the *extraction*
//! intermediates; this module adds the second recycler level: the final
//! table of a query, keyed by a fingerprint of its optimized plan.
//!
//! A recycled result is only valid while the warehouse state it was
//! computed from is unchanged. The warehouse bumps a *generation* counter
//! whenever a refresh folds repository changes into the catalog; an entry
//! admitted under an older generation is dropped at lookup (the lazy
//! analogue of the staleness check the record cache does with mtimes).
//!
//! Entries are LRU-evicted under a byte budget, exactly like the record
//! cache. This layer is off by default
//! ([`crate::warehouse::WarehouseConfig::recycle_query_results`]) so that
//! per-query extraction accounting stays observable; experiment E11
//! measures what it buys.
//!
//! Like the record cache, the recycler is internally synchronized: every
//! operation takes `&self` so concurrent query threads share one recycler.
//! A single mutex (rather than lock striping) suffices here — the recycler
//! is touched at most twice per query, never per record.

use lazyetl_store::Table;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex, MutexGuard};

/// Cumulative statistics of the result recycler.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResultCacheStats {
    /// Lookups that returned a fresh result.
    pub hits: u64,
    /// Lookups with no entry.
    pub misses: u64,
    /// Entries dropped because the warehouse generation moved on.
    pub generation_drops: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
    /// Total bytes ever admitted.
    pub inserted_bytes: u64,
}

impl ResultCacheStats {
    /// Hit rate over all lookups (0 when no lookups).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.generation_drops;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Summary of one resident recycled result (for the demo's cache browser).
#[derive(Debug, Clone, PartialEq)]
pub struct ResultEntrySummary {
    /// The plan fingerprint (first line shown by browsers).
    pub fingerprint: String,
    /// Entry size in bytes.
    pub bytes: usize,
    /// Rows held.
    pub rows: usize,
    /// Warehouse generation the result was computed under.
    pub generation: u64,
}

/// Snapshot of recycled results and occupancy.
#[derive(Debug, Clone)]
pub struct ResultCacheSnapshot {
    /// Resident entries ordered by fingerprint.
    pub entries: Vec<ResultEntrySummary>,
    /// Bytes in use.
    pub used_bytes: usize,
    /// Byte budget.
    pub budget_bytes: usize,
    /// Statistics so far.
    pub stats: ResultCacheStats,
}

#[derive(Debug)]
struct ResultEntry {
    table: Arc<Table>,
    bytes: usize,
    generation: u64,
    last_used_tick: u64,
}

#[derive(Debug)]
struct Inner {
    entries: HashMap<String, ResultEntry>,
    /// last_used_tick -> fingerprint for O(log n) LRU eviction.
    lru: BTreeMap<u64, String>,
    tick: u64,
    used_bytes: usize,
    stats: ResultCacheStats,
}

/// Byte-budgeted LRU cache of final query results, safe to share between
/// query threads.
#[derive(Debug)]
pub struct QueryResultCache {
    budget_bytes: usize,
    inner: Mutex<Inner>,
}

impl QueryResultCache {
    /// A result recycler with the given byte budget.
    pub fn new(budget_bytes: usize) -> QueryResultCache {
        QueryResultCache {
            budget_bytes,
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                lru: BTreeMap::new(),
                tick: 0,
                used_bytes: 0,
                stats: ResultCacheStats::default(),
            }),
        }
    }

    fn locked(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().expect("result cache poisoned")
    }

    /// Look up a plan fingerprint; entries from older warehouse
    /// generations are dropped and reported as misses.
    pub fn get(&self, fingerprint: &str, current_generation: u64) -> Option<Arc<Table>> {
        let mut inner = self.locked();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.entries.get_mut(fingerprint) {
            None => {
                inner.stats.misses += 1;
                None
            }
            Some(entry) if entry.generation != current_generation => {
                inner.stats.generation_drops += 1;
                let old = inner
                    .entries
                    .remove(fingerprint)
                    .expect("entry just matched");
                inner.lru.remove(&old.last_used_tick);
                inner.used_bytes -= old.bytes;
                None
            }
            Some(entry) => {
                let table = entry.table.clone();
                let prev_tick = entry.last_used_tick;
                entry.last_used_tick = tick;
                inner.stats.hits += 1;
                inner.lru.remove(&prev_tick);
                inner.lru.insert(tick, fingerprint.to_string());
                Some(table)
            }
        }
    }

    /// Admit (or replace) a result. Returns entries evicted to make room;
    /// results larger than the whole budget are not admitted.
    pub fn insert(&self, fingerprint: String, table: Arc<Table>, generation: u64) -> usize {
        let bytes = table.byte_size();
        let mut inner = self.locked();
        if let Some(old) = inner.entries.remove(&fingerprint) {
            inner.lru.remove(&old.last_used_tick);
            inner.used_bytes -= old.bytes;
        }
        if bytes > self.budget_bytes {
            return 0;
        }
        let mut evicted = 0usize;
        while inner.used_bytes + bytes > self.budget_bytes {
            let (&oldest_tick, oldest_key) = inner
                .lru
                .iter()
                .next()
                .expect("over budget implies entries");
            let oldest_key = oldest_key.clone();
            let old = inner
                .entries
                .remove(&oldest_key)
                .expect("lru index consistent");
            inner.lru.remove(&oldest_tick);
            inner.used_bytes -= old.bytes;
            inner.stats.evictions += 1;
            evicted += 1;
        }
        inner.tick += 1;
        let tick = inner.tick;
        inner.entries.insert(
            fingerprint.clone(),
            ResultEntry {
                table,
                bytes,
                generation,
                last_used_tick: tick,
            },
        );
        inner.lru.insert(tick, fingerprint);
        inner.used_bytes += bytes;
        inner.stats.inserted_bytes += bytes as u64;
        evicted
    }

    /// Drop every entry (called when invalidation cannot be scoped).
    pub fn clear(&self) {
        let mut inner = self.locked();
        inner.entries.clear();
        inner.lru.clear();
        inner.used_bytes = 0;
    }

    /// Bytes currently resident.
    pub fn used_bytes(&self) -> usize {
        self.locked().used_bytes
    }

    /// Configured byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Number of resident results.
    pub fn len(&self) -> usize {
        self.locked().entries.len()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.locked().entries.is_empty()
    }

    /// Statistics so far.
    pub fn stats(&self) -> ResultCacheStats {
        self.locked().stats
    }

    /// Snapshot of contents for the demo's cache browser.
    pub fn snapshot(&self) -> ResultCacheSnapshot {
        let inner = self.locked();
        let mut entries: Vec<ResultEntrySummary> = inner
            .entries
            .iter()
            .map(|(k, e)| ResultEntrySummary {
                fingerprint: k.clone(),
                bytes: e.bytes,
                rows: e.table.num_rows(),
                generation: e.generation,
            })
            .collect();
        entries.sort_by(|a, b| a.fingerprint.cmp(&b.fingerprint));
        ResultCacheSnapshot {
            entries,
            used_bytes: inner.used_bytes,
            budget_bytes: self.budget_bytes,
            stats: inner.stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazyetl_store::{DataType, Field, Schema, Value};

    fn table_of(rows: usize) -> Arc<Table> {
        let schema = Schema::new(vec![Field::new("v", DataType::Float64)]).unwrap();
        let mut t = Table::empty(schema);
        for i in 0..rows {
            t.append_row(vec![Value::Float64(i as f64)]).unwrap();
        }
        Arc::new(t)
    }

    #[test]
    fn hit_after_insert_same_generation() {
        let c = QueryResultCache::new(1 << 20);
        assert!(c.get("plan-a", 0).is_none());
        c.insert("plan-a".into(), table_of(4), 0);
        let hit = c.get("plan-a", 0).expect("fresh entry");
        assert_eq!(hit.num_rows(), 4);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn generation_bump_invalidates() {
        let c = QueryResultCache::new(1 << 20);
        c.insert("plan-a".into(), table_of(4), 0);
        assert!(c.get("plan-a", 1).is_none(), "stale generation dropped");
        assert_eq!(c.stats().generation_drops, 1);
        assert!(c.is_empty());
        // And it's a plain miss afterwards.
        assert!(c.get("plan-a", 1).is_none());
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn distinct_fingerprints_do_not_collide() {
        let c = QueryResultCache::new(1 << 20);
        c.insert("plan-a".into(), table_of(1), 0);
        c.insert("plan-b".into(), table_of(2), 0);
        assert_eq!(c.get("plan-a", 0).unwrap().num_rows(), 1);
        assert_eq!(c.get("plan-b", 0).unwrap().num_rows(), 2);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn lru_eviction_under_budget() {
        // 10-row float tables are 80 bytes each.
        let c = QueryResultCache::new(250);
        c.insert("a".into(), table_of(10), 0);
        c.insert("b".into(), table_of(10), 0);
        c.insert("c".into(), table_of(10), 0);
        assert!(c.get("a", 0).is_some(), "touch a; b becomes LRU");
        let evicted = c.insert("d".into(), table_of(10), 0);
        assert_eq!(evicted, 1);
        assert!(c.get("b", 0).is_none(), "LRU victim gone");
        assert!(c.get("a", 0).is_some());
        assert!(c.used_bytes() <= c.budget_bytes());
    }

    #[test]
    fn oversized_result_not_admitted() {
        let c = QueryResultCache::new(64);
        assert_eq!(c.insert("big".into(), table_of(1000), 0), 0);
        assert!(c.is_empty());
    }

    #[test]
    fn replace_same_fingerprint() {
        let c = QueryResultCache::new(1 << 20);
        c.insert("a".into(), table_of(10), 0);
        c.insert("a".into(), table_of(20), 1);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get("a", 1).unwrap().num_rows(), 20);
    }

    #[test]
    fn snapshot_sorted_by_fingerprint() {
        let c = QueryResultCache::new(1 << 20);
        c.insert("zeta".into(), table_of(1), 3);
        c.insert("alpha".into(), table_of(2), 3);
        let snap = c.snapshot();
        assert_eq!(snap.entries.len(), 2);
        assert_eq!(snap.entries[0].fingerprint, "alpha");
        assert_eq!(snap.entries[0].generation, 3);
        assert_eq!(snap.used_bytes, c.used_bytes());
    }

    #[test]
    fn clear_resets_occupancy_not_stats() {
        let c = QueryResultCache::new(1 << 20);
        c.insert("a".into(), table_of(10), 0);
        let _ = c.get("a", 0);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.used_bytes(), 0);
        assert_eq!(c.stats().hits, 1, "stats survive clear");
    }
}
