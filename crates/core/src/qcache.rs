//! Result-level recycling: caching the **end result** of a query.
//!
//! §3.3 of the paper describes loading as "simply caching the result of a
//! view definition" via MonetDB's intermediate-result recycler \[8\], and
//! notes that "usually, the end result of a view is saved in the cache".
//! The per-record cache in [`crate::cache`] recycles the *extraction*
//! intermediates; this module adds the second recycler level: the final
//! table of a query, keyed by a fingerprint of its optimized plan.
//!
//! A recycled result is only valid while the warehouse state it was
//! computed from is unchanged. The warehouse bumps a *generation* counter
//! whenever a refresh folds repository changes into the catalog. Two
//! mechanisms keep entries useful across that bump:
//!
//! * **Scoped invalidation** — every entry carries the set of base tables
//!   it read and (when derivable) the closed `sample_time` interval its
//!   predicates imply. A refresh delta that touches disjoint tables, or a
//!   time-scoped entry whose window is disjoint from the delta's record
//!   coverage, provably contributes no rows: the entry is *kept* and
//!   re-stamped with the new generation instead of dropped.
//! * **Incremental maintenance** — entries whose plans are classified
//!   [`Maintainable`](lazyetl_query::Maintainability) by the query layer
//!   carry the augmented execution plan and its raw state table. On an
//!   insert-only refresh, [`QueryResultCache::apply_delta`] runs that plan
//!   over just the delta tables (via a caller-supplied executor) and folds
//!   the result in: appending rows for filter/project/join cores, merging
//!   SUM/COUNT/MIN/MAX/AVG group states for root aggregations.
//!
//! Anything else falls back to the original behaviour — drop and recompute
//! on next query. Entries admitted under an older generation that somehow
//! bypassed `apply_delta` (e.g. a mount changed the catalog without a
//! refresh delta) are still dropped at lookup, so staleness can never leak.
//!
//! Entries are LRU-evicted under a byte budget, exactly like the record
//! cache. This layer is off by default
//! ([`crate::warehouse::WarehouseConfig::recycle_query_results`]) so that
//! per-query extraction accounting stays observable; experiments E11 and
//! E18 measure what recycling and maintenance buy.
//!
//! Like the record cache, the recycler is internally synchronized: every
//! operation takes `&self` so concurrent query threads share one recycler.
//! A single mutex (rather than lock striping) suffices here — the recycler
//! is touched at most twice per query, never per record.

use lazyetl_query::{LogicalPlan, MaintKind, MergeSpec};
use lazyetl_store::{GroupKey, Table, Value};
use std::cmp::Ordering;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex, MutexGuard};

/// Cumulative statistics of the result recycler.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResultCacheStats {
    /// Lookups that returned a fresh result.
    pub hits: u64,
    /// Lookups with no entry.
    pub misses: u64,
    /// Entries dropped because the warehouse generation moved on.
    pub generation_drops: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
    /// Total bytes ever admitted.
    pub inserted_bytes: u64,
    /// Entries patched in place from a refresh delta.
    pub results_patched: u64,
    /// Delta rows folded into patched entries.
    pub patch_rows_applied: u64,
    /// Entries a refresh delta forced back to recompute-on-next-query.
    pub recompute_fallbacks: u64,
    /// Bytes of results kept across refreshes by scoped invalidation —
    /// an estimate of recompute output the maintenance layer avoided.
    pub bytes_saved_estimate: u64,
    /// Entries kept verbatim across refreshes (disjoint tables/time).
    pub results_kept: u64,
}

impl ResultCacheStats {
    /// Hit rate over all lookups (0 when no lookups).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.generation_drops;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// How a resident entry relates to refresh deltas.
#[derive(Debug, Clone)]
pub enum ResultScope {
    /// No structural guarantees: drop whenever an intersecting refresh
    /// lands.
    Opaque,
    /// Not patchable, but every output row provably carries a data row
    /// inside the entry's `sample_time` interval — keep the entry when
    /// that interval is disjoint from the delta's record coverage.
    TimeScoped,
    /// Patchable from insert-only deltas.
    Maintainable {
        /// The augmented plan to run over the delta tables.
        exec_plan: Arc<LogicalPlan>,
        /// How the state table absorbs the delta result.
        kind: MaintKind,
        /// Raw state (for aggregations: group columns + visible and hidden
        /// aggregate columns; for appendable cores: the result itself).
        state: Arc<Table>,
    },
}

/// Invalidation metadata attached to an entry at admission.
#[derive(Debug, Clone)]
pub struct ResultMeta {
    /// Base tables the plan read; `None` when unknown (always intersects).
    pub tables: Option<Vec<String>>,
    /// Closed `sample_time` interval implied by the plan's predicates
    /// (`None` bounds are unconstrained).
    pub interval: (Option<i64>, Option<i64>),
    /// Maintenance class of the entry's plan.
    pub scope: ResultScope,
}

impl ResultMeta {
    /// Conservative metadata: unknown tables, unconstrained interval,
    /// opaque scope — invalidated by every refresh, like the pre-existing
    /// behaviour.
    pub fn opaque() -> ResultMeta {
        ResultMeta {
            tables: None,
            interval: (None, None),
            scope: ResultScope::Opaque,
        }
    }
}

/// Description of one refresh's repository delta, as seen by the recycler.
#[derive(Debug, Clone)]
pub struct RefreshDelta<'a> {
    /// Generation the warehouse was at before this refresh.
    pub prev_generation: u64,
    /// Generation after this refresh; surviving entries are re-stamped.
    pub generation: u64,
    /// True when the delta only *adds* files (nothing modified/removed) —
    /// the precondition for patching maintainable entries.
    pub insert_only: bool,
    /// Base tables the delta touches.
    pub tables: &'a [String],
    /// Record time coverage (`min(start_time)`, `max(end_time)`) of the
    /// delta; `None` bounds mean unknown (intersects everything).
    pub interval: (Option<i64>, Option<i64>),
}

/// What one [`QueryResultCache::apply_delta`] pass did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaOutcome {
    /// Entries kept verbatim (disjoint tables or disjoint time window).
    pub kept: usize,
    /// Bytes of results kept verbatim.
    pub kept_bytes: usize,
    /// Entries patched in place from the delta.
    pub patched: usize,
    /// Delta rows folded into patched entries.
    pub patch_rows: usize,
    /// Human-readable reason per entry dropped back to recompute.
    pub dropped: Vec<String>,
}

/// Summary of one resident recycled result (for the demo's cache browser).
#[derive(Debug, Clone, PartialEq)]
pub struct ResultEntrySummary {
    /// The plan fingerprint (first line shown by browsers).
    pub fingerprint: String,
    /// Entry size in bytes.
    pub bytes: usize,
    /// Rows held.
    pub rows: usize,
    /// Warehouse generation the result was computed under.
    pub generation: u64,
}

/// Snapshot of recycled results and occupancy.
#[derive(Debug, Clone)]
pub struct ResultCacheSnapshot {
    /// Resident entries ordered by fingerprint.
    pub entries: Vec<ResultEntrySummary>,
    /// Bytes in use.
    pub used_bytes: usize,
    /// Byte budget.
    pub budget_bytes: usize,
    /// Statistics so far.
    pub stats: ResultCacheStats,
}

#[derive(Debug)]
struct ResultEntry {
    table: Arc<Table>,
    bytes: usize,
    generation: u64,
    last_used_tick: u64,
    meta: ResultMeta,
}

#[derive(Debug)]
struct Inner {
    entries: HashMap<String, ResultEntry>,
    /// last_used_tick -> fingerprint for O(log n) LRU eviction.
    lru: BTreeMap<u64, String>,
    tick: u64,
    used_bytes: usize,
    stats: ResultCacheStats,
}

impl Inner {
    fn remove_entry(&mut self, fingerprint: &str) -> Option<ResultEntry> {
        let old = self.entries.remove(fingerprint)?;
        self.lru.remove(&old.last_used_tick);
        self.used_bytes -= old.bytes;
        Some(old)
    }

    fn evict_oldest(&mut self) {
        let oldest_key = self
            .lru
            .iter()
            .next()
            .map(|(_, k)| k.clone())
            .expect("over budget implies entries");
        self.remove_entry(&oldest_key)
            .expect("lru index consistent");
        self.stats.evictions += 1;
    }
}

/// Byte-budgeted LRU cache of final query results, safe to share between
/// query threads.
#[derive(Debug)]
pub struct QueryResultCache {
    budget_bytes: usize,
    inner: Mutex<Inner>,
}

impl QueryResultCache {
    /// A result recycler with the given byte budget.
    pub fn new(budget_bytes: usize) -> QueryResultCache {
        QueryResultCache {
            budget_bytes,
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                lru: BTreeMap::new(),
                tick: 0,
                used_bytes: 0,
                stats: ResultCacheStats::default(),
            }),
        }
    }

    fn locked(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().expect("result cache poisoned")
    }

    /// Look up a plan fingerprint; entries from older warehouse
    /// generations are dropped and reported as misses. (Refreshes that go
    /// through [`Self::apply_delta`] re-stamp surviving entries, so this
    /// only fires for generation bumps that bypassed the delta path.)
    pub fn get(&self, fingerprint: &str, current_generation: u64) -> Option<Arc<Table>> {
        let mut inner = self.locked();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.entries.get_mut(fingerprint) {
            None => {
                inner.stats.misses += 1;
                None
            }
            Some(entry) if entry.generation != current_generation => {
                inner.stats.generation_drops += 1;
                inner.remove_entry(fingerprint).expect("entry just matched");
                None
            }
            Some(entry) => {
                let table = entry.table.clone();
                let prev_tick = entry.last_used_tick;
                entry.last_used_tick = tick;
                inner.stats.hits += 1;
                inner.lru.remove(&prev_tick);
                inner.lru.insert(tick, fingerprint.to_string());
                Some(table)
            }
        }
    }

    /// Admit (or replace) a result with conservative (opaque) metadata.
    /// Returns entries evicted to make room.
    pub fn insert(&self, fingerprint: String, table: Arc<Table>, generation: u64) -> usize {
        self.insert_with_meta(fingerprint, table, generation, ResultMeta::opaque())
    }

    /// Admit (or replace) a result carrying invalidation/maintenance
    /// metadata. Returns entries evicted to make room; results larger than
    /// the whole budget are not admitted.
    pub fn insert_with_meta(
        &self,
        fingerprint: String,
        table: Arc<Table>,
        generation: u64,
        meta: ResultMeta,
    ) -> usize {
        let bytes = entry_bytes(&table, &meta);
        let mut inner = self.locked();
        inner.remove_entry(&fingerprint);
        if bytes > self.budget_bytes {
            return 0;
        }
        let mut evicted = 0usize;
        while inner.used_bytes + bytes > self.budget_bytes {
            inner.evict_oldest();
            evicted += 1;
        }
        inner.tick += 1;
        let tick = inner.tick;
        inner.entries.insert(
            fingerprint.clone(),
            ResultEntry {
                table,
                bytes,
                generation,
                last_used_tick: tick,
                meta,
            },
        );
        inner.lru.insert(tick, fingerprint);
        inner.used_bytes += bytes;
        inner.stats.inserted_bytes += bytes as u64;
        evicted
    }

    /// Fold one refresh delta into the resident entries.
    ///
    /// Per entry, in order of preference:
    ///
    /// 1. **keep** — the entry's tables are disjoint from the delta's, or
    ///    the entry is time-scoped/maintainable and its `sample_time`
    ///    window is disjoint from the delta's record coverage; the entry
    ///    is re-stamped with the new generation untouched;
    /// 2. **patch** — the entry is maintainable, the delta is insert-only
    ///    and `maintenance_enabled`: `exec` runs the entry's augmented plan
    ///    over the delta tables and the result is folded into the state
    ///    (append or group-state merge); for peeled aggregations `exec` is
    ///    called a second time to re-project the merged state into the
    ///    user-visible table;
    /// 3. **drop** — everything else falls back to recompute-on-next-query.
    ///
    /// `exec` returns `None` when the plan cannot be executed (the entry is
    /// then dropped). Entries whose generation is not `prev_generation`
    /// are already stale and dropped outright.
    pub fn apply_delta(
        &self,
        delta: &RefreshDelta<'_>,
        maintenance_enabled: bool,
        exec: &mut dyn FnMut(&LogicalPlan) -> Option<Arc<Table>>,
    ) -> DeltaOutcome {
        let mut outcome = DeltaOutcome::default();
        let mut inner = self.locked();
        let keys: Vec<String> = inner.entries.keys().cloned().collect();
        for key in keys {
            let action = decide(&inner.entries[&key], delta, maintenance_enabled);
            match action {
                Action::Keep => {
                    let entry = inner.entries.get_mut(&key).expect("key just listed");
                    entry.generation = delta.generation;
                    let bytes = entry.bytes;
                    inner.stats.results_kept += 1;
                    inner.stats.bytes_saved_estimate += bytes as u64;
                    outcome.kept += 1;
                    outcome.kept_bytes += bytes;
                }
                Action::Patch => match patch_entry(&mut inner, &key, delta, exec) {
                    Ok(rows) => {
                        inner.stats.results_patched += 1;
                        inner.stats.patch_rows_applied += rows as u64;
                        outcome.patched += 1;
                        outcome.patch_rows += rows;
                    }
                    Err(reason) => {
                        inner.remove_entry(&key);
                        inner.stats.recompute_fallbacks += 1;
                        outcome.dropped.push(reason);
                    }
                },
                Action::Drop(reason) => {
                    inner.remove_entry(&key);
                    inner.stats.recompute_fallbacks += 1;
                    outcome.dropped.push(reason);
                }
                Action::DropStale => {
                    inner.remove_entry(&key);
                    inner.stats.generation_drops += 1;
                    outcome.dropped.push("stale generation".to_string());
                }
            }
        }
        // Patched entries may have grown; restore the byte budget.
        while inner.used_bytes > self.budget_bytes {
            inner.evict_oldest();
        }
        outcome
    }

    /// Drop every entry (called when invalidation cannot be scoped).
    pub fn clear(&self) {
        let mut inner = self.locked();
        inner.entries.clear();
        inner.lru.clear();
        inner.used_bytes = 0;
    }

    /// Bytes currently resident.
    pub fn used_bytes(&self) -> usize {
        self.locked().used_bytes
    }

    /// Configured byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Number of resident results.
    pub fn len(&self) -> usize {
        self.locked().entries.len()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.locked().entries.is_empty()
    }

    /// Statistics so far.
    pub fn stats(&self) -> ResultCacheStats {
        self.locked().stats
    }

    /// Snapshot of contents for the demo's cache browser.
    pub fn snapshot(&self) -> ResultCacheSnapshot {
        let inner = self.locked();
        let mut entries: Vec<ResultEntrySummary> = inner
            .entries
            .iter()
            .map(|(k, e)| ResultEntrySummary {
                fingerprint: k.clone(),
                bytes: e.bytes,
                rows: e.table.num_rows(),
                generation: e.generation,
            })
            .collect();
        entries.sort_by(|a, b| a.fingerprint.cmp(&b.fingerprint));
        ResultCacheSnapshot {
            entries,
            used_bytes: inner.used_bytes,
            budget_bytes: self.budget_bytes,
            stats: inner.stats,
        }
    }
}

enum Action {
    Keep,
    Patch,
    Drop(String),
    DropStale,
}

/// Entry size: the visible table plus the aggregate state when it is a
/// distinct object (appendable cores reuse the same `Arc` for both).
fn entry_bytes(table: &Arc<Table>, meta: &ResultMeta) -> usize {
    let extra = match &meta.scope {
        ResultScope::Maintainable { state, .. } if !Arc::ptr_eq(state, table) => state.byte_size(),
        _ => 0,
    };
    table.byte_size() + extra
}

/// Is the entry's table set provably disjoint from the delta's? `None` on
/// the entry side means "unknown" and intersects everything.
fn tables_disjoint(entry: &Option<Vec<String>>, delta: &[String]) -> bool {
    match entry {
        None => false,
        Some(tables) => !tables.iter().any(|t| delta.contains(t)),
    }
}

/// Are two closed intervals provably disjoint? Unknown bounds (`None`)
/// extend to infinity on that side.
fn intervals_disjoint(a: (Option<i64>, Option<i64>), b: (Option<i64>, Option<i64>)) -> bool {
    let before = matches!((a.1, b.0), (Some(hi), Some(lo)) if hi < lo);
    let after = matches!((a.0, b.1), (Some(lo), Some(hi)) if lo > hi);
    before || after
}

fn decide(entry: &ResultEntry, delta: &RefreshDelta<'_>, maintenance_enabled: bool) -> Action {
    if entry.generation != delta.prev_generation {
        return Action::DropStale;
    }
    if tables_disjoint(&entry.meta.tables, delta.tables) {
        return Action::Keep;
    }
    let time_disjoint = intervals_disjoint(entry.meta.interval, delta.interval);
    match &entry.meta.scope {
        ResultScope::TimeScoped if time_disjoint => Action::Keep,
        ResultScope::TimeScoped => {
            Action::Drop("time-scoped window intersects refresh delta".to_string())
        }
        ResultScope::Maintainable { .. } if time_disjoint => {
            // Patching would also be correct (the delta run returns zero
            // rows), but the disjoint window lets us skip the delta
            // execution entirely.
            Action::Keep
        }
        ResultScope::Maintainable { .. } if !delta.insert_only => {
            Action::Drop("refresh delta is not insert-only".to_string())
        }
        ResultScope::Maintainable { .. } if !maintenance_enabled => {
            Action::Drop("result maintenance disabled".to_string())
        }
        ResultScope::Maintainable { .. } => Action::Patch,
        ResultScope::Opaque => Action::Drop("opaque plan intersects refresh delta".to_string()),
    }
}

/// Patch one maintainable entry in place. Returns the number of delta rows
/// folded in, or a reason string when the entry must fall back.
fn patch_entry(
    inner: &mut Inner,
    key: &str,
    delta: &RefreshDelta<'_>,
    exec: &mut dyn FnMut(&LogicalPlan) -> Option<Arc<Table>>,
) -> Result<usize, String> {
    let (exec_plan, kind, state) = {
        let entry = &inner.entries[key];
        match &entry.meta.scope {
            ResultScope::Maintainable {
                exec_plan,
                kind,
                state,
            } => (exec_plan.clone(), kind.clone(), state.clone()),
            _ => unreachable!("patch_entry only called for maintainable entries"),
        }
    };
    let delta_out = exec(&exec_plan).ok_or_else(|| "delta execution failed".to_string())?;
    let rows = delta_out.num_rows();
    let (new_state, new_visible) = match &kind {
        MaintKind::Append => {
            let mut merged = Table::empty(state.schema.clone());
            merged
                .append_table(&state)
                .and_then(|()| merged.append_table(&delta_out))
                .map_err(|e| format!("append merge failed: {e}"))?;
            let merged = Arc::new(merged);
            (merged.clone(), merged)
        }
        MaintKind::Aggregate {
            group_cols,
            merges,
            post_project,
        } => {
            let merged = Arc::new(merge_aggregate_states(
                &state,
                &delta_out,
                *group_cols,
                merges,
            )?);
            let visible = match post_project {
                None => merged.clone(),
                Some(exprs) => {
                    let project = LogicalPlan::Project {
                        input: Box::new(LogicalPlan::InlineData {
                            label: "maintained-state".to_string(),
                            table: merged.clone(),
                        }),
                        exprs: exprs.clone(),
                    };
                    exec(&project).ok_or_else(|| "state re-projection failed".to_string())?
                }
            };
            (merged, visible)
        }
    };
    let entry = inner.entries.get_mut(key).expect("entry still resident");
    let old_bytes = entry.bytes;
    entry.table = new_visible;
    if let ResultScope::Maintainable { state, .. } = &mut entry.meta.scope {
        *state = new_state;
    }
    entry.bytes = entry_bytes(&entry.table, &entry.meta);
    entry.generation = delta.generation;
    let new_bytes = entry.bytes;
    inner.used_bytes = inner.used_bytes - old_bytes + new_bytes;
    Ok(rows)
}

/// Merge a delta's aggregate state table into the resident one: existing
/// groups merge column-wise per [`MergeSpec`]; new groups append in delta
/// first-appearance order (matching what a full recompute over the
/// old-then-delta input order would produce).
fn merge_aggregate_states(
    old: &Table,
    delta: &Table,
    group_cols: usize,
    merges: &[MergeSpec],
) -> Result<Table, String> {
    if old.schema != delta.schema {
        return Err("delta state schema mismatch".to_string());
    }
    let err = |e: lazyetl_store::StoreError| format!("state row access failed: {e}");
    let mut rows: Vec<Vec<Value>> = Vec::with_capacity(old.num_rows() + delta.num_rows());
    for i in 0..old.num_rows() {
        rows.push(old.row(i).map_err(err)?);
    }
    let mut index: HashMap<Vec<GroupKey>, usize> = rows
        .iter()
        .enumerate()
        .map(|(i, r)| (r[..group_cols].iter().map(Value::group_key).collect(), i))
        .collect();
    for i in 0..delta.num_rows() {
        let drow = delta.row(i).map_err(err)?;
        let key: Vec<GroupKey> = drow[..group_cols].iter().map(Value::group_key).collect();
        let Some(&at) = index.get(&key) else {
            index.insert(key, rows.len());
            rows.push(drow);
            continue;
        };
        // Plain columns first; AVG re-derives from its merged companions.
        for (j, spec) in merges.iter().enumerate() {
            if matches!(spec, MergeSpec::Avg { .. }) {
                continue;
            }
            let col = group_cols + j;
            rows[at][col] = merge_value(*spec, &rows[at][col], &drow[col])?;
        }
        for (j, spec) in merges.iter().enumerate() {
            if let MergeSpec::Avg { sum_col, cnt_col } = *spec {
                let col = group_cols + j;
                rows[at][col] = avg_from_companions(&rows[at][sum_col], &rows[at][cnt_col]);
            }
        }
    }
    let mut out = Table::empty(old.schema.clone());
    for row in rows {
        out.append_row(row)
            .map_err(|e| format!("merged state rebuild failed: {e}"))?;
    }
    Ok(out)
}

/// Merge one aggregate column value with its delta counterpart.
fn merge_value(spec: MergeSpec, old: &Value, new: &Value) -> Result<Value, String> {
    match spec {
        MergeSpec::Count => {
            let a = old.as_i64().unwrap_or(0);
            let b = new.as_i64().unwrap_or(0);
            a.checked_add(b)
                .map(Value::Int64)
                .ok_or_else(|| "COUNT overflow".to_string())
        }
        MergeSpec::SumInt => match (old, new) {
            (Value::Null, v) | (v, Value::Null) => Ok(v.clone()),
            (a, b) => {
                let a = a.as_i64().ok_or("non-integer SUM state")?;
                let b = b.as_i64().ok_or("non-integer SUM delta")?;
                a.checked_add(b)
                    .map(Value::Int64)
                    .ok_or_else(|| "integer SUM overflow".to_string())
            }
        },
        MergeSpec::SumFloat => match (old, new) {
            (Value::Null, v) | (v, Value::Null) => Ok(v.clone()),
            (a, b) => {
                let a = a.as_f64().ok_or("non-numeric SUM state")?;
                let b = b.as_f64().ok_or("non-numeric SUM delta")?;
                Ok(Value::Float64(a + b))
            }
        },
        MergeSpec::Min | MergeSpec::Max => match (old, new) {
            (Value::Null, v) | (v, Value::Null) => Ok(v.clone()),
            (a, b) => {
                let ord = a.sql_cmp(b).ok_or("incomparable MIN/MAX state")?;
                let keep_old = match spec {
                    MergeSpec::Min => ord != Ordering::Greater,
                    _ => ord != Ordering::Less,
                };
                Ok(if keep_old { a.clone() } else { b.clone() })
            }
        },
        MergeSpec::Avg { .. } => unreachable!("AVG merges via its companion columns"),
    }
}

/// Recompute an AVG cell from its merged SUM/COUNT companions, mirroring
/// the executor's finish step (`sum / n`, NULL when no non-null samples).
fn avg_from_companions(sum: &Value, cnt: &Value) -> Value {
    let n = cnt.as_i64().unwrap_or(0);
    match sum.as_f64() {
        Some(s) if n > 0 => Value::Float64(s / n as f64),
        _ => Value::Null,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazyetl_store::{DataType, Field, Schema, Value};

    fn table_of(rows: usize) -> Arc<Table> {
        let schema = Schema::new(vec![Field::new("v", DataType::Float64)]).unwrap();
        let mut t = Table::empty(schema);
        for i in 0..rows {
            t.append_row(vec![Value::Float64(i as f64)]).unwrap();
        }
        Arc::new(t)
    }

    fn delta(
        prev: u64,
        insert_only: bool,
        tables: &[String],
        interval: (Option<i64>, Option<i64>),
    ) -> RefreshDelta<'_> {
        RefreshDelta {
            prev_generation: prev,
            generation: prev + 1,
            insert_only,
            tables,
            interval,
        }
    }

    #[test]
    fn hit_after_insert_same_generation() {
        let c = QueryResultCache::new(1 << 20);
        assert!(c.get("plan-a", 0).is_none());
        c.insert("plan-a".into(), table_of(4), 0);
        let hit = c.get("plan-a", 0).expect("fresh entry");
        assert_eq!(hit.num_rows(), 4);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn generation_bump_invalidates() {
        // Without a delta pass, a generation bump still drops at lookup —
        // the safety net for catalog changes that bypass apply_delta.
        let c = QueryResultCache::new(1 << 20);
        c.insert("plan-a".into(), table_of(4), 0);
        assert!(c.get("plan-a", 1).is_none(), "stale generation dropped");
        assert_eq!(c.stats().generation_drops, 1);
        assert!(c.is_empty());
        // And it's a plain miss afterwards.
        assert!(c.get("plan-a", 1).is_none());
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn distinct_fingerprints_do_not_collide() {
        let c = QueryResultCache::new(1 << 20);
        c.insert("plan-a".into(), table_of(1), 0);
        c.insert("plan-b".into(), table_of(2), 0);
        assert_eq!(c.get("plan-a", 0).unwrap().num_rows(), 1);
        assert_eq!(c.get("plan-b", 0).unwrap().num_rows(), 2);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn lru_eviction_under_budget() {
        // 10-row float tables are 80 bytes each.
        let c = QueryResultCache::new(250);
        c.insert("a".into(), table_of(10), 0);
        c.insert("b".into(), table_of(10), 0);
        c.insert("c".into(), table_of(10), 0);
        assert!(c.get("a", 0).is_some(), "touch a; b becomes LRU");
        let evicted = c.insert("d".into(), table_of(10), 0);
        assert_eq!(evicted, 1);
        assert!(c.get("b", 0).is_none(), "LRU victim gone");
        assert!(c.get("a", 0).is_some());
        assert!(c.used_bytes() <= c.budget_bytes());
    }

    #[test]
    fn oversized_result_not_admitted() {
        let c = QueryResultCache::new(64);
        assert_eq!(c.insert("big".into(), table_of(1000), 0), 0);
        assert!(c.is_empty());
    }

    #[test]
    fn replace_same_fingerprint() {
        let c = QueryResultCache::new(1 << 20);
        c.insert("a".into(), table_of(10), 0);
        c.insert("a".into(), table_of(20), 1);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get("a", 1).unwrap().num_rows(), 20);
    }

    #[test]
    fn snapshot_sorted_by_fingerprint() {
        let c = QueryResultCache::new(1 << 20);
        c.insert("zeta".into(), table_of(1), 3);
        c.insert("alpha".into(), table_of(2), 3);
        let snap = c.snapshot();
        assert_eq!(snap.entries.len(), 2);
        assert_eq!(snap.entries[0].fingerprint, "alpha");
        assert_eq!(snap.entries[0].generation, 3);
        assert_eq!(snap.used_bytes, c.used_bytes());
    }

    #[test]
    fn clear_resets_occupancy_not_stats() {
        let c = QueryResultCache::new(1 << 20);
        c.insert("a".into(), table_of(10), 0);
        let _ = c.get("a", 0);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.used_bytes(), 0);
        assert_eq!(c.stats().hits, 1, "stats survive clear");
    }

    #[test]
    fn tables_disjoint_entry_survives_refresh() {
        let c = QueryResultCache::new(1 << 20);
        let meta = ResultMeta {
            tables: Some(vec!["sensors".into()]),
            interval: (None, None),
            scope: ResultScope::Opaque,
        };
        c.insert_with_meta("plan-a".into(), table_of(4), 0, meta);
        let touched = vec!["files".to_string(), "records".to_string()];
        let out = c.apply_delta(&delta(0, true, &touched, (None, None)), true, &mut |_| None);
        assert_eq!(out.kept, 1);
        assert!(out.dropped.is_empty());
        assert!(c.get("plan-a", 1).is_some(), "kept and re-stamped");
        assert_eq!(c.stats().results_kept, 1);
        assert!(c.stats().bytes_saved_estimate > 0);
    }

    #[test]
    fn time_scoped_keep_and_drop() {
        let c = QueryResultCache::new(1 << 20);
        let touched = vec!["data".to_string()];
        let meta = |interval| ResultMeta {
            tables: Some(touched.clone()),
            interval,
            scope: ResultScope::TimeScoped,
        };
        c.insert_with_meta(
            "old-window".into(),
            table_of(2),
            0,
            meta((Some(0), Some(10))),
        );
        c.insert_with_meta("live-window".into(), table_of(2), 0, meta((Some(5), None)));
        let out = c.apply_delta(
            &delta(0, true, &touched, (Some(100), Some(200))),
            true,
            &mut |_| None,
        );
        assert_eq!(out.kept, 1, "disjoint window kept");
        assert_eq!(out.dropped.len(), 1, "overlapping window dropped");
        assert!(c.get("old-window", 1).is_some());
        assert!(c.get("live-window", 1).is_none());
        assert_eq!(c.stats().recompute_fallbacks, 1);
    }

    #[test]
    fn append_patch_folds_delta_rows() {
        let c = QueryResultCache::new(1 << 20);
        let base = table_of(4);
        let meta = ResultMeta {
            tables: Some(vec!["data".to_string()]),
            interval: (None, None),
            scope: ResultScope::Maintainable {
                exec_plan: Arc::new(LogicalPlan::OneRow),
                kind: MaintKind::Append,
                state: base.clone(),
            },
        };
        c.insert_with_meta("plan-a".into(), base, 0, meta);
        let touched = vec!["data".to_string()];
        let out = c.apply_delta(&delta(0, true, &touched, (None, None)), true, &mut |_| {
            Some(table_of(3))
        });
        assert_eq!(out.patched, 1);
        assert_eq!(out.patch_rows, 3);
        let patched = c.get("plan-a", 1).expect("patched entry resident");
        assert_eq!(patched.num_rows(), 7);
        assert_eq!(c.stats().results_patched, 1);
        assert_eq!(c.stats().patch_rows_applied, 3);
    }

    #[test]
    fn aggregate_patch_merges_group_states() {
        // State: station | COUNT(*) | SUM(v) | MIN(v)
        let schema = Schema::new(vec![
            Field::new("station", DataType::Utf8),
            Field::nullable("cnt", DataType::Int64),
            Field::nullable("sum", DataType::Float64),
            Field::nullable("min", DataType::Float64),
        ])
        .unwrap();
        let mut old = Table::empty(schema.clone());
        old.append_row(vec![
            Value::Utf8("ISK".into()),
            Value::Int64(2),
            Value::Float64(10.0),
            Value::Float64(3.0),
        ])
        .unwrap();
        let mut dstate = Table::empty(schema.clone());
        dstate
            .append_row(vec![
                Value::Utf8("ISK".into()),
                Value::Int64(3),
                Value::Float64(5.0),
                Value::Float64(1.0),
            ])
            .unwrap();
        dstate
            .append_row(vec![
                Value::Utf8("BGN".into()),
                Value::Int64(1),
                Value::Float64(7.0),
                Value::Float64(7.0),
            ])
            .unwrap();
        let dstate = Arc::new(dstate);

        let c = QueryResultCache::new(1 << 20);
        let old = Arc::new(old);
        let meta = ResultMeta {
            tables: Some(vec!["data".to_string()]),
            interval: (None, None),
            scope: ResultScope::Maintainable {
                exec_plan: Arc::new(LogicalPlan::OneRow),
                kind: MaintKind::Aggregate {
                    group_cols: 1,
                    merges: vec![MergeSpec::Count, MergeSpec::SumFloat, MergeSpec::Min],
                    post_project: None,
                },
                state: old.clone(),
            },
        };
        c.insert_with_meta("agg".into(), old, 0, meta);
        let touched = vec!["data".to_string()];
        let out = c.apply_delta(&delta(0, true, &touched, (None, None)), true, &mut |_| {
            Some(dstate.clone())
        });
        assert_eq!(out.patched, 1);
        let merged = c.get("agg", 1).expect("merged state visible");
        assert_eq!(merged.num_rows(), 2);
        assert_eq!(
            merged.row(0).unwrap(),
            vec![
                Value::Utf8("ISK".into()),
                Value::Int64(5),
                Value::Float64(15.0),
                Value::Float64(1.0),
            ]
        );
        assert_eq!(
            merged.row(1).unwrap(),
            vec![
                Value::Utf8("BGN".into()),
                Value::Int64(1),
                Value::Float64(7.0),
                Value::Float64(7.0),
            ],
            "new group appended in delta order"
        );
    }

    #[test]
    fn non_insert_only_drops_maintainable() {
        let c = QueryResultCache::new(1 << 20);
        let base = table_of(4);
        let meta = ResultMeta {
            tables: Some(vec!["data".to_string()]),
            interval: (None, None),
            scope: ResultScope::Maintainable {
                exec_plan: Arc::new(LogicalPlan::OneRow),
                kind: MaintKind::Append,
                state: base.clone(),
            },
        };
        c.insert_with_meta("plan-a".into(), base, 0, meta);
        let touched = vec!["data".to_string()];
        let out = c.apply_delta(&delta(0, false, &touched, (None, None)), true, &mut |_| {
            Some(table_of(3))
        });
        assert_eq!(out.patched, 0);
        assert_eq!(out.dropped.len(), 1);
        assert!(c.is_empty());
        assert_eq!(c.stats().recompute_fallbacks, 1);
    }

    #[test]
    fn avg_merges_via_companions() {
        // g | AVG(v) | __maint_sum | __maint_cnt   (group_cols = 1)
        let schema = Schema::new(vec![
            Field::new("g", DataType::Int64),
            Field::nullable("avg", DataType::Float64),
            Field::nullable("s", DataType::Float64),
            Field::nullable("n", DataType::Int64),
        ])
        .unwrap();
        let mk = |g: i64, avg: f64, s: f64, n: i64| {
            vec![
                Value::Int64(g),
                Value::Float64(avg),
                Value::Float64(s),
                Value::Int64(n),
            ]
        };
        let mut old = Table::empty(schema.clone());
        old.append_row(mk(1, 2.0, 6.0, 3)).unwrap();
        let mut dstate = Table::empty(schema.clone());
        dstate.append_row(mk(1, 6.0, 6.0, 1)).unwrap();
        let merged = merge_aggregate_states(
            &old,
            &dstate,
            1,
            &[
                MergeSpec::Avg {
                    sum_col: 2,
                    cnt_col: 3,
                },
                MergeSpec::SumFloat,
                MergeSpec::Count,
            ],
        )
        .unwrap();
        assert_eq!(
            merged.row(0).unwrap(),
            vec![
                Value::Int64(1),
                Value::Float64(3.0),
                Value::Float64(12.0),
                Value::Int64(4),
            ]
        );
    }

    #[test]
    fn integer_sum_overflow_falls_back() {
        let schema = Schema::new(vec![
            Field::new("g", DataType::Int64),
            Field::nullable("s", DataType::Int64),
        ])
        .unwrap();
        let mut old = Table::empty(schema.clone());
        old.append_row(vec![Value::Int64(1), Value::Int64(i64::MAX)])
            .unwrap();
        let mut dstate = Table::empty(schema.clone());
        dstate
            .append_row(vec![Value::Int64(1), Value::Int64(1)])
            .unwrap();
        let err = merge_aggregate_states(&old, &dstate, 1, &[MergeSpec::SumInt]).unwrap_err();
        assert!(err.contains("overflow"), "{err}");
    }
}
