//! The seismic warehouse schema of the paper.
//!
//! "The normalized data warehouse schema, as proposed in \[12\], includes
//! three tables, that are straightforwardly derived from the mSEED format"
//! (§4): two metadata tables `F` (per file) and `R` (per record), one
//! actual-data table `D` (sample time/value points), joined by a
//! non-materialized view `dataview` into a universal table. File URI and
//! (file, sequence number) form the key/foreign-key chain.

use lazyetl_store::{Catalog, DataType, Field, ForeignKey, Schema};

/// Catalog name of the file-metadata table (the paper's `F`).
pub const FILES_TABLE: &str = "files";
/// Catalog name of the record-metadata table (the paper's `R`).
pub const RECORDS_TABLE: &str = "records";
/// Catalog name of the actual-data table (the paper's `D`).
pub const DATA_TABLE: &str = "data";
/// Catalog name of the universal view.
pub const DATAVIEW: &str = "dataview";

/// The paper's Figure-1 query 1, verbatim: the 2-second STA window on
/// KO.ISK BHE. The single source of truth — the bench harness, the
/// serving CLI's `mix` command and the integration tests all reference
/// these constants rather than carrying copies that could drift.
pub const FIGURE1_Q1: &str = "SELECT AVG(D.sample_value)
FROM mseed.dataview
WHERE F.station = 'ISK'
AND F.channel = 'BHE'
AND R.start_time > '2010-01-12T00:00:00.000'
AND R.start_time < '2010-01-12T23:59:59.999'
AND D.sample_time > '2010-01-12T22:15:00.000'
AND D.sample_time < '2010-01-12T22:15:02.000';";

/// The paper's Figure-1 query 2, verbatim: min/max per NL station.
pub const FIGURE1_Q2: &str = "SELECT F.station,
MIN(D.sample_value), MAX(D.sample_value)
FROM mseed.dataview
WHERE F.network = 'NL'
AND F.channel = 'BHZ'
GROUP BY F.station;";

/// A metadata-only browse (touches `F` only) — the third leg of the
/// interactive query mix used by the load generators and the CLI.
pub const METADATA_QUERY: &str =
    "SELECT network, station, COUNT(*) FROM mseed.files GROUP BY network, station";

/// Schema of `F`: one row per mSEED file, keyed by `file_id`/`uri`.
pub fn files_schema() -> Schema {
    Schema::new(vec![
        Field::new("file_id", DataType::Int64),
        Field::new("uri", DataType::Utf8),
        Field::new("size", DataType::Int64),
        Field::new("mtime", DataType::Timestamp),
        Field::nullable("network", DataType::Utf8),
        Field::nullable("station", DataType::Utf8),
        Field::nullable("location", DataType::Utf8),
        Field::nullable("channel", DataType::Utf8),
        Field::nullable("start_time", DataType::Timestamp),
        Field::nullable("end_time", DataType::Timestamp),
        Field::new("num_records", DataType::Int64),
        Field::new("num_samples", DataType::Int64),
        Field::nullable("sample_rate", DataType::Float64),
        Field::nullable("encoding", DataType::Utf8),
    ])
    .expect("static schema is valid")
}

/// Schema of `R`: one row per mSEED record.
///
/// `byte_offset`/`record_length` let the lazy extractor fetch exactly this
/// record; `start_time`/`end_time` enable record-level pruning against
/// sample-time predicates.
pub fn records_schema() -> Schema {
    Schema::new(vec![
        Field::new("file_id", DataType::Int64),
        Field::new("seq_no", DataType::Int64),
        Field::new("start_time", DataType::Timestamp),
        Field::new("end_time", DataType::Timestamp),
        Field::new("num_samples", DataType::Int64),
        Field::new("sample_rate", DataType::Float64),
        Field::new("byte_offset", DataType::Int64),
        Field::new("record_length", DataType::Int64),
        Field::nullable("quality", DataType::Utf8),
        Field::nullable("timing_quality", DataType::Int64),
        Field::nullable("encoding", DataType::Utf8),
    ])
    .expect("static schema is valid")
}

/// Schema of `D`: the actual data points.
pub fn data_schema() -> Schema {
    Schema::new(vec![
        Field::new("file_id", DataType::Int64),
        Field::new("seq_no", DataType::Int64),
        Field::new("sample_time", DataType::Timestamp),
        Field::new("sample_value", DataType::Float64),
    ])
    .expect("static schema is valid")
}

/// The `dataview` definition: the de-normalized universal table.
///
/// Aliases `f`, `r`, `d` let queries qualify columns exactly as the
/// paper's Figure 1 does (`F.station`, `R.start_time`, `D.sample_value`).
pub fn dataview_sql() -> String {
    format!(
        "SELECT * FROM {FILES_TABLE} f \
         JOIN {RECORDS_TABLE} r ON f.file_id = r.file_id \
         JOIN {DATA_TABLE} d ON r.file_id = d.file_id AND r.seq_no = d.seq_no"
    )
}

/// Register the two metadata tables, the view, and the foreign keys in a
/// catalog. The `D` table is only created for eager warehouses; lazy
/// warehouses register it as an external table instead.
pub fn install_metadata_schema(catalog: &mut Catalog) -> lazyetl_store::Result<()> {
    catalog.create_table(FILES_TABLE, lazyetl_store::Table::empty(files_schema()))?;
    catalog.create_table(RECORDS_TABLE, lazyetl_store::Table::empty(records_schema()))?;
    catalog.create_view(DATAVIEW, &dataview_sql())?;
    catalog.add_foreign_key(ForeignKey {
        table: RECORDS_TABLE.into(),
        columns: vec!["file_id".into()],
        ref_table: FILES_TABLE.into(),
        ref_columns: vec!["file_id".into()],
    });
    catalog.add_foreign_key(ForeignKey {
        table: DATA_TABLE.into(),
        columns: vec!["file_id".into(), "seq_no".into()],
        ref_table: RECORDS_TABLE.into(),
        ref_columns: vec!["file_id".into(), "seq_no".into()],
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schemas_have_expected_keys() {
        assert_eq!(files_schema().index_of("file_id"), Some(0));
        assert!(records_schema().index_of("byte_offset").is_some());
        assert_eq!(data_schema().len(), 4);
    }

    #[test]
    fn install_registers_everything() {
        let mut c = Catalog::new();
        install_metadata_schema(&mut c).unwrap();
        assert!(c.table(FILES_TABLE).is_some());
        assert!(c.table(RECORDS_TABLE).is_some());
        assert!(c.view(DATAVIEW).is_some());
        assert_eq!(c.foreign_keys().len(), 2);
        // Second install collides.
        assert!(install_metadata_schema(&mut c).is_err());
    }

    #[test]
    fn dataview_sql_parses() {
        let sql = dataview_sql();
        assert!(lazyetl_query::parse(&sql).is_ok());
    }
}
