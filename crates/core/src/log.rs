//! The ETL operations log.
//!
//! Demo item (8): "looking through the log to see what operations are
//! performed and in which order". Every warehouse operation appends an
//! entry; tests and the observability example read them back.
//!
//! The log is internally synchronized (a mutex around the entry list), so
//! appending takes `&self` and concurrent queries interleave their entries
//! in arrival order — one total order, exactly what the demo's "in which
//! order" item needs.

use std::sync::Mutex;
use std::time::Instant;

/// One operation category.
#[derive(Debug, Clone, PartialEq)]
pub enum EtlOp {
    /// Metadata of one file loaded into F/R.
    MetadataLoad {
        /// Repository URI.
        uri: String,
        /// Number of record-metadata rows produced.
        records: usize,
        /// Bytes read to scan the metadata.
        bytes_read: u64,
    },
    /// Actual data extracted from a file (lazy or eager).
    Extract {
        /// Repository URI.
        uri: String,
        /// Number of records decoded.
        records: usize,
        /// Number of samples produced.
        samples: usize,
    },
    /// A needed record range was served from the cache.
    CacheHit {
        /// Repository URI.
        uri: String,
        /// Records served.
        records: usize,
    },
    /// Entries evicted to make room.
    CacheEvict {
        /// Number of entries evicted.
        entries: usize,
        /// Bytes reclaimed.
        bytes: usize,
    },
    /// A stale cache entry was detected and dropped (lazy refresh).
    StaleDrop {
        /// Repository URI whose entries were dropped.
        uri: String,
    },
    /// Metadata rows of a changed file were re-loaded.
    MetadataRefresh {
        /// Repository URI.
        uri: String,
    },
    /// A compile-time or run-time plan rewrite took place.
    PlanRewrite {
        /// Which stage ("optimize", "lazy-extract", …).
        stage: String,
        /// Short description of what changed.
        detail: String,
    },
    /// A whole query result was served by the result recycler.
    ResultRecycleHit {
        /// Rows served.
        rows: usize,
    },
    /// A query result was admitted to the result recycler.
    ResultRecycleAdmit {
        /// Rows admitted.
        rows: usize,
        /// Bytes admitted.
        bytes: usize,
    },
    /// A query started.
    QueryStart {
        /// The SQL text.
        sql: String,
    },
    /// A query finished.
    QueryFinish {
        /// Result row count.
        rows: usize,
        /// Elapsed microseconds.
        elapsed_us: u64,
    },
    /// A durable save started (journaled).
    SaveBegin {
        /// Snapshot epoch being written.
        epoch: u64,
    },
    /// A catalog table reached disk during a durable save (journaled).
    SaveTable {
        /// File name inside the saved directory.
        name: String,
        /// Bytes written (footer included).
        bytes: u64,
        /// Body checksum.
        checksum: u64,
    },
    /// A cache shard segment reached disk during a durable save
    /// (journaled).
    SaveSegment {
        /// Shard index the segment was exported from.
        shard: usize,
        /// Relative path inside the saved directory.
        path: String,
        /// Entries written.
        entries: usize,
        /// Bytes written (footer included).
        bytes: u64,
        /// Body checksum.
        checksum: u64,
    },
    /// The manifest rename made a new snapshot epoch authoritative
    /// (journaled — the commit point of a durable save).
    SaveCommit {
        /// Now-authoritative epoch.
        epoch: u64,
    },
    /// Obsolete files of the previous epoch were removed (journaled).
    SaveCleanup {
        /// The epoch whose save completed cleanup.
        epoch: u64,
    },
    /// Journal replay at reopen rolled back an interrupted save.
    RecoveryRollback {
        /// The epoch whose partial files were discarded.
        epoch: u64,
    },
    /// A refresh produced a record-level delta for incremental result
    /// maintenance (new generation, what changed, whether the change was
    /// insert-only — the precondition for patching).
    RefreshDelta {
        /// The generation the refresh moved the warehouse to.
        generation: u64,
        /// Files that newly appeared.
        added_files: usize,
        /// Record-metadata rows the added files contributed.
        added_records: usize,
        /// True when nothing was modified or removed (patchable delta).
        insert_only: bool,
    },
    /// A resident recycled result was patched in place from a refresh
    /// delta instead of being dropped.
    ResultPatch {
        /// Delta rows folded into the entry (appended rows or touched
        /// group states).
        rows: usize,
    },
    /// A resident recycled result survived a refresh untouched because its
    /// referenced tables/time window do not intersect the delta.
    ResultKeep {
        /// Bytes that did not need recomputing.
        bytes: usize,
    },
    /// A resident recycled result could not be maintained and was dropped
    /// for recompute on next access.
    ResultRecomputeFallback {
        /// Why the entry fell back ("opaque plan", "dirty delta", …).
        reason: String,
    },
}

impl EtlOp {
    /// Serialize a save-related operation as one journal line, or `None`
    /// for operations that are not journaled. The ETL log doubles as the
    /// save path's replayable journal: these lines are appended (and
    /// fsynced) to the `JOURNAL` file in a saved-warehouse directory, and
    /// [`EtlOp::parse_journal_line`] replays them at recovery.
    pub fn journal_line(&self) -> Option<String> {
        Some(match self {
            EtlOp::SaveBegin { epoch } => format!("begin epoch={epoch}"),
            EtlOp::SaveTable {
                name,
                bytes,
                checksum,
            } => format!("table bytes={bytes} checksum={checksum:x} name={name}"),
            EtlOp::SaveSegment {
                shard,
                path,
                entries,
                bytes,
                checksum,
            } => format!(
                "segment shard={shard} entries={entries} bytes={bytes} \
                 checksum={checksum:x} path={path}"
            ),
            EtlOp::SaveCommit { epoch } => format!("commit epoch={epoch}"),
            EtlOp::SaveCleanup { epoch } => format!("cleanup epoch={epoch}"),
            EtlOp::RecoveryRollback { epoch } => format!("rollback epoch={epoch}"),
            _ => return None,
        })
    }

    /// Parse one journal line back into its operation. Unknown or torn
    /// lines (a crash can cut the final append short) yield `None` and
    /// are skipped by replay.
    pub fn parse_journal_line(line: &str) -> Option<EtlOp> {
        let line = line.trim();
        let (verb, rest) = line.split_once(' ').unwrap_or((line, ""));
        // `name=`/`path=` come last and may contain spaces; numeric fields
        // are space-separated key=value pairs before them.
        let field = |key: &str| -> Option<&str> {
            rest.split_whitespace()
                .find_map(|kv| kv.strip_prefix(key).and_then(|v| v.strip_prefix('=')))
        };
        let tail = |key: &str| -> Option<&str> {
            rest.split_once(&format!("{key}="))
                .map(|(_, v)| v.trim_end())
        };
        let num = |key: &str| field(key).and_then(|v| v.parse::<u64>().ok());
        let hex = |key: &str| field(key).and_then(|v| u64::from_str_radix(v, 16).ok());
        match verb {
            "begin" => Some(EtlOp::SaveBegin {
                epoch: num("epoch")?,
            }),
            "table" => Some(EtlOp::SaveTable {
                name: tail("name")?.to_string(),
                bytes: num("bytes")?,
                checksum: hex("checksum")?,
            }),
            "segment" => Some(EtlOp::SaveSegment {
                shard: num("shard")? as usize,
                path: tail("path")?.to_string(),
                entries: num("entries")? as usize,
                bytes: num("bytes")?,
                checksum: hex("checksum")?,
            }),
            "commit" => Some(EtlOp::SaveCommit {
                epoch: num("epoch")?,
            }),
            "cleanup" => Some(EtlOp::SaveCleanup {
                epoch: num("epoch")?,
            }),
            "rollback" => Some(EtlOp::RecoveryRollback {
                epoch: num("epoch")?,
            }),
            _ => None,
        }
    }
}

/// A timestamped log entry.
#[derive(Debug, Clone)]
pub struct LogEntry {
    /// Monotone sequence number.
    pub seq: u64,
    /// Microseconds since the log was created.
    pub at_us: u64,
    /// What happened.
    pub op: EtlOp,
}

#[derive(Debug)]
struct LogInner {
    entries: Vec<LogEntry>,
    next_seq: u64,
}

/// Append-only operations log, safe to share between query threads.
#[derive(Debug)]
pub struct EtlLog {
    started: Instant,
    inner: Mutex<LogInner>,
}

impl Default for EtlLog {
    fn default() -> Self {
        EtlLog::new()
    }
}

impl EtlLog {
    /// A fresh, empty log.
    pub fn new() -> EtlLog {
        EtlLog {
            started: Instant::now(),
            inner: Mutex::new(LogInner {
                entries: Vec::new(),
                next_seq: 0,
            }),
        }
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, LogInner> {
        self.inner.lock().expect("etl log poisoned")
    }

    /// Append one operation.
    pub fn push(&self, op: EtlOp) {
        let mut inner = self.locked();
        // Read the clock under the lock so `at_us` is monotone in `seq`
        // even when concurrent pushers race to acquire it.
        let at_us = self.started.elapsed().as_micros() as u64;
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.entries.push(LogEntry { seq, at_us, op });
    }

    /// A snapshot of all entries, oldest first.
    pub fn entries(&self) -> Vec<LogEntry> {
        self.locked().entries.clone()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.locked().entries.len()
    }

    /// True when nothing was logged.
    pub fn is_empty(&self) -> bool {
        self.locked().entries.is_empty()
    }

    /// Drop all entries (sequence numbers keep increasing).
    pub fn clear(&self) {
        self.locked().entries.clear();
    }

    /// Render the log as text, one line per entry.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in self.locked().entries.iter() {
            out.push_str(&format!("[{:>6}] t+{:>9}us {:?}\n", e.seq, e.at_us, e.op));
        }
        out
    }

    /// Count entries matching a predicate.
    pub fn count_matching(&self, pred: impl Fn(&EtlOp) -> bool) -> usize {
        self.locked().entries.iter().filter(|e| pred(&e.op)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_and_ordering() {
        let log = EtlLog::new();
        log.push(EtlOp::QueryStart {
            sql: "SELECT 1".into(),
        });
        log.push(EtlOp::QueryFinish {
            rows: 1,
            elapsed_us: 10,
        });
        assert_eq!(log.len(), 2);
        let entries = log.entries();
        assert_eq!(entries[0].seq, 0);
        assert_eq!(entries[1].seq, 1);
        assert!(entries[0].at_us <= entries[1].at_us);
        let rendered = log.render();
        assert!(rendered.contains("QueryStart"));
        assert!(rendered.lines().count() == 2);
    }

    #[test]
    fn clear_keeps_sequence_monotone() {
        let log = EtlLog::new();
        log.push(EtlOp::StaleDrop { uri: "x".into() });
        log.clear();
        assert!(log.is_empty());
        log.push(EtlOp::StaleDrop { uri: "y".into() });
        assert_eq!(log.entries()[0].seq, 1, "seq continues after clear");
    }

    #[test]
    fn count_matching_filters() {
        let log = EtlLog::new();
        for i in 0..5 {
            log.push(EtlOp::CacheHit {
                uri: format!("f{i}"),
                records: i,
            });
        }
        log.push(EtlOp::StaleDrop { uri: "f0".into() });
        assert_eq!(
            log.count_matching(|op| matches!(op, EtlOp::CacheHit { .. })),
            5
        );
    }

    #[test]
    fn journal_lines_roundtrip() {
        let ops = vec![
            EtlOp::SaveBegin { epoch: 3 },
            EtlOp::SaveTable {
                name: "files.e3.lztb".into(),
                bytes: 1234,
                checksum: 0xdead_beef,
            },
            EtlOp::SaveSegment {
                shard: 2,
                path: "segments.e3/shard_002.lzsg".into(),
                entries: 17,
                bytes: 999,
                checksum: 0xff,
            },
            EtlOp::SaveCommit { epoch: 3 },
            EtlOp::SaveCleanup { epoch: 3 },
            EtlOp::RecoveryRollback { epoch: 4 },
        ];
        for op in &ops {
            let line = op.journal_line().expect("save ops are journaled");
            let back = EtlOp::parse_journal_line(&line).expect("line parses");
            assert_eq!(&back, op, "roundtrip of {line:?}");
        }
        // Non-save ops are not journaled.
        assert!(EtlOp::QueryStart { sql: "q".into() }
            .journal_line()
            .is_none());
        // Torn/garbage lines are skipped, not panicked on.
        for bad in [
            "",
            "beg",
            "begin",
            "begin epoch=",
            "table name=x",
            "commit epoch=zz",
        ] {
            assert!(EtlOp::parse_journal_line(bad).is_none(), "{bad:?}");
        }
    }

    #[test]
    fn concurrent_pushes_get_distinct_sequence_numbers() {
        let log = EtlLog::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let log = &log;
                s.spawn(move || {
                    for i in 0..25 {
                        log.push(EtlOp::CacheHit {
                            uri: format!("t{t}_{i}"),
                            records: i,
                        });
                    }
                });
            }
        });
        let entries = log.entries();
        assert_eq!(entries.len(), 100);
        let mut seqs: Vec<u64> = entries.iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), 100, "no duplicate sequence numbers");
        // Timestamps are monotone in sequence order: the clock is read
        // under the same lock that assigns `seq`.
        for pair in entries.windows(2) {
            assert!(pair[0].seq < pair[1].seq);
            assert!(pair[0].at_us <= pair[1].at_us, "at_us regressed");
        }
    }
}
