//! The ETL operations log.
//!
//! Demo item (8): "looking through the log to see what operations are
//! performed and in which order". Every warehouse operation appends an
//! entry; tests and the observability example read them back.
//!
//! The log is internally synchronized (a mutex around the entry list), so
//! appending takes `&self` and concurrent queries interleave their entries
//! in arrival order — one total order, exactly what the demo's "in which
//! order" item needs.

use std::sync::Mutex;
use std::time::Instant;

/// One operation category.
#[derive(Debug, Clone, PartialEq)]
pub enum EtlOp {
    /// Metadata of one file loaded into F/R.
    MetadataLoad {
        /// Repository URI.
        uri: String,
        /// Number of record-metadata rows produced.
        records: usize,
        /// Bytes read to scan the metadata.
        bytes_read: u64,
    },
    /// Actual data extracted from a file (lazy or eager).
    Extract {
        /// Repository URI.
        uri: String,
        /// Number of records decoded.
        records: usize,
        /// Number of samples produced.
        samples: usize,
    },
    /// A needed record range was served from the cache.
    CacheHit {
        /// Repository URI.
        uri: String,
        /// Records served.
        records: usize,
    },
    /// Entries evicted to make room.
    CacheEvict {
        /// Number of entries evicted.
        entries: usize,
        /// Bytes reclaimed.
        bytes: usize,
    },
    /// A stale cache entry was detected and dropped (lazy refresh).
    StaleDrop {
        /// Repository URI whose entries were dropped.
        uri: String,
    },
    /// Metadata rows of a changed file were re-loaded.
    MetadataRefresh {
        /// Repository URI.
        uri: String,
    },
    /// A compile-time or run-time plan rewrite took place.
    PlanRewrite {
        /// Which stage ("optimize", "lazy-extract", …).
        stage: String,
        /// Short description of what changed.
        detail: String,
    },
    /// A whole query result was served by the result recycler.
    ResultRecycleHit {
        /// Rows served.
        rows: usize,
    },
    /// A query result was admitted to the result recycler.
    ResultRecycleAdmit {
        /// Rows admitted.
        rows: usize,
        /// Bytes admitted.
        bytes: usize,
    },
    /// A query started.
    QueryStart {
        /// The SQL text.
        sql: String,
    },
    /// A query finished.
    QueryFinish {
        /// Result row count.
        rows: usize,
        /// Elapsed microseconds.
        elapsed_us: u64,
    },
}

/// A timestamped log entry.
#[derive(Debug, Clone)]
pub struct LogEntry {
    /// Monotone sequence number.
    pub seq: u64,
    /// Microseconds since the log was created.
    pub at_us: u64,
    /// What happened.
    pub op: EtlOp,
}

#[derive(Debug)]
struct LogInner {
    entries: Vec<LogEntry>,
    next_seq: u64,
}

/// Append-only operations log, safe to share between query threads.
#[derive(Debug)]
pub struct EtlLog {
    started: Instant,
    inner: Mutex<LogInner>,
}

impl Default for EtlLog {
    fn default() -> Self {
        EtlLog::new()
    }
}

impl EtlLog {
    /// A fresh, empty log.
    pub fn new() -> EtlLog {
        EtlLog {
            started: Instant::now(),
            inner: Mutex::new(LogInner {
                entries: Vec::new(),
                next_seq: 0,
            }),
        }
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, LogInner> {
        self.inner.lock().expect("etl log poisoned")
    }

    /// Append one operation.
    pub fn push(&self, op: EtlOp) {
        let mut inner = self.locked();
        // Read the clock under the lock so `at_us` is monotone in `seq`
        // even when concurrent pushers race to acquire it.
        let at_us = self.started.elapsed().as_micros() as u64;
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.entries.push(LogEntry { seq, at_us, op });
    }

    /// A snapshot of all entries, oldest first.
    pub fn entries(&self) -> Vec<LogEntry> {
        self.locked().entries.clone()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.locked().entries.len()
    }

    /// True when nothing was logged.
    pub fn is_empty(&self) -> bool {
        self.locked().entries.is_empty()
    }

    /// Drop all entries (sequence numbers keep increasing).
    pub fn clear(&self) {
        self.locked().entries.clear();
    }

    /// Render the log as text, one line per entry.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in self.locked().entries.iter() {
            out.push_str(&format!("[{:>6}] t+{:>9}us {:?}\n", e.seq, e.at_us, e.op));
        }
        out
    }

    /// Count entries matching a predicate.
    pub fn count_matching(&self, pred: impl Fn(&EtlOp) -> bool) -> usize {
        self.locked().entries.iter().filter(|e| pred(&e.op)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_and_ordering() {
        let log = EtlLog::new();
        log.push(EtlOp::QueryStart {
            sql: "SELECT 1".into(),
        });
        log.push(EtlOp::QueryFinish {
            rows: 1,
            elapsed_us: 10,
        });
        assert_eq!(log.len(), 2);
        let entries = log.entries();
        assert_eq!(entries[0].seq, 0);
        assert_eq!(entries[1].seq, 1);
        assert!(entries[0].at_us <= entries[1].at_us);
        let rendered = log.render();
        assert!(rendered.contains("QueryStart"));
        assert!(rendered.lines().count() == 2);
    }

    #[test]
    fn clear_keeps_sequence_monotone() {
        let log = EtlLog::new();
        log.push(EtlOp::StaleDrop { uri: "x".into() });
        log.clear();
        assert!(log.is_empty());
        log.push(EtlOp::StaleDrop { uri: "y".into() });
        assert_eq!(log.entries()[0].seq, 1, "seq continues after clear");
    }

    #[test]
    fn count_matching_filters() {
        let log = EtlLog::new();
        for i in 0..5 {
            log.push(EtlOp::CacheHit {
                uri: format!("f{i}"),
                records: i,
            });
        }
        log.push(EtlOp::StaleDrop { uri: "f0".into() });
        assert_eq!(
            log.count_matching(|op| matches!(op, EtlOp::CacheHit { .. })),
            5
        );
    }

    #[test]
    fn concurrent_pushes_get_distinct_sequence_numbers() {
        let log = EtlLog::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let log = &log;
                s.spawn(move || {
                    for i in 0..25 {
                        log.push(EtlOp::CacheHit {
                            uri: format!("t{t}_{i}"),
                            records: i,
                        });
                    }
                });
            }
        });
        let entries = log.entries();
        assert_eq!(entries.len(), 100);
        let mut seqs: Vec<u64> = entries.iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), 100, "no duplicate sequence numbers");
        // Timestamps are monotone in sequence order: the clock is read
        // under the same lock that assigns `seq`.
        for pair in entries.windows(2) {
            assert!(pair[0].seq < pair[1].seq);
            assert!(pair[0].at_us <= pair[1].at_us, "at_us regressed");
        }
    }
}
