//! The ETL operations log.
//!
//! Demo item (8): "looking through the log to see what operations are
//! performed and in which order". Every warehouse operation appends an
//! entry; tests and the observability example read them back.

use std::time::Instant;

/// One operation category.
#[derive(Debug, Clone, PartialEq)]
pub enum EtlOp {
    /// Metadata of one file loaded into F/R.
    MetadataLoad {
        /// Repository URI.
        uri: String,
        /// Number of record-metadata rows produced.
        records: usize,
        /// Bytes read to scan the metadata.
        bytes_read: u64,
    },
    /// Actual data extracted from a file (lazy or eager).
    Extract {
        /// Repository URI.
        uri: String,
        /// Number of records decoded.
        records: usize,
        /// Number of samples produced.
        samples: usize,
    },
    /// A needed record range was served from the cache.
    CacheHit {
        /// Repository URI.
        uri: String,
        /// Records served.
        records: usize,
    },
    /// Entries evicted to make room.
    CacheEvict {
        /// Number of entries evicted.
        entries: usize,
        /// Bytes reclaimed.
        bytes: usize,
    },
    /// A stale cache entry was detected and dropped (lazy refresh).
    StaleDrop {
        /// Repository URI whose entries were dropped.
        uri: String,
    },
    /// Metadata rows of a changed file were re-loaded.
    MetadataRefresh {
        /// Repository URI.
        uri: String,
    },
    /// A compile-time or run-time plan rewrite took place.
    PlanRewrite {
        /// Which stage ("optimize", "lazy-extract", …).
        stage: String,
        /// Short description of what changed.
        detail: String,
    },
    /// A whole query result was served by the result recycler.
    ResultRecycleHit {
        /// Rows served.
        rows: usize,
    },
    /// A query result was admitted to the result recycler.
    ResultRecycleAdmit {
        /// Rows admitted.
        rows: usize,
        /// Bytes admitted.
        bytes: usize,
    },
    /// A query started.
    QueryStart {
        /// The SQL text.
        sql: String,
    },
    /// A query finished.
    QueryFinish {
        /// Result row count.
        rows: usize,
        /// Elapsed microseconds.
        elapsed_us: u64,
    },
}

/// A timestamped log entry.
#[derive(Debug, Clone)]
pub struct LogEntry {
    /// Monotone sequence number.
    pub seq: u64,
    /// Microseconds since the log was created.
    pub at_us: u64,
    /// What happened.
    pub op: EtlOp,
}

/// Append-only operations log.
#[derive(Debug)]
pub struct EtlLog {
    started: Instant,
    entries: Vec<LogEntry>,
    next_seq: u64,
}

impl Default for EtlLog {
    fn default() -> Self {
        EtlLog::new()
    }
}

impl EtlLog {
    /// A fresh, empty log.
    pub fn new() -> EtlLog {
        EtlLog {
            started: Instant::now(),
            entries: Vec::new(),
            next_seq: 0,
        }
    }

    /// Append one operation.
    pub fn push(&mut self, op: EtlOp) {
        let entry = LogEntry {
            seq: self.next_seq,
            at_us: self.started.elapsed().as_micros() as u64,
            op,
        };
        self.next_seq += 1;
        self.entries.push(entry);
    }

    /// All entries, oldest first.
    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing was logged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drop all entries (sequence numbers keep increasing).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Render the log as text, one line per entry.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&format!("[{:>6}] t+{:>9}us {:?}\n", e.seq, e.at_us, e.op));
        }
        out
    }

    /// Count entries matching a predicate.
    pub fn count_matching(&self, pred: impl Fn(&EtlOp) -> bool) -> usize {
        self.entries.iter().filter(|e| pred(&e.op)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_and_ordering() {
        let mut log = EtlLog::new();
        log.push(EtlOp::QueryStart { sql: "SELECT 1".into() });
        log.push(EtlOp::QueryFinish {
            rows: 1,
            elapsed_us: 10,
        });
        assert_eq!(log.len(), 2);
        assert_eq!(log.entries()[0].seq, 0);
        assert_eq!(log.entries()[1].seq, 1);
        assert!(log.entries()[0].at_us <= log.entries()[1].at_us);
        let rendered = log.render();
        assert!(rendered.contains("QueryStart"));
        assert!(rendered.lines().count() == 2);
    }

    #[test]
    fn clear_keeps_sequence_monotone() {
        let mut log = EtlLog::new();
        log.push(EtlOp::StaleDrop { uri: "x".into() });
        log.clear();
        assert!(log.is_empty());
        log.push(EtlOp::StaleDrop { uri: "y".into() });
        assert_eq!(log.entries()[0].seq, 1, "seq continues after clear");
    }

    #[test]
    fn count_matching_filters() {
        let mut log = EtlLog::new();
        for i in 0..5 {
            log.push(EtlOp::CacheHit {
                uri: format!("f{i}"),
                records: i,
            });
        }
        log.push(EtlOp::StaleDrop { uri: "f0".into() });
        assert_eq!(
            log.count_matching(|op| matches!(op, EtlOp::CacheHit { .. })),
            5
        );
    }
}
