//! The scientific data warehouse facade.
//!
//! Two construction modes mirror the paper's comparison:
//!
//! * [`Warehouse::open_lazy`] — loads **only metadata** (F and R); the
//!   actual data table `D` is registered as an external table that the
//!   lazy rewriter materializes per query. "With the initial loading of
//!   only metadata, the data warehouse is instantly ready for analysis
//!   queries" (§4).
//! * [`Warehouse::open_eager`] — the traditional baseline: extracts,
//!   transforms and loads everything up front.
//!
//! Querying goes through the full pipeline: parse → plan (with view
//! expansion) → optimize (metadata predicates first) → run-time lazy
//! rewrite → execute, with every stage's plan captured for the demo's
//! observability items (4)–(6) and every ETL operation logged (item 8).
//!
//! # Concurrency
//!
//! [`Warehouse::query`] takes `&self` and the warehouse is `Send + Sync`:
//! one warehouse serves any number of client threads. The design is
//! read-mostly:
//!
//! * the catalog, repository registry and locator index sit behind one
//!   [`RwLock`] — queries share a read lock, only [`Warehouse::refresh`]
//!   (folding repository changes in) takes the write lock;
//! * the record cache is lock-striped into shards keyed by
//!   `(file_id, seq_no)` hash ([`crate::cache`]), so concurrent
//!   extractions feed disjoint stripes instead of serializing;
//! * the result recycler, ETL log and refresh-generation counter are
//!   internally synchronized (`Mutex` / atomics).
//!
//! Two queries racing on the same cold record may both extract it (a
//! benign shard race — last admission wins, results are unaffected);
//! everything else a query observes is the same as in the serial design.
//!
//! # Federation
//!
//! A warehouse mounts one or more **named** [`LazySource`]s (built with
//! [`WarehouseBuilder`]): local directories, CSV trees, simulated-remote
//! servers. One catalog spans them all — file ids are made warehouse-
//! global by packing the mount index into the high half
//! (`(mount << 32) | local_id`), and with more than one mount every URI
//! is displayed mount-qualified (`name://relative/path`). Queries are
//! unaware of the split: the lazy rewriter hands back global pairs and
//! the fetch pipeline routes each file's reads through its own source,
//! accounting extraction work per mount ([`SourceStats`]). The classic
//! single-directory constructors ([`Warehouse::open_lazy`] /
//! [`Warehouse::open_eager`] / [`Warehouse::open_saved`]) are thin shims
//! over the builder with one mount named `repo`, and keep today's bare
//! URIs and ids.

use crate::cache::{CacheLookup, CacheSnapshot, RecyclingCache};
use crate::error::{EtlError, Result};
use crate::extract::{push_file_row, push_record_row, FormatRegistry, RecordLocator};
use crate::log::{EtlLog, EtlOp};
use crate::parallel::{extract_groups_into, FileGroup};
use crate::qcache::{QueryResultCache, ResultCacheSnapshot, ResultMeta, ResultScope};
use crate::rewrite::{lazy_rewrite, LocatorIndex, RewriteContext, RewriteReport};
use crate::schema::{self, DATA_TABLE, FILES_TABLE, RECORDS_TABLE};
use lazyetl_query::exec::{execute, ExecContext};
use lazyetl_query::optimizer::{
    coerce_timestamp_literals, fold_constants, optimize, optimize_with_cost,
};
use lazyetl_query::planner::{plan_select, TableSource};
use lazyetl_query::{
    classify, parse_select, CostModel, LogicalPlan, MaintKind, MaintPlan, Maintainability,
};
use lazyetl_repo::{AccessProfile, FileEntry, FileId, LazySource, RepoError, Repository};
use lazyetl_store::{Catalog, Table};
use std::collections::BTreeSet;
use std::ops::Deref;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard};
use std::time::{Duration, Instant};

/// Largest mount index that fits the high half of a warehouse-global
/// file id; packing a larger one would overflow `i64` and silently alias
/// another mount's files.
pub const MAX_MOUNT_INDEX: usize = (i64::MAX >> 32) as usize;

/// Pack a mount index and a mount-local file id into the warehouse-global
/// file id used in F/R/D rows, cache keys and rewrite pairs. Mount 0
/// yields ids identical to the local ones, so single-source warehouses
/// (and everything persisted by them) are unchanged.
///
/// Checked: a mount index beyond [`MAX_MOUNT_INDEX`] is a typed
/// [`RepoError::IdOverflow`] (stable code `repo.id_overflow`), never a
/// wrapped-around id.
pub fn global_file_id(mount: usize, local: FileId) -> std::result::Result<i64, RepoError> {
    if mount > MAX_MOUNT_INDEX {
        return Err(RepoError::IdOverflow { mount });
    }
    Ok(((mount as i64) << 32) | local.0 as i64)
}

/// Invert [`global_file_id`].
pub fn split_file_id(fid: i64) -> (usize, FileId) {
    ((fid >> 32) as usize, FileId((fid & 0xFFFF_FFFF) as u32))
}

/// Warehouse construction mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Metadata-only initial load; actual data on demand (the paper's
    /// contribution).
    Lazy,
    /// Traditional full initial load (the baseline).
    Eager,
}

/// Tunables; defaults reproduce the paper's configuration.
#[derive(Debug, Clone)]
pub struct WarehouseConfig {
    /// Byte budget of the recycling cache ("not larger than the size of
    /// system's main memory", §3.3).
    pub cache_budget_bytes: usize,
    /// Number of lock stripes of the recycling cache (clamped to ≥ 1).
    /// More shards mean less contention between concurrent queries; `1`
    /// restores the exact global-LRU eviction order of the serial design.
    /// Experiment E12 sweeps this.
    pub cache_shards: usize,
    /// Check the repository for updates at the start of every query
    /// ("refreshments are handled … when the data warehouse is queried",
    /// §3.3). Benchmarks measuring pure query latency disable this.
    pub auto_refresh: bool,
    /// Bounded staleness for auto-refresh (cf. the "lazy aggregates" line
    /// of work the paper cites \[13\]): when set, the query-start rescan is
    /// skipped if the previous one ran less than this long ago. Metadata
    /// may then lag the repository by at most this bound; extracted
    /// payloads stay fresh regardless, because the record cache checks
    /// file mtimes at every fetch. `None` rescans on every query.
    pub max_staleness: Option<Duration>,
    /// Apply the compile-time reorganization that evaluates metadata
    /// predicates first (§3.1). Disabling is the E4 ablation: every query
    /// degenerates to a full-repository extraction.
    pub metadata_predicate_first: bool,
    /// Prune candidate records whose time range cannot intersect the
    /// query's sample-time predicates (ablation flag).
    pub record_level_pruning: bool,
    /// Serve record-level pruning with the ordered time index's
    /// binary-search seek. `false` is the E17 baseline: the same pairs are
    /// kept, but pruning sweeps every candidate record linearly.
    pub time_index_seek: bool,
    /// Plan with the cost model (cardinality estimates over the catalog's
    /// zone-map statistics, selectivity-driven join reordering, per-source
    /// access-cost multipliers). `false` keeps the pure heuristic pipeline
    /// — the pre-upgrade behaviour and the E17 planner ablation. Results
    /// are identical either way; only plan shape and cost change.
    pub cost_based_planning: bool,
    /// Use the recycling cache (ablation flag).
    pub use_cache: bool,
    /// Recycle **final query results** keyed by optimized-plan fingerprint
    /// (the second recycler level of §3.3; experiment E11). Off by default
    /// so per-query extraction accounting stays observable.
    pub recycle_query_results: bool,
    /// Byte budget of the result recycler (only used when
    /// [`recycle_query_results`](Self::recycle_query_results) is on).
    pub result_cache_budget_bytes: usize,
    /// Maintain recycled results incrementally across insert-only
    /// refreshes (patch filter/project/aggregate results from the delta)
    /// instead of dropping them. `false` is the E18 recompute baseline;
    /// scoped invalidation (keeping entries whose tables/time windows the
    /// delta provably misses) stays on either way.
    pub maintain_recycled_results: bool,
    /// Worker threads for the extraction phase of lazy fetches (file
    /// granularity; experiment E10). `1` is the paper's sequential
    /// behaviour; higher values overlap decoding of independent files
    /// without changing any observable result.
    pub extraction_threads: usize,
    /// Worker threads for one query's execution pipelines (morsel-driven
    /// scan/filter/aggregate/join parallelism). `1` is the serial
    /// reference executor; the determinism harness in the query crate
    /// proves higher values never change observable results.
    pub parallelism: usize,
    /// Simulated remote-access cost model for experiment accounting.
    pub access: AccessProfile,
}

impl Default for WarehouseConfig {
    fn default() -> Self {
        WarehouseConfig {
            cache_budget_bytes: 256 << 20,
            cache_shards: crate::cache::DEFAULT_SHARDS,
            auto_refresh: true,
            max_staleness: None,
            metadata_predicate_first: true,
            record_level_pruning: true,
            time_index_seek: true,
            cost_based_planning: true,
            use_cache: true,
            recycle_query_results: false,
            result_cache_budget_bytes: 64 << 20,
            maintain_recycled_results: true,
            extraction_threads: 1,
            parallelism: 1,
            access: AccessProfile::local(),
        }
    }
}

/// What initial loading cost.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Lazy or eager.
    pub mode: Mode,
    /// Files registered.
    pub files: usize,
    /// Record-metadata rows loaded.
    pub records: usize,
    /// Waveform samples materialized into `D` (0 for lazy).
    pub samples_loaded: u64,
    /// Bytes read from the repository.
    pub bytes_read: u64,
    /// Wall-clock duration of the load.
    pub elapsed: Duration,
    /// Simulated remote-access time under [`WarehouseConfig::access`].
    pub simulated_io: Duration,
}

/// What a refresh did.
#[derive(Debug, Clone, Default)]
pub struct RefreshSummary {
    /// Newly appeared files.
    pub added: usize,
    /// Files whose content changed.
    pub modified: usize,
    /// Files that disappeared.
    pub removed: usize,
    /// Record-metadata rows re-loaded.
    pub records_reloaded: usize,
    /// Samples re-extracted (eager mode only).
    pub samples_reloaded: u64,
    /// Wall-clock duration.
    pub elapsed: Duration,
}

impl RefreshSummary {
    /// True when the repository was unchanged.
    pub fn is_noop(&self) -> bool {
        self.added == 0 && self.modified == 0 && self.removed == 0
    }
}

/// Per-query diagnostics (feeds demo items 3, 4, 5, 6, 8).
#[derive(Debug, Clone)]
pub struct QueryReport {
    /// The SQL text.
    pub sql: String,
    /// End-to-end wall-clock time.
    pub elapsed: Duration,
    /// Result row count.
    pub rows: usize,
    /// (stage name, rendered plan) in pipeline order.
    pub stages: Vec<(String, String)>,
    /// Run-time rewrite details (lazy mode, when the query touches data).
    pub rewrite: Option<RewriteReport>,
    /// URIs of files actual data was extracted from for this query.
    pub files_extracted: Vec<String>,
    /// Records decoded for this query.
    pub records_extracted: usize,
    /// Samples decoded for this query.
    pub samples_extracted: u64,
    /// Needed record ranges served from the cache.
    pub cache_hits: usize,
    /// Needed record ranges not in the cache.
    pub cache_misses: usize,
    /// Stale cache entries dropped and re-extracted.
    pub stale_drops: usize,
    /// Repository bytes read for this query.
    pub bytes_read: u64,
    /// Simulated remote-access time for this query.
    pub simulated_io: Duration,
    /// What the query-start refresh found, when auto-refresh is on.
    pub refresh: Option<RefreshSummary>,
    /// True when the whole result was served by the result recycler
    /// (no extraction, no execution).
    pub result_recycled: bool,
}

/// Point-in-time aggregate view of a warehouse: what an operations
/// dashboard (or the serving layer's stats frame) shows about one shared
/// instance. Produced by [`Warehouse::stats_snapshot`]; all counters are
/// cumulative since open.
#[derive(Debug, Clone)]
pub struct WarehouseStats {
    /// Lazy or eager.
    pub mode: Mode,
    /// Files currently registered in the repository.
    pub files: usize,
    /// Record-metadata rows currently indexed.
    pub records: usize,
    /// Bytes resident in catalog tables.
    pub resident_bytes: usize,
    /// Refresh-invalidation generation.
    pub generation: u64,
    /// Queries served since open (successful or not).
    pub queries: u64,
    /// Record-cache counters (hits, misses, evictions, …).
    pub cache: crate::cache::CacheStats,
    /// Record-cache resident entries.
    pub cache_entries: usize,
    /// Record-cache resident bytes.
    pub cache_used_bytes: usize,
    /// Record-cache byte budget.
    pub cache_budget_bytes: usize,
    /// Saved cache segments attached but not yet rehydrated (warm
    /// restarts only; 0 on cold opens and after first touch).
    pub pending_segments: usize,
    /// Result-recycler counters (hits, misses, patches, scoped keeps, …).
    /// All zero unless [`WarehouseConfig::recycle_query_results`] is on.
    pub recycler: crate::qcache::ResultCacheStats,
    /// Result-recycler resident entries.
    pub recycler_entries: usize,
    /// Executor counters: rows scanned/pruned, vectorized batches and
    /// scalar fallbacks, cumulative across every query this warehouse ran.
    pub exec: lazyetl_query::ExecCounters,
    /// Per-mount extraction accounting, in mount order.
    pub sources: Vec<SourceStats>,
}

/// Query result: the rows plus the diagnostics.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    /// Result rows.
    pub table: Arc<Table>,
    /// Diagnostics.
    pub report: QueryReport,
}

#[derive(Debug, Default)]
struct FetchStats {
    files_extracted: BTreeSet<String>,
    records_extracted: usize,
    samples_extracted: u64,
    cache_hits: usize,
    cache_misses: usize,
    stale_drops: usize,
    bytes_read: u64,
    simulated_io: Duration,
}

/// One named source mounted into a warehouse.
#[derive(Debug)]
struct Mount {
    name: String,
    source: Box<dyn LazySource>,
}

/// Cumulative per-mount extraction counters (updated by the sequential
/// assembly phase of fetches; atomics because the warehouse is shared).
#[derive(Debug, Default)]
struct SourceCounters {
    files_extracted: AtomicU64,
    records_extracted: AtomicU64,
    samples_extracted: AtomicU64,
    bytes_read: AtomicU64,
    simulated_io_us: AtomicU64,
}

/// Point-in-time extraction accounting for one mounted source, as
/// reported by [`Warehouse::stats_snapshot`] (and the serving layer's
/// stats frame). Counters are cumulative since open.
#[derive(Debug, Clone)]
pub struct SourceStats {
    /// Mount name (`repo` for the single-directory shims).
    pub name: String,
    /// Source backend kind (`local`, `csv`, `remote`, …).
    pub kind: &'static str,
    /// Files currently registered under this mount.
    pub files: usize,
    /// Files actual data was extracted from (file touches, not uniqued).
    pub files_extracted: u64,
    /// Records decoded from this source.
    pub records_extracted: u64,
    /// Samples decoded from this source.
    pub samples_extracted: u64,
    /// Payload bytes read from this source for extraction.
    pub bytes_read: u64,
    /// Modeled remote-access time under the source's access profile.
    pub simulated_io: Duration,
    /// Ranged-fetch requests the source itself served (0 for sources
    /// read via a local path).
    pub fetch_requests: u64,
    /// Bytes those ranged fetches transferred.
    pub fetched_bytes: u64,
}

/// The mutable warehouse state queries read and refreshes rewrite: the
/// mounted source registry, the catalog holding F/R (and D in eager
/// mode), and the locator index derived from R.
#[derive(Debug)]
struct WarehouseState {
    mounts: Vec<Mount>,
    catalog: Catalog,
    index: LocatorIndex,
}

impl WarehouseState {
    /// Display form of a mount-local URI: bare for single-mount
    /// warehouses (compatibility), `name://uri` when federated.
    fn full_uri(&self, mount: usize, uri: &str) -> String {
        if self.mounts.len() == 1 {
            uri.to_string()
        } else {
            format!("{}://{}", self.mounts[mount].name, uri)
        }
    }

    /// Resolve a display URI back to its mount and entry.
    fn resolve_uri(&self, full: &str) -> Option<(usize, &FileEntry)> {
        if self.mounts.len() == 1 {
            return self.mounts[0].source.by_uri(full).map(|e| (0, e));
        }
        let (name, rest) = full.split_once("://")?;
        let idx = self.mounts.iter().position(|m| m.name == name)?;
        self.mounts[idx].source.by_uri(rest).map(|e| (idx, e))
    }

    /// Total files registered across every mount.
    /// Files *attached* to the warehouse (F rows) — foreign files a
    /// source lists but the scan skipped are not counted.
    fn total_files(&self) -> usize {
        self.catalog
            .table(FILES_TABLE)
            .map(|t| t.num_rows())
            .unwrap_or(0)
    }
    /// Remove all rows of `file_id` from F, R (and D in eager mode).
    fn delete_file_rows(&mut self, mode: Mode, file_id: i64) -> Result<()> {
        let tables: &[&str] = match mode {
            Mode::Lazy => &[FILES_TABLE, RECORDS_TABLE],
            Mode::Eager => &[FILES_TABLE, RECORDS_TABLE, DATA_TABLE],
        };
        for name in tables {
            let Some(table) = self.catalog.table_mut(name) else {
                continue;
            };
            let Some(col) = table.column("file_id") else {
                continue;
            };
            let mask: Vec<bool> = (0..col.len())
                .map(|i| col.get(i).map(|v| v.as_i64() != Some(file_id)))
                .collect::<lazyetl_store::Result<_>>()?;
            if mask.iter().any(|&keep| !keep) {
                *table = table.filter(&mask)?;
            }
        }
        Ok(())
    }

    /// Replace one file's warehouse state from its current source
    /// content: metadata rows always, `D` rows in eager mode, cache
    /// entries invalidated. `uri` is the display (mount-qualified) form.
    /// Returns (record rows, samples) reloaded. Callers must rebuild the
    /// locator index afterwards.
    fn reload_file(
        &mut self,
        mode: Mode,
        extractor: &FormatRegistry,
        cache: &RecyclingCache,
        log: &EtlLog,
        uri: &str,
    ) -> Result<(usize, u64)> {
        let (mount, entry) = self
            .resolve_uri(uri)
            .ok_or_else(|| EtlError::Internal(format!("sources lost {uri:?}")))?;
        let entry = entry.clone();
        let fid = global_file_id(mount, entry.id)?;
        self.delete_file_rows(mode, fid)?;
        cache.invalidate_file(fid);
        let src = self.mounts[mount].source.as_ref();
        if !extractor.claims(src, &entry)? {
            // A foreign file (e.g. a CSV without the magic line) stays
            // detached; its stale rows are already gone.
            return Ok((0, 0));
        }
        let mut md = extractor.for_entry(&entry)?.scan_metadata(src, &entry)?;
        md.file.file_id = fid;
        md.file.uri = uri.to_string();
        for rr in &mut md.records {
            rr.file_id = fid;
        }
        {
            let f_table = self
                .catalog
                .table_mut(FILES_TABLE)
                .ok_or_else(|| EtlError::Internal("files table missing".into()))?;
            push_file_row(f_table, &md.file)?;
        }
        {
            let r_table = self
                .catalog
                .table_mut(RECORDS_TABLE)
                .ok_or_else(|| EtlError::Internal("records table missing".into()))?;
            for rr in &md.records {
                push_record_row(r_table, rr)?;
            }
        }
        log.push(EtlOp::MetadataRefresh {
            uri: uri.to_string(),
        });
        log.push(EtlOp::StaleDrop {
            uri: uri.to_string(),
        });
        let mut samples = 0u64;
        if mode == Mode::Eager {
            let locators: Vec<RecordLocator> = md
                .records
                .iter()
                .map(|r| RecordLocator {
                    seq_no: r.seq_no,
                    byte_offset: r.byte_offset as u64,
                    record_length: r.record_length as u32,
                })
                .collect();
            let src = self.mounts[mount].source.as_ref();
            let datas = extractor
                .for_entry(&entry)?
                .extract_records(src, &entry, &locators)?;
            let mut adds = Table::empty(schema::data_schema());
            for rd in &datas {
                samples += rd.values.len() as u64;
                adds.append_table(&rd.to_table(fid)?)?;
            }
            let d_table = self
                .catalog
                .table_mut(DATA_TABLE)
                .ok_or_else(|| EtlError::Internal("data table missing".into()))?;
            d_table.append_table(&adds)?;
            log.push(EtlOp::Extract {
                uri: uri.to_string(),
                records: datas.len(),
                samples: samples as usize,
            });
        }
        Ok((md.records.len(), samples))
    }

    fn rebuild_index(&mut self) -> Result<()> {
        self.index = LocatorIndex::build(
            self.catalog
                .table(RECORDS_TABLE)
                .expect("records table present"),
        )?;
        Ok(())
    }
}

/// Read guard over the warehouse catalog (shared with running queries).
///
/// Holds the state read lock; a concurrent [`Warehouse::refresh`] waits
/// until it is dropped.
pub struct CatalogRef<'a>(RwLockReadGuard<'a, WarehouseState>);

impl Deref for CatalogRef<'_> {
    type Target = Catalog;
    fn deref(&self) -> &Catalog {
        &self.0.catalog
    }
}

/// The scientific data warehouse. `Send + Sync`: share one instance (e.g.
/// behind an [`Arc`]) across any number of query threads.
pub struct Warehouse {
    mode: Mode,
    config: WarehouseConfig,
    state: RwLock<WarehouseState>,
    cache: RecyclingCache,
    qcache: QueryResultCache,
    /// Per-mount extraction counters, index-aligned with the mounts.
    source_counters: Vec<SourceCounters>,
    /// Bumped whenever a refresh folds repository changes into the
    /// catalog; recycled results from older generations are invalid.
    generation: AtomicU64,
    /// Queries served since this warehouse opened (successful or not).
    queries: AtomicU64,
    /// Executor counters (rows scanned/pruned, vectorized batches),
    /// shared by reference with every query's execution context.
    exec_metrics: lazyetl_query::ExecMetrics,
    log: EtlLog,
    extractor: FormatRegistry,
    load_report: LoadReport,
    /// When the repository was last rescanned (drives `max_staleness`).
    last_rescan: Mutex<Instant>,
}

/// Compile-time proof that the warehouse can be shared across threads.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Warehouse>();
};

/// Single construction path for warehouses: name sources, pick the mode,
/// open. The `Warehouse::open*` constructors are thin shims over this.
///
/// ```no_run
/// # use lazyetl_core::{WarehouseBuilder, WarehouseConfig, Mode};
/// # use lazyetl_repo::{CsvSource, RemoteSource};
/// # fn main() -> lazyetl_core::Result<()> {
/// let wh = WarehouseBuilder::new()
///     .config(WarehouseConfig::default())
///     .mode(Mode::Lazy)
///     .local_dir("archive", "/data/mseed")?
///     .source("surveys", Box::new(CsvSource::open("/data/csv")?))
///     .source("orfeus", Box::new(RemoteSource::open("/mnt/mirror")?))
///     .open()?;
/// # Ok(()) }
/// ```
///
/// Mount order is part of the warehouse identity: global file ids embed
/// the mount index, so saved state reopens correctly only under the same
/// names in the same order (drifted mounts degrade to a fresh reload).
/// The builder never touches a source's [`AccessProfile`] — each backend
/// keeps the profile it was constructed with.
#[derive(Default)]
pub struct WarehouseBuilder {
    config: WarehouseConfig,
    mode: Option<Mode>,
    mounts: Vec<Mount>,
}

impl WarehouseBuilder {
    /// A builder with default config, lazy mode and no sources.
    pub fn new() -> WarehouseBuilder {
        WarehouseBuilder::default()
    }

    /// Set the warehouse configuration.
    pub fn config(mut self, config: WarehouseConfig) -> WarehouseBuilder {
        self.config = config;
        self
    }

    /// Set the construction mode (default: [`Mode::Lazy`]).
    pub fn mode(mut self, mode: Mode) -> WarehouseBuilder {
        self.mode = Some(mode);
        self
    }

    /// Mount a source under `name`. Order matters (see type docs).
    pub fn source(
        mut self,
        name: impl Into<String>,
        source: Box<dyn LazySource>,
    ) -> WarehouseBuilder {
        self.mounts.push(Mount {
            name: name.into(),
            source,
        });
        self
    }

    /// Convenience: mount a plain local directory under `name`.
    pub fn local_dir(
        self,
        name: impl Into<String>,
        root: impl AsRef<Path>,
    ) -> Result<WarehouseBuilder> {
        let repo = Repository::open(root.as_ref().to_path_buf())?;
        Ok(self.source(name, Box::new(repo)))
    }

    fn validate(&self) -> Result<()> {
        if self.mounts.is_empty() {
            return Err(EtlError::Internal(
                "warehouse needs at least one source".into(),
            ));
        }
        if self.mounts.len() > MAX_MOUNT_INDEX + 1 {
            return Err(RepoError::IdOverflow {
                mount: self.mounts.len() - 1,
            }
            .into());
        }
        for (i, m) in self.mounts.iter().enumerate() {
            if m.name.is_empty() || m.name.contains("://") {
                return Err(EtlError::Internal(format!(
                    "invalid mount name {:?}",
                    m.name
                )));
            }
            if self.mounts[..i].iter().any(|p| p.name == m.name) {
                return Err(EtlError::Internal(format!(
                    "duplicate mount name {:?}",
                    m.name
                )));
            }
        }
        Ok(())
    }

    /// Open the warehouse: scan metadata of every mount (and, eagerly,
    /// extract everything).
    pub fn open(self) -> Result<Warehouse> {
        self.validate()?;
        let mode = self.mode.unwrap_or(Mode::Lazy);
        Warehouse::open_from(self.mounts, self.config, mode)
    }

    /// Reopen from state persisted by [`Warehouse::save_to`], reconciling
    /// every mount's files by URI. The persisted mode wins; a mode set on
    /// the builder is ignored.
    pub fn open_saved(self, saved_dir: impl AsRef<Path>) -> Result<Warehouse> {
        self.validate()?;
        Warehouse::open_saved_from(self.mounts, saved_dir.as_ref(), self.config)
    }
}

impl Warehouse {
    /// Open a repository lazily: load only metadata; the warehouse is
    /// ready for queries immediately.
    ///
    /// Shim over [`WarehouseBuilder`]: one local mount named `repo`,
    /// accessed under [`WarehouseConfig::access`].
    pub fn open_lazy(root: impl AsRef<Path>, config: WarehouseConfig) -> Result<Warehouse> {
        Self::open_dir(root, config, Mode::Lazy)
    }

    /// Open a repository eagerly: full traditional ETL before the first
    /// query can run. Shim over [`WarehouseBuilder`] (see
    /// [`Self::open_lazy`]).
    pub fn open_eager(root: impl AsRef<Path>, config: WarehouseConfig) -> Result<Warehouse> {
        Self::open_dir(root, config, Mode::Eager)
    }

    fn open_dir(root: impl AsRef<Path>, config: WarehouseConfig, mode: Mode) -> Result<Warehouse> {
        let mut repo = Repository::open(root.as_ref().to_path_buf())?;
        repo.access = config.access;
        WarehouseBuilder::new()
            .config(config)
            .mode(mode)
            .source("repo", Box::new(repo))
            .open()
    }

    fn open_from(mounts: Vec<Mount>, config: WarehouseConfig, mode: Mode) -> Result<Warehouse> {
        let t0 = Instant::now();
        let mut catalog = Catalog::new();
        schema::install_metadata_schema(&mut catalog)?;
        let log = EtlLog::new();
        let extractor = FormatRegistry::default();
        let mut state = WarehouseState {
            mounts,
            catalog,
            index: LocatorIndex::default(),
        };

        // Phase 1 (both modes): every mount's metadata into F and R.
        let mut bytes_read = 0u64;
        let mut simulated_io = Duration::ZERO;
        let mut n_records = 0usize;
        {
            let mut f_table = Table::empty(schema::files_schema());
            let mut r_table = Table::empty(schema::records_schema());
            for mi in 0..state.mounts.len() {
                let src = state.mounts[mi].source.as_ref();
                let access = src.access();
                for entry in src.files() {
                    if !extractor.claims(src, entry)? {
                        continue;
                    }
                    let fid = global_file_id(mi, entry.id)?;
                    let uri = state.full_uri(mi, &entry.uri);
                    let mut md = extractor.for_entry(entry)?.scan_metadata(src, entry)?;
                    md.file.file_id = fid;
                    md.file.uri = uri.clone();
                    push_file_row(&mut f_table, &md.file)?;
                    for rr in &mut md.records {
                        rr.file_id = fid;
                        push_record_row(&mut r_table, rr)?;
                    }
                    n_records += md.records.len();
                    bytes_read += md.bytes_read;
                    simulated_io += access.cost(md.bytes_read);
                    log.push(EtlOp::MetadataLoad {
                        uri,
                        records: md.records.len(),
                        bytes_read: md.bytes_read,
                    });
                }
            }
            state.catalog.replace_table(FILES_TABLE, f_table)?;
            state.catalog.replace_table(RECORDS_TABLE, r_table)?;
        }
        state.rebuild_index()?;

        // Phase 2 (eager only): extract and load every record into D.
        let mut samples_loaded = 0u64;
        if mode == Mode::Eager {
            let mut d_table = Table::empty(schema::data_schema());
            for mi in 0..state.mounts.len() {
                let src = state.mounts[mi].source.as_ref();
                let access = src.access();
                for entry in src.files() {
                    if !extractor.claims(src, entry)? {
                        continue;
                    }
                    let file_id = global_file_id(mi, entry.id)?;
                    let locators: Vec<RecordLocator> = state
                        .index
                        .seqs_of_file(file_id)
                        .iter()
                        .map(|&s| {
                            state
                                .index
                                .get(file_id, s)
                                .expect("index consistent")
                                .locator
                        })
                        .collect();
                    let datas = extractor
                        .for_entry(entry)?
                        .extract_records(src, entry, &locators)?;
                    let mut recs = 0usize;
                    for rd in &datas {
                        samples_loaded += rd.values.len() as u64;
                        recs += 1;
                        d_table.append_table(&rd.to_table(file_id)?)?;
                    }
                    bytes_read += entry.size;
                    simulated_io += access.cost(entry.size);
                    log.push(EtlOp::Extract {
                        uri: state.full_uri(mi, &entry.uri),
                        records: recs,
                        samples: datas.iter().map(|d| d.values.len()).sum(),
                    });
                }
            }
            state.catalog.create_table(DATA_TABLE, d_table)?;
        }

        let load_report = LoadReport {
            mode,
            files: state.total_files(),
            records: n_records,
            samples_loaded,
            bytes_read,
            elapsed: t0.elapsed(),
            simulated_io,
        };
        let source_counters = state
            .mounts
            .iter()
            .map(|_| SourceCounters::default())
            .collect();
        Ok(Warehouse {
            mode,
            cache: RecyclingCache::with_shards(config.cache_budget_bytes, config.cache_shards),
            qcache: QueryResultCache::new(config.result_cache_budget_bytes),
            source_counters,
            generation: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            exec_metrics: lazyetl_query::ExecMetrics::new(),
            config,
            state: RwLock::new(state),
            log,
            extractor,
            load_report,
            last_rescan: Mutex::new(Instant::now()),
        })
    }

    fn read_state(&self) -> RwLockReadGuard<'_, WarehouseState> {
        self.state.read().expect("warehouse state poisoned")
    }

    /// Which mode this warehouse was opened in.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The configuration this warehouse was opened with.
    pub fn config(&self) -> &WarehouseConfig {
        &self.config
    }

    /// The record cache (the durable save path exports its shards).
    pub(crate) fn record_cache(&self) -> &RecyclingCache {
        &self.cache
    }

    /// The initial-load cost report.
    pub fn load_report(&self) -> &LoadReport {
        &self.load_report
    }

    /// Names and backend kinds of the mounted sources, in mount order.
    pub fn sources(&self) -> Vec<(String, &'static str)> {
        self.read_state()
            .mounts
            .iter()
            .map(|m| (m.name.clone(), m.source.kind()))
            .collect()
    }

    /// The catalog (metadata browsing, demo item 2; holds the state read
    /// lock while alive).
    ///
    /// **Do not call [`Self::refresh`] — or, with auto-refresh on,
    /// [`Self::query`] — from the same thread while the guard is alive:**
    /// the state lock is not reentrant, so acquiring the write lock under
    /// a live read guard deadlocks. Drop the guard first.
    pub fn catalog(&self) -> CatalogRef<'_> {
        CatalogRef(self.read_state())
    }

    /// Bytes resident in catalog tables (warehouse footprint, E2).
    pub fn resident_bytes(&self) -> usize {
        self.read_state().catalog.resident_bytes()
    }

    /// Snapshot of the recycling cache (demo item 7).
    pub fn cache_snapshot(&self) -> CacheSnapshot {
        self.cache.snapshot()
    }

    /// Snapshot of the result recycler (empty unless
    /// [`WarehouseConfig::recycle_query_results`] is on).
    pub fn result_cache_snapshot(&self) -> ResultCacheSnapshot {
        self.qcache.snapshot()
    }

    /// Current invalidation generation (bumped by refreshes that fold
    /// repository changes into the catalog).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Aggregate stats snapshot: repository/catalog occupancy, query and
    /// cache counters. Cheap enough to call per stats request; takes the
    /// state read lock briefly.
    pub fn stats_snapshot(&self) -> WarehouseStats {
        let (files, records, resident_bytes, sources) = {
            let state = self.read_state();
            let sources = state
                .mounts
                .iter()
                .zip(&self.source_counters)
                .map(|(m, c)| {
                    let io = m.source.io_stats();
                    SourceStats {
                        name: m.name.clone(),
                        kind: m.source.kind(),
                        files: m.source.files().len(),
                        files_extracted: c.files_extracted.load(Ordering::Relaxed),
                        records_extracted: c.records_extracted.load(Ordering::Relaxed),
                        samples_extracted: c.samples_extracted.load(Ordering::Relaxed),
                        bytes_read: c.bytes_read.load(Ordering::Relaxed),
                        simulated_io: Duration::from_micros(
                            c.simulated_io_us.load(Ordering::Relaxed),
                        ),
                        fetch_requests: io.fetch_requests,
                        fetched_bytes: io.fetched_bytes,
                    }
                })
                .collect();
            (
                state.total_files(),
                state.index.len(),
                state.catalog.resident_bytes(),
                sources,
            )
        };
        let snap = self.cache.snapshot();
        WarehouseStats {
            mode: self.mode,
            files,
            records,
            resident_bytes,
            sources,
            generation: self.generation(),
            queries: self.queries.load(Ordering::Relaxed),
            cache: snap.stats,
            cache_entries: snap.entries.len(),
            cache_used_bytes: snap.used_bytes,
            cache_budget_bytes: snap.budget_bytes,
            pending_segments: self.cache.pending_segments(),
            recycler: self.qcache.stats(),
            recycler_entries: self.qcache.len(),
            exec: self.exec_metrics.snapshot(),
        }
    }

    /// Persist this warehouse to `dir` via
    /// [`crate::persistence::save_warehouse`] — the serving layer's
    /// graceful-shutdown hook (drain queries, then snapshot the hot cache
    /// so the next boot warm-restarts).
    pub fn save_to(&self, dir: impl AsRef<Path>) -> Result<crate::persistence::SaveReport> {
        crate::persistence::save_warehouse(self, dir.as_ref())
    }

    /// The ETL operations log (demo item 8).
    pub fn etl_log(&self) -> &EtlLog {
        &self.log
    }

    /// Render the ETL log as text.
    pub fn etl_log_render(&self) -> String {
        self.log.render()
    }

    /// Run a SQL query through the full lazy/eager pipeline.
    ///
    /// Takes `&self`: any number of threads may query one warehouse
    /// concurrently. A query holds the state read lock from planning to
    /// execution, so it sees one consistent catalog/index snapshot; the
    /// auto-refresh rescan (when due) runs *before* that lock is taken.
    pub fn query(&self, sql: &str) -> Result<QueryOutput> {
        let t0 = Instant::now();
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.log.push(EtlOp::QueryStart {
            sql: sql.to_string(),
        });
        let mut report = QueryReport {
            sql: sql.to_string(),
            elapsed: Duration::ZERO,
            rows: 0,
            stages: Vec::new(),
            rewrite: None,
            files_extracted: Vec::new(),
            records_extracted: 0,
            samples_extracted: 0,
            cache_hits: 0,
            cache_misses: 0,
            stale_drops: 0,
            bytes_read: 0,
            simulated_io: Duration::ZERO,
            refresh: None,
            result_recycled: false,
        };
        let within_staleness_bound = self.config.max_staleness.is_some_and(|bound| {
            self.last_rescan
                .lock()
                .expect("last_rescan poisoned")
                .elapsed()
                < bound
        });
        if self.config.auto_refresh && !within_staleness_bound {
            let summary = self.refresh()?;
            if !summary.is_noop() {
                report.refresh = Some(summary);
            }
        }

        // From here on the query works against one consistent snapshot of
        // catalog + index; concurrent refreshes wait for the read lock.
        let state = self.read_state();

        // Parse and plan.
        let stmt = parse_select(sql)?;
        let source = match self.mode {
            Mode::Lazy => {
                TableSource::new(&state.catalog).with_external(DATA_TABLE, schema::data_schema())
            }
            Mode::Eager => TableSource::new(&state.catalog),
        };
        let plan = plan_select(&stmt, &source)?;
        report.stages.push(("logical".into(), plan.display()));

        // Compile-time optimization (metadata predicates first), costed
        // on the catalog's statistics when cost-based planning is on.
        let cost_model = if self.config.metadata_predicate_first && self.config.cost_based_planning
        {
            Some(self.build_cost_model(&state))
        } else {
            None
        };
        let plan = if let Some(model) = &cost_model {
            optimize_with_cost(&plan, model)?
        } else if self.config.metadata_predicate_first {
            optimize(&plan)?
        } else {
            // Ablation: keep literal coercion and folding, skip pushdown.
            fold_constants(&coerce_timestamp_literals(&plan)?)
        };
        report.stages.push(("optimized".into(), plan.display()));
        self.log.push(EtlOp::PlanRewrite {
            stage: "compile-time".into(),
            detail: if cost_model.is_some() {
                "predicates pushed toward metadata scans; joins costed on table statistics".into()
            } else if self.config.metadata_predicate_first {
                "predicates pushed toward metadata scans".into()
            } else {
                "pushdown disabled (ablation)".into()
            },
        });

        // Result recycler: the optimized plan (literals included) is the
        // fingerprint; a hit skips extraction and execution entirely.
        let generation = self.generation();
        let fingerprint = if self.config.recycle_query_results {
            let fp = plan.display();
            if let Some(table) = self.qcache.get(&fp, generation) {
                report.stages.push(("recycled".into(), fp.clone()));
                report.rows = table.num_rows();
                report.result_recycled = true;
                report.elapsed = t0.elapsed();
                self.log.push(EtlOp::ResultRecycleHit { rows: report.rows });
                self.log.push(EtlOp::QueryFinish {
                    rows: report.rows,
                    elapsed_us: report.elapsed.as_micros() as u64,
                });
                return Ok(QueryOutput { table, report });
            }
            Some(fp)
        } else {
            None
        };
        // Classify the plan for incremental maintenance / scoped
        // invalidation; the class travels with the admitted entry.
        let classification = fingerprint.as_ref().map(|_| classify(&plan));
        let maint: Option<&MaintPlan> = match &classification {
            Some(Maintainability::Maintainable(m)) if self.config.maintain_recycled_results => {
                Some(m)
            }
            _ => None,
        };

        // Run-time lazy rewrite (lazy mode only). The optimized plan is
        // kept aside: the rewrite replaces its scans with injected data,
        // and EXPLAIN's join-order/access report describes the plan as
        // chosen, not as materialized.
        let optimized_plan = cost_model.as_ref().map(|_| plan.clone());
        // Maintainable plans execute in augmented form (AVG companions
        // appended, the planner's top projection peeled) so the raw
        // aggregate state can be cached alongside the visible result.
        let run_plan = match maint {
            Some(m) => m.exec_plan.clone(),
            None => plan.clone(),
        };
        let has_external =
            run_plan.any_node(&mut |n| matches!(n, LogicalPlan::ExternalScan { .. }));
        let final_plan = if self.mode == Mode::Lazy && has_external {
            let mut rewrite_report = RewriteReport::default();
            let mut stats = FetchStats::default();
            {
                let state = &*state;
                let cache = &self.cache;
                let log = &self.log;
                let extractor = &self.extractor;
                let use_cache = self.config.use_cache;
                let threads = self.config.extraction_threads;
                let parallelism = self.config.parallelism;
                let metrics = &self.exec_metrics;
                let counters = &self.source_counters;
                let exec_meta = move |p: &LogicalPlan| -> Result<Arc<Table>> {
                    let ctx = ExecContext::new(&state.catalog)
                        .with_metrics(metrics)
                        .with_parallelism(parallelism);
                    execute(p, &ctx).map_err(EtlError::Query)
                };
                let mut fetch = |pairs: &[(i64, i64)]| -> Result<Arc<Table>> {
                    fetch_pairs(
                        state, counters, extractor, cache, log, use_cache, threads, pairs,
                        &mut stats,
                    )
                };
                let ctx = RewriteContext {
                    index: &state.index,
                    record_level_pruning: self.config.record_level_pruning,
                    time_index_seek: self.config.time_index_seek,
                };
                let rewritten =
                    lazy_rewrite(&run_plan, &ctx, &exec_meta, &mut fetch, &mut rewrite_report)?;
                if rewrite_report.index_seek || rewrite_report.index_entries_examined > 0 {
                    self.exec_metrics.add_index_prune(
                        rewrite_report.index_seek,
                        rewrite_report.index_entries_examined as u64,
                    );
                }
                report
                    .stages
                    .push(("rewritten".into(), rewritten.display()));
                report.rewrite = Some(rewrite_report.clone());
                self.log.push(EtlOp::PlanRewrite {
                    stage: "run-time".into(),
                    detail: format!(
                        "injected {} records ({} pruned) from metadata join of {} rows",
                        rewrite_report.fetched_pairs,
                        rewrite_report.pruned_pairs,
                        rewrite_report.metadata_rows
                    ),
                });
                report.files_extracted = stats.files_extracted.iter().cloned().collect();
                report.records_extracted = stats.records_extracted;
                report.samples_extracted = stats.samples_extracted;
                report.cache_hits = stats.cache_hits;
                report.cache_misses = stats.cache_misses;
                report.stale_drops = stats.stale_drops;
                report.bytes_read = stats.bytes_read;
                report.simulated_io = stats.simulated_io;
                rewritten
            }
        } else {
            run_plan
        };

        // Cost the final plan *before* executing it (post-rewrite, so
        // injected data is estimable), proving the estimate never peeks
        // at the result it predicts.
        let estimated = cost_model
            .as_ref()
            .and_then(|m| m.estimate_rows(&final_plan))
            .map(|r| r.round().max(0.0) as u64);

        // Execute.
        let state_table = execute(
            &final_plan,
            &ExecContext::new(&state.catalog)
                .with_metrics(&self.exec_metrics)
                .with_parallelism(self.config.parallelism),
        )
        .map_err(EtlError::Query)?;
        // Maintainable aggregations executed in peeled form: re-apply the
        // planner's top projection to produce the user-visible table (the
        // raw state is cached for future delta merges).
        let table = match maint.map(|m| &m.kind) {
            Some(MaintKind::Aggregate {
                post_project: Some(exprs),
                ..
            }) => {
                let project = LogicalPlan::Project {
                    input: Box::new(LogicalPlan::InlineData {
                        label: "maintained-state".to_string(),
                        table: state_table.clone(),
                    }),
                    exprs: exprs.clone(),
                };
                execute(
                    &project,
                    &ExecContext::new(&state.catalog)
                        .with_metrics(&self.exec_metrics)
                        .with_parallelism(self.config.parallelism),
                )
                .map_err(EtlError::Query)?
            }
            _ => state_table.clone(),
        };
        if let (Some(model), Some(chosen)) = (&cost_model, &optimized_plan) {
            if let Some(est) = estimated {
                self.exec_metrics.add_estimate(est, table.num_rows() as u64);
            }
            report.stages.push((
                "explain".into(),
                render_explain(
                    chosen,
                    model,
                    estimated,
                    table.num_rows(),
                    report.rewrite.as_ref(),
                ),
            ));
        }
        if let Some(fp) = fingerprint {
            let meta = match (&classification, maint) {
                (_, Some(m)) => ResultMeta {
                    tables: Some(m.tables.clone()),
                    interval: crate::rewrite::sample_time_interval(&plan),
                    scope: ResultScope::Maintainable {
                        exec_plan: Arc::new(m.exec_plan.clone()),
                        kind: m.kind.clone(),
                        state: state_table.clone(),
                    },
                },
                (Some(Maintainability::TimeScoped { tables }), _) => ResultMeta {
                    tables: Some(tables.clone()),
                    interval: crate::rewrite::sample_time_interval(&plan),
                    scope: ResultScope::TimeScoped,
                },
                // Maintainable plan with maintenance disabled, or opaque:
                // only the table-scope keep applies.
                (Some(Maintainability::Maintainable(m)), None) => ResultMeta {
                    tables: Some(m.tables.clone()),
                    interval: (None, None),
                    scope: ResultScope::Opaque,
                },
                (Some(Maintainability::Opaque), _) => ResultMeta {
                    tables: Some(lazyetl_query::maintain::referenced_tables(&plan)),
                    interval: (None, None),
                    scope: ResultScope::Opaque,
                },
                (None, _) => ResultMeta::opaque(),
            };
            let bytes = table.byte_size();
            self.qcache
                .insert_with_meta(fp, table.clone(), generation, meta);
            self.log.push(EtlOp::ResultRecycleAdmit {
                rows: table.num_rows(),
                bytes,
            });
        }
        report.rows = table.num_rows();
        report.elapsed = t0.elapsed();
        self.log.push(EtlOp::QueryFinish {
            rows: report.rows,
            elapsed_us: report.elapsed.as_micros() as u64,
        });
        Ok(QueryOutput { table, report })
    }

    /// Build the per-query cost model: zone-map statistics of every
    /// resident table (memoized in the catalog, so reopened snapshots
    /// serve their persisted stats and everything else computes once), a
    /// synthesized row count for the external `data` table (lazy mode —
    /// its eventual size is the sum of R's per-record sample counts), and
    /// the data table's access-cost multiplier from per-source accounting.
    fn build_cost_model(&self, state: &WarehouseState) -> CostModel {
        let mut model = CostModel::from_catalog(&state.catalog);
        if self.mode == Mode::Lazy {
            if let Some(r) = state.catalog.table(RECORDS_TABLE) {
                if let Some(col) = r.schema.index_of("num_samples") {
                    let mut samples = 0i64;
                    for row in 0..r.num_rows() {
                        samples += r.columns[col]
                            .get(row)
                            .ok()
                            .and_then(|v| v.as_i64())
                            .unwrap_or(0)
                            .max(0);
                    }
                    let mut s = lazyetl_store::ColumnStats::empty("sample_value");
                    s.count = samples as usize;
                    model.set_table(DATA_TABLE, Arc::new(vec![s]));
                }
            }
        }
        model.set_multiplier(DATA_TABLE, self.data_access_multiplier(state));
        model
    }

    /// Access-cost multiplier of the external data table: how much more
    /// expensive materializing one record is than scanning a resident
    /// row, in units of 100 µs of I/O per record above local. Observed
    /// per-source accounting (simulated I/O over records extracted) is
    /// preferred; a mount that has not extracted anything yet falls back
    /// to its nominal access profile priced for a typical 4 KiB record.
    /// The most expensive mount wins — a plan cannot choose which mount a
    /// record lives on.
    fn data_access_multiplier(&self, state: &WarehouseState) -> f64 {
        let mut worst = 1.0f64;
        for (mount, c) in state.mounts.iter().zip(&self.source_counters) {
            let recs = c.records_extracted.load(Ordering::Relaxed);
            let per_record_us = if recs > 0 {
                c.simulated_io_us.load(Ordering::Relaxed) as f64 / recs as f64
            } else {
                mount.source.access().cost(4096).as_secs_f64() * 1e6
            };
            worst = worst.max(1.0 + per_record_us / 100.0);
        }
        worst
    }

    /// Explain a query: run the pipeline and return the per-stage plans.
    ///
    /// In lazy mode this performs the run-time rewrite (and therefore the
    /// extraction) — exactly what the demo shows its audience. With
    /// cost-based planning on, the final `explain` stage reports the
    /// chosen join order, estimated vs. actual result rows, and whether
    /// record pruning was an index seek or a scan.
    pub fn explain(&self, sql: &str) -> Result<Vec<(String, String)>> {
        Ok(self.query(sql)?.report.stages)
    }

    /// Compile-time plan preview: parse, plan and optimize *without*
    /// executing anything — no extraction, no cache traffic, no log
    /// entries. Returns the `logical` and `optimized` stages; the
    /// `rewritten` stage only exists at run time (see [`Self::explain`]).
    pub fn plan_preview(&self, sql: &str) -> Result<Vec<(String, String)>> {
        let state = self.read_state();
        let stmt = parse_select(sql)?;
        let source = match self.mode {
            Mode::Lazy => {
                TableSource::new(&state.catalog).with_external(DATA_TABLE, schema::data_schema())
            }
            Mode::Eager => TableSource::new(&state.catalog),
        };
        let plan = plan_select(&stmt, &source)?;
        let mut stages = vec![("logical".to_string(), plan.display())];
        let optimized = if self.config.metadata_predicate_first {
            optimize(&plan)?
        } else {
            fold_constants(&coerce_timestamp_literals(&plan)?)
        };
        stages.push(("optimized".to_string(), optimized.display()));
        Ok(stages)
    }

    /// Estimate the result cardinality of `sql` **without executing it**
    /// — no extraction, no cache traffic, no log entries, no refresh.
    /// This is the serving layer's cost-based-admission probe: parse,
    /// plan, optimize with the statistics-backed cost model, and ask the
    /// model for the optimized plan's row estimate.
    ///
    /// Returns `Ok(None)` when no estimate is available: cost-based
    /// planning disabled, or the plan contains something the model cannot
    /// cost. Callers treat `None` as "admit on queue depth alone".
    pub fn estimate_query_rows(&self, sql: &str) -> Result<Option<u64>> {
        if !(self.config.metadata_predicate_first && self.config.cost_based_planning) {
            return Ok(None);
        }
        let state = self.read_state();
        let stmt = parse_select(sql)?;
        let source = match self.mode {
            Mode::Lazy => {
                TableSource::new(&state.catalog).with_external(DATA_TABLE, schema::data_schema())
            }
            Mode::Eager => TableSource::new(&state.catalog),
        };
        let plan = plan_select(&stmt, &source)?;
        let model = self.build_cost_model(&state);
        let optimized = optimize_with_cost(&plan, &model)?;
        Ok(model
            .estimate_rows(&optimized)
            .map(|r| r.round().max(0.0) as u64))
    }

    /// Run a SQL query and hand the result to `sink` as fixed-size
    /// record batches of at most `batch_rows` rows (the serving layer's
    /// streamed-cursor source; batch boundaries line up with the morsel
    /// size used by parallel execution when `batch_rows` matches
    /// [`lazyetl_query::exec::DEFAULT_MORSEL_ROWS`]).
    ///
    /// The sink returns `true` to keep consuming and `false` to stop
    /// early (a cancelled cursor); early stop is not an error. Batches
    /// are zero-copy column slices of the single materialized result, so
    /// this adds no per-batch decode cost over [`Self::query`]. A
    /// zero-row result invokes the sink zero times — the schema travels
    /// in the returned report's `rows == 0` case via [`Table::slice`] of
    /// the result, which the serving layer sends as `ResultStart`.
    pub fn query_batched(
        &self,
        sql: &str,
        batch_rows: usize,
        sink: &mut dyn FnMut(Table) -> bool,
    ) -> Result<QueryReport> {
        let out = self.query(sql)?;
        let batch_rows = batch_rows.max(1);
        let total = out.table.num_rows();
        let mut off = 0;
        while off < total {
            let len = batch_rows.min(total - off);
            let batch = out.table.slice(off, len).map_err(EtlError::Store)?;
            if !sink(batch) {
                break;
            }
            off += len;
        }
        Ok(out.report)
    }

    /// Rescan the repository and fold any changes into the warehouse.
    ///
    /// The no-change common case (every auto-refreshing query against a
    /// quiet repository) is detected with a read-only probe under the
    /// **shared read lock**, so concurrent queries keep flowing. Only
    /// when something actually changed does the fold take the state
    /// write lock: running queries finish first, queries arriving during
    /// the fold wait for the new state. Lazy mode reloads metadata of
    /// changed/added files and invalidates their cache entries; eager
    /// mode additionally re-extracts their data. Removed files disappear
    /// from all tables.
    pub fn refresh(&self) -> Result<RefreshSummary> {
        let t0 = Instant::now();
        {
            let state = self.read_state();
            let quiet = state
                .mounts
                .iter()
                .map(|m| m.source.scan_changes().map(|c| c.is_empty()))
                .collect::<std::result::Result<Vec<bool>, _>>()?
                .into_iter()
                .all(|empty| empty);
            if quiet {
                *self.last_rescan.lock().expect("last_rescan poisoned") = Instant::now();
                return Ok(RefreshSummary {
                    elapsed: t0.elapsed(),
                    ..Default::default()
                });
            }
        }
        // Something changed: escalate to the write lock. `rescan()` below
        // recomputes authoritatively, so a concurrent refresh that beat us
        // to the fold is harmless — our rescan then reports empty.
        let mut state = self.state.write().expect("warehouse state poisoned");
        let mut summary = RefreshSummary::default();
        let mut removed_fids: Vec<i64> = Vec::new();
        let mut to_reload: Vec<String> = Vec::new();
        let mut added_fids: Vec<i64> = Vec::new();
        let multi = state.mounts.len() > 1;
        for mi in 0..state.mounts.len() {
            // Capture the pre-rescan id mapping so removed files can be
            // purged after the source forgets them.
            let mut prev_ids: std::collections::HashMap<String, i64> =
                std::collections::HashMap::new();
            for e in state.mounts[mi].source.files() {
                prev_ids.insert(e.uri.clone(), global_file_id(mi, e.id)?);
            }
            let change = state.mounts[mi].source.rescan()?;
            if change.is_empty() {
                continue;
            }
            summary.added += change.added.len();
            summary.modified += change.modified.len();
            summary.removed += change.removed.len();
            for uri in &change.removed {
                if let Some(&fid) = prev_ids.get(uri) {
                    removed_fids.push(fid);
                }
            }
            // Added files got fresh ids during the rescan; capture them so
            // the recycler's delta pass can isolate exactly the new rows.
            if !change.added.is_empty() {
                let post: std::collections::HashMap<&str, FileId> = state.mounts[mi]
                    .source
                    .files()
                    .iter()
                    .map(|e| (e.uri.as_str(), e.id))
                    .collect();
                for uri in &change.added {
                    if let Some(&id) = post.get(uri.as_str()) {
                        added_fids.push(global_file_id(mi, id)?);
                    }
                }
            }
            let name = &state.mounts[mi].name;
            for uri in change.modified.iter().chain(&change.added) {
                to_reload.push(if multi {
                    format!("{name}://{uri}")
                } else {
                    uri.clone()
                });
            }
        }
        *self.last_rescan.lock().expect("last_rescan poisoned") = Instant::now();
        if summary.is_noop() {
            summary.elapsed = t0.elapsed();
            return Ok(summary);
        }
        // Recycled results were computed against the pre-change catalog.
        let prev_generation = self.generation.fetch_add(1, Ordering::AcqRel);
        let new_generation = prev_generation + 1;

        // Purge removed files.
        for fid in removed_fids {
            state.delete_file_rows(self.mode, fid)?;
            self.cache.invalidate_file(fid);
        }

        // Reload metadata (and, eagerly, data) of changed and added files.
        for uri in &to_reload {
            let (records, samples) =
                state.reload_file(self.mode, &self.extractor, &self.cache, &self.log, uri)?;
            summary.records_reloaded += records;
            summary.samples_reloaded += samples;
        }

        // Rebuild the locator index from the fresh R table.
        state.rebuild_index()?;

        // Fold the delta into the result recycler: entries the change
        // provably misses are kept, maintainable ones are patched from
        // the delta rows, the rest fall back to recompute-on-next-query.
        // A delta is insert-only when nothing was modified or removed
        // (and every added file's id was captured above).
        let insert_only =
            summary.modified == 0 && summary.removed == 0 && added_fids.len() == summary.added;
        self.apply_result_delta(
            &state,
            prev_generation,
            new_generation,
            insert_only,
            &added_fids,
        );
        summary.elapsed = t0.elapsed();
        Ok(summary)
    }

    /// Build the refresh's table-level deltas and fold them into the
    /// result recycler (scoped keeps + incremental patches). Called under
    /// the state write lock, after the catalog and index are rebuilt.
    fn apply_result_delta(
        &self,
        state: &WarehouseState,
        prev_generation: u64,
        generation: u64,
        insert_only: bool,
        added_fids: &[i64],
    ) {
        if !self.config.recycle_query_results || self.qcache.is_empty() {
            return;
        }
        // Every refresh touches the whole metadata/data family; entries
        // over none of these (e.g. constant queries) are kept by the
        // table-scope check.
        let touched: Vec<String> = vec![
            DATA_TABLE.to_string(),
            FILES_TABLE.to_string(),
            RECORDS_TABLE.to_string(),
        ];
        // Row-level deltas exist only for insert-only refreshes; other
        // shapes still benefit from scoped invalidation.
        let (f_delta, r_delta, interval) = if insert_only {
            let fid_set: std::collections::HashSet<i64> = added_fids.iter().copied().collect();
            let f = filter_by_fid(state.catalog.table(FILES_TABLE), &fid_set);
            let r = filter_by_fid(state.catalog.table(RECORDS_TABLE), &fid_set);
            let interval = r.as_ref().map_or((None, None), record_time_coverage);
            (f, r, interval)
        } else {
            (None, None, (None, None))
        };
        self.log.push(EtlOp::RefreshDelta {
            generation,
            added_files: added_fids.len(),
            added_records: r_delta.as_ref().map_or(0, |t| t.num_rows()),
            insert_only,
        });
        let delta = crate::qcache::RefreshDelta {
            prev_generation,
            generation,
            insert_only,
            tables: &touched,
            interval,
        };
        // The actual-data delta is extracted lazily, once, and only if a
        // maintainable entry's plan really reads `D`.
        let mut d_delta: Option<Arc<Table>> = None;
        let mut d_failed = false;
        let mut exec_cb = |p: &LogicalPlan| -> Option<Arc<Table>> {
            let (f, r) = match (&f_delta, &r_delta) {
                (Some(f), Some(r)) => (f.clone(), r.clone()),
                _ => return None,
            };
            let needs_data = p.any_node(&mut |n| match n {
                LogicalPlan::ExternalScan { .. } => true,
                LogicalPlan::TableScan { table, .. } => table == DATA_TABLE,
                _ => false,
            });
            if needs_data && d_delta.is_none() && !d_failed {
                d_delta = self.extract_data_delta(state, added_fids);
                d_failed = d_delta.is_none();
            }
            if needs_data && d_failed {
                return None;
            }
            let d = d_delta.clone();
            let inline = |label: &str, table: Arc<Table>| LogicalPlan::InlineData {
                label: label.to_string(),
                table,
            };
            let substituted = p.transform_up(&mut |n| match n {
                LogicalPlan::TableScan { table, .. } if table == FILES_TABLE => {
                    inline("files-delta", f.clone())
                }
                LogicalPlan::TableScan { table, .. } if table == RECORDS_TABLE => {
                    inline("records-delta", r.clone())
                }
                LogicalPlan::TableScan { table, .. } if table == DATA_TABLE => inline(
                    "data-delta",
                    d.clone().expect("data delta materialized above"),
                ),
                LogicalPlan::ExternalScan { .. } => inline(
                    "data-delta",
                    d.clone().expect("data delta materialized above"),
                ),
                other => other,
            });
            let ctx = ExecContext::new(&state.catalog)
                .with_metrics(&self.exec_metrics)
                .with_parallelism(self.config.parallelism);
            execute(&substituted, &ctx).ok()
        };
        let outcome =
            self.qcache
                .apply_delta(&delta, self.config.maintain_recycled_results, &mut exec_cb);
        if outcome.kept > 0 {
            self.log.push(EtlOp::ResultKeep {
                bytes: outcome.kept_bytes,
            });
        }
        if outcome.patched > 0 {
            self.log.push(EtlOp::ResultPatch {
                rows: outcome.patch_rows,
            });
        }
        for reason in outcome.dropped {
            self.log.push(EtlOp::ResultRecomputeFallback { reason });
        }
    }

    /// Materialize the delta's `D` rows: eager mode filters the resident
    /// data table; lazy mode extracts the added files' records through
    /// the regular fetch pipeline (cache-admitted, source-accounted).
    fn extract_data_delta(&self, state: &WarehouseState, added_fids: &[i64]) -> Option<Arc<Table>> {
        match self.mode {
            Mode::Eager => {
                let fid_set: std::collections::HashSet<i64> = added_fids.iter().copied().collect();
                filter_by_fid(state.catalog.table(DATA_TABLE), &fid_set)
            }
            Mode::Lazy => {
                let mut pairs: Vec<(i64, i64)> = Vec::new();
                for &fid in added_fids {
                    for &seq in state.index.seqs_of_file(fid) {
                        pairs.push((fid, seq));
                    }
                }
                let mut stats = FetchStats::default();
                fetch_pairs(
                    state,
                    &self.source_counters,
                    &self.extractor,
                    &self.cache,
                    &self.log,
                    self.config.use_cache,
                    self.config.extraction_threads,
                    &pairs,
                    &mut stats,
                )
                .ok()
            }
        }
    }

    /// Reopen a warehouse from state persisted by
    /// [`crate::persistence::save_warehouse`], skipping the metadata scan
    /// (and, for eager saves, the full extraction).
    ///
    /// The directory is first brought back to a consistent snapshot
    /// ([`crate::persistence::recover_saved_dir`] replays the save
    /// journal and sweeps any debris an interrupted save left), so
    /// reopening after a crash lands on either the pre-save or the
    /// post-save state — never a torn one.
    ///
    /// The repository may have drifted since the save; every file is
    /// reconciled by URI — unchanged files keep their persisted rows,
    /// changed or renumbered files are reloaded, vanished files are
    /// purged, and new files are scanned fresh. For lazy v2 saves the
    /// persisted record-cache segments are then attached for lazy
    /// rehydration: each shard's segment is read on first touch, and only
    /// entries of files that survived reconciliation unchanged are
    /// admitted — drift invalidates exactly the affected records.
    pub fn open_saved(
        root: impl AsRef<Path>,
        saved_dir: impl AsRef<Path>,
        config: WarehouseConfig,
    ) -> Result<Warehouse> {
        let mut repo = Repository::open(root.as_ref().to_path_buf())?;
        repo.access = config.access;
        WarehouseBuilder::new()
            .config(config)
            .source("repo", Box::new(repo))
            .open_saved(saved_dir)
    }

    fn open_saved_from(
        mounts: Vec<Mount>,
        saved_dir: &Path,
        config: WarehouseConfig,
    ) -> Result<Warehouse> {
        let t0 = Instant::now();
        let recovery = crate::persistence::recover_saved_dir(saved_dir)?;
        let manifest = crate::persistence::read_manifest(saved_dir)?;
        let mode = manifest.mode;
        let (files, records, data) = crate::persistence::load_saved_tables(saved_dir)?;
        let mut catalog = Catalog::new();
        schema::install_metadata_schema(&mut catalog)?;
        catalog.replace_table(FILES_TABLE, files)?;
        catalog.replace_table(RECORDS_TABLE, records)?;
        if let Some(d) = data {
            catalog.create_table(DATA_TABLE, d)?;
        }
        let cache = RecyclingCache::with_shards(config.cache_budget_bytes, config.cache_shards);
        let log = EtlLog::new();
        let extractor = FormatRegistry::default();
        let mut state = WarehouseState {
            mounts,
            catalog,
            index: LocatorIndex::default(),
        };

        // Reconcile persisted rows against the live repository by URI.
        #[derive(Clone)]
        struct SavedRow {
            file_id: i64,
            mtime: i64,
            size: i64,
        }
        let mut saved: std::collections::HashMap<String, SavedRow> =
            std::collections::HashMap::new();
        {
            let f_table = state
                .catalog
                .table(FILES_TABLE)
                .expect("files table installed");
            let need = |name: &str| {
                f_table
                    .schema
                    .index_of(name)
                    .ok_or_else(|| EtlError::Internal(format!("files table lacks {name}")))
            };
            let (c_uri, c_id, c_mtime, c_size) = (
                need("uri")?,
                need("file_id")?,
                need("mtime")?,
                need("size")?,
            );
            for row in 0..f_table.num_rows() {
                let uri = f_table.columns[c_uri]
                    .get(row)?
                    .as_str()
                    .unwrap_or_default()
                    .to_string();
                saved.insert(
                    uri,
                    SavedRow {
                        file_id: f_table.columns[c_id].get(row)?.as_i64().unwrap_or(-1),
                        mtime: f_table.columns[c_mtime].get(row)?.as_i64().unwrap_or(0),
                        size: f_table.columns[c_size].get(row)?.as_i64().unwrap_or(-1),
                    },
                );
            }
        }
        let mut entries: Vec<(String, i64, i64, i64)> = Vec::new();
        for mi in 0..state.mounts.len() {
            for e in state.mounts[mi].source.files() {
                entries.push((
                    state.full_uri(mi, &e.uri),
                    global_file_id(mi, e.id)?,
                    e.mtime.micros(),
                    e.size as i64,
                ));
            }
        }
        let mut reloaded = 0usize;
        // file_id → current mtime of files whose saved rows survived
        // unchanged; the only entries cache segments may rehydrate.
        let mut valid: std::collections::HashMap<i64, lazyetl_mseed::Timestamp> =
            std::collections::HashMap::new();
        for (uri, id, mtime, size) in &entries {
            let fresh = match saved.remove(uri) {
                Some(s) => s.file_id != *id || s.mtime != *mtime || s.size != *size,
                None => true, // new file since the save
            };
            if fresh {
                state.reload_file(mode, &extractor, &cache, &log, uri)?;
                reloaded += 1;
            } else {
                valid.insert(*id, lazyetl_mseed::Timestamp(*mtime));
            }
        }
        // Anything left in `saved` vanished from the repository.
        let mut vanished = 0usize;
        for (_, row) in saved {
            state.delete_file_rows(mode, row.file_id)?;
            vanished += 1;
        }

        // Rebuild the locator index, and seed the planner from the
        // snapshot's stats/index sections — but only when reconciliation
        // found **zero** drift: a reloaded or vanished file means the
        // persisted statistics describe rows that no longer exist, so a
        // drifted reopen deliberately opens statless (zone maps recompute
        // on demand, the time index re-sorts) rather than plan on stale
        // numbers. Damaged or pre-upgrade sections degrade the same way;
        // neither ever fails the open.
        let drifted = reloaded > 0 || vanished > 0;
        let planner_seed;
        if drifted {
            state.rebuild_index()?;
            planner_seed = "skipped (repository drifted)";
        } else {
            let persisted_index =
                crate::persistence::load_saved_time_index(saved_dir, &manifest).unwrap_or(None);
            let idx = {
                let records = state
                    .catalog
                    .table(RECORDS_TABLE)
                    .expect("records table present");
                LocatorIndex::build_seeded(records, persisted_index.as_ref())?
            };
            state.index = idx;
            let mut stats_seeded = false;
            if let Ok(Some(stats)) = crate::persistence::load_saved_stats(saved_dir, &manifest) {
                for (name, cols) in stats {
                    stats_seeded |= state.catalog.seed_zone_map(&name, cols);
                }
            }
            planner_seed = match (stats_seeded, persisted_index.is_some()) {
                (true, true) => "stats + time index",
                (true, false) => "stats only",
                (false, true) => "time index only",
                (false, false) => "none persisted (statless)",
            };
        }

        // Attach persisted cache segments for lazy rehydration (v2 lazy
        // saves only; v1 directories and eager saves have none).
        let mut segments_attached = 0usize;
        if mode == Mode::Lazy && !manifest.segments.is_empty() {
            let (saved_shards, segs) =
                crate::persistence::segments_to_attach(saved_dir, &manifest, valid);
            segments_attached = segs.len();
            cache.attach_segments(saved_shards, segs);
        }

        // Replay the save journal into the fresh log (observability: the
        // reopened warehouse shows how its snapshot came to be), noting
        // any rollback the recovery sweep performed.
        for op in recovery.replayed {
            log.push(op);
        }
        if let Some(epoch) = recovery.rolled_back {
            log.push(EtlOp::RecoveryRollback { epoch });
        }
        let load_report = LoadReport {
            mode,
            files: state.total_files(),
            records: state.index.len(),
            samples_loaded: match mode {
                Mode::Lazy => 0,
                Mode::Eager => state
                    .catalog
                    .table(DATA_TABLE)
                    .map(|t| t.num_rows() as u64)
                    .unwrap_or(0),
            },
            bytes_read: 0,
            elapsed: t0.elapsed(),
            simulated_io: Duration::ZERO,
        };
        log.push(EtlOp::PlanRewrite {
            stage: "bootstrap".into(),
            detail: format!(
                "reopened from saved state (epoch {}); {reloaded} of {} files \
                 reconciled; {segments_attached} cache segments attached; \
                 planner seed: {planner_seed}",
                manifest.epoch,
                entries.len()
            ),
        });
        let source_counters = state
            .mounts
            .iter()
            .map(|_| SourceCounters::default())
            .collect();
        Ok(Warehouse {
            mode,
            cache,
            qcache: QueryResultCache::new(config.result_cache_budget_bytes),
            source_counters,
            generation: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            exec_metrics: lazyetl_query::ExecMetrics::new(),
            config,
            state: RwLock::new(state),
            log,
            extractor,
            load_report,
            last_rescan: Mutex::new(Instant::now()),
        })
    }
}

/// Render the `explain` stage of a costed query: the chosen join order,
/// estimated vs. actual result rows, and how each table was accessed —
/// resident scans with their statistics and cost multipliers, and the
/// injected data's index-seek-vs-sweep pruning verdict.
fn render_explain(
    plan: &LogicalPlan,
    model: &CostModel,
    estimated: Option<u64>,
    actual: usize,
    rewrite: Option<&RewriteReport>,
) -> String {
    let mut names = Vec::new();
    lazyetl_query::cost::base_tables(plan, &mut names);
    let order: Vec<String> = names
        .iter()
        .map(|n| {
            if n == DATA_TABLE && rewrite.is_some() {
                format!("{DATA_TABLE} (injected)")
            } else {
                n.clone()
            }
        })
        .collect();
    let mut out = String::new();
    out.push_str(&format!(
        "join order: {}\n",
        if order.is_empty() {
            "(no base tables)".to_string()
        } else {
            order.join(" JOIN ")
        }
    ));
    match estimated {
        Some(est) => out.push_str(&format!(
            "estimated rows: {est} | actual rows: {actual} | abs error: {}\n",
            est.abs_diff(actual as u64)
        )),
        None => out.push_str(&format!(
            "estimated rows: n/a (statless fallback) | actual rows: {actual}\n"
        )),
    }
    for n in &names {
        if n == DATA_TABLE && rewrite.is_some() {
            continue; // covered by the injected-data line below
        }
        let mult = model.table(n).map(|t| t.multiplier).unwrap_or(1.0);
        let rows = model
            .table_rows(n)
            .map(|r| format!("~{} rows", r.round() as u64))
            .unwrap_or_else(|| "rows unknown".into());
        out.push_str(&format!("access {n}: scan, {rows}, cost x{mult:.1}\n"));
    }
    if let Some(rw) = rewrite {
        let mult = model.table(DATA_TABLE).map(|t| t.multiplier).unwrap_or(1.0);
        out.push_str(&format!(
            "access {DATA_TABLE}: {} ({} index entries examined); \
             {} of {} candidate records fetched, {} pruned, cost x{mult:.1}\n",
            if rw.index_seek {
                "time-index seek"
            } else {
                "linear sweep"
            },
            rw.index_entries_examined,
            rw.fetched_pairs,
            rw.candidate_pairs,
            rw.pruned_pairs
        ));
    }
    out
}

/// Materialize `D` rows for (file, record) pairs in three phases:
///
/// * **triage** (sequential) — per file, look each record up in the cache,
///   collecting hits and the locators still needing extraction;
/// * **extract + admit** (parallel up to `threads`, see
///   [`crate::parallel`]) — decode the missing records file by file, each
///   worker admitting its records straight into the lock-striped cache;
/// * **assemble** (sequential) — per file in pair order: cached rows
///   first, then fresh rows in byte-offset order.
///
/// The assembled table is byte-identical for every thread count. Each
/// file's reads go through its own mounted source; extraction work is
/// costed under that source's access profile and tallied into its
/// [`SourceCounters`].
#[allow(clippy::too_many_arguments)]
/// Rows of `table` whose `file_id` is in `fids` (`None` when the table or
/// its `file_id` column is missing).
fn filter_by_fid(
    table: Option<&Table>,
    fids: &std::collections::HashSet<i64>,
) -> Option<Arc<Table>> {
    let table = table?;
    let col = table.column("file_id")?;
    let mask: Vec<bool> = (0..table.num_rows())
        .map(|i| {
            col.get(i)
                .ok()
                .and_then(|v| v.as_i64())
                .is_some_and(|fid| fids.contains(&fid))
        })
        .collect();
    table.filter(&mask).ok().map(Arc::new)
}

/// `(min start_time, max end_time)` over an R-delta's rows — the record
/// time coverage scoped invalidation compares entry windows against.
fn record_time_coverage(table: &Arc<Table>) -> (Option<i64>, Option<i64>) {
    let (Some(start), Some(end)) = (table.column("start_time"), table.column("end_time")) else {
        return (None, None);
    };
    let (mut lo, mut hi) = (None, None);
    for i in 0..table.num_rows() {
        if let Some(t) = start.get(i).ok().and_then(|v| v.as_i64()) {
            lo = Some(lo.map_or(t, |c: i64| c.min(t)));
        }
        if let Some(t) = end.get(i).ok().and_then(|v| v.as_i64()) {
            hi = Some(hi.map_or(t, |c: i64| c.max(t)));
        }
    }
    (lo, hi)
}

#[allow(clippy::too_many_arguments)]
fn fetch_pairs(
    state: &WarehouseState,
    counters: &[SourceCounters],
    extractor: &FormatRegistry,
    cache: &RecyclingCache,
    log: &EtlLog,
    use_cache: bool,
    threads: usize,
    pairs: &[(i64, i64)],
    stats: &mut FetchStats,
) -> Result<Arc<Table>> {
    // Phase A: group pairs by file and triage against the cache.
    let mut groups: Vec<FileGroup<'_>> = Vec::new();
    let mut i = 0usize;
    while i < pairs.len() {
        let file_id = pairs[i].0;
        let mut seqs = Vec::new();
        while i < pairs.len() && pairs[i].0 == file_id {
            seqs.push(pairs[i].1);
            i += 1;
        }
        let (mount, local_id) = split_file_id(file_id);
        let source = state
            .mounts
            .get(mount)
            .ok_or_else(|| {
                EtlError::Internal(format!(
                    "file id {file_id} names mount {mount}, which does not exist"
                ))
            })?
            .source
            .as_ref();
        let entry = source
            .by_id(local_id)
            .ok_or_else(|| EtlError::Internal(format!("file id {file_id} not in source registry")))?
            .clone();
        let current_mtime = source.current_mtime(&entry.uri)?;
        let display_uri = state.full_uri(mount, &entry.uri);
        let mut group = FileGroup {
            source,
            file_id,
            display_uri,
            entry,
            current_mtime,
            hit_tables: Vec::new(),
            to_extract: Vec::new(),
        };
        for &seq in &seqs {
            let info = state.index.get(file_id, seq).ok_or_else(|| {
                EtlError::Internal(format!(
                    "record ({file_id}, {seq}) missing from locator index"
                ))
            })?;
            if use_cache {
                match cache.get((file_id, seq), current_mtime) {
                    CacheLookup::Hit(t) => {
                        group.hit_tables.push(t);
                        stats.cache_hits += 1;
                        continue;
                    }
                    CacheLookup::Stale => {
                        stats.stale_drops += 1;
                        log.push(EtlOp::StaleDrop {
                            uri: group.display_uri.clone(),
                        });
                    }
                    CacheLookup::Miss => {
                        stats.cache_misses += 1;
                    }
                }
            } else {
                stats.cache_misses += 1;
            }
            group.to_extract.push(info.locator);
        }
        group.to_extract.sort_by_key(|l| l.byte_offset);
        groups.push(group);
    }

    // Phase B: extract missing records, possibly in parallel; workers
    // admit each record to its cache shard as soon as it materializes.
    let extracted = extract_groups_into(
        extractor,
        &groups,
        threads,
        if use_cache { Some(cache) } else { None },
    );

    // Phase C: assemble rows in pair order.
    let mut out = Table::empty(schema::data_schema());
    for (group, datas) in groups.iter().zip(extracted) {
        if !group.hit_tables.is_empty() {
            for t in &group.hit_tables {
                out.append_table(t)?;
            }
            log.push(EtlOp::CacheHit {
                uri: group.display_uri.clone(),
                records: group.hit_tables.len(),
            });
        }
        let datas = datas?;
        if datas.is_empty() {
            continue;
        }
        let mut file_bytes = 0u64;
        let mut samples = 0usize;
        for (rec, loc) in datas.iter().zip(&group.to_extract) {
            samples += rec.samples;
            file_bytes += loc.record_length as u64;
            out.append_table(&rec.table)?;
            if rec.evicted_on_admit > 0 {
                log.push(EtlOp::CacheEvict {
                    entries: rec.evicted_on_admit,
                    bytes: 0,
                });
            }
        }
        let simulated = group.source.access().cost(file_bytes);
        stats.records_extracted += datas.len();
        stats.samples_extracted += samples as u64;
        stats.bytes_read += file_bytes;
        stats.simulated_io += simulated;
        stats.files_extracted.insert(group.display_uri.clone());
        let (mount, _) = split_file_id(group.file_id);
        if let Some(c) = counters.get(mount) {
            c.files_extracted.fetch_add(1, Ordering::Relaxed);
            c.records_extracted
                .fetch_add(datas.len() as u64, Ordering::Relaxed);
            c.samples_extracted
                .fetch_add(samples as u64, Ordering::Relaxed);
            c.bytes_read.fetch_add(file_bytes, Ordering::Relaxed);
            c.simulated_io_us
                .fetch_add(simulated.as_micros() as u64, Ordering::Relaxed);
        }
        log.push(EtlOp::Extract {
            uri: group.display_uri.clone(),
            records: datas.len(),
            samples,
        });
    }
    Ok(Arc::new(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_id_packing_roundtrips_in_range() {
        let fid = global_file_id(0, FileId(7)).unwrap();
        assert_eq!(fid, 7, "mount 0 keeps local ids");
        assert_eq!(split_file_id(fid), (0, FileId(7)));
        let fid = global_file_id(3, FileId(u32::MAX)).unwrap();
        assert_eq!(split_file_id(fid), (3, FileId(u32::MAX)));
    }

    #[test]
    fn file_id_packing_is_checked_at_the_boundary() {
        // The largest representable mount index packs and inverts cleanly
        // even with the largest local id.
        let fid = global_file_id(MAX_MOUNT_INDEX, FileId(u32::MAX)).unwrap();
        assert_eq!(fid, i64::MAX);
        assert_eq!(split_file_id(fid), (MAX_MOUNT_INDEX, FileId(u32::MAX)));
        // One past the boundary is a typed overflow, not a wrapped id.
        let err = global_file_id(MAX_MOUNT_INDEX + 1, FileId(0)).unwrap_err();
        assert_eq!(err.code(), "repo.id_overflow");
        assert!(matches!(err, RepoError::IdOverflow { mount } if mount == MAX_MOUNT_INDEX + 1));
    }
}
