//! # Lazy ETL — query-driven, on-demand ETL for scientific data warehouses
//!
//! Reproduction of *"Lazy ETL in Action: ETL Technology Dates Scientific
//! Data"* (Kargın, Ivanova, Zhang, Manegold, Kersten — PVLDB 6(12), 2013).
//!
//! Traditional (eager) ETL fills a warehouse with **all** data from the
//! source repository before the first query can run. Lazy ETL instead
//! loads only **metadata** at attach time and integrates the
//! extract-transform-load pipeline into query execution: each query's plan
//! is rewritten at run time so that exactly the files and records it needs
//! are extracted, transformed and loaded — transparently, with a
//! lock-striped LRU recycling cache and mtime-based lazy refresh. The
//! warehouse is `Send + Sync` and [`warehouse::Warehouse::query`] takes
//! `&self`: share one instance across any number of client threads.
//!
//! ## Quick start
//!
//! ```no_run
//! use lazyetl_core::warehouse::{Warehouse, WarehouseConfig};
//!
//! // Attach an mSEED repository lazily: only metadata is read.
//! let wh = Warehouse::open_lazy("/data/mseed", WarehouseConfig::default()).unwrap();
//!
//! // Figure 1 of the paper, verbatim — extraction happens on demand.
//! let out = wh.query(
//!     "SELECT F.station, MIN(D.sample_value), MAX(D.sample_value) \
//!      FROM mseed.dataview \
//!      WHERE F.network = 'NL' AND F.channel = 'BHZ' \
//!      GROUP BY F.station",
//! ).unwrap();
//! println!("{}", out.table.to_ascii(20));
//! println!("extracted from {} files", out.report.files_extracted.len());
//! ```
//!
//! ## Module map
//!
//! * [`schema`] — the paper's three-table warehouse schema (F/R/D) and the
//!   `dataview` universal view;
//! * [`extract`] — the [`extract::Extractor`] boundary and the MiniSEED
//!   implementation (metadata scan vs. selective decode);
//! * [`rewrite`] — compile-time + run-time lazy plan rewriting (§3.1);
//! * [`cache`] — intermediate-result recycling with LRU and staleness
//!   checks (§3.3);
//! * [`qcache`] — the second recycler level: final query results keyed by
//!   optimized-plan fingerprint, invalidated by refresh generations;
//! * [`parallel`] — scoped-thread extraction of independent files
//!   (byte-identical results at any thread count);
//! * [`persistence`] + [`segment`] — the durable save/recover path:
//!   crash-consistent warehouse snapshots (manifest v2 + journal) that
//!   persist the record cache as checksummed per-shard segment files,
//!   so a reopened lazy warehouse starts warm;
//! * [`warehouse`] — the facade tying repository, catalog, cache and query
//!   engine together; eager mode is the paper's baseline;
//! * [`analysis`] — STA/LTA event hunting, the demo's analysis workload;
//! * [`log`] — the ETL operations log (demo item 8).

#![warn(missing_docs)]

pub mod analysis;
pub mod cache;
pub mod error;
pub mod extract;
pub mod log;
pub mod parallel;
pub mod persistence;
pub mod qcache;
pub mod rewrite;
pub mod schema;
pub mod segment;
pub mod warehouse;

pub use analysis::{
    coincidence_trigger, fetch_record_waveform, hunt_events, recursive_sta_lta, sta_lta,
    waveform_ascii, z_detect, CoincidenceEvent, Detection, RecordWaveform, StaLtaConfig,
    StationDetections, ZDetectConfig,
};
pub use cache::{CacheLookup, CacheSnapshot, CacheStats, RecyclingCache};
pub use error::{EtlError, Result};
pub use extract::{
    CsvExtractor, Extractor, MseedExtractor, RangedReader, RecordData, RecordLocator, SacExtractor,
};
pub use log::{EtlLog, EtlOp, LogEntry};
pub use persistence::{
    load_saved_stats, load_saved_tables, load_saved_time_index, read_manifest, recover_saved_dir,
    replay_journal, save_warehouse, save_warehouse_crashing_at, save_warehouse_v1, saved_mode,
    stray_files, RecoveryReport, SaveReport, SavedFile, SavedManifest, CRASH_MARKER, JOURNAL_NAME,
    MANIFEST_NAME,
};
pub use qcache::{
    DeltaOutcome, QueryResultCache, RefreshDelta, ResultCacheSnapshot, ResultCacheStats,
    ResultMeta, ResultScope,
};
pub use rewrite::{lazy_rewrite, LocatorIndex, RewriteReport};
pub use schema::{
    data_schema, dataview_sql, files_schema, records_schema, FIGURE1_Q1, FIGURE1_Q2, METADATA_QUERY,
};
pub use segment::{SegmentEntry, SegmentInfo};
pub use warehouse::{
    global_file_id, split_file_id, CatalogRef, LoadReport, Mode, QueryOutput, QueryReport,
    RefreshSummary, SourceStats, Warehouse, WarehouseBuilder, WarehouseConfig, WarehouseStats,
    MAX_MOUNT_INDEX,
};
