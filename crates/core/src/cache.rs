//! The lazy-loading cache: intermediate result recycling (§3.3).
//!
//! "Materialization of the extracted and transformed data is simply caching
//! the result of a view definition … A least recently used (LRU) policy is
//! used for cache maintenance. … The cache makes use of required files'
//! last modified timestamp, and compares that with the admission timestamp
//! of that data to the cache."
//!
//! Entries are keyed per (file, record) — the unit the lazy extractor
//! fetches — and hold the record's transformed `D`-table rows. The cache is
//! byte-budgeted ("not larger than the size of system's main memory");
//! inserting past the budget evicts least-recently-used entries. Staleness
//! is detected by comparing the file's modification time now against the
//! one recorded at admission; a stale entry is dropped and re-extracted by
//! the caller (lazy refresh).
//!
//! # Lock striping
//!
//! The cache is split into `N` independent **shards**, each its own
//! mutex-guarded LRU with `budget / N` bytes. A key's shard is the hash of
//! `(file_id, seq_no)`, so concurrent queries (and parallel extraction
//! workers) touching different records rarely contend on the same lock.
//! Every operation takes `&self`; the cache is `Send + Sync` and shared
//! freely across query threads. Aggregate accounting (`used_bytes`,
//! [`CacheStats`], [`CacheSnapshot`]) sums over shards, so the numbers the
//! experiments report (E7, E11, E12) stay comparable with the previous
//! single-shard design. Two capacity effects do change with sharding:
//! eviction *order* under budget pressure is per-shard rather than
//! global, and the largest admissible entry shrinks from the whole
//! budget to one shard's slice (`budget / N`) — an entry bigger than its
//! shard is never admitted, so it misses on every repeat lookup. With
//! the default budget (256 MiB over 8 shards = 32 MiB per shard) that is
//! orders of magnitude above any record's `D` rows; size budgets
//! accordingly when shrinking them. `with_shards(budget, 1)` restores
//! exact single-cache semantics, admission threshold included.
//!
//! # Durability: segment export and lazy rehydration
//!
//! A saved warehouse snapshots each shard into a checksummed **segment
//! file** ([`crate::segment`]); a reopened warehouse attaches those files
//! back with [`RecyclingCache::attach_segments`]. Attached segments are
//! *pending*: nothing is read until the first operation touches the
//! shard, at which point the segment is read, verified and folded in
//! (read-on-first-touch; an mmap fast path would slot in here but the
//! build is dependency-free). A segment that fails its checksum — torn
//! write, bit flip, truncation — is **rejected wholesale** and counted in
//! [`CacheStats::segments_rejected`]: the shard simply starts cold, and
//! correctness is unaffected because the cache only ever accelerates
//! extraction. Each pending segment carries a validity map
//! (`file_id → expected mtime`) built by the reopen reconciliation;
//! entries of files that changed, vanished or were renumbered since the
//! save are dropped during hydration, so repository drift invalidates
//! exactly the affected records. Aggregate accessors
//! ([`RecyclingCache::len`], [`RecyclingCache::snapshot`], …) do **not**
//! force hydration — they describe the resident state;
//! [`RecyclingCache::pending_segments`] says how many segments are still
//! cold and [`RecyclingCache::hydrate_all`] forces them in.

use crate::segment::SegmentEntry;
use lazyetl_mseed::Timestamp;
use lazyetl_store::persist::split_footer;
use lazyetl_store::Table;
use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Cache key: one mSEED record's extracted data.
pub type CacheKey = (i64, i64); // (file_id, seq_no)

/// Default shard count of [`RecyclingCache::new`].
pub const DEFAULT_SHARDS: usize = 8;

/// Outcome of a cache lookup.
#[derive(Debug, Clone)]
pub enum CacheLookup {
    /// Fresh entry; use it.
    Hit(Arc<Table>),
    /// Entry existed but its file changed since admission; it was dropped.
    Stale,
    /// No entry.
    Miss,
}

#[derive(Debug)]
struct CacheEntry {
    table: Arc<Table>,
    bytes: usize,
    /// File modification time observed when this entry was admitted.
    file_mtime: Timestamp,
    /// Wall-clock-ish admission order (monotone tick), per the paper's
    /// admission timestamp.
    admitted_tick: u64,
    last_used_tick: u64,
}

/// Cumulative cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned fresh data.
    pub hits: u64,
    /// Lookups with no entry.
    pub misses: u64,
    /// Lookups that found a stale entry (counted also as a miss by most
    /// metrics; kept separate here).
    pub stale_drops: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
    /// Total bytes ever inserted.
    pub inserted_bytes: u64,
    /// Saved segments successfully rehydrated into this cache.
    pub segments_loaded: u64,
    /// Saved segments rejected at rehydration (checksum/format failure).
    pub segments_rejected: u64,
}

impl CacheStats {
    /// Hit rate over hits+misses+stale drops (0 when no lookups).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.stale_drops;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    fn add(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.stale_drops += other.stale_drops;
        self.evictions += other.evictions;
        self.inserted_bytes += other.inserted_bytes;
        self.segments_loaded += other.segments_loaded;
        self.segments_rejected += other.segments_rejected;
    }
}

/// A saved segment file awaiting lazy rehydration (see the module docs).
#[derive(Debug)]
pub struct PendingSegment {
    /// Segment file written by the durable save path.
    pub path: PathBuf,
    /// Body checksum the manifest recorded for this file.
    pub checksum: u64,
    /// `file_id → current mtime` of files whose saved rows survived the
    /// reopen reconciliation; entries not matching are dropped. Shared
    /// across every pending segment of one reopen (the reconciliation
    /// verdict is per-file, not per-shard), so revoking a file revokes
    /// it everywhere at once.
    pub valid: Arc<Mutex<HashMap<i64, Timestamp>>>,
}

/// Summary of one resident entry (for the demo's cache browser).
#[derive(Debug, Clone, PartialEq)]
pub struct CacheEntrySummary {
    /// (file_id, seq_no).
    pub key: CacheKey,
    /// Entry size in bytes.
    pub bytes: usize,
    /// Rows held.
    pub rows: usize,
    /// File mtime at admission.
    pub file_mtime: Timestamp,
}

/// Snapshot of cache contents and occupancy (demo item 7), aggregated over
/// every shard.
#[derive(Debug, Clone)]
pub struct CacheSnapshot {
    /// Resident entries ordered by key.
    pub entries: Vec<CacheEntrySummary>,
    /// Bytes in use.
    pub used_bytes: usize,
    /// Byte budget.
    pub budget_bytes: usize,
    /// Statistics so far.
    pub stats: CacheStats,
    /// Per-shard (entries, used bytes) occupancy, for skew diagnostics.
    pub shard_occupancy: Vec<(usize, usize)>,
}

/// One independently locked LRU shard (the previous whole-cache design).
#[derive(Debug)]
struct Shard {
    budget_bytes: usize,
    entries: HashMap<CacheKey, CacheEntry>,
    /// last_used_tick -> key index for O(log n) LRU eviction.
    lru: BTreeMap<u64, CacheKey>,
    tick: u64,
    used_bytes: usize,
    stats: CacheStats,
}

impl Shard {
    fn new(budget_bytes: usize) -> Shard {
        Shard {
            budget_bytes,
            entries: HashMap::new(),
            lru: BTreeMap::new(),
            tick: 0,
            used_bytes: 0,
            stats: CacheStats::default(),
        }
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    fn get(&mut self, key: CacheKey, current_file_mtime: Timestamp) -> CacheLookup {
        let tick = self.next_tick();
        match self.entries.get_mut(&key) {
            None => {
                self.stats.misses += 1;
                CacheLookup::Miss
            }
            Some(entry) => {
                if entry.file_mtime != current_file_mtime {
                    // Outdated: drop; caller re-extracts from the updated
                    // file (lazy refresh, §3.3).
                    self.stats.stale_drops += 1;
                    let old = self.entries.remove(&key).expect("entry just seen");
                    self.lru.remove(&old.last_used_tick);
                    self.used_bytes -= old.bytes;
                    CacheLookup::Stale
                } else {
                    self.stats.hits += 1;
                    self.lru.remove(&entry.last_used_tick);
                    entry.last_used_tick = tick;
                    self.lru.insert(tick, key);
                    CacheLookup::Hit(entry.table.clone())
                }
            }
        }
    }

    fn insert(&mut self, key: CacheKey, table: Arc<Table>, file_mtime: Timestamp) -> usize {
        let bytes = table.byte_size();
        // Replace any existing entry first: even if the new value turns out
        // to be inadmissible, the old value is superseded and must not be
        // served afterwards.
        if let Some(old) = self.entries.remove(&key) {
            self.lru.remove(&old.last_used_tick);
            self.used_bytes -= old.bytes;
        }
        if bytes > self.budget_bytes {
            return 0; // would evict everything and still not fit
        }
        let mut evicted = 0usize;
        while self.used_bytes + bytes > self.budget_bytes {
            let (&oldest_tick, &oldest_key) =
                self.lru.iter().next().expect("over budget implies entries");
            let old = self
                .entries
                .remove(&oldest_key)
                .expect("lru index consistent");
            self.lru.remove(&oldest_tick);
            self.used_bytes -= old.bytes;
            self.stats.evictions += 1;
            evicted += 1;
        }
        let tick = self.next_tick();
        self.entries.insert(
            key,
            CacheEntry {
                table,
                bytes,
                file_mtime,
                admitted_tick: tick,
                last_used_tick: tick,
            },
        );
        self.lru.insert(tick, key);
        self.used_bytes += bytes;
        self.stats.inserted_bytes += bytes as u64;
        evicted
    }

    fn remove(&mut self, key: &CacheKey) -> bool {
        if let Some(old) = self.entries.remove(key) {
            self.lru.remove(&old.last_used_tick);
            self.used_bytes -= old.bytes;
            true
        } else {
            false
        }
    }

    fn clear(&mut self) {
        self.entries.clear();
        self.lru.clear();
        self.used_bytes = 0;
    }
}

/// Byte-budgeted, lock-striped LRU cache of extracted record data.
///
/// All operations take `&self`; see the module docs for the sharding
/// design.
#[derive(Debug)]
pub struct RecyclingCache {
    shards: Vec<Mutex<Shard>>,
    budget_bytes: usize,
    /// One pending-segment slot per shard; `None` once hydrated.
    pending: Vec<Mutex<Option<PendingSegment>>>,
    /// Fast path: number of slots still holding a pending segment.
    pending_count: AtomicUsize,
}

impl RecyclingCache {
    /// A cache with the given byte budget and [`DEFAULT_SHARDS`] shards.
    pub fn new(budget_bytes: usize) -> RecyclingCache {
        RecyclingCache::with_shards(budget_bytes, DEFAULT_SHARDS)
    }

    /// A cache with an explicit shard count (clamped to ≥ 1). The byte
    /// budget is split evenly across shards; a shard count of 1 gives the
    /// exact global-LRU behaviour of the pre-sharding design.
    pub fn with_shards(budget_bytes: usize, num_shards: usize) -> RecyclingCache {
        let n = num_shards.max(1);
        let base = budget_bytes / n;
        let remainder = budget_bytes % n;
        let shards = (0..n)
            .map(|i| Mutex::new(Shard::new(base + usize::from(i < remainder))))
            .collect();
        RecyclingCache {
            shards,
            budget_bytes,
            pending: (0..n).map(|_| Mutex::new(None)).collect(),
            pending_count: AtomicUsize::new(0),
        }
    }

    /// Number of lock stripes.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Which shard a key lives in. Uses the repo's own FNV-1a hash over
    /// the key bytes — segment files assume this mapping is stable
    /// across processes *and* toolchains, which std's `DefaultHasher`
    /// explicitly does not promise.
    fn shard_index(&self, key: &CacheKey) -> usize {
        let mut bytes = [0u8; 16];
        bytes[..8].copy_from_slice(&key.0.to_le_bytes());
        bytes[8..].copy_from_slice(&key.1.to_le_bytes());
        (lazyetl_store::persist::checksum64(&bytes) % self.shards.len() as u64) as usize
    }

    fn shard_of(&self, key: &CacheKey) -> MutexGuard<'_, Shard> {
        let idx = self.shard_index(key);
        self.ensure_hydrated(idx);
        self.shards[idx].lock().expect("cache shard poisoned")
    }

    /// Attach saved segment files for lazy rehydration.
    ///
    /// `saved_shards` is the shard count of the cache that wrote the
    /// segments; each entry pairs a shard index with its segment. When it
    /// matches this cache's shard count, the key→shard mapping is
    /// unchanged and each segment is read lazily on the first touch of
    /// its shard. Any other count means keys now hash to different
    /// shards, so every segment is folded in eagerly through the
    /// hash-routed insert path instead.
    pub fn attach_segments(&self, saved_shards: usize, segments: Vec<(usize, PendingSegment)>) {
        if saved_shards == self.shards.len() {
            for (idx, seg) in segments {
                if idx >= self.pending.len() {
                    continue; // manifest damage; shard simply stays cold
                }
                *self.pending[idx].lock().expect("pending slot poisoned") = Some(seg);
                self.pending_count.fetch_add(1, Ordering::Release);
            }
        } else {
            for (_, seg) in segments {
                match Self::load_segment(&seg) {
                    Ok(entries) => {
                        self.shards[0]
                            .lock()
                            .expect("cache shard poisoned")
                            .stats
                            .segments_loaded += 1;
                        for e in entries {
                            self.insert(e.key, e.table, e.mtime);
                        }
                    }
                    Err(_) => {
                        self.shards[0]
                            .lock()
                            .expect("cache shard poisoned")
                            .stats
                            .segments_rejected += 1;
                    }
                }
            }
        }
    }

    /// Read + verify one segment, keeping only entries its validity map
    /// still vouches for.
    fn load_segment(seg: &PendingSegment) -> crate::error::Result<Vec<SegmentEntry>> {
        let bytes = std::fs::read(&seg.path).map_err(|e| {
            crate::error::EtlError::Internal(format!(
                "cannot read segment {}: {e}",
                seg.path.display()
            ))
        })?;
        let (_, sum) = split_footer(&bytes).map_err(crate::error::EtlError::Store)?;
        if sum != seg.checksum {
            return Err(crate::error::EtlError::Internal(format!(
                "segment {} checksum {sum:#x} != manifest {:#x}",
                seg.path.display(),
                seg.checksum
            )));
        }
        let entries = crate::segment::decode_segment(&bytes)?;
        let valid = seg.valid.lock().expect("validity map poisoned");
        Ok(entries
            .into_iter()
            .filter(|e| valid.get(&e.key.0) == Some(&e.mtime))
            .collect())
    }

    /// Fold shard `idx`'s pending segment in, if it still has one. Entries
    /// are inserted directly into the shard (they hashed there at save
    /// time), preserving saved LRU order; a verification failure leaves
    /// the shard cold and counts a rejection.
    fn ensure_hydrated(&self, idx: usize) {
        if self.pending_count.load(Ordering::Acquire) == 0 {
            return;
        }
        let mut slot = self.pending[idx].lock().expect("pending slot poisoned");
        if let Some(seg) = slot.take() {
            self.pending_count.fetch_sub(1, Ordering::Release);
            let loaded = Self::load_segment(&seg);
            let mut shard = self.shards[idx].lock().expect("cache shard poisoned");
            match loaded {
                Ok(entries) => {
                    shard.stats.segments_loaded += 1;
                    for e in entries {
                        shard.insert(e.key, e.table, e.mtime);
                    }
                }
                Err(_) => shard.stats.segments_rejected += 1,
            }
        }
    }

    /// Force every pending segment in (save paths and tests want the
    /// complete picture; queries hydrate shard by shard).
    pub fn hydrate_all(&self) {
        for idx in 0..self.shards.len() {
            self.ensure_hydrated(idx);
        }
    }

    /// Segments attached but not yet read.
    pub fn pending_segments(&self) -> usize {
        self.pending_count.load(Ordering::Acquire)
    }

    /// Every shard's resident entries in LRU order (oldest first), the
    /// unit the durable save path writes one segment file from. Pending
    /// segments are hydrated first so a save never silently drops a
    /// not-yet-touched shard.
    pub fn export_shards(&self) -> Vec<Vec<SegmentEntry>> {
        self.hydrate_all();
        self.shards
            .iter()
            .map(|s| {
                let shard = s.lock().expect("cache shard poisoned");
                shard
                    .lru
                    .values()
                    .map(|key| {
                        let e = shard.entries.get(key).expect("lru index consistent");
                        SegmentEntry {
                            key: *key,
                            mtime: e.file_mtime,
                            table: e.table.clone(),
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// Look up one record's data, checking freshness against the file's
    /// current modification time.
    pub fn get(&self, key: CacheKey, current_file_mtime: Timestamp) -> CacheLookup {
        self.shard_of(&key).get(key, current_file_mtime)
    }

    /// Insert (or replace) one record's extracted data.
    ///
    /// Returns the number of entries evicted from the key's shard to make
    /// room. Entries larger than the shard's budget slice (total budget /
    /// shard count) are not admitted — they would evict the whole shard
    /// and still not fit.
    pub fn insert(&self, key: CacheKey, table: Arc<Table>, file_mtime: Timestamp) -> usize {
        self.shard_of(&key).insert(key, table, file_mtime)
    }

    /// Drop every entry belonging to a file (metadata refresh path).
    ///
    /// Also revokes the file from every pending segment's validity map,
    /// so entries of an invalidated file can never hydrate in later.
    pub fn invalidate_file(&self, file_id: i64) -> usize {
        for slot in &self.pending {
            if let Some(seg) = slot.lock().expect("pending slot poisoned").as_ref() {
                seg.valid
                    .lock()
                    .expect("validity map poisoned")
                    .remove(&file_id);
            }
        }
        let mut dropped = 0usize;
        for shard in &self.shards {
            let mut shard = shard.lock().expect("cache shard poisoned");
            let keys: Vec<CacheKey> = shard
                .entries
                .keys()
                .filter(|(f, _)| *f == file_id)
                .copied()
                .collect();
            for k in &keys {
                if shard.remove(k) {
                    dropped += 1;
                }
            }
        }
        dropped
    }

    /// Remove everything, pending segments included.
    pub fn clear(&self) {
        for slot in &self.pending {
            if slot.lock().expect("pending slot poisoned").take().is_some() {
                self.pending_count.fetch_sub(1, Ordering::Release);
            }
        }
        for shard in &self.shards {
            shard.lock().expect("cache shard poisoned").clear();
        }
    }

    /// Bytes currently resident, summed over shards.
    pub fn used_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").used_bytes)
            .sum()
    }

    /// Configured total byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Number of resident entries, summed over shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").entries.len())
            .sum()
    }

    /// True when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Statistics so far, summed over shards.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shards {
            total.add(&shard.lock().expect("cache shard poisoned").stats);
        }
        total
    }

    /// Admission tick of an entry within its shard (test hook for LRU
    /// behaviour; ticks are only comparable within one shard).
    pub fn admitted_tick(&self, key: &CacheKey) -> Option<u64> {
        self.shard_of(key).entries.get(key).map(|e| e.admitted_tick)
    }

    /// Snapshot of contents for the demo's cache browser, aggregated over
    /// every shard.
    pub fn snapshot(&self) -> CacheSnapshot {
        let mut entries: Vec<CacheEntrySummary> = Vec::new();
        let mut used_bytes = 0usize;
        let mut stats = CacheStats::default();
        let mut shard_occupancy = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            let shard = shard.lock().expect("cache shard poisoned");
            entries.extend(shard.entries.iter().map(|(k, e)| CacheEntrySummary {
                key: *k,
                bytes: e.bytes,
                rows: e.table.num_rows(),
                file_mtime: e.file_mtime,
            }));
            used_bytes += shard.used_bytes;
            stats.add(&shard.stats);
            shard_occupancy.push((shard.entries.len(), shard.used_bytes));
        }
        entries.sort_by_key(|e| e.key);
        CacheSnapshot {
            entries,
            used_bytes,
            budget_bytes: self.budget_bytes,
            stats,
            shard_occupancy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazyetl_store::{DataType, Field, Schema, Value};

    fn table_of(rows: usize) -> Arc<Table> {
        let schema = Schema::new(vec![Field::new("v", DataType::Float64)]).unwrap();
        let mut t = Table::empty(schema);
        for i in 0..rows {
            t.append_row(vec![Value::Float64(i as f64)]).unwrap();
        }
        Arc::new(t)
    }

    const MT: Timestamp = Timestamp(1000);

    #[test]
    fn hit_miss_lifecycle() {
        let c = RecyclingCache::new(1 << 20);
        assert!(matches!(c.get((1, 1), MT), CacheLookup::Miss));
        c.insert((1, 1), table_of(10), MT);
        match c.get((1, 1), MT) {
            CacheLookup::Hit(t) => assert_eq!(t.num_rows(), 10),
            other => panic!("expected hit, got {other:?}"),
        }
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert!(s.hit_rate() > 0.49 && s.hit_rate() < 0.51);
    }

    #[test]
    fn staleness_detected_by_mtime() {
        let c = RecyclingCache::new(1 << 20);
        c.insert((1, 1), table_of(10), MT);
        // File was touched since admission.
        assert!(matches!(c.get((1, 1), Timestamp(2000)), CacheLookup::Stale));
        // The stale entry is gone.
        assert!(matches!(c.get((1, 1), Timestamp(2000)), CacheLookup::Miss));
        assert_eq!(c.stats().stale_drops, 1);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn lru_eviction_under_budget_pressure() {
        // Single shard: exact global-LRU semantics. Each 10-row float
        // table is 80 bytes.
        let c = RecyclingCache::with_shards(250, 1);
        c.insert((1, 1), table_of(10), MT);
        c.insert((1, 2), table_of(10), MT);
        c.insert((1, 3), table_of(10), MT);
        assert_eq!(c.len(), 3);
        // Touch (1,1) so (1,2) becomes the LRU victim.
        assert!(matches!(c.get((1, 1), MT), CacheLookup::Hit(_)));
        let evicted = c.insert((1, 4), table_of(10), MT);
        assert_eq!(evicted, 1);
        assert!(matches!(c.get((1, 2), MT), CacheLookup::Miss), "LRU gone");
        assert!(matches!(c.get((1, 1), MT), CacheLookup::Hit(_)));
        assert_eq!(c.stats().evictions, 1);
        assert!(c.used_bytes() <= c.budget_bytes());
    }

    #[test]
    fn oversized_entry_not_admitted() {
        let c = RecyclingCache::with_shards(100, 1);
        let evicted = c.insert((1, 1), table_of(1000), MT);
        assert_eq!(evicted, 0);
        assert!(c.is_empty());
        assert!(matches!(c.get((1, 1), MT), CacheLookup::Miss));
    }

    #[test]
    fn invalidate_file_drops_only_that_file() {
        let c = RecyclingCache::new(1 << 20);
        c.insert((1, 1), table_of(5), MT);
        c.insert((1, 2), table_of(5), MT);
        c.insert((2, 1), table_of(5), MT);
        assert_eq!(c.invalidate_file(1), 2);
        assert_eq!(c.len(), 1);
        assert!(matches!(c.get((2, 1), MT), CacheLookup::Hit(_)));
    }

    #[test]
    fn replace_same_key_updates_bytes() {
        let c = RecyclingCache::new(1 << 20);
        c.insert((1, 1), table_of(10), MT);
        let b1 = c.used_bytes();
        c.insert((1, 1), table_of(20), MT);
        assert_eq!(c.len(), 1);
        assert_eq!(c.used_bytes(), b1 * 2);
    }

    #[test]
    fn snapshot_reports_contents() {
        let c = RecyclingCache::new(1 << 20);
        c.insert((2, 7), table_of(3), MT);
        c.insert((1, 9), table_of(4), MT);
        let snap = c.snapshot();
        assert_eq!(snap.entries.len(), 2);
        assert_eq!(snap.entries[0].key, (1, 9), "sorted by key");
        assert_eq!(snap.entries[0].rows, 4);
        assert_eq!(snap.used_bytes, c.used_bytes());
        assert_eq!(snap.shard_occupancy.len(), c.num_shards());
        let (n, b): (usize, usize) = snap
            .shard_occupancy
            .iter()
            .fold((0, 0), |(n, b), &(sn, sb)| (n + sn, b + sb));
        assert_eq!(n, 2);
        assert_eq!(b, snap.used_bytes);
    }

    #[test]
    fn shard_budgets_sum_to_total() {
        for (budget, shards) in [(1usize << 20, 8usize), (1003, 7), (5, 8)] {
            let c = RecyclingCache::with_shards(budget, shards);
            let per_shard: usize = (0..shards)
                .map(|i| budget / shards + usize::from(i < budget % shards))
                .sum();
            assert_eq!(per_shard, budget);
            assert_eq!(c.budget_bytes(), budget);
            assert_eq!(c.num_shards(), shards);
        }
        // Zero shards is clamped, not a panic.
        assert_eq!(RecyclingCache::with_shards(100, 0).num_shards(), 1);
    }

    #[test]
    fn sharded_eviction_keeps_aggregate_within_budget() {
        // Insert far more than the budget holds; whatever survives must
        // respect the total budget, and every shard its slice.
        let c = RecyclingCache::with_shards(800, 4);
        for f in 0..10i64 {
            for s in 0..10i64 {
                c.insert((f, s), table_of(10), MT); // 80 bytes each
            }
        }
        assert!(c.used_bytes() <= c.budget_bytes());
        assert!(c.stats().evictions > 0);
        assert!(!c.is_empty(), "each shard retains its most recent entries");
    }

    fn export_to_segments(
        c: &RecyclingCache,
        dir: &std::path::Path,
        valid: &HashMap<i64, Timestamp>,
    ) -> Vec<(usize, PendingSegment)> {
        let valid = Arc::new(Mutex::new(valid.clone()));
        let mut segs = Vec::new();
        for (i, entries) in c.export_shards().iter().enumerate() {
            if entries.is_empty() {
                continue;
            }
            let path = dir.join(format!("shard_{i:03}.lzsg"));
            let info = crate::segment::write_segment_atomic(&path, entries).unwrap();
            segs.push((
                i,
                PendingSegment {
                    path,
                    checksum: info.checksum,
                    valid: valid.clone(),
                },
            ));
        }
        segs
    }

    fn seg_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("lazyetl_cacheseg_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn segment_export_and_lazy_rehydration() {
        let dir = seg_dir("roundtrip");
        let c = RecyclingCache::with_shards(1 << 20, 4);
        for f in 0..3i64 {
            for s in 0..5i64 {
                c.insert((f, s), table_of(6), MT);
            }
        }
        let valid: HashMap<i64, Timestamp> = (0..3).map(|f| (f, MT)).collect();
        let segs = export_to_segments(&c, &dir, &valid);
        assert!(!segs.is_empty());

        let c2 = RecyclingCache::with_shards(1 << 20, 4);
        c2.attach_segments(4, segs);
        assert!(c2.pending_segments() > 0);
        assert_eq!(c2.len(), 0, "nothing read before first touch");
        for f in 0..3i64 {
            for s in 0..5i64 {
                assert!(
                    matches!(c2.get((f, s), MT), CacheLookup::Hit(_)),
                    "({f},{s}) hydrates to a hit"
                );
            }
        }
        assert_eq!(c2.pending_segments(), 0);
        let stats = c2.stats();
        assert!(stats.segments_loaded > 0);
        assert_eq!(stats.segments_rejected, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn invalidation_before_hydration_filters_entries() {
        let dir = seg_dir("invalidate");
        let c = RecyclingCache::with_shards(1 << 20, 2);
        c.insert((1, 1), table_of(4), MT);
        c.insert((2, 1), table_of(4), MT);
        let valid: HashMap<i64, Timestamp> = [(1, MT), (2, MT)].into();
        let segs = export_to_segments(&c, &dir, &valid);
        let c2 = RecyclingCache::with_shards(1 << 20, 2);
        c2.attach_segments(2, segs);
        // File 1 is invalidated while its segment is still pending.
        c2.invalidate_file(1);
        assert!(matches!(c2.get((1, 1), MT), CacheLookup::Miss));
        assert!(matches!(c2.get((2, 1), MT), CacheLookup::Hit(_)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mismatched_shard_count_folds_eagerly() {
        let dir = seg_dir("fold");
        let c = RecyclingCache::with_shards(1 << 20, 4);
        for s in 0..10i64 {
            c.insert((7, s), table_of(3), MT);
        }
        let valid: HashMap<i64, Timestamp> = [(7, MT)].into();
        let segs = export_to_segments(&c, &dir, &valid);
        // Reopen with a different stripe count: everything folds in now.
        let c2 = RecyclingCache::with_shards(1 << 20, 3);
        c2.attach_segments(4, segs);
        assert_eq!(c2.pending_segments(), 0);
        assert_eq!(c2.len(), 10);
        for s in 0..10i64 {
            assert!(matches!(c2.get((7, s), MT), CacheLookup::Hit(_)));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_segment_is_rejected_not_served() {
        let dir = seg_dir("corrupt");
        let c = RecyclingCache::with_shards(1 << 20, 1);
        for s in 0..6i64 {
            c.insert((1, s), table_of(8), MT);
        }
        let valid: HashMap<i64, Timestamp> = [(1, MT)].into();
        let segs = export_to_segments(&c, &dir, &valid);
        let path = segs[0].1.path.clone();
        // Flip one byte in the middle of the file.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x08;
        std::fs::write(&path, &bytes).unwrap();
        let c2 = RecyclingCache::with_shards(1 << 20, 1);
        c2.attach_segments(1, segs);
        assert!(matches!(c2.get((1, 0), MT), CacheLookup::Miss));
        assert_eq!(c2.stats().segments_rejected, 1);
        assert!(c2.is_empty(), "no entry of a bad segment survives");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_mixed_workload_is_consistent() {
        let c = RecyclingCache::new(1 << 20);
        std::thread::scope(|s| {
            for t in 0..4i64 {
                let c = &c;
                s.spawn(move || {
                    for i in 0..50i64 {
                        let key = (t, i % 8);
                        c.insert(key, table_of(4), MT);
                        assert!(matches!(c.get(key, MT), CacheLookup::Hit(_)));
                    }
                });
            }
        });
        // 4 threads × 8 distinct keys each; all resident (budget is ample).
        assert_eq!(c.len(), 32);
        let s = c.stats();
        assert_eq!(s.hits, 200, "every post-insert lookup hits");
        let snap = c.snapshot();
        assert_eq!(snap.entries.len(), 32);
        assert_eq!(snap.used_bytes, c.used_bytes());
    }
}
