//! The lazy-loading cache: intermediate result recycling (§3.3).
//!
//! "Materialization of the extracted and transformed data is simply caching
//! the result of a view definition … A least recently used (LRU) policy is
//! used for cache maintenance. … The cache makes use of required files'
//! last modified timestamp, and compares that with the admission timestamp
//! of that data to the cache."
//!
//! Entries are keyed per (file, record) — the unit the lazy extractor
//! fetches — and hold the record's transformed `D`-table rows. The cache is
//! byte-budgeted ("not larger than the size of system's main memory");
//! inserting past the budget evicts least-recently-used entries. Staleness
//! is detected by comparing the file's modification time now against the
//! one recorded at admission; a stale entry is dropped and re-extracted by
//! the caller (lazy refresh).
//!
//! # Lock striping
//!
//! The cache is split into `N` independent **shards**, each its own
//! mutex-guarded LRU with `budget / N` bytes. A key's shard is the hash of
//! `(file_id, seq_no)`, so concurrent queries (and parallel extraction
//! workers) touching different records rarely contend on the same lock.
//! Every operation takes `&self`; the cache is `Send + Sync` and shared
//! freely across query threads. Aggregate accounting (`used_bytes`,
//! [`CacheStats`], [`CacheSnapshot`]) sums over shards, so the numbers the
//! experiments report (E7, E11, E12) stay comparable with the previous
//! single-shard design. Two capacity effects do change with sharding:
//! eviction *order* under budget pressure is per-shard rather than
//! global, and the largest admissible entry shrinks from the whole
//! budget to one shard's slice (`budget / N`) — an entry bigger than its
//! shard is never admitted, so it misses on every repeat lookup. With
//! the default budget (256 MiB over 8 shards = 32 MiB per shard) that is
//! orders of magnitude above any record's `D` rows; size budgets
//! accordingly when shrinking them. `with_shards(budget, 1)` restores
//! exact single-cache semantics, admission threshold included.

use lazyetl_mseed::Timestamp;
use lazyetl_store::Table;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, MutexGuard};

/// Cache key: one mSEED record's extracted data.
pub type CacheKey = (i64, i64); // (file_id, seq_no)

/// Default shard count of [`RecyclingCache::new`].
pub const DEFAULT_SHARDS: usize = 8;

/// Outcome of a cache lookup.
#[derive(Debug, Clone)]
pub enum CacheLookup {
    /// Fresh entry; use it.
    Hit(Arc<Table>),
    /// Entry existed but its file changed since admission; it was dropped.
    Stale,
    /// No entry.
    Miss,
}

#[derive(Debug)]
struct CacheEntry {
    table: Arc<Table>,
    bytes: usize,
    /// File modification time observed when this entry was admitted.
    file_mtime: Timestamp,
    /// Wall-clock-ish admission order (monotone tick), per the paper's
    /// admission timestamp.
    admitted_tick: u64,
    last_used_tick: u64,
}

/// Cumulative cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned fresh data.
    pub hits: u64,
    /// Lookups with no entry.
    pub misses: u64,
    /// Lookups that found a stale entry (counted also as a miss by most
    /// metrics; kept separate here).
    pub stale_drops: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
    /// Total bytes ever inserted.
    pub inserted_bytes: u64,
}

impl CacheStats {
    /// Hit rate over hits+misses+stale drops (0 when no lookups).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.stale_drops;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    fn add(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.stale_drops += other.stale_drops;
        self.evictions += other.evictions;
        self.inserted_bytes += other.inserted_bytes;
    }
}

/// Summary of one resident entry (for the demo's cache browser).
#[derive(Debug, Clone, PartialEq)]
pub struct CacheEntrySummary {
    /// (file_id, seq_no).
    pub key: CacheKey,
    /// Entry size in bytes.
    pub bytes: usize,
    /// Rows held.
    pub rows: usize,
    /// File mtime at admission.
    pub file_mtime: Timestamp,
}

/// Snapshot of cache contents and occupancy (demo item 7), aggregated over
/// every shard.
#[derive(Debug, Clone)]
pub struct CacheSnapshot {
    /// Resident entries ordered by key.
    pub entries: Vec<CacheEntrySummary>,
    /// Bytes in use.
    pub used_bytes: usize,
    /// Byte budget.
    pub budget_bytes: usize,
    /// Statistics so far.
    pub stats: CacheStats,
    /// Per-shard (entries, used bytes) occupancy, for skew diagnostics.
    pub shard_occupancy: Vec<(usize, usize)>,
}

/// One independently locked LRU shard (the previous whole-cache design).
#[derive(Debug)]
struct Shard {
    budget_bytes: usize,
    entries: HashMap<CacheKey, CacheEntry>,
    /// last_used_tick -> key index for O(log n) LRU eviction.
    lru: BTreeMap<u64, CacheKey>,
    tick: u64,
    used_bytes: usize,
    stats: CacheStats,
}

impl Shard {
    fn new(budget_bytes: usize) -> Shard {
        Shard {
            budget_bytes,
            entries: HashMap::new(),
            lru: BTreeMap::new(),
            tick: 0,
            used_bytes: 0,
            stats: CacheStats::default(),
        }
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    fn get(&mut self, key: CacheKey, current_file_mtime: Timestamp) -> CacheLookup {
        let tick = self.next_tick();
        match self.entries.get_mut(&key) {
            None => {
                self.stats.misses += 1;
                CacheLookup::Miss
            }
            Some(entry) => {
                if entry.file_mtime != current_file_mtime {
                    // Outdated: drop; caller re-extracts from the updated
                    // file (lazy refresh, §3.3).
                    self.stats.stale_drops += 1;
                    let old = self.entries.remove(&key).expect("entry just seen");
                    self.lru.remove(&old.last_used_tick);
                    self.used_bytes -= old.bytes;
                    CacheLookup::Stale
                } else {
                    self.stats.hits += 1;
                    self.lru.remove(&entry.last_used_tick);
                    entry.last_used_tick = tick;
                    self.lru.insert(tick, key);
                    CacheLookup::Hit(entry.table.clone())
                }
            }
        }
    }

    fn insert(&mut self, key: CacheKey, table: Arc<Table>, file_mtime: Timestamp) -> usize {
        let bytes = table.byte_size();
        // Replace any existing entry first: even if the new value turns out
        // to be inadmissible, the old value is superseded and must not be
        // served afterwards.
        if let Some(old) = self.entries.remove(&key) {
            self.lru.remove(&old.last_used_tick);
            self.used_bytes -= old.bytes;
        }
        if bytes > self.budget_bytes {
            return 0; // would evict everything and still not fit
        }
        let mut evicted = 0usize;
        while self.used_bytes + bytes > self.budget_bytes {
            let (&oldest_tick, &oldest_key) =
                self.lru.iter().next().expect("over budget implies entries");
            let old = self
                .entries
                .remove(&oldest_key)
                .expect("lru index consistent");
            self.lru.remove(&oldest_tick);
            self.used_bytes -= old.bytes;
            self.stats.evictions += 1;
            evicted += 1;
        }
        let tick = self.next_tick();
        self.entries.insert(
            key,
            CacheEntry {
                table,
                bytes,
                file_mtime,
                admitted_tick: tick,
                last_used_tick: tick,
            },
        );
        self.lru.insert(tick, key);
        self.used_bytes += bytes;
        self.stats.inserted_bytes += bytes as u64;
        evicted
    }

    fn remove(&mut self, key: &CacheKey) -> bool {
        if let Some(old) = self.entries.remove(key) {
            self.lru.remove(&old.last_used_tick);
            self.used_bytes -= old.bytes;
            true
        } else {
            false
        }
    }

    fn clear(&mut self) {
        self.entries.clear();
        self.lru.clear();
        self.used_bytes = 0;
    }
}

/// Byte-budgeted, lock-striped LRU cache of extracted record data.
///
/// All operations take `&self`; see the module docs for the sharding
/// design.
#[derive(Debug)]
pub struct RecyclingCache {
    shards: Vec<Mutex<Shard>>,
    budget_bytes: usize,
}

impl RecyclingCache {
    /// A cache with the given byte budget and [`DEFAULT_SHARDS`] shards.
    pub fn new(budget_bytes: usize) -> RecyclingCache {
        RecyclingCache::with_shards(budget_bytes, DEFAULT_SHARDS)
    }

    /// A cache with an explicit shard count (clamped to ≥ 1). The byte
    /// budget is split evenly across shards; a shard count of 1 gives the
    /// exact global-LRU behaviour of the pre-sharding design.
    pub fn with_shards(budget_bytes: usize, num_shards: usize) -> RecyclingCache {
        let n = num_shards.max(1);
        let base = budget_bytes / n;
        let remainder = budget_bytes % n;
        let shards = (0..n)
            .map(|i| Mutex::new(Shard::new(base + usize::from(i < remainder))))
            .collect();
        RecyclingCache {
            shards,
            budget_bytes,
        }
    }

    /// Number of lock stripes.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, key: &CacheKey) -> MutexGuard<'_, Shard> {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        let idx = (hasher.finish() % self.shards.len() as u64) as usize;
        self.shards[idx].lock().expect("cache shard poisoned")
    }

    /// Look up one record's data, checking freshness against the file's
    /// current modification time.
    pub fn get(&self, key: CacheKey, current_file_mtime: Timestamp) -> CacheLookup {
        self.shard_of(&key).get(key, current_file_mtime)
    }

    /// Insert (or replace) one record's extracted data.
    ///
    /// Returns the number of entries evicted from the key's shard to make
    /// room. Entries larger than the shard's budget slice (total budget /
    /// shard count) are not admitted — they would evict the whole shard
    /// and still not fit.
    pub fn insert(&self, key: CacheKey, table: Arc<Table>, file_mtime: Timestamp) -> usize {
        self.shard_of(&key).insert(key, table, file_mtime)
    }

    /// Drop every entry belonging to a file (metadata refresh path).
    pub fn invalidate_file(&self, file_id: i64) -> usize {
        let mut dropped = 0usize;
        for shard in &self.shards {
            let mut shard = shard.lock().expect("cache shard poisoned");
            let keys: Vec<CacheKey> = shard
                .entries
                .keys()
                .filter(|(f, _)| *f == file_id)
                .copied()
                .collect();
            for k in &keys {
                if shard.remove(k) {
                    dropped += 1;
                }
            }
        }
        dropped
    }

    /// Remove everything.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("cache shard poisoned").clear();
        }
    }

    /// Bytes currently resident, summed over shards.
    pub fn used_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").used_bytes)
            .sum()
    }

    /// Configured total byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Number of resident entries, summed over shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").entries.len())
            .sum()
    }

    /// True when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Statistics so far, summed over shards.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shards {
            total.add(&shard.lock().expect("cache shard poisoned").stats);
        }
        total
    }

    /// Admission tick of an entry within its shard (test hook for LRU
    /// behaviour; ticks are only comparable within one shard).
    pub fn admitted_tick(&self, key: &CacheKey) -> Option<u64> {
        self.shard_of(key).entries.get(key).map(|e| e.admitted_tick)
    }

    /// Snapshot of contents for the demo's cache browser, aggregated over
    /// every shard.
    pub fn snapshot(&self) -> CacheSnapshot {
        let mut entries: Vec<CacheEntrySummary> = Vec::new();
        let mut used_bytes = 0usize;
        let mut stats = CacheStats::default();
        let mut shard_occupancy = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            let shard = shard.lock().expect("cache shard poisoned");
            entries.extend(shard.entries.iter().map(|(k, e)| CacheEntrySummary {
                key: *k,
                bytes: e.bytes,
                rows: e.table.num_rows(),
                file_mtime: e.file_mtime,
            }));
            used_bytes += shard.used_bytes;
            stats.add(&shard.stats);
            shard_occupancy.push((shard.entries.len(), shard.used_bytes));
        }
        entries.sort_by_key(|e| e.key);
        CacheSnapshot {
            entries,
            used_bytes,
            budget_bytes: self.budget_bytes,
            stats,
            shard_occupancy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazyetl_store::{DataType, Field, Schema, Value};

    fn table_of(rows: usize) -> Arc<Table> {
        let schema = Schema::new(vec![Field::new("v", DataType::Float64)]).unwrap();
        let mut t = Table::empty(schema);
        for i in 0..rows {
            t.append_row(vec![Value::Float64(i as f64)]).unwrap();
        }
        Arc::new(t)
    }

    const MT: Timestamp = Timestamp(1000);

    #[test]
    fn hit_miss_lifecycle() {
        let c = RecyclingCache::new(1 << 20);
        assert!(matches!(c.get((1, 1), MT), CacheLookup::Miss));
        c.insert((1, 1), table_of(10), MT);
        match c.get((1, 1), MT) {
            CacheLookup::Hit(t) => assert_eq!(t.num_rows(), 10),
            other => panic!("expected hit, got {other:?}"),
        }
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert!(s.hit_rate() > 0.49 && s.hit_rate() < 0.51);
    }

    #[test]
    fn staleness_detected_by_mtime() {
        let c = RecyclingCache::new(1 << 20);
        c.insert((1, 1), table_of(10), MT);
        // File was touched since admission.
        assert!(matches!(c.get((1, 1), Timestamp(2000)), CacheLookup::Stale));
        // The stale entry is gone.
        assert!(matches!(c.get((1, 1), Timestamp(2000)), CacheLookup::Miss));
        assert_eq!(c.stats().stale_drops, 1);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn lru_eviction_under_budget_pressure() {
        // Single shard: exact global-LRU semantics. Each 10-row float
        // table is 80 bytes.
        let c = RecyclingCache::with_shards(250, 1);
        c.insert((1, 1), table_of(10), MT);
        c.insert((1, 2), table_of(10), MT);
        c.insert((1, 3), table_of(10), MT);
        assert_eq!(c.len(), 3);
        // Touch (1,1) so (1,2) becomes the LRU victim.
        assert!(matches!(c.get((1, 1), MT), CacheLookup::Hit(_)));
        let evicted = c.insert((1, 4), table_of(10), MT);
        assert_eq!(evicted, 1);
        assert!(matches!(c.get((1, 2), MT), CacheLookup::Miss), "LRU gone");
        assert!(matches!(c.get((1, 1), MT), CacheLookup::Hit(_)));
        assert_eq!(c.stats().evictions, 1);
        assert!(c.used_bytes() <= c.budget_bytes());
    }

    #[test]
    fn oversized_entry_not_admitted() {
        let c = RecyclingCache::with_shards(100, 1);
        let evicted = c.insert((1, 1), table_of(1000), MT);
        assert_eq!(evicted, 0);
        assert!(c.is_empty());
        assert!(matches!(c.get((1, 1), MT), CacheLookup::Miss));
    }

    #[test]
    fn invalidate_file_drops_only_that_file() {
        let c = RecyclingCache::new(1 << 20);
        c.insert((1, 1), table_of(5), MT);
        c.insert((1, 2), table_of(5), MT);
        c.insert((2, 1), table_of(5), MT);
        assert_eq!(c.invalidate_file(1), 2);
        assert_eq!(c.len(), 1);
        assert!(matches!(c.get((2, 1), MT), CacheLookup::Hit(_)));
    }

    #[test]
    fn replace_same_key_updates_bytes() {
        let c = RecyclingCache::new(1 << 20);
        c.insert((1, 1), table_of(10), MT);
        let b1 = c.used_bytes();
        c.insert((1, 1), table_of(20), MT);
        assert_eq!(c.len(), 1);
        assert_eq!(c.used_bytes(), b1 * 2);
    }

    #[test]
    fn snapshot_reports_contents() {
        let c = RecyclingCache::new(1 << 20);
        c.insert((2, 7), table_of(3), MT);
        c.insert((1, 9), table_of(4), MT);
        let snap = c.snapshot();
        assert_eq!(snap.entries.len(), 2);
        assert_eq!(snap.entries[0].key, (1, 9), "sorted by key");
        assert_eq!(snap.entries[0].rows, 4);
        assert_eq!(snap.used_bytes, c.used_bytes());
        assert_eq!(snap.shard_occupancy.len(), c.num_shards());
        let (n, b): (usize, usize) = snap
            .shard_occupancy
            .iter()
            .fold((0, 0), |(n, b), &(sn, sb)| (n + sn, b + sb));
        assert_eq!(n, 2);
        assert_eq!(b, snap.used_bytes);
    }

    #[test]
    fn shard_budgets_sum_to_total() {
        for (budget, shards) in [(1usize << 20, 8usize), (1003, 7), (5, 8)] {
            let c = RecyclingCache::with_shards(budget, shards);
            let per_shard: usize = (0..shards)
                .map(|i| budget / shards + usize::from(i < budget % shards))
                .sum();
            assert_eq!(per_shard, budget);
            assert_eq!(c.budget_bytes(), budget);
            assert_eq!(c.num_shards(), shards);
        }
        // Zero shards is clamped, not a panic.
        assert_eq!(RecyclingCache::with_shards(100, 0).num_shards(), 1);
    }

    #[test]
    fn sharded_eviction_keeps_aggregate_within_budget() {
        // Insert far more than the budget holds; whatever survives must
        // respect the total budget, and every shard its slice.
        let c = RecyclingCache::with_shards(800, 4);
        for f in 0..10i64 {
            for s in 0..10i64 {
                c.insert((f, s), table_of(10), MT); // 80 bytes each
            }
        }
        assert!(c.used_bytes() <= c.budget_bytes());
        assert!(c.stats().evictions > 0);
        assert!(!c.is_empty(), "each shard retains its most recent entries");
    }

    #[test]
    fn concurrent_mixed_workload_is_consistent() {
        let c = RecyclingCache::new(1 << 20);
        std::thread::scope(|s| {
            for t in 0..4i64 {
                let c = &c;
                s.spawn(move || {
                    for i in 0..50i64 {
                        let key = (t, i % 8);
                        c.insert(key, table_of(4), MT);
                        assert!(matches!(c.get(key, MT), CacheLookup::Hit(_)));
                    }
                });
            }
        });
        // 4 threads × 8 distinct keys each; all resident (budget is ample).
        assert_eq!(c.len(), 32);
        let s = c.stats();
        assert_eq!(s.hits, 200, "every post-insert lookup hits");
        let snap = c.snapshot();
        assert_eq!(snap.entries.len(), 32);
        assert_eq!(snap.used_bytes, c.used_bytes());
    }
}
