//! The lazy-loading cache: intermediate result recycling (§3.3).
//!
//! "Materialization of the extracted and transformed data is simply caching
//! the result of a view definition … A least recently used (LRU) policy is
//! used for cache maintenance. … The cache makes use of required files'
//! last modified timestamp, and compares that with the admission timestamp
//! of that data to the cache."
//!
//! Entries are keyed per (file, record) — the unit the lazy extractor
//! fetches — and hold the record's transformed `D`-table rows. The cache is
//! byte-budgeted ("not larger than the size of system's main memory");
//! inserting past the budget evicts least-recently-used entries. Staleness
//! is detected by comparing the file's modification time now against the
//! one recorded at admission; a stale entry is dropped and re-extracted by
//! the caller (lazy refresh).

use lazyetl_mseed::Timestamp;
use lazyetl_store::Table;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Cache key: one mSEED record's extracted data.
pub type CacheKey = (i64, i64); // (file_id, seq_no)

/// Outcome of a cache lookup.
#[derive(Debug, Clone)]
pub enum CacheLookup {
    /// Fresh entry; use it.
    Hit(Arc<Table>),
    /// Entry existed but its file changed since admission; it was dropped.
    Stale,
    /// No entry.
    Miss,
}

#[derive(Debug)]
struct CacheEntry {
    table: Arc<Table>,
    bytes: usize,
    /// File modification time observed when this entry was admitted.
    file_mtime: Timestamp,
    /// Wall-clock-ish admission order (monotone tick), per the paper's
    /// admission timestamp.
    admitted_tick: u64,
    last_used_tick: u64,
}

/// Cumulative cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned fresh data.
    pub hits: u64,
    /// Lookups with no entry.
    pub misses: u64,
    /// Lookups that found a stale entry (counted also as a miss by most
    /// metrics; kept separate here).
    pub stale_drops: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
    /// Total bytes ever inserted.
    pub inserted_bytes: u64,
}

impl CacheStats {
    /// Hit rate over hits+misses+stale drops (0 when no lookups).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.stale_drops;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Summary of one resident entry (for the demo's cache browser).
#[derive(Debug, Clone, PartialEq)]
pub struct CacheEntrySummary {
    /// (file_id, seq_no).
    pub key: CacheKey,
    /// Entry size in bytes.
    pub bytes: usize,
    /// Rows held.
    pub rows: usize,
    /// File mtime at admission.
    pub file_mtime: Timestamp,
}

/// Snapshot of cache contents and occupancy (demo item 7).
#[derive(Debug, Clone)]
pub struct CacheSnapshot {
    /// Resident entries ordered by key.
    pub entries: Vec<CacheEntrySummary>,
    /// Bytes in use.
    pub used_bytes: usize,
    /// Byte budget.
    pub budget_bytes: usize,
    /// Statistics so far.
    pub stats: CacheStats,
}

/// Byte-budgeted LRU cache of extracted record data.
#[derive(Debug)]
pub struct RecyclingCache {
    budget_bytes: usize,
    entries: HashMap<CacheKey, CacheEntry>,
    /// last_used_tick -> key index for O(log n) LRU eviction.
    lru: BTreeMap<u64, CacheKey>,
    tick: u64,
    used_bytes: usize,
    stats: CacheStats,
}

impl RecyclingCache {
    /// A cache with the given byte budget.
    pub fn new(budget_bytes: usize) -> RecyclingCache {
        RecyclingCache {
            budget_bytes,
            entries: HashMap::new(),
            lru: BTreeMap::new(),
            tick: 0,
            used_bytes: 0,
            stats: CacheStats::default(),
        }
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Look up one record's data, checking freshness against the file's
    /// current modification time.
    pub fn get(&mut self, key: CacheKey, current_file_mtime: Timestamp) -> CacheLookup {
        let tick = self.next_tick();
        match self.entries.get_mut(&key) {
            None => {
                self.stats.misses += 1;
                CacheLookup::Miss
            }
            Some(entry) => {
                if entry.file_mtime != current_file_mtime {
                    // Outdated: drop; caller re-extracts from the updated
                    // file (lazy refresh, §3.3).
                    self.stats.stale_drops += 1;
                    let old = self.entries.remove(&key).expect("entry just seen");
                    self.lru.remove(&old.last_used_tick);
                    self.used_bytes -= old.bytes;
                    CacheLookup::Stale
                } else {
                    self.stats.hits += 1;
                    self.lru.remove(&entry.last_used_tick);
                    entry.last_used_tick = tick;
                    self.lru.insert(tick, key);
                    CacheLookup::Hit(entry.table.clone())
                }
            }
        }
    }

    /// Insert (or replace) one record's extracted data.
    ///
    /// Returns the number of entries evicted to make room. Entries larger
    /// than the whole budget are not admitted.
    pub fn insert(&mut self, key: CacheKey, table: Arc<Table>, file_mtime: Timestamp) -> usize {
        let bytes = table.byte_size();
        // Replace any existing entry first: even if the new value turns out
        // to be inadmissible, the old value is superseded and must not be
        // served afterwards.
        if let Some(old) = self.entries.remove(&key) {
            self.lru.remove(&old.last_used_tick);
            self.used_bytes -= old.bytes;
        }
        if bytes > self.budget_bytes {
            return 0; // would evict everything and still not fit
        }
        let mut evicted = 0usize;
        while self.used_bytes + bytes > self.budget_bytes {
            let (&oldest_tick, &oldest_key) =
                self.lru.iter().next().expect("over budget implies entries");
            let old = self
                .entries
                .remove(&oldest_key)
                .expect("lru index consistent");
            self.lru.remove(&oldest_tick);
            self.used_bytes -= old.bytes;
            self.stats.evictions += 1;
            evicted += 1;
        }
        let tick = self.next_tick();
        self.entries.insert(
            key,
            CacheEntry {
                table,
                bytes,
                file_mtime,
                admitted_tick: tick,
                last_used_tick: tick,
            },
        );
        self.lru.insert(tick, key);
        self.used_bytes += bytes;
        self.stats.inserted_bytes += bytes as u64;
        evicted
    }

    /// Drop every entry belonging to a file (metadata refresh path).
    pub fn invalidate_file(&mut self, file_id: i64) -> usize {
        let keys: Vec<CacheKey> = self
            .entries
            .keys()
            .filter(|(f, _)| *f == file_id)
            .copied()
            .collect();
        for k in &keys {
            if let Some(old) = self.entries.remove(k) {
                self.lru.remove(&old.last_used_tick);
                self.used_bytes -= old.bytes;
            }
        }
        keys.len()
    }

    /// Remove everything.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.lru.clear();
        self.used_bytes = 0;
    }

    /// Bytes currently resident.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Configured byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Admission tick of an entry (test hook for LRU behaviour).
    pub fn admitted_tick(&self, key: &CacheKey) -> Option<u64> {
        self.entries.get(key).map(|e| e.admitted_tick)
    }

    /// Snapshot of contents for the demo's cache browser.
    pub fn snapshot(&self) -> CacheSnapshot {
        let mut entries: Vec<CacheEntrySummary> = self
            .entries
            .iter()
            .map(|(k, e)| CacheEntrySummary {
                key: *k,
                bytes: e.bytes,
                rows: e.table.num_rows(),
                file_mtime: e.file_mtime,
            })
            .collect();
        entries.sort_by_key(|e| e.key);
        CacheSnapshot {
            entries,
            used_bytes: self.used_bytes,
            budget_bytes: self.budget_bytes,
            stats: self.stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazyetl_store::{DataType, Field, Schema, Value};

    fn table_of(rows: usize) -> Arc<Table> {
        let schema = Schema::new(vec![Field::new("v", DataType::Float64)]).unwrap();
        let mut t = Table::empty(schema);
        for i in 0..rows {
            t.append_row(vec![Value::Float64(i as f64)]).unwrap();
        }
        Arc::new(t)
    }

    const MT: Timestamp = Timestamp(1000);

    #[test]
    fn hit_miss_lifecycle() {
        let mut c = RecyclingCache::new(1 << 20);
        assert!(matches!(c.get((1, 1), MT), CacheLookup::Miss));
        c.insert((1, 1), table_of(10), MT);
        match c.get((1, 1), MT) {
            CacheLookup::Hit(t) => assert_eq!(t.num_rows(), 10),
            other => panic!("expected hit, got {other:?}"),
        }
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert!(s.hit_rate() > 0.49 && s.hit_rate() < 0.51);
    }

    #[test]
    fn staleness_detected_by_mtime() {
        let mut c = RecyclingCache::new(1 << 20);
        c.insert((1, 1), table_of(10), MT);
        // File was touched since admission.
        assert!(matches!(
            c.get((1, 1), Timestamp(2000)),
            CacheLookup::Stale
        ));
        // The stale entry is gone.
        assert!(matches!(c.get((1, 1), Timestamp(2000)), CacheLookup::Miss));
        assert_eq!(c.stats().stale_drops, 1);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn lru_eviction_under_budget_pressure() {
        // Each 10-row float table is 80 bytes.
        let mut c = RecyclingCache::new(250);
        c.insert((1, 1), table_of(10), MT);
        c.insert((1, 2), table_of(10), MT);
        c.insert((1, 3), table_of(10), MT);
        assert_eq!(c.len(), 3);
        // Touch (1,1) so (1,2) becomes the LRU victim.
        assert!(matches!(c.get((1, 1), MT), CacheLookup::Hit(_)));
        let evicted = c.insert((1, 4), table_of(10), MT);
        assert_eq!(evicted, 1);
        assert!(matches!(c.get((1, 2), MT), CacheLookup::Miss), "LRU gone");
        assert!(matches!(c.get((1, 1), MT), CacheLookup::Hit(_)));
        assert_eq!(c.stats().evictions, 1);
        assert!(c.used_bytes() <= c.budget_bytes());
    }

    #[test]
    fn oversized_entry_not_admitted() {
        let mut c = RecyclingCache::new(100);
        let evicted = c.insert((1, 1), table_of(1000), MT);
        assert_eq!(evicted, 0);
        assert!(c.is_empty());
        assert!(matches!(c.get((1, 1), MT), CacheLookup::Miss));
    }

    #[test]
    fn invalidate_file_drops_only_that_file() {
        let mut c = RecyclingCache::new(1 << 20);
        c.insert((1, 1), table_of(5), MT);
        c.insert((1, 2), table_of(5), MT);
        c.insert((2, 1), table_of(5), MT);
        assert_eq!(c.invalidate_file(1), 2);
        assert_eq!(c.len(), 1);
        assert!(matches!(c.get((2, 1), MT), CacheLookup::Hit(_)));
    }

    #[test]
    fn replace_same_key_updates_bytes() {
        let mut c = RecyclingCache::new(1 << 20);
        c.insert((1, 1), table_of(10), MT);
        let b1 = c.used_bytes();
        c.insert((1, 1), table_of(20), MT);
        assert_eq!(c.len(), 1);
        assert_eq!(c.used_bytes(), b1 * 2);
    }

    #[test]
    fn snapshot_reports_contents() {
        let mut c = RecyclingCache::new(1 << 20);
        c.insert((2, 7), table_of(3), MT);
        c.insert((1, 9), table_of(4), MT);
        let snap = c.snapshot();
        assert_eq!(snap.entries.len(), 2);
        assert_eq!(snap.entries[0].key, (1, 9), "sorted by key");
        assert_eq!(snap.entries[0].rows, 4);
        assert_eq!(snap.used_bytes, c.used_bytes());
    }
}
