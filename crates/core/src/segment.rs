//! Cache segment files: the on-disk form of one record-cache shard.
//!
//! A lazy warehouse's real asset after a session is the **extracted data
//! sitting in its recycling cache** — metadata reloads in milliseconds,
//! extraction does not. The durable save path snapshots each cache shard
//! into one *segment file* so a reopened warehouse starts warm instead of
//! re-paying extraction (the amortization argument of §3.3, extended
//! across process lifetimes).
//!
//! Format (little-endian), wrapped by the store layer's integrity footer
//! ([`lazyetl_store::persist::append_footer`]):
//!
//! ```text
//! magic "LZSG" | u16 version=1 | u32 n_entries
//! per entry: i64 file_id | i64 seq_no | i64 mtime_us
//!            | u64 payload_len | payload (LZTB table bytes)
//! footer:    u64 payload_len | u64 fnv1a-64 | "LZSF"
//! ```
//!
//! Entries are written in shard LRU order (oldest first) so rehydration
//! reproduces the shard's eviction order. Readers verify the footer over
//! the whole body before parsing anything, so torn or bit-flipped
//! segments are rejected wholesale — a rejected segment merely costs
//! re-extraction, never wrong answers.

use crate::cache::CacheKey;
use crate::error::{EtlError, Result};
use lazyetl_mseed::Timestamp;
use lazyetl_store::persist::{append_footer, split_footer, write_file_atomic, write_table};
use lazyetl_store::Table;
use std::path::Path;
use std::sync::Arc;

const SEGMENT_MAGIC: &[u8; 4] = b"LZSG";
const SEGMENT_VERSION: u16 = 1;

/// One cache entry as stored in a segment.
#[derive(Debug, Clone)]
pub struct SegmentEntry {
    /// Cache key `(file_id, seq_no)`.
    pub key: CacheKey,
    /// File modification time observed when the entry was admitted.
    pub mtime: Timestamp,
    /// The record's extracted `D` rows.
    pub table: Arc<Table>,
}

/// What writing a segment produced (recorded in manifest and journal).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentInfo {
    /// Entries written.
    pub entries: usize,
    /// File size in bytes (footer included).
    pub bytes: u64,
    /// FNV-1a 64 checksum of the body (what the footer carries).
    pub checksum: u64,
}

fn corrupt(msg: impl Into<String>) -> EtlError {
    EtlError::Store(lazyetl_store::StoreError::Corrupt(msg.into()))
}

/// Serialize entries into a footered segment byte buffer.
pub fn encode_segment(entries: &[SegmentEntry]) -> Result<Vec<u8>> {
    let mut buf = Vec::new();
    buf.extend_from_slice(SEGMENT_MAGIC);
    buf.extend_from_slice(&SEGMENT_VERSION.to_le_bytes());
    buf.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for e in entries {
        buf.extend_from_slice(&e.key.0.to_le_bytes());
        buf.extend_from_slice(&e.key.1.to_le_bytes());
        buf.extend_from_slice(&e.mtime.micros().to_le_bytes());
        let mut payload = Vec::new();
        write_table(&e.table, &mut payload)?;
        buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        buf.extend_from_slice(&payload);
    }
    append_footer(&mut buf);
    Ok(buf)
}

/// Parse a footered segment buffer, verifying the checksum first.
pub fn decode_segment(bytes: &[u8]) -> Result<Vec<SegmentEntry>> {
    let (body, _) = split_footer(bytes)?;
    if body.len() < 10 || &body[..4] != SEGMENT_MAGIC {
        return Err(corrupt("bad segment magic"));
    }
    let version = u16::from_le_bytes(body[4..6].try_into().unwrap());
    if version != SEGMENT_VERSION {
        return Err(corrupt(format!("unsupported segment version {version}")));
    }
    let n = u32::from_le_bytes(body[6..10].try_into().unwrap()) as usize;
    let mut at = 10usize;
    let mut out = Vec::with_capacity(n.min(1 << 16));
    for i in 0..n {
        if body.len() < at + 32 {
            return Err(corrupt(format!("segment entry {i} header truncated")));
        }
        let file_id = i64::from_le_bytes(body[at..at + 8].try_into().unwrap());
        let seq_no = i64::from_le_bytes(body[at + 8..at + 16].try_into().unwrap());
        let mtime = i64::from_le_bytes(body[at + 16..at + 24].try_into().unwrap());
        let len = u64::from_le_bytes(body[at + 24..at + 32].try_into().unwrap()) as usize;
        at += 32;
        let end = at
            .checked_add(len)
            .filter(|&e| e <= body.len())
            .ok_or_else(|| corrupt(format!("segment entry {i} payload truncated")))?;
        let table = lazyetl_store::persist::read_table(&mut &body[at..end])?;
        at = end;
        out.push(SegmentEntry {
            key: (file_id, seq_no),
            mtime: Timestamp(mtime),
            table: Arc::new(table),
        });
    }
    if at != body.len() {
        return Err(corrupt("trailing garbage after last segment entry"));
    }
    Ok(out)
}

/// Write a segment atomically (temp file + fsync + rename).
pub fn write_segment_atomic(path: &Path, entries: &[SegmentEntry]) -> Result<SegmentInfo> {
    let buf = encode_segment(entries)?;
    let info = segment_info(entries.len(), &buf);
    write_file_atomic(path, &buf).map_err(EtlError::Store)?;
    Ok(info)
}

/// The [`SegmentInfo`] of an encoded segment buffer. Reads the checksum
/// already embedded by the encoder instead of re-hashing the body.
pub fn segment_info(entries: usize, encoded: &[u8]) -> SegmentInfo {
    SegmentInfo {
        entries,
        bytes: encoded.len() as u64,
        checksum: lazyetl_store::persist::embedded_footer_checksum(encoded)
            .expect("encoded segments always carry a footer"),
    }
}

/// Read and verify a segment file.
pub fn read_segment(path: &Path) -> Result<Vec<SegmentEntry>> {
    let bytes = std::fs::read(path)
        .map_err(|e| EtlError::Internal(format!("cannot read segment {}: {e}", path.display())))?;
    decode_segment(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazyetl_store::{DataType, Field, Schema, Value};

    fn table_of(rows: usize, base: f64) -> Arc<Table> {
        let schema = Schema::new(vec![
            Field::new("v", DataType::Float64),
            Field::new("t", DataType::Timestamp),
        ])
        .unwrap();
        let mut t = Table::empty(schema);
        for i in 0..rows {
            t.append_row(vec![
                Value::Float64(base + i as f64),
                Value::Timestamp(1_263_000_000_000_000 + i as i64),
            ])
            .unwrap();
        }
        Arc::new(t)
    }

    fn sample_entries() -> Vec<SegmentEntry> {
        vec![
            SegmentEntry {
                key: (1, 7),
                mtime: Timestamp(1000),
                table: table_of(5, 0.5),
            },
            SegmentEntry {
                key: (3, 2),
                mtime: Timestamp(2000),
                table: table_of(12, -4.0),
            },
        ]
    }

    #[test]
    fn roundtrip_preserves_entries_and_order() {
        let entries = sample_entries();
        let buf = encode_segment(&entries).unwrap();
        let back = decode_segment(&buf).unwrap();
        assert_eq!(back.len(), 2);
        for (a, b) in entries.iter().zip(&back) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.mtime, b.mtime);
            assert_eq!(*a.table, *b.table);
        }
    }

    #[test]
    fn empty_segment_roundtrips() {
        let buf = encode_segment(&[]).unwrap();
        assert!(decode_segment(&buf).unwrap().is_empty());
    }

    #[test]
    fn torn_and_flipped_segments_are_rejected() {
        let buf = encode_segment(&sample_entries()).unwrap();
        // Any truncation fails the footer check.
        for cut in [1usize, 10, buf.len() / 2] {
            assert!(decode_segment(&buf[..buf.len() - cut]).is_err());
        }
        // Any bit flip fails the checksum.
        for at in [0usize, 6, buf.len() / 2, buf.len() - 5] {
            let mut bad = buf.clone();
            bad[at] ^= 0x20;
            assert!(decode_segment(&bad).is_err(), "flip at {at} undetected");
        }
    }

    #[test]
    fn atomic_write_and_read_back() {
        let dir = std::env::temp_dir().join(format!("lazyetl_seg_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let path = dir.join("shard_000.lzsg");
        let entries = sample_entries();
        let info = write_segment_atomic(&path, &entries).unwrap();
        assert_eq!(info.entries, 2);
        assert_eq!(info.bytes, std::fs::metadata(&path).unwrap().len());
        let back = read_segment(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[1].table.num_rows(), 12);
        std::fs::remove_dir_all(&dir).ok();
    }
}
