//! Seismic analysis tasks used by the demonstration.
//!
//! §4: "Seismic data analysis contains tasks that help hunt for interesting
//! seismic events. Such tasks include finding extreme values over Short
//! Term Averaging (STA, typically over an interval of 2 seconds) and Long
//! Term Averaging (LTA, typically over an interval of 15 seconds),
//! retrieving the data of an entire record for visual analysis, etc."
//!
//! The classic STA/LTA trigger computes the ratio of a short-term average
//! of signal energy to a long-term average; a ratio above a threshold marks
//! an event onset.

use crate::error::{EtlError, Result};
use crate::warehouse::{QueryReport, Warehouse};
use lazyetl_mseed::Timestamp;

/// STA/LTA detector parameters. Defaults follow the paper's intervals.
#[derive(Debug, Clone)]
pub struct StaLtaConfig {
    /// Short-term window in seconds (paper: 2 s).
    pub sta_secs: f64,
    /// Long-term window in seconds (paper: 15 s).
    pub lta_secs: f64,
    /// Trigger threshold on STA/LTA.
    pub threshold: f64,
    /// Minimum separation between reported events, seconds.
    pub min_separation_secs: f64,
}

impl Default for StaLtaConfig {
    fn default() -> Self {
        StaLtaConfig {
            sta_secs: 2.0,
            lta_secs: 15.0,
            threshold: 4.0,
            min_separation_secs: 30.0,
        }
    }
}

/// One detected event.
#[derive(Debug, Clone, PartialEq)]
pub struct Detection {
    /// Trigger time.
    pub time: Timestamp,
    /// Peak STA/LTA ratio at the trigger.
    pub ratio: f64,
}

/// Run the STA/LTA trigger over an evenly sampled signal.
///
/// `samples` are (time µs, value) pairs in time order; `sample_rate` in Hz.
/// Uses energy (squared amplitude) averaging with prefix sums; a detection
/// is reported at each local ratio maximum above the threshold, separated
/// by at least `min_separation_secs`.
pub fn sta_lta(
    samples: &[(i64, f64)],
    sample_rate: f64,
    cfg: &StaLtaConfig,
) -> Result<Vec<Detection>> {
    if sample_rate <= 0.0 {
        return Err(EtlError::Internal("sample rate must be positive".into()));
    }
    let sta_n = (cfg.sta_secs * sample_rate).round().max(1.0) as usize;
    let lta_n = (cfg.lta_secs * sample_rate).round().max(1.0) as usize;
    if samples.len() < lta_n + sta_n {
        return Ok(Vec::new());
    }
    // Prefix sums of energy.
    let mut prefix = Vec::with_capacity(samples.len() + 1);
    prefix.push(0.0f64);
    for &(_, v) in samples {
        prefix.push(prefix.last().unwrap() + v * v);
    }
    let window_sum = |end: usize, n: usize| -> f64 {
        // inclusive window (end-n, end]; caller guarantees end >= n
        prefix[end] - prefix[end - n]
    };
    let min_sep_us = (cfg.min_separation_secs * 1e6) as i64;
    let mut detections: Vec<Detection> = Vec::new();
    // Track the running maximum within a triggered stretch so the reported
    // time is the ratio peak, not the first threshold crossing.
    let mut in_trigger = false;
    let mut best: Option<Detection> = None;
    for i in (lta_n + sta_n)..=samples.len() {
        let sta = window_sum(i, sta_n) / sta_n as f64;
        // LTA window precedes the STA window so the event itself does not
        // inflate the noise estimate.
        let lta = window_sum(i - sta_n, lta_n) / lta_n as f64;
        let ratio = if lta > 1e-12 { sta / lta } else { 0.0 };
        let t = samples[i - 1].0;
        if ratio >= cfg.threshold {
            in_trigger = true;
            if best.as_ref().is_none_or(|b| ratio > b.ratio) {
                best = Some(Detection {
                    time: Timestamp(t),
                    ratio,
                });
            }
        } else if in_trigger {
            in_trigger = false;
            if let Some(d) = best.take() {
                let far_enough = detections
                    .last()
                    .is_none_or(|prev| d.time.0 - prev.time.0 >= min_sep_us);
                if far_enough {
                    detections.push(d);
                }
            }
        }
    }
    if let Some(d) = best.take() {
        let far_enough = detections
            .last()
            .is_none_or(|prev| d.time.0 - prev.time.0 >= min_sep_us);
        if far_enough {
            detections.push(d);
        }
    }
    Ok(detections)
}

/// Run the *recursive* STA/LTA trigger (Earle & Shearer style): the two
/// averages are exponential moving averages instead of sliding windows,
/// giving O(1) state per sample — the streaming variant used by real-time
/// pickers.
///
/// Same inputs and semantics as [`sta_lta`]: detections are reported at
/// the peak ratio of each triggered stretch, separated by at least
/// `min_separation_secs`; the first `lta_secs` of signal are warm-up and
/// never trigger. The de-trigger threshold is 60% of the trigger
/// threshold, the usual hysteresis that keeps one event from being
/// reported as several.
pub fn recursive_sta_lta(
    samples: &[(i64, f64)],
    sample_rate: f64,
    cfg: &StaLtaConfig,
) -> Result<Vec<Detection>> {
    if sample_rate <= 0.0 {
        return Err(EtlError::Internal("sample rate must be positive".into()));
    }
    let a_sta = 1.0 / (cfg.sta_secs * sample_rate).max(1.0);
    let a_lta = 1.0 / (cfg.lta_secs * sample_rate).max(1.0);
    let warmup = (cfg.lta_secs * sample_rate).round() as usize;
    if samples.len() <= warmup {
        return Ok(Vec::new());
    }
    let off_threshold = cfg.threshold * 0.6;
    let min_sep_us = (cfg.min_separation_secs * 1e6) as i64;
    // Seed both averages with the first sample's energy to avoid a zero
    // denominator at the start.
    let e0 = samples[0].1 * samples[0].1;
    let (mut sta, mut lta) = (e0, e0.max(1e-12));
    let mut detections: Vec<Detection> = Vec::new();
    let mut in_trigger = false;
    let mut best: Option<Detection> = None;
    let flush = |best: &mut Option<Detection>, detections: &mut Vec<Detection>| {
        if let Some(d) = best.take() {
            let far_enough = detections
                .last()
                .is_none_or(|prev| d.time.0 - prev.time.0 >= min_sep_us);
            if far_enough {
                detections.push(d);
            }
        }
    };
    for (i, &(t, v)) in samples.iter().enumerate() {
        let energy = v * v;
        sta += a_sta * (energy - sta);
        // Freeze the noise estimate while triggered so the event does not
        // lift its own detection floor.
        if !in_trigger {
            lta += a_lta * (energy - lta);
        }
        if i < warmup {
            continue;
        }
        let ratio = if lta > 1e-12 { sta / lta } else { 0.0 };
        if ratio >= cfg.threshold || (in_trigger && ratio >= off_threshold) {
            in_trigger = true;
            if best.as_ref().is_none_or(|b| ratio > b.ratio) {
                best = Some(Detection {
                    time: Timestamp(t),
                    ratio,
                });
            }
        } else if in_trigger {
            in_trigger = false;
            flush(&mut best, &mut detections);
        }
    }
    flush(&mut best, &mut detections);
    Ok(detections)
}

/// Z-detector parameters.
#[derive(Debug, Clone)]
pub struct ZDetectConfig {
    /// Energy window in seconds.
    pub window_secs: f64,
    /// Trigger threshold on the z-score of windowed energy.
    pub threshold: f64,
    /// Minimum separation between reported events, seconds.
    pub min_separation_secs: f64,
}

impl Default for ZDetectConfig {
    fn default() -> Self {
        ZDetectConfig {
            window_secs: 2.0,
            threshold: 6.0,
            min_separation_secs: 30.0,
        }
    }
}

/// The z-detector: windowed signal energy standardized against the whole
/// trace's energy distribution; windows whose z-score exceed the threshold
/// trigger. Complements STA/LTA for swarms, where elevated background
/// energy keeps the STA/LTA ratio low. The reported [`Detection::ratio`]
/// is the peak z-score.
pub fn z_detect(
    samples: &[(i64, f64)],
    sample_rate: f64,
    cfg: &ZDetectConfig,
) -> Result<Vec<Detection>> {
    if sample_rate <= 0.0 {
        return Err(EtlError::Internal("sample rate must be positive".into()));
    }
    let n = (cfg.window_secs * sample_rate).round().max(1.0) as usize;
    if samples.len() < n * 2 {
        return Ok(Vec::new());
    }
    let mut prefix = Vec::with_capacity(samples.len() + 1);
    prefix.push(0.0f64);
    for &(_, v) in samples {
        prefix.push(prefix.last().unwrap() + v * v);
    }
    // Windowed energies and their global mean/stddev.
    let count = samples.len() - n + 1;
    let energy = |i: usize| (prefix[i + n] - prefix[i]) / n as f64;
    let mean = (0..count).map(energy).sum::<f64>() / count as f64;
    let var = (0..count).map(|i| (energy(i) - mean).powi(2)).sum::<f64>() / count as f64;
    let std = var.sqrt().max(1e-12);
    let min_sep_us = (cfg.min_separation_secs * 1e6) as i64;
    let mut detections: Vec<Detection> = Vec::new();
    let mut in_trigger = false;
    let mut best: Option<Detection> = None;
    for i in 0..count {
        let z = (energy(i) - mean) / std;
        let t = samples[i + n - 1].0;
        if z >= cfg.threshold {
            in_trigger = true;
            if best.as_ref().is_none_or(|b| z > b.ratio) {
                best = Some(Detection {
                    time: Timestamp(t),
                    ratio: z,
                });
            }
        } else if in_trigger {
            in_trigger = false;
            if let Some(d) = best.take() {
                let far_enough = detections
                    .last()
                    .is_none_or(|prev| d.time.0 - prev.time.0 >= min_sep_us);
                if far_enough {
                    detections.push(d);
                }
            }
        }
    }
    if let Some(d) = best.take() {
        let far_enough = detections
            .last()
            .is_none_or(|prev| d.time.0 - prev.time.0 >= min_sep_us);
        if far_enough {
            detections.push(d);
        }
    }
    Ok(detections)
}

/// One station's detections, input to [`coincidence_trigger`].
#[derive(Debug, Clone)]
pub struct StationDetections {
    /// Station code (e.g. `"HGN"`).
    pub station: String,
    /// Detections on that station, any order.
    pub detections: Vec<Detection>,
}

/// A network-level event: several stations triggering together.
#[derive(Debug, Clone, PartialEq)]
pub struct CoincidenceEvent {
    /// Earliest trigger time in the cluster.
    pub time: Timestamp,
    /// Distinct stations in the cluster, sorted.
    pub stations: Vec<String>,
    /// Mean peak ratio across the cluster's detections.
    pub mean_ratio: f64,
}

/// Network coincidence triggering: cluster per-station detections that
/// fall within `window_secs` of each other and keep clusters seen by at
/// least `min_stations` distinct stations. Single-station false triggers
/// (traffic, calibration pulses) are discarded this way before an analyst
/// ever looks at the catalog.
pub fn coincidence_trigger(
    per_station: &[StationDetections],
    window_secs: f64,
    min_stations: usize,
) -> Vec<CoincidenceEvent> {
    let mut all: Vec<(i64, &str, f64)> = per_station
        .iter()
        .flat_map(|sd| {
            sd.detections
                .iter()
                .map(move |d| (d.time.0, sd.station.as_str(), d.ratio))
        })
        .collect();
    all.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(b.1)));
    let window_us = (window_secs * 1e6) as i64;
    let mut events = Vec::new();
    let mut i = 0usize;
    while i < all.len() {
        // Grow the cluster anchored at all[i].
        let start = all[i].0;
        let mut j = i + 1;
        while j < all.len() && all[j].0 - start <= window_us {
            j += 1;
        }
        let cluster = &all[i..j];
        let mut stations: Vec<String> = cluster.iter().map(|&(_, s, _)| s.to_string()).collect();
        stations.sort();
        stations.dedup();
        if stations.len() >= min_stations {
            let mean_ratio = cluster.iter().map(|&(_, _, r)| r).sum::<f64>() / cluster.len() as f64;
            events.push(CoincidenceEvent {
                time: Timestamp(start),
                stations,
                mean_ratio,
            });
            i = j; // consume the cluster
        } else {
            i += 1; // a later anchor may still form a cluster
        }
    }
    events
}

/// Result of an event hunt through the warehouse.
#[derive(Debug, Clone)]
pub struct HuntResult {
    /// Detections in time order.
    pub detections: Vec<Detection>,
    /// Number of samples analysed.
    pub samples: usize,
    /// The query diagnostics of the sample-fetch query.
    pub report: QueryReport,
}

/// Hunt for events on one stream within a time window, end to end through
/// the warehouse SQL interface (the demo's workload).
pub fn hunt_events(
    warehouse: &Warehouse,
    station: &str,
    channel: &str,
    start_iso: &str,
    end_iso: &str,
    cfg: &StaLtaConfig,
) -> Result<HuntResult> {
    let sql = format!(
        "SELECT D.sample_time, D.sample_value \
         FROM mseed.dataview \
         WHERE F.station = '{station}' AND F.channel = '{channel}' \
         AND D.sample_time >= '{start_iso}' AND D.sample_time < '{end_iso}' \
         ORDER BY D.sample_time"
    );
    let out = warehouse.query(&sql)?;
    let t = &out.table;
    let mut samples = Vec::with_capacity(t.num_rows());
    let time_col = t
        .column("sample_time")
        .ok_or_else(|| EtlError::Internal("missing sample_time column".into()))?;
    let val_col = t
        .column("sample_value")
        .ok_or_else(|| EtlError::Internal("missing sample_value column".into()))?;
    for i in 0..t.num_rows() {
        let ts = time_col.get(i)?.as_i64().unwrap_or(0);
        let v = val_col.get(i)?.as_f64().unwrap_or(0.0);
        samples.push((ts, v));
    }
    // Infer the sample rate from the median spacing.
    let rate = infer_rate(&samples).unwrap_or(40.0);
    let detections = sta_lta(&samples, rate, cfg)?;
    Ok(HuntResult {
        detections,
        samples: samples.len(),
        report: out.report,
    })
}

/// One record's waveform fetched for visual analysis (§4: "retrieving the
/// data of an entire record for visual analysis").
#[derive(Debug, Clone)]
pub struct RecordWaveform {
    /// Owning file id.
    pub file_id: i64,
    /// Record sequence number.
    pub seq_no: i64,
    /// (time µs, value) points in time order.
    pub samples: Vec<(i64, f64)>,
    /// Diagnostics of the fetch query.
    pub report: QueryReport,
}

/// Fetch every sample of one record through the SQL surface (lazy
/// extraction fetches exactly this record; eager reads it from `D`).
pub fn fetch_record_waveform(
    warehouse: &Warehouse,
    file_id: i64,
    seq_no: i64,
) -> Result<RecordWaveform> {
    let sql = format!(
        "SELECT D.sample_time, D.sample_value FROM mseed.dataview \
         WHERE R.file_id = {file_id} AND R.seq_no = {seq_no} \
         ORDER BY D.sample_time"
    );
    let out = warehouse.query(&sql)?;
    let t = &out.table;
    let time_col = t
        .column("sample_time")
        .ok_or_else(|| EtlError::Internal("missing sample_time".into()))?;
    let val_col = t
        .column("sample_value")
        .ok_or_else(|| EtlError::Internal("missing sample_value".into()))?;
    let mut samples = Vec::with_capacity(t.num_rows());
    for i in 0..t.num_rows() {
        samples.push((
            time_col.get(i)?.as_i64().unwrap_or(0),
            val_col.get(i)?.as_f64().unwrap_or(0.0),
        ));
    }
    Ok(RecordWaveform {
        file_id,
        seq_no,
        samples,
        report: out.report,
    })
}

/// Render a waveform as a fixed-size ASCII plot (for terminal browsing).
///
/// Bins samples into `width` columns; each column shows the min..max
/// envelope over `height` character rows.
pub fn waveform_ascii(samples: &[(i64, f64)], width: usize, height: usize) -> String {
    if samples.is_empty() || width == 0 || height == 0 {
        return String::from("(no samples)\n");
    }
    let (vmin, vmax) = samples
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &(_, v)| {
            (lo.min(v), hi.max(v))
        });
    let span = (vmax - vmin).max(1e-12);
    let per_col = samples.len().div_ceil(width);
    let mut cols: Vec<(usize, usize)> = Vec::with_capacity(width);
    for chunk in samples.chunks(per_col) {
        let (lo, hi) = chunk
            .iter()
            .fold((f64::MAX, f64::MIN), |(lo, hi), &(_, v)| {
                (lo.min(v), hi.max(v))
            });
        let to_row = |v: f64| -> usize {
            // Row 0 is the top of the plot.
            let frac = (v - vmin) / span;
            ((1.0 - frac) * (height - 1) as f64).round() as usize
        };
        cols.push((to_row(hi), to_row(lo)));
    }
    let mut out = String::new();
    for row in 0..height {
        for &(top, bottom) in &cols {
            out.push(if row >= top && row <= bottom {
                '█'
            } else {
                ' '
            });
        }
        out.push('\n');
    }
    out.push_str(&format!(
        "min {vmin:.1}  max {vmax:.1}  {} samples\n",
        samples.len()
    ));
    out
}

/// Infer sample rate from consecutive time deltas (robust to record gaps).
pub fn infer_rate(samples: &[(i64, f64)]) -> Option<f64> {
    if samples.len() < 2 {
        return None;
    }
    let mut deltas: Vec<i64> = samples
        .windows(2)
        .map(|w| w[1].0 - w[0].0)
        .filter(|&d| d > 0)
        .collect();
    if deltas.is_empty() {
        return None;
    }
    deltas.sort_unstable();
    let median = deltas[deltas.len() / 2];
    Some(1e6 / median as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a noisy signal with an injected burst at a known index.
    fn signal_with_event(n: usize, rate: f64, event_at: usize) -> Vec<(i64, f64)> {
        let period = (1e6 / rate) as i64;
        (0..n)
            .map(|i| {
                let noise = ((i.wrapping_mul(2_654_435_761)) % 1000) as f64 / 500.0 - 1.0; // deterministic pseudo-noise
                let mut v = noise * 10.0;
                if i >= event_at {
                    let t = (i - event_at) as f64 / rate;
                    v += 400.0 * (-t / 3.0).exp() * (2.0 * std::f64::consts::PI * 4.0 * t).sin();
                }
                (i as i64 * period, v)
            })
            .collect()
    }

    #[test]
    fn detects_injected_event() {
        let rate = 40.0;
        let samples = signal_with_event(4000, rate, 2500);
        let dets = sta_lta(&samples, rate, &StaLtaConfig::default()).unwrap();
        assert_eq!(dets.len(), 1, "exactly one event: {dets:?}");
        let event_time_us = 2500.0 * 1e6 / rate;
        let diff = (dets[0].time.0 as f64 - event_time_us).abs();
        assert!(diff < 3e6, "detection within 3 s of onset, off by {diff}");
        assert!(dets[0].ratio >= 4.0);
    }

    #[test]
    fn quiet_signal_triggers_nothing() {
        let rate = 40.0;
        let samples = signal_with_event(4000, rate, usize::MAX);
        let dets = sta_lta(&samples, rate, &StaLtaConfig::default()).unwrap();
        assert!(dets.is_empty(), "no events in noise: {dets:?}");
    }

    #[test]
    fn short_signal_yields_nothing() {
        let samples = signal_with_event(100, 40.0, 50);
        let dets = sta_lta(&samples, 40.0, &StaLtaConfig::default()).unwrap();
        assert!(dets.is_empty());
    }

    #[test]
    fn min_separation_suppresses_duplicates() {
        let rate = 40.0;
        let mut samples = signal_with_event(4000, rate, 2000);
        // Second burst only 5 s later.
        let period = (1e6 / rate) as i64;
        for (i, sample) in samples.iter_mut().enumerate().take(4000).skip(2200) {
            let t = (i - 2200) as f64 / rate;
            sample.1 += 500.0 * (-t / 3.0).exp() * (2.0 * std::f64::consts::PI * 5.0 * t).sin();
        }
        let cfg = StaLtaConfig {
            min_separation_secs: 60.0,
            ..Default::default()
        };
        let dets = sta_lta(&samples, rate, &cfg).unwrap();
        assert_eq!(dets.len(), 1, "{dets:?}");
        let _ = period;
    }

    #[test]
    fn rate_inference() {
        let samples: Vec<(i64, f64)> = (0..100).map(|i| (i * 25_000, 0.0)).collect();
        let rate = infer_rate(&samples).unwrap();
        assert!((rate - 40.0).abs() < 1e-9);
        assert_eq!(infer_rate(&[]), None);
        assert_eq!(infer_rate(&[(0, 1.0)]), None);
    }

    #[test]
    fn waveform_ascii_envelope() {
        let samples: Vec<(i64, f64)> = (0..200)
            .map(|i| (i as i64, (i as f64 / 10.0).sin() * 50.0))
            .collect();
        let art = waveform_ascii(&samples, 40, 8);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 9, "8 plot rows + 1 caption");
        assert!(lines[8].contains("200 samples"));
        // Every column must paint at least one cell.
        for col in 0..40 {
            let painted = (0..8).any(|row| lines[row].chars().nth(col) == Some('█'));
            assert!(painted, "column {col} empty");
        }
        assert_eq!(waveform_ascii(&[], 10, 5), "(no samples)\n");
    }

    #[test]
    fn bad_rate_rejected() {
        assert!(sta_lta(&[], 0.0, &StaLtaConfig::default()).is_err());
        assert!(recursive_sta_lta(&[], 0.0, &StaLtaConfig::default()).is_err());
        assert!(z_detect(&[], 0.0, &ZDetectConfig::default()).is_err());
    }

    #[test]
    fn recursive_detects_injected_event() {
        let rate = 40.0;
        let samples = signal_with_event(4000, rate, 2500);
        let dets = recursive_sta_lta(&samples, rate, &StaLtaConfig::default()).unwrap();
        assert_eq!(dets.len(), 1, "exactly one event: {dets:?}");
        let event_time_us = 2500.0 * 1e6 / rate;
        let diff = (dets[0].time.0 as f64 - event_time_us).abs();
        assert!(diff < 3e6, "detection within 3 s of onset, off by {diff}");
    }

    #[test]
    fn recursive_quiet_signal_triggers_nothing() {
        let rate = 40.0;
        let samples = signal_with_event(4000, rate, usize::MAX);
        let dets = recursive_sta_lta(&samples, rate, &StaLtaConfig::default()).unwrap();
        assert!(dets.is_empty(), "{dets:?}");
    }

    #[test]
    fn recursive_short_signal_yields_nothing() {
        let samples = signal_with_event(100, 40.0, 50);
        let dets = recursive_sta_lta(&samples, 40.0, &StaLtaConfig::default()).unwrap();
        assert!(dets.is_empty());
    }

    #[test]
    fn recursive_agrees_with_classic_on_the_event() {
        let rate = 40.0;
        let samples = signal_with_event(6000, rate, 3000);
        let classic = sta_lta(&samples, rate, &StaLtaConfig::default()).unwrap();
        let recursive = recursive_sta_lta(&samples, rate, &StaLtaConfig::default()).unwrap();
        assert_eq!(classic.len(), 1);
        assert_eq!(recursive.len(), 1);
        let diff = (classic[0].time.0 - recursive[0].time.0).abs();
        assert!(diff < 3_000_000, "both pickers land within 3 s: {diff}µs");
    }

    #[test]
    fn z_detector_finds_the_event() {
        let rate = 40.0;
        let samples = signal_with_event(4000, rate, 2500);
        let dets = z_detect(&samples, rate, &ZDetectConfig::default()).unwrap();
        assert_eq!(dets.len(), 1, "{dets:?}");
        let event_time_us = 2500.0 * 1e6 / rate;
        let diff = (dets[0].time.0 as f64 - event_time_us).abs();
        assert!(diff < 3e6, "off by {diff}");
        assert!(dets[0].ratio >= 6.0, "peak z-score reported");
    }

    #[test]
    fn z_detector_quiet_signal_triggers_nothing() {
        let rate = 40.0;
        let samples = signal_with_event(4000, rate, usize::MAX);
        let dets = z_detect(&samples, rate, &ZDetectConfig::default()).unwrap();
        assert!(dets.is_empty(), "{dets:?}");
    }

    #[test]
    fn z_detector_short_signal_yields_nothing() {
        let dets = z_detect(
            &signal_with_event(50, 40.0, 10),
            40.0,
            &ZDetectConfig::default(),
        )
        .unwrap();
        assert!(dets.is_empty());
    }

    fn det(t_secs: f64, ratio: f64) -> Detection {
        Detection {
            time: Timestamp((t_secs * 1e6) as i64),
            ratio,
        }
    }

    #[test]
    fn coincidence_requires_min_stations() {
        let per_station = vec![
            StationDetections {
                station: "HGN".into(),
                detections: vec![det(100.0, 5.0)],
            },
            StationDetections {
                station: "WIT".into(),
                detections: vec![det(101.5, 6.0)],
            },
            StationDetections {
                station: "OPLO".into(),
                detections: vec![det(102.0, 4.5)],
            },
        ];
        let events = coincidence_trigger(&per_station, 5.0, 3);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].stations, vec!["HGN", "OPLO", "WIT"]);
        assert_eq!(events[0].time, Timestamp(100_000_000));
        assert!((events[0].mean_ratio - (5.0 + 6.0 + 4.5) / 3.0).abs() < 1e-9);

        // Demanding a 4th station kills the cluster.
        assert!(coincidence_trigger(&per_station, 5.0, 4).is_empty());
    }

    #[test]
    fn coincidence_window_separates_events() {
        let per_station = vec![
            StationDetections {
                station: "HGN".into(),
                detections: vec![det(100.0, 5.0), det(500.0, 7.0)],
            },
            StationDetections {
                station: "WIT".into(),
                detections: vec![det(101.0, 6.0), det(501.0, 8.0)],
            },
        ];
        let events = coincidence_trigger(&per_station, 5.0, 2);
        assert_eq!(events.len(), 2, "{events:?}");
        assert_eq!(events[0].time, Timestamp(100_000_000));
        assert_eq!(events[1].time, Timestamp(500_000_000));
    }

    #[test]
    fn coincidence_lone_station_is_noise() {
        let per_station = vec![
            StationDetections {
                station: "HGN".into(),
                detections: vec![det(100.0, 5.0)],
            },
            StationDetections {
                station: "WIT".into(),
                detections: vec![det(300.0, 6.0)],
            },
        ];
        assert!(coincidence_trigger(&per_station, 5.0, 2).is_empty());
    }

    #[test]
    fn coincidence_same_station_twice_counts_once() {
        let per_station = vec![StationDetections {
            station: "HGN".into(),
            detections: vec![det(100.0, 5.0), det(101.0, 6.0)],
        }];
        assert!(
            coincidence_trigger(&per_station, 5.0, 2).is_empty(),
            "two triggers on one station are not two stations"
        );
    }

    #[test]
    fn coincidence_empty_input() {
        assert!(coincidence_trigger(&[], 5.0, 1).is_empty());
    }
}
