//! The lazy-extraction plan rewriter (§3.1 of the paper).
//!
//! Lazy extraction is "two steps of query plan modification":
//!
//! 1. **Compile time** — the optimizer (in `lazyetl-query`) reorganizes the
//!    plan so "the selection predicates on the metadata are applied first"
//!    (predicate pushdown toward the `F`/`R` scans).
//! 2. **Run time** — once the metadata part of the plan can be executed,
//!    this module *executes it*, derives exactly which (file, record) pairs
//!    the query needs, asks the data provider for them (cache first, files
//!    otherwise), and **injects** the result into the plan in place of the
//!    external-data scan. The rest of the plan then runs unchanged.
//!
//! The rewriter also performs record-level pruning: sample-time predicates
//! sitting on the data side are intersected with each candidate record's
//! `[start_time, end_time)` from the metadata, so records that cannot
//! contain matching samples are never extracted. (This is the advantage
//! over NoDB-style raw-file scans that §2 calls out: metadata is exploited
//! for selective loading.)

use crate::error::{EtlError, Result};
use crate::extract::RecordLocator;
use lazyetl_query::expr::eval_row;
use lazyetl_query::plan::LogicalPlan;
use lazyetl_query::Expr;
use lazyetl_store::{DataType, Field, Schema, Table, Value};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// Locators and time ranges for every record the warehouse knows about.
///
/// Built from the resident `R` table; rebuilt whenever metadata changes.
/// Besides the hash lookups, it carries an **ordered secondary index**
/// over record time coverage (`by_time`, sorted by start time), so a
/// sample-time interval resolves to the qualifying records with one
/// binary-search seek instead of a sweep over every candidate
/// ([`LocatorIndex::seek_time_range`]). The sorted order is persistable
/// ([`LocatorIndex::to_time_index_table`]) and a snapshot's persisted
/// order is adopted on reopen ([`LocatorIndex::build_seeded`]).
#[derive(Debug, Default)]
pub struct LocatorIndex {
    by_key: HashMap<(i64, i64), RecordInfo>,
    by_file: BTreeMap<i64, Vec<i64>>,
    /// Every record, sorted by `(start_us, file_id, seq_no)`.
    by_time: Vec<TimeEntry>,
    /// Ascending positions of zero-span records inside `by_time`: they
    /// qualify under any lower bound, so seeks must re-admit the ones
    /// sitting below the seek floor.
    degenerate_pos: Vec<usize>,
    /// Longest positive record span (µs); widens the lower-bound seek so
    /// no record straddling the bound is missed.
    max_span_us: i64,
}

/// One entry of the ordered time index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TimeEntry {
    start_us: i64,
    end_us: i64,
    file_id: i64,
    seq_no: i64,
}

impl TimeEntry {
    fn sort_key(&self) -> (i64, i64, i64) {
        (self.start_us, self.file_id, self.seq_no)
    }
}

/// Locator plus time coverage of one record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecordInfo {
    /// Where the record lives in its file.
    pub locator: RecordLocator,
    /// First sample time (µs).
    pub start_us: i64,
    /// Exclusive end time (µs).
    pub end_us: i64,
}

impl LocatorIndex {
    /// Build from an `R`-schema table.
    pub fn build(records: &Table) -> Result<LocatorIndex> {
        Self::build_seeded(records, None)
    }

    /// Build from an `R`-schema table, adopting a persisted time-index
    /// ordering when one is supplied and still describes exactly these
    /// records (saving the O(n log n) sort); any mismatch falls back to
    /// sorting fresh, so a stale snapshot can never corrupt the index.
    pub fn build_seeded(records: &Table, persisted: Option<&Table>) -> Result<LocatorIndex> {
        let mut idx = Self::build_keys(records)?;
        let adopted = persisted.is_some_and(|t| idx.adopt_persisted_order(t));
        if !adopted {
            idx.by_time.sort_unstable_by_key(TimeEntry::sort_key);
        }
        idx.finish_time_index();
        Ok(idx)
    }

    fn build_keys(records: &Table) -> Result<LocatorIndex> {
        let need = |name: &str| {
            records
                .schema
                .index_of(name)
                .ok_or_else(|| EtlError::Internal(format!("records table lacks column {name:?}")))
        };
        let c_file = need("file_id")?;
        let c_seq = need("seq_no")?;
        let c_start = need("start_time")?;
        let c_end = need("end_time")?;
        let c_off = need("byte_offset")?;
        let c_len = need("record_length")?;
        let mut idx = LocatorIndex::default();
        for row in 0..records.num_rows() {
            let file_id = records.columns[c_file]
                .get(row)?
                .as_i64()
                .ok_or_else(|| EtlError::Internal("null file_id in R".into()))?;
            let seq_no = records.columns[c_seq]
                .get(row)?
                .as_i64()
                .ok_or_else(|| EtlError::Internal("null seq_no in R".into()))?;
            let start_us = records.columns[c_start].get(row)?.as_i64().unwrap_or(0);
            let end_us = records.columns[c_end].get(row)?.as_i64().unwrap_or(0);
            let byte_offset = records.columns[c_off].get(row)?.as_i64().unwrap_or(0) as u64;
            let record_length = records.columns[c_len].get(row)?.as_i64().unwrap_or(0) as u32;
            idx.by_key.insert(
                (file_id, seq_no),
                RecordInfo {
                    locator: RecordLocator {
                        seq_no,
                        byte_offset,
                        record_length,
                    },
                    start_us,
                    end_us,
                },
            );
            idx.by_file.entry(file_id).or_default().push(seq_no);
            idx.by_time.push(TimeEntry {
                start_us,
                end_us,
                file_id,
                seq_no,
            });
        }
        Ok(idx)
    }

    /// Try to adopt a persisted `(file_id, seq_no, start_time, end_time)`
    /// table as the sorted time index. Succeeds only if it lists exactly
    /// the indexed records, in sorted order, with matching time ranges.
    fn adopt_persisted_order(&mut self, t: &Table) -> bool {
        if t.num_rows() != self.by_key.len() {
            return false;
        }
        let col = |name: &str| t.schema.index_of(name);
        let (Some(cf), Some(cs), Some(ca), Some(cb)) = (
            col("file_id"),
            col("seq_no"),
            col("start_time"),
            col("end_time"),
        ) else {
            return false;
        };
        let mut out = Vec::with_capacity(t.num_rows());
        let mut prev = (i64::MIN, i64::MIN, i64::MIN);
        for row in 0..t.num_rows() {
            let get = |c: usize| t.columns[c].get(row).ok().and_then(|v| v.as_i64());
            let (Some(file_id), Some(seq_no), Some(start_us), Some(end_us)) =
                (get(cf), get(cs), get(ca), get(cb))
            else {
                return false;
            };
            let e = TimeEntry {
                start_us,
                end_us,
                file_id,
                seq_no,
            };
            if e.sort_key() < prev {
                return false;
            }
            prev = e.sort_key();
            match self.by_key.get(&(file_id, seq_no)) {
                Some(info) if info.start_us == start_us && info.end_us == end_us => out.push(e),
                _ => return false,
            }
        }
        self.by_time = out;
        true
    }

    /// Derive the seek acceleration structures from the sorted `by_time`.
    fn finish_time_index(&mut self) {
        self.degenerate_pos = self
            .by_time
            .iter()
            .enumerate()
            .filter(|(_, e)| e.start_us == e.end_us)
            .map(|(p, _)| p)
            .collect();
        self.max_span_us = self
            .by_time
            .iter()
            .map(|e| (e.end_us - e.start_us).max(0))
            .max()
            .unwrap_or(0);
    }

    /// Binary-search seek over the ordered time index: the set of
    /// `(file_id, seq_no)` whose `[start, end)` coverage may intersect the
    /// query interval `[lo, hi]`, plus how many index entries the seek
    /// examined. Exactly equivalent to sweeping every record with the
    /// record-level pruning predicate (proven by the exhaustive test
    /// below), but only entries inside the seeked slice — `start ∈
    /// (lo − max_span, hi]` — are ever touched.
    pub fn seek_time_range(
        &self,
        lo: Option<i64>,
        hi: Option<i64>,
    ) -> (BTreeSet<(i64, i64)>, usize) {
        let hi_idx = match hi {
            Some(h) => self.by_time.partition_point(|e| e.start_us <= h),
            None => self.by_time.len(),
        };
        let lo_idx = match lo {
            Some(l) => {
                // Records below the floor start so early that even the
                // longest span cannot reach past `lo`.
                let floor = l.saturating_sub(self.max_span_us);
                self.by_time.partition_point(|e| e.start_us <= floor)
            }
            None => 0,
        }
        .min(hi_idx);
        let mut out = BTreeSet::new();
        let mut examined = 0usize;
        for e in &self.by_time[lo_idx..hi_idx] {
            examined += 1;
            // `start_us <= hi` already holds for everything below hi_idx;
            // the lower bound uses the same exclusive-end / zero-span
            // convention as the linear sweep.
            if lo.is_none_or(|l| e.end_us > l || e.start_us == e.end_us) {
                out.insert((e.file_id, e.seq_no));
            }
        }
        if lo.is_some() {
            // Zero-span records below the seek floor qualify under any
            // lower bound (kept conservatively, like the sweep keeps them).
            let cut = self.degenerate_pos.partition_point(|&p| p < lo_idx);
            for &p in &self.degenerate_pos[..cut] {
                examined += 1;
                let e = self.by_time[p];
                out.insert((e.file_id, e.seq_no));
            }
        }
        (out, examined)
    }

    /// The ordered time index as a persistable table (rows in `by_time`
    /// order), the inverse of [`LocatorIndex::build_seeded`]'s seed.
    pub fn to_time_index_table(&self) -> Result<Table> {
        let schema = Schema::new(vec![
            Field::new("file_id", DataType::Int64),
            Field::new("seq_no", DataType::Int64),
            Field::new("start_time", DataType::Timestamp),
            Field::new("end_time", DataType::Timestamp),
        ])
        .map_err(EtlError::Store)?;
        let mut t = Table::empty(schema);
        for e in &self.by_time {
            t.append_row(vec![
                Value::Int64(e.file_id),
                Value::Int64(e.seq_no),
                Value::Timestamp(e.start_us),
                Value::Timestamp(e.end_us),
            ])
            .map_err(EtlError::Store)?;
        }
        Ok(t)
    }

    /// Info for one (file, record) pair.
    pub fn get(&self, file_id: i64, seq_no: i64) -> Option<&RecordInfo> {
        self.by_key.get(&(file_id, seq_no))
    }

    /// All sequence numbers of a file.
    pub fn seqs_of_file(&self, file_id: i64) -> &[i64] {
        self.by_file
            .get(&file_id)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Every (file, record) pair (the §3.1 worst case: full repository).
    pub fn all_pairs(&self) -> Vec<(i64, i64)> {
        let mut v: Vec<(i64, i64)> = self.by_key.keys().copied().collect();
        v.sort();
        v
    }

    /// Number of records indexed.
    pub fn len(&self) -> usize {
        self.by_key.len()
    }

    /// True when no records are indexed.
    pub fn is_empty(&self) -> bool {
        self.by_key.is_empty()
    }
}

/// What the run-time rewrite did (feeds the demo's plan observability).
#[derive(Debug, Default, Clone)]
pub struct RewriteReport {
    /// Rows produced by the metadata subplan.
    pub metadata_rows: usize,
    /// Distinct (file, record) pairs the query joins against.
    pub candidate_pairs: usize,
    /// Pairs skipped by record-level time pruning.
    pub pruned_pairs: usize,
    /// Pairs actually requested from the data provider.
    pub fetched_pairs: usize,
    /// Whether the full-repository fallback was taken.
    pub full_scan_fallback: bool,
    /// Whether record-level pruning was served by a binary-search seek of
    /// the ordered time index (vs. a linear sweep over every candidate).
    pub index_seek: bool,
    /// Time-index entries whose ranges pruning examined: the seeked slice
    /// width under index seek, every candidate under the linear sweep.
    pub index_entries_examined: usize,
    /// Human-readable notes, in order.
    pub notes: Vec<String>,
}

fn contains_external(plan: &LogicalPlan) -> bool {
    plan.any_node(&mut |n| matches!(n, LogicalPlan::ExternalScan { .. }))
}

/// Extract a closed sample-time interval implied by the predicates within
/// the data-side subtree (conjuncts over a `sample_time` column against
/// timestamp literals).
///
/// The bound extraction is [`lazyetl_query::prune::TimeInterval`] — the
/// same interval logic the executor's zone-map pruning uses — applied to
/// every `Filter` predicate of the subtree.
///
/// Public because the warehouse also uses it to key recycled results by
/// time interval for scoped invalidation.
pub fn sample_time_interval(plan: &LogicalPlan) -> (Option<i64>, Option<i64>) {
    let mut interval = lazyetl_query::prune::TimeInterval::unconstrained();
    fn walk(plan: &LogicalPlan, interval: &mut lazyetl_query::prune::TimeInterval) {
        if let LogicalPlan::Filter { predicate, .. } = plan {
            interval.tighten_from_predicate(predicate, "sample_time");
        }
        for c in plan.children() {
            walk(c, interval);
        }
    }
    walk(plan, &mut interval);
    (interval.lo, interval.hi)
}

/// Map the data-side join expressions onto (file_id, seq_no) positions.
///
/// Returns `(file_pos, seq_pos)`: indices into the ON pair list whose
/// data-side column is `file_id` / `seq_no`. `seq_pos` may be absent
/// (file-granular join).
fn classify_on_pairs(on: &[(Expr, Expr)], data_is_right: bool) -> (Option<usize>, Option<usize>) {
    let mut file_pos = None;
    let mut seq_pos = None;
    for (i, (l, r)) in on.iter().enumerate() {
        let data_expr = if data_is_right { r } else { l };
        if let Expr::Column(name) = data_expr {
            match name.rsplit('.').next() {
                Some("file_id") => file_pos = Some(i),
                Some("seq_no") => seq_pos = Some(i),
                _ => {}
            }
        }
    }
    (file_pos, seq_pos)
}

/// Replace the (single) ExternalScan inside `plan` with `data`.
fn inject_data(plan: &LogicalPlan, data: Arc<Table>, label: &str) -> LogicalPlan {
    plan.transform_up(&mut |node| match node {
        LogicalPlan::ExternalScan { .. } => LogicalPlan::InlineData {
            label: label.to_string(),
            table: data.clone(),
        },
        other => other,
    })
}

/// Executes a metadata-only subplan (supplied by the warehouse).
pub type MetadataExec<'a> = dyn Fn(&LogicalPlan) -> Result<Arc<Table>> + 'a;
/// Materializes `D` rows for (file, record) pairs (cache + extractor).
pub type FetchFn<'a> = dyn FnMut(&[(i64, i64)]) -> Result<Arc<Table>> + 'a;

/// Context the rewriter needs from the warehouse.
pub struct RewriteContext<'a> {
    /// Record locators and time ranges.
    pub index: &'a LocatorIndex,
    /// Apply record-level sample-time pruning (ablation flag).
    pub record_level_pruning: bool,
    /// Serve record-level pruning with the ordered time index's
    /// binary-search seek; `false` is the E17 baseline's linear sweep
    /// (identical kept set, every candidate examined).
    pub time_index_seek: bool,
}

/// Run-time plan rewrite: replace every external-data scan with the
/// concrete rows the query needs.
pub fn lazy_rewrite(
    plan: &LogicalPlan,
    ctx: &RewriteContext<'_>,
    execute_metadata: &MetadataExec<'_>,
    fetch: &mut FetchFn<'_>,
    report: &mut RewriteReport,
) -> Result<LogicalPlan> {
    let rewritten = rewrite_node(plan, ctx, execute_metadata, fetch, report)?;
    // Any external scan left has no metadata join to derive a needed set
    // from: fall back to the full repository (§3.1 worst case).
    if contains_external(&rewritten) {
        report.full_scan_fallback = true;
        let all = ctx.index.all_pairs();
        report.candidate_pairs += all.len();
        report.fetched_pairs += all.len();
        report
            .notes
            .push(format!("full-scan fallback: {} records", all.len()));
        let data = fetch(&all)?;
        return Ok(inject_data(
            &rewritten,
            data,
            &format!("lazy-extract(full repository, {} records)", all.len()),
        ));
    }
    Ok(rewritten)
}

fn rewrite_node(
    plan: &LogicalPlan,
    ctx: &RewriteContext<'_>,
    execute_metadata: &MetadataExec<'_>,
    fetch: &mut FetchFn<'_>,
    report: &mut RewriteReport,
) -> Result<LogicalPlan> {
    // Recurse first so the lowest qualifying join is handled.
    let plan = match plan {
        LogicalPlan::Join {
            left,
            right,
            on,
            right_label,
        } => LogicalPlan::Join {
            left: Box::new(rewrite_node(left, ctx, execute_metadata, fetch, report)?),
            right: Box::new(rewrite_node(right, ctx, execute_metadata, fetch, report)?),
            on: on.clone(),
            right_label: right_label.clone(),
        },
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(rewrite_node(input, ctx, execute_metadata, fetch, report)?),
            predicate: predicate.clone(),
        },
        LogicalPlan::Project { input, exprs } => LogicalPlan::Project {
            input: Box::new(rewrite_node(input, ctx, execute_metadata, fetch, report)?),
            exprs: exprs.clone(),
        },
        LogicalPlan::Aggregate {
            input,
            group,
            aggregates,
        } => LogicalPlan::Aggregate {
            input: Box::new(rewrite_node(input, ctx, execute_metadata, fetch, report)?),
            group: group.clone(),
            aggregates: aggregates.clone(),
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(rewrite_node(input, ctx, execute_metadata, fetch, report)?),
            keys: keys.clone(),
        },
        LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
            input: Box::new(rewrite_node(input, ctx, execute_metadata, fetch, report)?),
            n: *n,
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(rewrite_node(input, ctx, execute_metadata, fetch, report)?),
        },
        leaf => leaf.clone(),
    };

    // Now look for a join where exactly one side still contains the
    // external scan: that side is the data side, the other the metadata.
    if let LogicalPlan::Join {
        left,
        right,
        on,
        right_label,
    } = &plan
    {
        let l_ext = contains_external(left);
        let r_ext = contains_external(right);
        if l_ext ^ r_ext {
            let (meta_side, data_side, data_is_right) = if r_ext {
                (left, right, true)
            } else {
                (right, left, false)
            };
            // 1. Execute the metadata subplan.
            let meta_table = execute_metadata(meta_side)?;
            report.metadata_rows = meta_table.num_rows();

            // 2. Derive the needed (file_id, seq_no) set from the join keys.
            let (file_pos, seq_pos) = classify_on_pairs(on, data_is_right);
            let file_pos = match file_pos {
                Some(p) => p,
                None => {
                    // Unrecognized join shape: leave for the fallback.
                    report
                        .notes
                        .push("join keys lack file_id: deferring to full scan".into());
                    return Ok(plan);
                }
            };
            let mut pairs: BTreeSet<(i64, i64)> = BTreeSet::new();
            for row in 0..meta_table.num_rows() {
                let meta_expr = |pos: usize| -> &Expr {
                    let (l, r) = &on[pos];
                    if data_is_right {
                        l
                    } else {
                        r
                    }
                };
                let fv =
                    eval_row(meta_expr(file_pos), &meta_table, row).map_err(EtlError::Query)?;
                let Some(file_id) = fv.as_i64() else { continue };
                match seq_pos {
                    Some(sp) => {
                        let sv =
                            eval_row(meta_expr(sp), &meta_table, row).map_err(EtlError::Query)?;
                        if let Some(seq) = sv.as_i64() {
                            pairs.insert((file_id, seq));
                        }
                    }
                    None => {
                        for &seq in ctx.index.seqs_of_file(file_id) {
                            pairs.insert((file_id, seq));
                        }
                    }
                }
            }
            report.candidate_pairs = pairs.len();

            // 3. Record-level pruning against sample-time predicates:
            //    either a binary-search seek of the ordered time index or
            //    the baseline linear sweep. Both keep exactly the same
            //    pairs; only the number of examined entries differs.
            let (lo, hi) = sample_time_interval(data_side);
            let kept: Vec<(i64, i64)> = if ctx.record_level_pruning
                && (lo.is_some() || hi.is_some())
            {
                if ctx.time_index_seek {
                    let (qualifying, examined) = ctx.index.seek_time_range(lo, hi);
                    report.index_seek = true;
                    report.index_entries_examined += examined;
                    pairs
                        .iter()
                        .copied()
                        .filter(|&(f, s)| {
                            // Unknown records extract conservatively.
                            qualifying.contains(&(f, s)) || ctx.index.get(f, s).is_none()
                        })
                        .collect()
                } else {
                    report.index_entries_examined += pairs.len();
                    pairs
                        .iter()
                        .copied()
                        .filter(|&(f, s)| match ctx.index.get(f, s) {
                            Some(info) => {
                                // `end_us` is exclusive (last sample + one
                                // period), so a record ending exactly at the
                                // lower bound holds no qualifying samples —
                                // strict comparison is still conservative.
                                // Degenerate zero-span records are kept.
                                lo.is_none_or(|l| info.end_us > l || info.start_us == info.end_us)
                                    && hi.is_none_or(|h| info.start_us <= h)
                            }
                            None => true, // unknown record: extract conservatively
                        })
                        .collect()
                }
            } else {
                pairs.iter().copied().collect()
            };
            report.pruned_pairs = report.candidate_pairs - kept.len();
            report.fetched_pairs = kept.len();
            if lo.is_some() || hi.is_some() {
                report.notes.push(format!(
                    "sample_time interval [{:?}, {:?}] pruned {} of {} records",
                    lo, hi, report.pruned_pairs, report.candidate_pairs
                ));
            }

            // 4. Fetch (cache first, extract the rest).
            let data = fetch(&kept)?;
            let files: BTreeSet<i64> = kept.iter().map(|&(f, _)| f).collect();
            let label = format!(
                "lazy-extract({} records from {} files)",
                kept.len(),
                files.len()
            );

            // 5. Inject: metadata results and extracted data replace their
            //    subtrees; the surrounding plan is untouched.
            let new_data_side = inject_data(data_side, data, &label);
            let new_meta_side = LogicalPlan::InlineData {
                label: format!("metadata({} rows)", meta_table.num_rows()),
                table: meta_table,
            };
            let (l, r) = if data_is_right {
                (new_meta_side, new_data_side)
            } else {
                (new_data_side, new_meta_side)
            };
            return Ok(LogicalPlan::Join {
                left: Box::new(l),
                right: Box::new(r),
                on: on.clone(),
                right_label: right_label.clone(),
            });
        }
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazyetl_query::BinaryOp;
    use lazyetl_store::{DataType, Field, Schema, Value};

    fn r_table() -> Table {
        let mut t = Table::empty(crate::schema::records_schema());
        for (f, s, st, en) in [(0i64, 1i64, 0i64, 100i64), (0, 2, 100, 200), (1, 1, 0, 150)] {
            t.append_row(vec![
                Value::Int64(f),
                Value::Int64(s),
                Value::Timestamp(st),
                Value::Timestamp(en),
                Value::Int64(10),
                Value::Float64(40.0),
                Value::Int64(0),
                Value::Int64(512),
                Value::Utf8("D".into()),
                Value::Int64(100),
                Value::Utf8("STEIM2".into()),
            ])
            .unwrap();
        }
        t
    }

    #[test]
    fn locator_index_builds_and_looks_up() {
        let idx = LocatorIndex::build(&r_table()).unwrap();
        assert_eq!(idx.len(), 3);
        assert!(!idx.is_empty());
        let info = idx.get(0, 2).unwrap();
        assert_eq!(info.start_us, 100);
        assert_eq!(idx.seqs_of_file(0), &[1, 2]);
        assert_eq!(idx.seqs_of_file(9), &[] as &[i64]);
        assert_eq!(idx.all_pairs(), vec![(0, 1), (0, 2), (1, 1)]);
    }

    #[test]
    fn interval_extraction_from_filters() {
        let schema = Schema::new(vec![
            Field::new("sample_time", DataType::Timestamp),
            Field::new("sample_value", DataType::Float64),
        ])
        .unwrap();
        let scan = LogicalPlan::ExternalScan {
            name: "data".into(),
            schema,
        };
        let pred = Expr::col("d.sample_time")
            .binary(BinaryOp::Gt, Expr::lit(Value::Timestamp(50)))
            .and(Expr::col("d.sample_time").binary(BinaryOp::Lt, Expr::lit(Value::Timestamp(80))));
        let plan = LogicalPlan::Filter {
            input: Box::new(scan),
            predicate: pred,
        };
        assert_eq!(sample_time_interval(&plan), (Some(50), Some(80)));
        // Reversed operand order flips directions.
        let plan2 = LogicalPlan::Filter {
            input: Box::new(plan),
            predicate: Expr::lit(Value::Timestamp(70))
                .binary(BinaryOp::Gt, Expr::col("sample_time")),
        };
        assert_eq!(sample_time_interval(&plan2), (Some(50), Some(70)));
    }

    #[test]
    fn classify_finds_key_positions() {
        let on = vec![
            (Expr::col("r.file_id"), Expr::col("d.file_id")),
            (Expr::col("r.seq_no"), Expr::col("d.seq_no")),
        ];
        assert_eq!(classify_on_pairs(&on, true), (Some(0), Some(1)));
        // data on the left
        let on2 = vec![(Expr::col("d.file_id"), Expr::col("r.file_id"))];
        assert_eq!(classify_on_pairs(&on2, false), (Some(0), None));
    }

    /// Metadata table with (file_id, seq_no) rows.
    fn meta_table(rows: &[(i64, i64)]) -> Arc<Table> {
        let schema = Schema::new(vec![
            Field::new("file_id", DataType::Int64),
            Field::new("seq_no", DataType::Int64),
        ])
        .unwrap();
        let mut t = Table::empty(schema);
        for &(f, s) in rows {
            t.append_row(vec![Value::Int64(f), Value::Int64(s)])
                .unwrap();
        }
        Arc::new(t)
    }

    fn data_scan() -> LogicalPlan {
        LogicalPlan::ExternalScan {
            name: "data".into(),
            schema: crate::schema::data_schema(),
        }
    }

    /// A Join(metadata InlineData, data ExternalScan) plan with the given
    /// data-side wrapper applied.
    fn join_plan(
        meta_rows: &[(i64, i64)],
        with_seq_key: bool,
        data_side: LogicalPlan,
    ) -> LogicalPlan {
        let mut on = vec![(Expr::col("file_id"), Expr::col("file_id"))];
        if with_seq_key {
            on.push((Expr::col("seq_no"), Expr::col("seq_no")));
        }
        LogicalPlan::Join {
            left: Box::new(LogicalPlan::InlineData {
                label: "meta".into(),
                table: meta_table(meta_rows),
            }),
            right: Box::new(data_side),
            on,
            right_label: "d".into(),
        }
    }

    /// Run lazy_rewrite with a mock fetch that records requested pairs.
    fn run_rewrite(
        plan: &LogicalPlan,
        pruning: bool,
    ) -> (LogicalPlan, Vec<(i64, i64)>, RewriteReport) {
        let idx = LocatorIndex::build(&r_table()).unwrap();
        let ctx = RewriteContext {
            index: &idx,
            record_level_pruning: pruning,
            time_index_seek: true,
        };
        let exec_meta = |p: &LogicalPlan| -> Result<Arc<Table>> {
            match p {
                LogicalPlan::InlineData { table, .. } => Ok(table.clone()),
                other => Err(EtlError::Internal(format!(
                    "test metadata exec got {other:?}"
                ))),
            }
        };
        let mut requested: Vec<(i64, i64)> = Vec::new();
        let mut report = RewriteReport::default();
        let rewritten = {
            let mut fetch = |pairs: &[(i64, i64)]| -> Result<Arc<Table>> {
                requested.extend_from_slice(pairs);
                Ok(Arc::new(Table::empty(crate::schema::data_schema())))
            };
            lazy_rewrite(plan, &ctx, &exec_meta, &mut fetch, &mut report).unwrap()
        };
        (rewritten, requested, report)
    }

    #[test]
    fn rewrite_replaces_external_scan_with_fetched_rows() {
        let plan = join_plan(&[(0, 1), (0, 2)], true, data_scan());
        let (rewritten, requested, report) = run_rewrite(&plan, true);
        assert!(!contains_external(&rewritten), "external scan replaced");
        assert_eq!(requested, vec![(0, 1), (0, 2)]);
        assert_eq!(report.metadata_rows, 2);
        assert_eq!(report.candidate_pairs, 2);
        assert_eq!(report.fetched_pairs, 2);
        assert!(!report.full_scan_fallback);
    }

    #[test]
    fn duplicate_metadata_rows_fetch_once() {
        let plan = join_plan(&[(0, 1), (0, 1), (0, 1)], true, data_scan());
        let (_, requested, report) = run_rewrite(&plan, true);
        assert_eq!(requested, vec![(0, 1)], "pair set is deduplicated");
        assert_eq!(report.metadata_rows, 3);
        assert_eq!(report.candidate_pairs, 1);
    }

    #[test]
    fn file_granular_join_expands_to_every_record_of_the_file() {
        let plan = join_plan(&[(0, 0)], false, data_scan());
        let (_, requested, _) = run_rewrite(&plan, true);
        // File 0 has records 1 and 2 in the index.
        assert_eq!(requested, vec![(0, 1), (0, 2)]);
    }

    #[test]
    fn sample_time_pruning_skips_nonoverlapping_records() {
        // Records: (0,1) covers [0,100), (0,2) covers [100,200).
        // Predicate sample_time > 120 can only hit record 2.
        let filtered = LogicalPlan::Filter {
            input: Box::new(data_scan()),
            predicate: Expr::col("sample_time")
                .binary(BinaryOp::Gt, Expr::lit(Value::Timestamp(120))),
        };
        let plan = join_plan(&[(0, 1), (0, 2)], true, filtered);
        let (_, requested, report) = run_rewrite(&plan, true);
        assert_eq!(requested, vec![(0, 2)]);
        assert_eq!(report.pruned_pairs, 1);
        assert_eq!(report.fetched_pairs, 1);
    }

    #[test]
    fn pruning_ablation_fetches_everything() {
        let filtered = LogicalPlan::Filter {
            input: Box::new(data_scan()),
            predicate: Expr::col("sample_time")
                .binary(BinaryOp::Gt, Expr::lit(Value::Timestamp(120))),
        };
        let plan = join_plan(&[(0, 1), (0, 2)], true, filtered);
        let (_, requested, report) = run_rewrite(&plan, false);
        assert_eq!(requested, vec![(0, 1), (0, 2)], "ablation: no pruning");
        assert_eq!(report.pruned_pairs, 0);
    }

    #[test]
    fn empty_metadata_result_fetches_nothing() {
        let plan = join_plan(&[], true, data_scan());
        let (rewritten, requested, report) = run_rewrite(&plan, true);
        assert!(requested.is_empty(), "no metadata rows, no extraction");
        assert_eq!(report.fetched_pairs, 0);
        assert!(!contains_external(&rewritten));
    }

    #[test]
    fn planless_external_scan_takes_full_repository_fallback() {
        // No join at all: SELECT COUNT(*) FROM data — §3.1 worst case.
        let plan = LogicalPlan::Project {
            input: Box::new(data_scan()),
            exprs: vec![(Expr::col("sample_value"), "v".into())],
        };
        let (rewritten, requested, report) = run_rewrite(&plan, true);
        assert!(report.full_scan_fallback);
        assert_eq!(requested, vec![(0, 1), (0, 2), (1, 1)], "whole index");
        assert!(!contains_external(&rewritten));
    }

    #[test]
    fn join_without_file_id_key_defers_to_fallback() {
        let plan = LogicalPlan::Join {
            left: Box::new(LogicalPlan::InlineData {
                label: "meta".into(),
                table: meta_table(&[(0, 1)]),
            }),
            right: Box::new(data_scan()),
            on: vec![(Expr::col("seq_no"), Expr::col("seq_no"))],
            right_label: "d".into(),
        };
        let (rewritten, requested, report) = run_rewrite(&plan, true);
        assert!(report.full_scan_fallback, "unrecognized join shape");
        assert_eq!(requested.len(), 3, "entire repository fetched");
        assert!(!contains_external(&rewritten));
        assert!(report.notes.iter().any(|n| n.contains("file_id")));
    }

    /// Index whose records exercise every shape: normal spans, a long
    /// straddler, zero-span degenerates (early and late), and a malformed
    /// end < start record.
    fn time_grid_index() -> LocatorIndex {
        let mut t = Table::empty(crate::schema::records_schema());
        let ranges = [
            (0i64, 1i64, 0i64, 100i64),
            (0, 2, 100, 200),
            (0, 3, 0, 500),   // long straddler drives max_span
            (1, 1, 50, 50),   // early degenerate
            (1, 2, 400, 400), // late degenerate
            (1, 3, 300, 250), // malformed end < start
            (2, 1, 250, 300),
        ];
        for (f, s, st, en) in ranges {
            t.append_row(vec![
                Value::Int64(f),
                Value::Int64(s),
                Value::Timestamp(st),
                Value::Timestamp(en),
                Value::Int64(10),
                Value::Float64(40.0),
                Value::Int64(0),
                Value::Int64(512),
                Value::Utf8("D".into()),
                Value::Int64(100),
                Value::Utf8("STEIM2".into()),
            ])
            .unwrap();
        }
        LocatorIndex::build(&t).unwrap()
    }

    /// The linear-sweep pruning predicate, verbatim.
    fn sweep_keeps(info: &RecordInfo, lo: Option<i64>, hi: Option<i64>) -> bool {
        lo.is_none_or(|l| info.end_us > l || info.start_us == info.end_us)
            && hi.is_none_or(|h| info.start_us <= h)
    }

    #[test]
    fn time_index_seek_equals_linear_sweep_exhaustively() {
        let idx = time_grid_index();
        let all = idx.all_pairs();
        let mut bounds: Vec<Option<i64>> = vec![None];
        bounds.extend((-50..=550).step_by(25).map(Some));
        for &lo in &bounds {
            for &hi in &bounds {
                let (seek, examined) = idx.seek_time_range(lo, hi);
                let sweep: BTreeSet<(i64, i64)> = all
                    .iter()
                    .copied()
                    .filter(|&(f, s)| sweep_keeps(idx.get(f, s).unwrap(), lo, hi))
                    .collect();
                assert_eq!(seek, sweep, "lo={lo:?} hi={hi:?}");
                assert!(examined <= all.len(), "seek never examines extra entries");
            }
        }
        // A narrow window examines strictly fewer entries than the sweep.
        let (_, examined) = idx.seek_time_range(Some(90), Some(110));
        assert!(
            examined < all.len(),
            "narrow window: {examined} < {}",
            all.len()
        );
    }

    #[test]
    fn seek_ablation_takes_linear_sweep_with_identical_results() {
        let filtered = LogicalPlan::Filter {
            input: Box::new(data_scan()),
            predicate: Expr::col("sample_time")
                .binary(BinaryOp::Gt, Expr::lit(Value::Timestamp(120))),
        };
        let plan = join_plan(&[(0, 1), (0, 2)], true, filtered);
        let idx = LocatorIndex::build(&r_table()).unwrap();
        let exec_meta = |p: &LogicalPlan| -> Result<Arc<Table>> {
            match p {
                LogicalPlan::InlineData { table, .. } => Ok(table.clone()),
                other => Err(EtlError::Internal(format!("{other:?}"))),
            }
        };
        let run = |seek: bool| {
            let ctx = RewriteContext {
                index: &idx,
                record_level_pruning: true,
                time_index_seek: seek,
            };
            let mut requested = Vec::new();
            let mut report = RewriteReport::default();
            let mut fetch = |pairs: &[(i64, i64)]| -> Result<Arc<Table>> {
                requested.extend_from_slice(pairs);
                Ok(Arc::new(Table::empty(crate::schema::data_schema())))
            };
            lazy_rewrite(&plan, &ctx, &exec_meta, &mut fetch, &mut report).unwrap();
            (requested, report)
        };
        let (with_seek, r_seek) = run(true);
        let (with_sweep, r_sweep) = run(false);
        assert_eq!(with_seek, with_sweep, "seek and sweep keep the same pairs");
        assert!(r_seek.index_seek);
        assert!(!r_sweep.index_seek);
        assert_eq!(
            r_sweep.index_entries_examined, 2,
            "sweep examines all candidates"
        );
    }

    #[test]
    fn persisted_time_index_roundtrips_and_rejects_drift() {
        let idx = time_grid_index();
        let persisted = idx.to_time_index_table().unwrap();
        // Rows come out sorted by (start, file, seq).
        let c_start = persisted.schema.index_of("start_time").unwrap();
        let starts: Vec<i64> = (0..persisted.num_rows())
            .map(|r| persisted.columns[c_start].get(r).unwrap().as_i64().unwrap())
            .collect();
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_eq!(starts, sorted);
        // Rebuilding seeded with the persisted order adopts it and seeks
        // identically.
        let mut r = Table::empty(crate::schema::records_schema());
        for (f, s, st, en) in [
            (0i64, 1i64, 0i64, 100i64),
            (0, 2, 100, 200),
            (0, 3, 0, 500),
            (1, 1, 50, 50),
            (1, 2, 400, 400),
            (1, 3, 300, 250),
            (2, 1, 250, 300),
        ] {
            r.append_row(vec![
                Value::Int64(f),
                Value::Int64(s),
                Value::Timestamp(st),
                Value::Timestamp(en),
                Value::Int64(10),
                Value::Float64(40.0),
                Value::Int64(0),
                Value::Int64(512),
                Value::Utf8("D".into()),
                Value::Int64(100),
                Value::Utf8("STEIM2".into()),
            ])
            .unwrap();
        }
        let seeded = LocatorIndex::build_seeded(&r, Some(&persisted)).unwrap();
        assert_eq!(
            seeded.seek_time_range(Some(90), Some(260)),
            idx.seek_time_range(Some(90), Some(260))
        );
        // A drifted snapshot (extra record in R) is rejected, not adopted:
        // the rebuilt index still covers the new record.
        r.append_row(vec![
            Value::Int64(9),
            Value::Int64(1),
            Value::Timestamp(95),
            Value::Timestamp(105),
            Value::Int64(10),
            Value::Float64(40.0),
            Value::Int64(0),
            Value::Int64(512),
            Value::Utf8("D".into()),
            Value::Int64(100),
            Value::Utf8("STEIM2".into()),
        ])
        .unwrap();
        let drifted = LocatorIndex::build_seeded(&r, Some(&persisted)).unwrap();
        let (qual, _) = drifted.seek_time_range(Some(90), Some(110));
        assert!(qual.contains(&(9, 1)), "stale persisted order not adopted");
    }

    #[test]
    fn unknown_records_are_extracted_conservatively() {
        // Metadata names a record the index does not know: pruning must
        // keep it rather than silently dropping it.
        let filtered = LogicalPlan::Filter {
            input: Box::new(data_scan()),
            predicate: Expr::col("sample_time")
                .binary(BinaryOp::Gt, Expr::lit(Value::Timestamp(120))),
        };
        let plan = join_plan(&[(7, 9)], true, filtered);
        let (_, requested, _) = run_rewrite(&plan, true);
        assert_eq!(requested, vec![(7, 9)]);
    }
}
