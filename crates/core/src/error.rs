//! Error type for the Lazy ETL layer.

use lazyetl_mseed::MseedError;
use lazyetl_query::QueryError;
use lazyetl_repo::RepoError;
use lazyetl_store::StoreError;
use std::fmt;

/// Errors raised by warehouse construction, loading and querying.
#[derive(Debug)]
pub enum EtlError {
    /// MiniSEED parsing/decoding failure during extraction.
    Mseed(MseedError),
    /// Repository access failure.
    Repo(RepoError),
    /// Storage failure.
    Store(StoreError),
    /// Query failure.
    Query(QueryError),
    /// Internal invariant violation or configuration problem.
    Internal(String),
}

impl EtlError {
    /// Stable machine-readable code for this error (the serving layer's
    /// error frames carry `code` + rendered message). Query and
    /// repository failures forward the finer-grained [`QueryError::code`]
    /// / [`RepoError::code`]; other layers get one `etl.*` code each.
    pub fn code(&self) -> &'static str {
        match self {
            EtlError::Mseed(_) => "etl.mseed",
            EtlError::Repo(e) => e.code(),
            EtlError::Store(_) => "etl.store",
            EtlError::Query(e) => e.code(),
            EtlError::Internal(_) => "etl.internal",
        }
    }
}

impl fmt::Display for EtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EtlError::Mseed(e) => write!(f, "extraction error: {e}"),
            EtlError::Repo(e) => write!(f, "repository error: {e}"),
            EtlError::Store(e) => write!(f, "storage error: {e}"),
            EtlError::Query(e) => write!(f, "query error: {e}"),
            EtlError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for EtlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EtlError::Mseed(e) => Some(e),
            EtlError::Repo(e) => Some(e),
            EtlError::Store(e) => Some(e),
            EtlError::Query(e) => Some(e),
            EtlError::Internal(_) => None,
        }
    }
}

impl From<MseedError> for EtlError {
    fn from(e: MseedError) -> Self {
        EtlError::Mseed(e)
    }
}

impl From<RepoError> for EtlError {
    fn from(e: RepoError) -> Self {
        EtlError::Repo(e)
    }
}

impl From<StoreError> for EtlError {
    fn from(e: StoreError) -> Self {
        EtlError::Store(e)
    }
}

impl From<QueryError> for EtlError {
    fn from(e: QueryError) -> Self {
        EtlError::Query(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, EtlError>;
