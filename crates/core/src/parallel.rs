//! Parallel lazy extraction: decode several files' records concurrently.
//!
//! The lazy rewriter hands the warehouse a set of (file, record) pairs to
//! materialize. Files are independent — each has its own byte ranges and
//! codec state — so extraction parallelizes at file granularity with no
//! shared mutable state. This module runs the *extraction phase only* in
//! a scoped thread pool; cache lookups before and cache admission after
//! stay sequential, so the observable warehouse state (cache contents,
//! statistics, assembled `D` rows) is byte-identical to the sequential
//! path regardless of thread count.
//!
//! This is an extension beyond the paper's single-threaded demo (its
//! "near real-time ETL" outlook, §1); experiment E10 measures the
//! speedup against extraction-bound queries.

use crate::error::Result;
use crate::extract::{FormatRegistry, RecordLocator};
use lazyetl_mseed::Timestamp;
use lazyetl_repo::FileEntry;
use lazyetl_store::Table;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;

/// One record decoded and materialized into its `D`-schema rows.
#[derive(Debug, Clone)]
pub struct ExtractedRecord {
    /// Record sequence number (the cache key component).
    pub seq_no: i64,
    /// Samples decoded.
    pub samples: usize,
    /// The record's `D` rows, ready to append and cache.
    pub table: Arc<Table>,
}

/// One file's worth of work for the fetch pipeline: the cache triage
/// result (phase A) and the extraction input (phase B).
#[derive(Debug)]
pub struct FileGroup {
    /// The repository entry to extract from.
    pub entry: FileEntry,
    /// The file's modification time observed at triage; extracted records
    /// are admitted to the cache under this timestamp.
    pub current_mtime: Timestamp,
    /// Tables served from the cache, in the order the pairs were seen.
    pub hit_tables: Vec<Arc<Table>>,
    /// Locators still requiring extraction, sorted by byte offset.
    pub to_extract: Vec<RecordLocator>,
}

/// Extract every group's records and materialize their `D` rows, using up
/// to `threads` worker threads.
///
/// Both decoding *and* columnar materialization run on the workers — the
/// two per-record costs that are independent across files. Results are
/// positionally aligned with `groups` (and within a group with its
/// `to_extract` list); groups with nothing to extract yield an empty
/// vector without touching the file. With `threads <= 1` the work runs on
/// the calling thread in group order, which is the paper's sequential
/// behaviour.
pub fn extract_groups(
    extractor: &FormatRegistry,
    groups: &[FileGroup],
    threads: usize,
) -> Vec<Result<Vec<ExtractedRecord>>> {
    let work: Vec<usize> = groups
        .iter()
        .enumerate()
        .filter(|(_, g)| !g.to_extract.is_empty())
        .map(|(i, _)| i)
        .collect();
    let mut out: Vec<Option<Result<Vec<ExtractedRecord>>>> =
        groups.iter().map(|_| Some(Ok(Vec::new()))).collect();

    if threads <= 1 || work.len() <= 1 {
        for &i in &work {
            out[i] = Some(extract_one(extractor, &groups[i]));
        }
    } else {
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, Result<Vec<ExtractedRecord>>)>();
        std::thread::scope(|s| {
            for _ in 0..threads.min(work.len()) {
                let tx = tx.clone();
                let next = &next;
                let work = &work;
                s.spawn(move || loop {
                    let slot = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&i) = work.get(slot) else { break };
                    let r = extract_one(extractor, &groups[i]);
                    if tx.send((i, r)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            for (i, r) in rx {
                out[i] = Some(r);
            }
        });
    }
    out.into_iter()
        .map(|o| o.expect("every group slot filled"))
        .collect()
}

fn extract_one(extractor: &FormatRegistry, group: &FileGroup) -> Result<Vec<ExtractedRecord>> {
    let file_id = group.entry.id.0 as i64;
    extractor
        .for_entry(&group.entry)?
        .extract_records(&group.entry, &group.to_extract)?
        .into_iter()
        .map(|rd| {
            Ok(ExtractedRecord {
                seq_no: rd.seq_no,
                samples: rd.values.len(),
                table: Arc::new(rd.to_table(file_id)?),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazyetl_mseed::gen::{generate_repository, GeneratorConfig};
    use lazyetl_repo::Repository;

    fn temp_repo(tag: &str) -> (std::path::PathBuf, Repository) {
        let root = std::env::temp_dir().join(format!(
            "lazyetl_par_{tag}_{}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&root).ok();
        std::fs::create_dir_all(&root).unwrap();
        let config = GeneratorConfig {
            files_per_stream: 3,
            file_duration_secs: 60,
            seed: 0xAA17,
            ..Default::default()
        };
        generate_repository(&root, &config).unwrap();
        let repo = Repository::open(root.clone()).unwrap();
        (root, repo)
    }

    fn groups_for(repo: &Repository, extractor: &FormatRegistry) -> Vec<FileGroup> {
        repo.files()
            .iter()
            .map(|entry| {
                let md = extractor.for_entry(entry).unwrap().scan_metadata(entry).unwrap();
                FileGroup {
                    entry: entry.clone(),
                    current_mtime: entry.mtime,
                    hit_tables: Vec::new(),
                    to_extract: md
                        .records
                        .iter()
                        .map(|r| RecordLocator {
                            seq_no: r.seq_no,
                            byte_offset: r.byte_offset as u64,
                            record_length: r.record_length as u32,
                        })
                        .collect(),
                }
            })
            .collect()
    }

    #[test]
    fn parallel_matches_sequential() {
        let (root, repo) = temp_repo("eq");
        let extractor = FormatRegistry::default();
        let groups = groups_for(&repo, &extractor);
        assert!(groups.len() > 2, "need several files to parallelize");

        let seq = extract_groups(&extractor, &groups, 1);
        for threads in [2, 4, 8] {
            let par = extract_groups(&extractor, &groups, threads);
            assert_eq!(par.len(), seq.len());
            for (a, b) in seq.iter().zip(&par) {
                let a = a.as_ref().unwrap();
                let b = b.as_ref().unwrap();
                assert_eq!(a.len(), b.len());
                for (ra, rb) in a.iter().zip(b) {
                    assert_eq!(ra.seq_no, rb.seq_no);
                    assert_eq!(ra.samples, rb.samples);
                    assert_eq!(
                        ra.table.to_ascii(ra.samples + 1),
                        rb.table.to_ascii(rb.samples + 1)
                    );
                }
            }
        }
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn empty_groups_do_not_touch_files() {
        let (root, repo) = temp_repo("empty");
        let extractor = FormatRegistry::default();
        let mut groups = groups_for(&repo, &extractor);
        for g in &mut groups {
            g.to_extract.clear();
        }
        // Even with a bogus path the empty group must not error, because
        // the file is never opened.
        groups[0].entry.path = std::path::PathBuf::from("/nonexistent/file.mseed");
        let results = extract_groups(&extractor, &groups, 4);
        for r in results {
            assert!(r.unwrap().is_empty());
        }
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn extraction_errors_are_reported_per_group() {
        let (root, repo) = temp_repo("err");
        let extractor = FormatRegistry::default();
        let mut groups = groups_for(&repo, &extractor);
        groups[1].entry.path = std::path::PathBuf::from("/nonexistent/file.mseed");
        let results = extract_groups(&extractor, &groups, 4);
        assert!(results[0].is_ok());
        assert!(results[1].is_err(), "missing file surfaces as that group's error");
        if results.len() > 2 {
            assert!(results[2].is_ok(), "other groups are unaffected");
        }
        std::fs::remove_dir_all(&root).ok();
    }
}
