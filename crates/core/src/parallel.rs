//! Parallel lazy extraction: decode several files' records concurrently.
//!
//! The lazy rewriter hands the warehouse a set of (file, record) pairs to
//! materialize. Files are independent — each has its own byte ranges and
//! codec state — so extraction parallelizes at file granularity with no
//! shared mutable state beyond the lock-striped record cache. Workers
//! **admit each record to the cache as soon as it is materialized**
//! ([`extract_groups_into`]): a record's shard is the hash of its
//! `(file_id, seq_no)` key, so concurrent workers land on different
//! stripes and never serialize on one global lock. Cache triage before
//! and row assembly after stay sequential in the caller, so the assembled
//! `D` rows are byte-identical to the sequential path regardless of
//! thread count, and the set of cached records is too (only intra-shard
//! admission *order* can vary when workers share a stripe).
//!
//! This is an extension beyond the paper's single-threaded demo (its
//! "near real-time ETL" outlook, §1); experiment E10 measures the
//! speedup against extraction-bound queries and E12 drives it from many
//! client threads at once.

use crate::cache::RecyclingCache;
use crate::error::{EtlError, Result};
use crate::extract::{FormatRegistry, RecordLocator};
use lazyetl_mseed::Timestamp;
use lazyetl_repo::{FileEntry, LazySource};
use lazyetl_store::Table;
use std::sync::Arc;

pub use lazyetl_store::parallel::{parallel_map, try_parallel_map, WorkerPanic};

/// One record decoded and materialized into its `D`-schema rows.
#[derive(Debug, Clone)]
pub struct ExtractedRecord {
    /// Record sequence number (the cache key component).
    pub seq_no: i64,
    /// Samples decoded.
    pub samples: usize,
    /// The record's `D` rows, ready to append and cache.
    pub table: Arc<Table>,
    /// Entries evicted from the record's cache shard when this record was
    /// admitted by the extraction worker (0 when no cache was supplied).
    pub evicted_on_admit: usize,
}

/// One file's worth of work for the fetch pipeline: the cache triage
/// result (phase A) and the extraction input (phase B).
///
/// Carries the [`LazySource`] the entry came from — extraction workers
/// route reads through it — and the **warehouse-global** file id, which
/// in a federated warehouse differs from `entry.id` (the mount-local id).
#[derive(Debug)]
pub struct FileGroup<'a> {
    /// The source the entry belongs to (reads go through it).
    pub source: &'a dyn LazySource,
    /// Warehouse-global file id: the cache key and `D.file_id` value.
    pub file_id: i64,
    /// Mount-qualified URI for logs and accounting.
    pub display_uri: String,
    /// The repository entry to extract from.
    pub entry: FileEntry,
    /// The file's modification time observed at triage; extracted records
    /// are admitted to the cache under this timestamp.
    pub current_mtime: Timestamp,
    /// Tables served from the cache, in the order the pairs were seen.
    pub hit_tables: Vec<Arc<Table>>,
    /// Locators still requiring extraction, sorted by byte offset.
    pub to_extract: Vec<RecordLocator>,
}

/// Extract every group's records and materialize their `D` rows, using up
/// to `threads` worker threads. See [`extract_groups_into`] — this variant
/// skips cache admission.
pub fn extract_groups(
    extractor: &FormatRegistry,
    groups: &[FileGroup<'_>],
    threads: usize,
) -> Vec<Result<Vec<ExtractedRecord>>> {
    extract_groups_into(extractor, groups, threads, None)
}

/// Extract every group's records, materialize their `D` rows, and — when a
/// cache is supplied — **admit each record to its cache shard from the
/// worker that decoded it**, using up to `threads` worker threads.
///
/// Decoding, columnar materialization and cache admission all run on the
/// workers — the per-record costs that are independent across files.
/// Admission from workers is what lets N extraction threads feed the
/// lock-striped cache without serializing on one lock; the per-record
/// eviction count is reported in [`ExtractedRecord::evicted_on_admit`] so
/// the caller can keep its accounting. Results are positionally aligned
/// with `groups` (and within a group with its `to_extract` list); groups
/// with nothing to extract yield an empty vector without touching the
/// file. With `threads <= 1` the work runs on the calling thread in group
/// order, which is the paper's sequential behaviour — including admission,
/// so cached contents match the parallel path.
pub fn extract_groups_into(
    extractor: &FormatRegistry,
    groups: &[FileGroup<'_>],
    threads: usize,
    cache: Option<&RecyclingCache>,
) -> Vec<Result<Vec<ExtractedRecord>>> {
    let work: Vec<usize> = groups
        .iter()
        .enumerate()
        .filter(|(_, g)| !g.to_extract.is_empty())
        .map(|(i, _)| i)
        .collect();
    // Panics in a worker are contained per file: one poisoned record
    // fails that group with an `EtlError` instead of unwinding through
    // the pool and killing every other group (and the serving worker
    // that issued the query).
    let results = try_parallel_map(&work, threads, |&i| {
        extract_one(extractor, &groups[i], cache)
    });
    let mut out: Vec<Result<Vec<ExtractedRecord>>> =
        groups.iter().map(|_| Ok(Vec::new())).collect();
    for (&i, r) in work.iter().zip(results) {
        out[i] = match r {
            Ok(r) => r,
            Err(p) => Err(EtlError::Internal(format!("extraction {p}"))),
        };
    }
    out
}

fn extract_one(
    extractor: &FormatRegistry,
    group: &FileGroup<'_>,
    cache: Option<&RecyclingCache>,
) -> Result<Vec<ExtractedRecord>> {
    let file_id = group.file_id;
    extractor
        .for_entry(&group.entry)?
        .extract_records(group.source, &group.entry, &group.to_extract)?
        .into_iter()
        .map(|rd| {
            let table = Arc::new(rd.to_table(file_id)?);
            let evicted_on_admit = match cache {
                Some(c) => c.insert((file_id, rd.seq_no), table.clone(), group.current_mtime),
                None => 0,
            };
            Ok(ExtractedRecord {
                seq_no: rd.seq_no,
                samples: rd.values.len(),
                table,
                evicted_on_admit,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazyetl_mseed::gen::{generate_repository, GeneratorConfig};
    use lazyetl_repo::Repository;

    fn temp_repo(tag: &str) -> (std::path::PathBuf, Repository) {
        let root = std::env::temp_dir().join(format!("lazyetl_par_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&root).ok();
        std::fs::create_dir_all(&root).unwrap();
        let config = GeneratorConfig {
            files_per_stream: 3,
            file_duration_secs: 60,
            seed: 0xAA17,
            ..Default::default()
        };
        generate_repository(&root, &config).unwrap();
        let repo = Repository::open(root.clone()).unwrap();
        (root, repo)
    }

    fn groups_for<'a>(repo: &'a Repository, extractor: &FormatRegistry) -> Vec<FileGroup<'a>> {
        repo.files()
            .iter()
            .map(|entry| {
                let md = extractor
                    .for_entry(entry)
                    .unwrap()
                    .scan_metadata(repo, entry)
                    .unwrap();
                FileGroup {
                    source: repo,
                    file_id: entry.id.0 as i64,
                    display_uri: entry.uri.clone(),
                    entry: entry.clone(),
                    current_mtime: entry.mtime,
                    hit_tables: Vec::new(),
                    to_extract: md
                        .records
                        .iter()
                        .map(|r| RecordLocator {
                            seq_no: r.seq_no,
                            byte_offset: r.byte_offset as u64,
                            record_length: r.record_length as u32,
                        })
                        .collect(),
                }
            })
            .collect()
    }

    #[test]
    fn parallel_matches_sequential() {
        let (root, repo) = temp_repo("eq");
        let extractor = FormatRegistry::default();
        let groups = groups_for(&repo, &extractor);
        assert!(groups.len() > 2, "need several files to parallelize");

        let seq = extract_groups(&extractor, &groups, 1);
        for threads in [2, 4, 8] {
            let par = extract_groups(&extractor, &groups, threads);
            assert_eq!(par.len(), seq.len());
            for (a, b) in seq.iter().zip(&par) {
                let a = a.as_ref().unwrap();
                let b = b.as_ref().unwrap();
                assert_eq!(a.len(), b.len());
                for (ra, rb) in a.iter().zip(b) {
                    assert_eq!(ra.seq_no, rb.seq_no);
                    assert_eq!(ra.samples, rb.samples);
                    assert_eq!(
                        ra.table.to_ascii(ra.samples + 1),
                        rb.table.to_ascii(rb.samples + 1)
                    );
                }
            }
        }
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn empty_groups_do_not_touch_files() {
        let (root, repo) = temp_repo("empty");
        let extractor = FormatRegistry::default();
        let mut groups = groups_for(&repo, &extractor);
        for g in &mut groups {
            g.to_extract.clear();
        }
        // Even with a bogus path the empty group must not error, because
        // the file is never opened.
        groups[0].entry.path = std::path::PathBuf::from("/nonexistent/file.mseed");
        let results = extract_groups(&extractor, &groups, 4);
        for r in results {
            assert!(r.unwrap().is_empty());
        }
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn workers_admit_records_to_the_sharded_cache() {
        let (root, repo) = temp_repo("admit");
        let extractor = FormatRegistry::default();
        let groups = groups_for(&repo, &extractor);
        let cache = RecyclingCache::new(256 << 20);
        let results = extract_groups_into(&extractor, &groups, 4, Some(&cache));
        let total: usize = results.iter().map(|r| r.as_ref().unwrap().len()).sum();
        assert!(total > 0);
        assert_eq!(cache.len(), total, "every extracted record was admitted");
        // Every admitted record serves a hit at its triage mtime.
        for (g, rs) in groups.iter().zip(&results) {
            for r in rs.as_ref().unwrap() {
                assert!(matches!(
                    cache.get((g.entry.id.0 as i64, r.seq_no), g.current_mtime),
                    crate::cache::CacheLookup::Hit(_)
                ));
                assert_eq!(r.evicted_on_admit, 0, "ample budget evicts nothing");
            }
        }
        // The no-cache variant leaves the cache untouched.
        let cache2 = RecyclingCache::new(256 << 20);
        let _ = extract_groups(&extractor, &groups, 4);
        assert!(cache2.is_empty());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn parallel_map_preserves_order_at_any_thread_count() {
        let items: Vec<u64> = (0..37).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [0usize, 1, 2, 4, 16] {
            assert_eq!(parallel_map(&items, threads, |&x| x * x), expect);
        }
        let empty: Vec<u64> = Vec::new();
        assert!(parallel_map(&empty, 4, |&x: &u64| x).is_empty());
    }

    #[test]
    fn extraction_errors_are_reported_per_group() {
        let (root, repo) = temp_repo("err");
        let extractor = FormatRegistry::default();
        let mut groups = groups_for(&repo, &extractor);
        groups[1].entry.path = std::path::PathBuf::from("/nonexistent/file.mseed");
        let results = extract_groups(&extractor, &groups, 4);
        assert!(results[0].is_ok());
        assert!(
            results[1].is_err(),
            "missing file surfaces as that group's error"
        );
        if results.len() > 2 {
            assert!(results[2].is_ok(), "other groups are unaffected");
        }
        std::fs::remove_dir_all(&root).ok();
    }
}
