//! Extraction: turning source files into warehouse rows.
//!
//! The [`Extractor`] trait is the format-specific boundary the paper
//! describes ("internally these operators use external scientific library
//! calls to extract the data from the specific file formats", §3.1). Two
//! operations exist, mirroring the lazy/eager split:
//!
//! * [`Extractor::scan_metadata`] — cheap: header-only scan producing one
//!   `F` row and the file's `R` rows;
//! * [`Extractor::extract_records`] — expensive: decode the payload of
//!   *selected* records, applying the record-level transformations (count →
//!   f64 widening, per-sample timestamping) that §3.2 attaches to the end of
//!   the extraction phase.
//!
//! Adding a new scientific format (the paper mentions GeoTIFF) means
//! implementing this trait; nothing else in the warehouse changes.

use crate::error::{EtlError, Result};
use crate::schema;
use lazyetl_mseed::{read_records_at, scan_metadata_file, Timestamp};
use lazyetl_repo::FileEntry;
use lazyetl_store::{Table, Value};

/// One `F`-table row in typed form.
#[derive(Debug, Clone, PartialEq)]
pub struct FileMetaRow {
    /// Stable file id from the repository registry.
    pub file_id: i64,
    /// Repository URI.
    pub uri: String,
    /// File size in bytes.
    pub size: i64,
    /// Modification time.
    pub mtime: Timestamp,
    /// NSLC identity of the (first) stream in the file.
    pub network: Option<String>,
    /// Station code.
    pub station: Option<String>,
    /// Location code.
    pub location: Option<String>,
    /// Channel code.
    pub channel: Option<String>,
    /// Earliest record start.
    pub start_time: Option<Timestamp>,
    /// Latest record end.
    pub end_time: Option<Timestamp>,
    /// Record count.
    pub num_records: i64,
    /// Total sample count.
    pub num_samples: i64,
    /// Nominal sample rate of the first record.
    pub sample_rate: Option<f64>,
    /// Payload encoding name of the first record.
    pub encoding: Option<String>,
}

/// One `R`-table row in typed form.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordMetaRow {
    /// Owning file.
    pub file_id: i64,
    /// Record sequence number (unique per file).
    pub seq_no: i64,
    /// First sample time.
    pub start_time: Timestamp,
    /// Exclusive end time.
    pub end_time: Timestamp,
    /// Samples in the record.
    pub num_samples: i64,
    /// Sample rate in Hz.
    pub sample_rate: f64,
    /// Byte offset inside the file (extraction locator).
    pub byte_offset: i64,
    /// Record length in bytes (extraction locator).
    pub record_length: i64,
    /// Data quality indicator.
    pub quality: String,
    /// Timing quality percent (255 = absent).
    pub timing_quality: i64,
    /// Payload encoding name.
    pub encoding: String,
}

/// Metadata of one file: the `F` row plus its `R` rows.
#[derive(Debug, Clone)]
pub struct FileMetadata {
    /// The file-level row.
    pub file: FileMetaRow,
    /// Per-record rows in file order.
    pub records: Vec<RecordMetaRow>,
    /// Bytes read to obtain the metadata (lazy-loading I/O accounting).
    pub bytes_read: u64,
}

/// Where to find one record inside its file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordLocator {
    /// Record sequence number.
    pub seq_no: i64,
    /// Byte offset in the file.
    pub byte_offset: u64,
    /// Record length in bytes.
    pub record_length: u32,
}

/// Decoded and transformed data of one record, ready for the `D` table.
#[derive(Debug, Clone)]
pub struct RecordData {
    /// Record sequence number.
    pub seq_no: i64,
    /// First sample time.
    pub start: Timestamp,
    /// Sample period in µs.
    pub period_us: i64,
    /// Sample values, widened to f64 (the record-level transformation).
    pub values: Vec<f64>,
}

impl RecordData {
    /// Materialize this record's rows into a `D`-schema table.
    ///
    /// Builds the four columns directly (no per-row `Value` boxing): the
    /// `D` table is by far the hottest structure in the system.
    pub fn to_table(&self, file_id: i64) -> Result<Table> {
        use lazyetl_store::{Column, ColumnData};
        let n = self.values.len();
        let start = self.start.micros();
        let times: Vec<i64> = (0..n as i64).map(|i| start + self.period_us * i).collect();
        let columns = vec![
            Column::new(ColumnData::Int64(vec![file_id; n])),
            Column::new(ColumnData::Int64(vec![self.seq_no; n])),
            Column::new(ColumnData::Timestamp(times)),
            Column::new(ColumnData::Float64(self.values.clone())),
        ];
        Ok(Table::new(schema::data_schema(), columns)?)
    }
}

/// Format-specific extraction boundary.
pub trait Extractor: Send + Sync {
    /// Header-only scan: produce the file's metadata rows.
    fn scan_metadata(&self, entry: &FileEntry) -> Result<FileMetadata>;

    /// Decode the payloads of the given records.
    fn extract_records(
        &self,
        entry: &FileEntry,
        locators: &[RecordLocator],
    ) -> Result<Vec<RecordData>>;
}

/// The MiniSEED extractor.
#[derive(Debug, Default, Clone, Copy)]
pub struct MseedExtractor;

impl Extractor for MseedExtractor {
    fn scan_metadata(&self, entry: &FileEntry) -> Result<FileMetadata> {
        let scan = scan_metadata_file(&entry.path)?;
        let first = scan.records.first();
        let file = FileMetaRow {
            file_id: entry.id.0 as i64,
            uri: entry.uri.clone(),
            size: entry.size as i64,
            mtime: entry.mtime,
            network: first.map(|r| r.source.network.clone()),
            station: first.map(|r| r.source.station.clone()),
            location: first.map(|r| r.source.location.clone()),
            channel: first.map(|r| r.source.channel.clone()),
            start_time: scan.min_start(),
            end_time: scan.max_end(),
            num_records: scan.records.len() as i64,
            num_samples: scan.total_samples() as i64,
            sample_rate: first.map(|r| r.sample_rate),
            encoding: first.map(|r| r.encoding.name().to_string()),
        };
        let records = scan
            .records
            .iter()
            .map(|r| RecordMetaRow {
                file_id: entry.id.0 as i64,
                seq_no: r.sequence_number as i64,
                start_time: r.start,
                end_time: r.end,
                num_samples: r.num_samples as i64,
                sample_rate: r.sample_rate,
                byte_offset: r.byte_offset as i64,
                record_length: r.record_length as i64,
                quality: r.quality.to_string(),
                timing_quality: r.timing_quality as i64,
                encoding: r.encoding.name().to_string(),
            })
            .collect();
        Ok(FileMetadata {
            file,
            records,
            bytes_read: scan.bytes_read,
        })
    }

    fn extract_records(
        &self,
        entry: &FileEntry,
        locators: &[RecordLocator],
    ) -> Result<Vec<RecordData>> {
        let offsets: Vec<(u64, u32)> = locators
            .iter()
            .map(|l| (l.byte_offset, l.record_length))
            .collect();
        let records = read_records_at(&entry.path, &offsets)?;
        let mut out = Vec::with_capacity(records.len());
        for (rec, loc) in records.iter().zip(locators) {
            if rec.header.sequence_number as i64 != loc.seq_no {
                return Err(EtlError::Internal(format!(
                    "record at offset {} of {} has sequence {} but metadata says {} \
                     (file changed without refresh?)",
                    loc.byte_offset, entry.uri, rec.header.sequence_number, loc.seq_no
                )));
            }
            let samples = rec.decode_samples()?;
            let rate = rec.sample_rate();
            let period_us = if rate <= 0.0 {
                0
            } else {
                (1_000_000.0 / rate).round() as i64
            };
            out.push(RecordData {
                seq_no: loc.seq_no,
                start: rec.start_timestamp()?,
                period_us,
                values: samples.to_f64(),
            });
        }
        Ok(out)
    }
}

/// The SAC extractor: one record per file, float samples.
///
/// Proves the extraction boundary format-agnostic (§2 of the paper calls
/// out multiple complex scientific formats behind one warehouse): the
/// warehouse, rewriter and cache are unchanged; only this impl differs.
#[derive(Debug, Default, Clone, Copy)]
pub struct SacExtractor;

impl Extractor for SacExtractor {
    fn scan_metadata(&self, entry: &FileEntry) -> Result<FileMetadata> {
        let header = lazyetl_mseed::sac::scan_sac_header(&entry.path)?;
        let encoding = "SAC-F32".to_string();
        let file = FileMetaRow {
            file_id: entry.id.0 as i64,
            uri: entry.uri.clone(),
            size: entry.size as i64,
            mtime: entry.mtime,
            network: Some(header.source.network.clone()),
            station: Some(header.source.station.clone()),
            location: Some(header.source.location.clone()),
            channel: Some(header.source.channel.clone()),
            start_time: Some(header.start),
            end_time: Some(header.end()),
            num_records: 1,
            num_samples: header.npts as i64,
            sample_rate: Some(header.sample_rate()),
            encoding: Some(encoding.clone()),
        };
        let records = vec![RecordMetaRow {
            file_id: entry.id.0 as i64,
            seq_no: 0,
            start_time: header.start,
            end_time: header.end(),
            num_samples: header.npts as i64,
            sample_rate: header.sample_rate(),
            byte_offset: lazyetl_mseed::sac::SAC_HEADER_SIZE as i64,
            record_length: (header.npts * 4) as i64,
            quality: "D".to_string(),
            timing_quality: 255,
            encoding,
        }];
        Ok(FileMetadata {
            file,
            records,
            bytes_read: lazyetl_mseed::sac::SAC_HEADER_SIZE as u64,
        })
    }

    fn extract_records(
        &self,
        entry: &FileEntry,
        locators: &[RecordLocator],
    ) -> Result<Vec<RecordData>> {
        if locators.is_empty() {
            return Ok(Vec::new());
        }
        // A SAC file is one record; any locator set resolves to it.
        for loc in locators {
            if loc.seq_no != 0 {
                return Err(EtlError::Internal(format!(
                    "SAC file {} has only record 0, requested {}",
                    entry.uri, loc.seq_no
                )));
            }
        }
        let file = lazyetl_mseed::sac::read_sac(&entry.path)?;
        let period_us = if file.sample_rate() > 0.0 {
            (1e6 / file.sample_rate()).round() as i64
        } else {
            0
        };
        Ok(vec![RecordData {
            seq_no: 0,
            start: file.start,
            period_us,
            values: file.samples.iter().map(|&v| v as f64).collect(),
        }])
    }
}

/// Chooses an extractor per file, by extension.
///
/// The registry is the warehouse's only knowledge of file formats; adding
/// a format means adding an [`Extractor`] impl and one arm here.
#[derive(Debug, Default, Clone, Copy)]
pub struct FormatRegistry {
    mseed: MseedExtractor,
    sac: SacExtractor,
}

impl FormatRegistry {
    /// The extractor responsible for a repository entry.
    pub fn for_entry(&self, entry: &FileEntry) -> Result<&dyn Extractor> {
        let ext = entry
            .path
            .extension()
            .map(|e| e.to_string_lossy().to_ascii_lowercase())
            .unwrap_or_default();
        match ext.as_str() {
            "mseed" | "miniseed" | "msd" => Ok(&self.mseed),
            "sac" => Ok(&self.sac),
            other => Err(EtlError::Internal(format!(
                "no extractor registered for extension {other:?} ({})",
                entry.uri
            ))),
        }
    }
}

/// Append a [`FileMetaRow`] to an `F`-schema table.
pub fn push_file_row(table: &mut Table, row: &FileMetaRow) -> Result<()> {
    let opt_str = |v: &Option<String>| match v {
        Some(s) => Value::Utf8(s.clone()),
        None => Value::Null,
    };
    let opt_ts = |v: &Option<Timestamp>| match v {
        Some(t) => Value::Timestamp(t.micros()),
        None => Value::Null,
    };
    table.append_row(vec![
        Value::Int64(row.file_id),
        Value::Utf8(row.uri.clone()),
        Value::Int64(row.size),
        Value::Timestamp(row.mtime.micros()),
        opt_str(&row.network),
        opt_str(&row.station),
        opt_str(&row.location),
        opt_str(&row.channel),
        opt_ts(&row.start_time),
        opt_ts(&row.end_time),
        Value::Int64(row.num_records),
        Value::Int64(row.num_samples),
        match row.sample_rate {
            Some(r) => Value::Float64(r),
            None => Value::Null,
        },
        opt_str(&row.encoding),
    ])?;
    Ok(())
}

/// Append a [`RecordMetaRow`] to an `R`-schema table.
pub fn push_record_row(table: &mut Table, row: &RecordMetaRow) -> Result<()> {
    table.append_row(vec![
        Value::Int64(row.file_id),
        Value::Int64(row.seq_no),
        Value::Timestamp(row.start_time.micros()),
        Value::Timestamp(row.end_time.micros()),
        Value::Int64(row.num_samples),
        Value::Float64(row.sample_rate),
        Value::Int64(row.byte_offset),
        Value::Int64(row.record_length),
        Value::Utf8(row.quality.clone()),
        Value::Int64(row.timing_quality),
        Value::Utf8(row.encoding.clone()),
    ])?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazyetl_mseed::gen::{generate_repository, GeneratorConfig};
    use lazyetl_repo::Repository;
    use std::path::PathBuf;

    fn setup(tag: &str) -> (PathBuf, Repository) {
        let dir =
            std::env::temp_dir().join(format!("lazyetl_extract_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        // Small records so every file holds several (selective extraction
        // needs record granularity).
        let cfg = GeneratorConfig {
            record_length: 512,
            ..GeneratorConfig::tiny(21)
        };
        generate_repository(&dir, &cfg).unwrap();
        let repo = Repository::open(&dir).unwrap();
        (dir, repo)
    }

    #[test]
    fn metadata_scan_produces_consistent_rows() {
        let (dir, repo) = setup("meta");
        let x = MseedExtractor;
        for entry in repo.files() {
            let md = x.scan_metadata(entry).unwrap();
            assert_eq!(md.file.file_id, entry.id.0 as i64);
            assert_eq!(md.file.uri, entry.uri);
            assert_eq!(md.file.num_records as usize, md.records.len());
            assert!(md.file.num_samples > 0);
            assert!(md.bytes_read < entry.size, "metadata read must be partial");
            let total: i64 = md.records.iter().map(|r| r.num_samples).sum();
            assert_eq!(total, md.file.num_samples);
            // records ordered and locatable
            for w in md.records.windows(2) {
                assert!(w[0].byte_offset < w[1].byte_offset);
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn selective_extraction_matches_metadata() {
        let (dir, repo) = setup("extract");
        let x = MseedExtractor;
        let entry = &repo.files()[0];
        let md = x.scan_metadata(entry).unwrap();
        assert!(md.records.len() >= 2, "need multiple records");
        let pick = &md.records[1];
        let loc = RecordLocator {
            seq_no: pick.seq_no,
            byte_offset: pick.byte_offset as u64,
            record_length: pick.record_length as u32,
        };
        let data = x.extract_records(entry, &[loc]).unwrap();
        assert_eq!(data.len(), 1);
        assert_eq!(data[0].values.len() as i64, pick.num_samples);
        assert_eq!(data[0].start, pick.start_time);
        // D-table materialization timestamps every sample.
        let t = data[0].to_table(entry.id.0 as i64).unwrap();
        assert_eq!(t.num_rows() as i64, pick.num_samples);
        let first_time = t.row(0).unwrap()[2].clone();
        assert_eq!(first_time, Value::Timestamp(pick.start_time.micros()));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mismatched_locator_detected() {
        let (dir, repo) = setup("mismatch");
        let x = MseedExtractor;
        let entry = &repo.files()[0];
        let md = x.scan_metadata(entry).unwrap();
        let pick = &md.records[0];
        let loc = RecordLocator {
            seq_no: pick.seq_no + 999, // wrong expectation
            byte_offset: pick.byte_offset as u64,
            record_length: pick.record_length as u32,
        };
        assert!(matches!(
            x.extract_records(entry, &[loc]),
            Err(EtlError::Internal(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn meta_rows_fit_warehouse_schemas() {
        let (dir, repo) = setup("rows");
        let x = MseedExtractor;
        let md = x.scan_metadata(&repo.files()[0]).unwrap();
        let mut f = Table::empty(schema::files_schema());
        push_file_row(&mut f, &md.file).unwrap();
        assert_eq!(f.num_rows(), 1);
        let mut r = Table::empty(schema::records_schema());
        for row in &md.records {
            push_record_row(&mut r, row).unwrap();
        }
        assert_eq!(r.num_rows(), md.records.len());
        std::fs::remove_dir_all(&dir).ok();
    }
}
