//! Extraction: turning source files into warehouse rows.
//!
//! The [`Extractor`] trait is the format-specific boundary the paper
//! describes ("internally these operators use external scientific library
//! calls to extract the data from the specific file formats", §3.1). Two
//! operations exist, mirroring the lazy/eager split:
//!
//! * [`Extractor::scan_metadata`] — cheap: header-only scan producing one
//!   `F` row and the file's `R` rows;
//! * [`Extractor::extract_records`] — expensive: decode the payload of
//!   *selected* records, applying the record-level transformations (count →
//!   f64 widening, per-sample timestamping) that §3.2 attaches to the end of
//!   the extraction phase.
//!
//! Both take the [`LazySource`] the entry came from. Sources that are
//! plain local directories expose a path
//! ([`LazySource::local_path`]) and extraction reads it directly; remote
//! sources return `None` and every read is routed through
//! [`LazySource::fetch_range`] — header scans via the buffering
//! [`RangedReader`], payload decodes via coalesced byte-range fetches —
//! so transfers stay observable and costed.
//!
//! Adding a new scientific format (the paper mentions GeoTIFF) means
//! implementing this trait; nothing else in the warehouse changes.
//! [`CsvExtractor`] is the worked example: a text format with no binary
//! index, lazily fetchable in fixed-size record groups.

use crate::error::{EtlError, Result};
use crate::schema;
use lazyetl_mseed::{read_records_at, scan_metadata_file, Timestamp};
use lazyetl_repo::{FileEntry, LazySource};
use lazyetl_store::{Table, Value};
use std::io::{Read, Seek, SeekFrom};

/// One `F`-table row in typed form.
#[derive(Debug, Clone, PartialEq)]
pub struct FileMetaRow {
    /// Stable file id from the repository registry.
    pub file_id: i64,
    /// Repository URI.
    pub uri: String,
    /// File size in bytes.
    pub size: i64,
    /// Modification time.
    pub mtime: Timestamp,
    /// NSLC identity of the (first) stream in the file.
    pub network: Option<String>,
    /// Station code.
    pub station: Option<String>,
    /// Location code.
    pub location: Option<String>,
    /// Channel code.
    pub channel: Option<String>,
    /// Earliest record start.
    pub start_time: Option<Timestamp>,
    /// Latest record end.
    pub end_time: Option<Timestamp>,
    /// Record count.
    pub num_records: i64,
    /// Total sample count.
    pub num_samples: i64,
    /// Nominal sample rate of the first record.
    pub sample_rate: Option<f64>,
    /// Payload encoding name of the first record.
    pub encoding: Option<String>,
}

/// One `R`-table row in typed form.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordMetaRow {
    /// Owning file.
    pub file_id: i64,
    /// Record sequence number (unique per file).
    pub seq_no: i64,
    /// First sample time.
    pub start_time: Timestamp,
    /// Exclusive end time.
    pub end_time: Timestamp,
    /// Samples in the record.
    pub num_samples: i64,
    /// Sample rate in Hz.
    pub sample_rate: f64,
    /// Byte offset inside the file (extraction locator).
    pub byte_offset: i64,
    /// Record length in bytes (extraction locator).
    pub record_length: i64,
    /// Data quality indicator.
    pub quality: String,
    /// Timing quality percent (255 = absent).
    pub timing_quality: i64,
    /// Payload encoding name.
    pub encoding: String,
}

/// Metadata of one file: the `F` row plus its `R` rows.
#[derive(Debug, Clone)]
pub struct FileMetadata {
    /// The file-level row.
    pub file: FileMetaRow,
    /// Per-record rows in file order.
    pub records: Vec<RecordMetaRow>,
    /// Bytes read to obtain the metadata (lazy-loading I/O accounting).
    pub bytes_read: u64,
}

/// Where to find one record inside its file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordLocator {
    /// Record sequence number.
    pub seq_no: i64,
    /// Byte offset in the file.
    pub byte_offset: u64,
    /// Record length in bytes.
    pub record_length: u32,
}

/// Decoded and transformed data of one record, ready for the `D` table.
#[derive(Debug, Clone)]
pub struct RecordData {
    /// Record sequence number.
    pub seq_no: i64,
    /// First sample time.
    pub start: Timestamp,
    /// Sample period in µs.
    pub period_us: i64,
    /// Sample values, widened to f64 (the record-level transformation).
    pub values: Vec<f64>,
}

impl RecordData {
    /// Materialize this record's rows into a `D`-schema table.
    ///
    /// Builds the four columns directly (no per-row `Value` boxing): the
    /// `D` table is by far the hottest structure in the system.
    pub fn to_table(&self, file_id: i64) -> Result<Table> {
        use lazyetl_store::{Column, ColumnData};
        let n = self.values.len();
        let start = self.start.micros();
        let times: Vec<i64> = (0..n as i64).map(|i| start + self.period_us * i).collect();
        let columns = vec![
            Column::new(ColumnData::Int64(vec![file_id; n])),
            Column::new(ColumnData::Int64(vec![self.seq_no; n])),
            Column::new(ColumnData::Timestamp(times)),
            Column::new(ColumnData::Float64(self.values.clone())),
        ];
        Ok(Table::new(schema::data_schema(), columns)?)
    }
}

/// Format-specific extraction boundary.
pub trait Extractor: Send + Sync {
    /// Header-only scan: produce the file's metadata rows.
    fn scan_metadata(&self, src: &dyn LazySource, entry: &FileEntry) -> Result<FileMetadata>;

    /// Decode the payloads of the given records.
    fn extract_records(
        &self,
        src: &dyn LazySource,
        entry: &FileEntry,
        locators: &[RecordLocator],
    ) -> Result<Vec<RecordData>>;
}

/// Read-ahead granularity of [`RangedReader`]: small enough that a
/// header-hopping metadata scan over a remote source doesn't transfer
/// whole files, large enough to amortize per-request latency.
pub const RANGED_READ_AHEAD: u64 = 64 * 1024;

/// Buffered [`Read`] + [`Seek`] adapter over [`LazySource::fetch_range`].
///
/// Lets byte-stream parsers (the MiniSEED metadata scan) run unchanged
/// against path-less sources. Fetches [`RANGED_READ_AHEAD`]-sized chunks
/// and serves small reads from the buffer; [`Self::fetched_bytes`] is the
/// honest transfer cost, which can exceed the parser's own byte count.
pub struct RangedReader<'a> {
    src: &'a dyn LazySource,
    entry: &'a FileEntry,
    pos: u64,
    buf: Vec<u8>,
    buf_start: u64,
    fetched: u64,
}

impl<'a> RangedReader<'a> {
    /// A reader positioned at byte 0 of `entry`.
    pub fn new(src: &'a dyn LazySource, entry: &'a FileEntry) -> RangedReader<'a> {
        RangedReader {
            src,
            entry,
            pos: 0,
            buf: Vec::new(),
            buf_start: 0,
            fetched: 0,
        }
    }

    /// Total bytes transferred from the source so far.
    pub fn fetched_bytes(&self) -> u64 {
        self.fetched
    }
}

impl Read for RangedReader<'_> {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        if out.is_empty() || self.pos >= self.entry.size {
            return Ok(0);
        }
        let in_buf =
            self.pos >= self.buf_start && self.pos < self.buf_start + self.buf.len() as u64;
        if !in_buf {
            let want = RANGED_READ_AHEAD.max(out.len() as u64);
            let chunk = self
                .src
                .fetch_range(self.entry, self.pos, want)
                .map_err(std::io::Error::other)?;
            if chunk.is_empty() {
                return Ok(0);
            }
            self.fetched += chunk.len() as u64;
            self.buf_start = self.pos;
            self.buf = chunk;
        }
        let off = (self.pos - self.buf_start) as usize;
        let n = out.len().min(self.buf.len() - off);
        out[..n].copy_from_slice(&self.buf[off..off + n]);
        self.pos += n as u64;
        Ok(n)
    }
}

impl Seek for RangedReader<'_> {
    fn seek(&mut self, pos: SeekFrom) -> std::io::Result<u64> {
        let target = match pos {
            SeekFrom::Start(n) => n as i64,
            SeekFrom::Current(d) => self.pos as i64 + d,
            SeekFrom::End(d) => self.entry.size as i64 + d,
        };
        if target < 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "seek before start",
            ));
        }
        self.pos = target as u64;
        Ok(self.pos)
    }
}

/// Read `len` bytes at `offset`, via the local path when the source has
/// one and via a ranged fetch otherwise. Truncates at EOF.
fn read_bytes(src: &dyn LazySource, entry: &FileEntry, offset: u64, len: u64) -> Result<Vec<u8>> {
    match src.local_path(entry) {
        Some(path) => Ok(lazyetl_repo::read_file_range(path, offset, len)?),
        None => Ok(src.fetch_range(entry, offset, len)?),
    }
}

/// The MiniSEED extractor.
#[derive(Debug, Default, Clone, Copy)]
pub struct MseedExtractor;

impl MseedExtractor {
    /// Apply the record-level transformation to one parsed record,
    /// validating it against the locator that found it.
    fn record_to_data(
        rec: &lazyetl_mseed::Record,
        loc: &RecordLocator,
        uri: &str,
    ) -> Result<RecordData> {
        if rec.header.sequence_number as i64 != loc.seq_no {
            return Err(EtlError::Internal(format!(
                "record at offset {} of {} has sequence {} but metadata says {} \
                 (file changed without refresh?)",
                loc.byte_offset, uri, rec.header.sequence_number, loc.seq_no
            )));
        }
        let samples = rec.decode_samples()?;
        let rate = rec.sample_rate();
        let period_us = if rate <= 0.0 {
            0
        } else {
            (1_000_000.0 / rate).round() as i64
        };
        Ok(RecordData {
            seq_no: loc.seq_no,
            start: rec.start_timestamp()?,
            period_us,
            values: samples.to_f64(),
        })
    }
}

impl Extractor for MseedExtractor {
    fn scan_metadata(&self, src: &dyn LazySource, entry: &FileEntry) -> Result<FileMetadata> {
        let scan = match src.local_path(entry) {
            Some(path) => scan_metadata_file(path)?,
            None => {
                let mut reader = RangedReader::new(src, entry);
                let mut scan = lazyetl_mseed::scan_metadata_reader(&mut reader, entry.size)?;
                // Report what was actually transferred, not what the
                // parser consumed: read-ahead is real I/O.
                scan.bytes_read = reader.fetched_bytes();
                scan
            }
        };
        let first = scan.records.first();
        let file = FileMetaRow {
            file_id: entry.id.0 as i64,
            uri: entry.uri.clone(),
            size: entry.size as i64,
            mtime: entry.mtime,
            network: first.map(|r| r.source.network.clone()),
            station: first.map(|r| r.source.station.clone()),
            location: first.map(|r| r.source.location.clone()),
            channel: first.map(|r| r.source.channel.clone()),
            start_time: scan.min_start(),
            end_time: scan.max_end(),
            num_records: scan.records.len() as i64,
            num_samples: scan.total_samples() as i64,
            sample_rate: first.map(|r| r.sample_rate),
            encoding: first.map(|r| r.encoding.name().to_string()),
        };
        let records = scan
            .records
            .iter()
            .map(|r| RecordMetaRow {
                file_id: entry.id.0 as i64,
                seq_no: r.sequence_number as i64,
                start_time: r.start,
                end_time: r.end,
                num_samples: r.num_samples as i64,
                sample_rate: r.sample_rate,
                byte_offset: r.byte_offset as i64,
                record_length: r.record_length as i64,
                quality: r.quality.to_string(),
                timing_quality: r.timing_quality as i64,
                encoding: r.encoding.name().to_string(),
            })
            .collect();
        Ok(FileMetadata {
            file,
            records,
            bytes_read: scan.bytes_read,
        })
    }

    fn extract_records(
        &self,
        src: &dyn LazySource,
        entry: &FileEntry,
        locators: &[RecordLocator],
    ) -> Result<Vec<RecordData>> {
        if let Some(path) = src.local_path(entry) {
            let offsets: Vec<(u64, u32)> = locators
                .iter()
                .map(|l| (l.byte_offset, l.record_length))
                .collect();
            let records = read_records_at(path, &offsets)?;
            let mut out = Vec::with_capacity(records.len());
            for (rec, loc) in records.iter().zip(locators) {
                out.push(Self::record_to_data(rec, loc, &entry.uri)?);
            }
            return Ok(out);
        }
        // Remote: coalesce byte-adjacent locators into single ranged
        // fetches so a run of touched records costs one request.
        let mut out = Vec::with_capacity(locators.len());
        let mut i = 0;
        while i < locators.len() {
            let start = locators[i].byte_offset;
            let mut end = start + locators[i].record_length as u64;
            let mut j = i + 1;
            while j < locators.len() && locators[j].byte_offset == end {
                end += locators[j].record_length as u64;
                j += 1;
            }
            let bytes = src.fetch_range(entry, start, end - start)?;
            if (bytes.len() as u64) < end - start {
                return Err(EtlError::Internal(format!(
                    "ranged fetch of {} at {start}..{end} returned {} bytes \
                     (file changed without refresh?)",
                    entry.uri,
                    bytes.len()
                )));
            }
            let mut off = 0usize;
            for loc in &locators[i..j] {
                let rec =
                    lazyetl_mseed::Record::parse(&bytes[off..off + loc.record_length as usize])?;
                off += loc.record_length as usize;
                out.push(Self::record_to_data(&rec, loc, &entry.uri)?);
            }
            i = j;
        }
        Ok(out)
    }
}

/// The SAC extractor: one record per file, float samples.
///
/// Proves the extraction boundary format-agnostic (§2 of the paper calls
/// out multiple complex scientific formats behind one warehouse): the
/// warehouse, rewriter and cache are unchanged; only this impl differs.
#[derive(Debug, Default, Clone, Copy)]
pub struct SacExtractor;

impl Extractor for SacExtractor {
    fn scan_metadata(&self, src: &dyn LazySource, entry: &FileEntry) -> Result<FileMetadata> {
        let header = match src.local_path(entry) {
            Some(path) => lazyetl_mseed::sac::scan_sac_header(path)?,
            None => {
                let bytes =
                    src.fetch_range(entry, 0, lazyetl_mseed::sac::SAC_HEADER_SIZE as u64)?;
                lazyetl_mseed::sac::scan_sac_header_bytes(&bytes)?
            }
        };
        let encoding = "SAC-F32".to_string();
        let file = FileMetaRow {
            file_id: entry.id.0 as i64,
            uri: entry.uri.clone(),
            size: entry.size as i64,
            mtime: entry.mtime,
            network: Some(header.source.network.clone()),
            station: Some(header.source.station.clone()),
            location: Some(header.source.location.clone()),
            channel: Some(header.source.channel.clone()),
            start_time: Some(header.start),
            end_time: Some(header.end()),
            num_records: 1,
            num_samples: header.npts as i64,
            sample_rate: Some(header.sample_rate()),
            encoding: Some(encoding.clone()),
        };
        let records = vec![RecordMetaRow {
            file_id: entry.id.0 as i64,
            seq_no: 0,
            start_time: header.start,
            end_time: header.end(),
            num_samples: header.npts as i64,
            sample_rate: header.sample_rate(),
            byte_offset: lazyetl_mseed::sac::SAC_HEADER_SIZE as i64,
            record_length: (header.npts * 4) as i64,
            quality: "D".to_string(),
            timing_quality: 255,
            encoding,
        }];
        Ok(FileMetadata {
            file,
            records,
            bytes_read: lazyetl_mseed::sac::SAC_HEADER_SIZE as u64,
        })
    }

    fn extract_records(
        &self,
        src: &dyn LazySource,
        entry: &FileEntry,
        locators: &[RecordLocator],
    ) -> Result<Vec<RecordData>> {
        if locators.is_empty() {
            return Ok(Vec::new());
        }
        // A SAC file is one record; any locator set resolves to it.
        for loc in locators {
            if loc.seq_no != 0 {
                return Err(EtlError::Internal(format!(
                    "SAC file {} has only record 0, requested {}",
                    entry.uri, loc.seq_no
                )));
            }
        }
        let file = match src.local_path(entry) {
            Some(path) => lazyetl_mseed::sac::read_sac(path)?,
            // One record per file: the whole payload is the fetch unit.
            None => lazyetl_mseed::sac::read_sac_bytes(&src.fetch_range(entry, 0, entry.size)?)?,
        };
        let period_us = if file.sample_rate() > 0.0 {
            (1e6 / file.sample_rate()).round() as i64
        } else {
            0
        };
        Ok(vec![RecordData {
            seq_no: 0,
            start: file.start,
            period_us,
            values: file.samples.iter().map(|&v| v as f64).collect(),
        }])
    }
}

/// The CSV waveform extractor: text samples in fixed-size record groups.
///
/// The worked "new format" example for the pluggable-source boundary: no
/// binary record index exists, so the metadata scan walks the whole text
/// once (its honest cost) and each [`lazyetl_mseed::csv::CSV_GROUP_SAMPLES`]-row
/// group becomes one lazily-fetchable record.
#[derive(Debug, Default, Clone, Copy)]
pub struct CsvExtractor;

impl Extractor for CsvExtractor {
    fn scan_metadata(&self, src: &dyn LazySource, entry: &FileEntry) -> Result<FileMetadata> {
        let bytes = read_bytes(src, entry, 0, entry.size)?;
        let scan = lazyetl_mseed::csv::scan_csv_bytes(&bytes)?;
        let encoding = "CSV-I64".to_string();
        let nonempty = scan.total_samples > 0;
        let file = FileMetaRow {
            file_id: entry.id.0 as i64,
            uri: entry.uri.clone(),
            size: entry.size as i64,
            mtime: entry.mtime,
            network: Some(scan.source.network.clone()),
            station: Some(scan.source.station.clone()),
            location: Some(scan.source.location.clone()),
            channel: Some(scan.source.channel.clone()),
            start_time: nonempty.then_some(scan.start),
            end_time: nonempty.then_some(scan.end()),
            num_records: scan.groups.len() as i64,
            num_samples: scan.total_samples as i64,
            sample_rate: Some(scan.sample_rate),
            encoding: Some(encoding.clone()),
        };
        let records = scan
            .groups
            .iter()
            .map(|g| RecordMetaRow {
                file_id: entry.id.0 as i64,
                seq_no: g.seq_no,
                start_time: g.start,
                end_time: g.end,
                num_samples: g.num_samples as i64,
                sample_rate: scan.sample_rate,
                byte_offset: g.byte_offset as i64,
                record_length: g.byte_len as i64,
                quality: "D".to_string(),
                timing_quality: 255,
                encoding: encoding.clone(),
            })
            .collect();
        Ok(FileMetadata {
            file,
            records,
            // The whole text is walked: CSV metadata is not cheaper than
            // the file, and the accounting says so.
            bytes_read: entry.size,
        })
    }

    fn extract_records(
        &self,
        src: &dyn LazySource,
        entry: &FileEntry,
        locators: &[RecordLocator],
    ) -> Result<Vec<RecordData>> {
        if locators.is_empty() {
            return Ok(Vec::new());
        }
        // One small header fetch recovers the rate; each group's start
        // time comes from its own first row.
        let header_len = (lazyetl_mseed::csv::CSV_HEADER_FETCH).min(entry.size);
        let header = lazyetl_mseed::csv::scan_csv_header(&read_bytes(src, entry, 0, header_len)?)?;
        let period_us = if header.sample_rate > 0.0 {
            (1_000_000.0 / header.sample_rate).round() as i64
        } else {
            0
        };
        let mut out = Vec::with_capacity(locators.len());
        for loc in locators {
            let bytes = read_bytes(src, entry, loc.byte_offset, loc.record_length as u64)?;
            let rows = lazyetl_mseed::csv::parse_csv_group_rows(&bytes)?;
            let first = rows.first().ok_or_else(|| {
                EtlError::Internal(format!(
                    "CSV group {} of {} has no rows (file changed without refresh?)",
                    loc.seq_no, entry.uri
                ))
            })?;
            out.push(RecordData {
                seq_no: loc.seq_no,
                start: Timestamp(first.0),
                period_us,
                values: rows.iter().map(|&(_, v)| v).collect(),
            });
        }
        Ok(out)
    }
}

/// Chooses an extractor per file, by extension.
///
/// The registry is the warehouse's only knowledge of file formats; adding
/// a format means adding an [`Extractor`] impl and one arm here.
#[derive(Debug, Default, Clone, Copy)]
pub struct FormatRegistry {
    mseed: MseedExtractor,
    sac: SacExtractor,
    csv: CsvExtractor,
}

impl FormatRegistry {
    /// The extractor responsible for a repository entry.
    pub fn for_entry(&self, entry: &FileEntry) -> Result<&dyn Extractor> {
        let ext = entry
            .path
            .extension()
            .map(|e| e.to_string_lossy().to_ascii_lowercase())
            .unwrap_or_default();
        match ext.as_str() {
            "mseed" | "miniseed" | "msd" => Ok(&self.mseed),
            "sac" => Ok(&self.sac),
            "csv" => Ok(&self.csv),
            other => Err(EtlError::Internal(format!(
                "no extractor registered for extension {other:?} ({})",
                entry.uri
            ))),
        }
    }

    /// Whether the scan should attach this entry at all. `.csv` is a
    /// generic extension, so a CSV file must open with the
    /// [`lazyetl_mseed::csv::CSV_MAGIC`] line to count as waveform data;
    /// foreign CSVs (catalogs, spreadsheets) are skipped like any other
    /// non-seismic file instead of failing the whole open.
    pub fn claims(&self, src: &dyn LazySource, entry: &FileEntry) -> Result<bool> {
        let ext = entry
            .path
            .extension()
            .map(|e| e.to_string_lossy().to_ascii_lowercase())
            .unwrap_or_default();
        if ext != "csv" {
            return Ok(true);
        }
        let magic = lazyetl_mseed::csv::CSV_MAGIC.as_bytes();
        let head = read_bytes(src, entry, 0, (magic.len() as u64).min(entry.size))?;
        Ok(head == magic)
    }
}

/// Append a [`FileMetaRow`] to an `F`-schema table.
pub fn push_file_row(table: &mut Table, row: &FileMetaRow) -> Result<()> {
    let opt_str = |v: &Option<String>| match v {
        Some(s) => Value::Utf8(s.clone()),
        None => Value::Null,
    };
    let opt_ts = |v: &Option<Timestamp>| match v {
        Some(t) => Value::Timestamp(t.micros()),
        None => Value::Null,
    };
    table.append_row(vec![
        Value::Int64(row.file_id),
        Value::Utf8(row.uri.clone()),
        Value::Int64(row.size),
        Value::Timestamp(row.mtime.micros()),
        opt_str(&row.network),
        opt_str(&row.station),
        opt_str(&row.location),
        opt_str(&row.channel),
        opt_ts(&row.start_time),
        opt_ts(&row.end_time),
        Value::Int64(row.num_records),
        Value::Int64(row.num_samples),
        match row.sample_rate {
            Some(r) => Value::Float64(r),
            None => Value::Null,
        },
        opt_str(&row.encoding),
    ])?;
    Ok(())
}

/// Append a [`RecordMetaRow`] to an `R`-schema table.
pub fn push_record_row(table: &mut Table, row: &RecordMetaRow) -> Result<()> {
    table.append_row(vec![
        Value::Int64(row.file_id),
        Value::Int64(row.seq_no),
        Value::Timestamp(row.start_time.micros()),
        Value::Timestamp(row.end_time.micros()),
        Value::Int64(row.num_samples),
        Value::Float64(row.sample_rate),
        Value::Int64(row.byte_offset),
        Value::Int64(row.record_length),
        Value::Utf8(row.quality.clone()),
        Value::Int64(row.timing_quality),
        Value::Utf8(row.encoding.clone()),
    ])?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazyetl_mseed::gen::{generate_repository, GeneratorConfig};
    use lazyetl_repo::Repository;
    use std::path::PathBuf;

    fn setup(tag: &str) -> (PathBuf, Repository) {
        let dir =
            std::env::temp_dir().join(format!("lazyetl_extract_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        // Small records so every file holds several (selective extraction
        // needs record granularity).
        let cfg = GeneratorConfig {
            record_length: 512,
            ..GeneratorConfig::tiny(21)
        };
        generate_repository(&dir, &cfg).unwrap();
        let repo = Repository::open(&dir).unwrap();
        (dir, repo)
    }

    #[test]
    fn metadata_scan_produces_consistent_rows() {
        let (dir, repo) = setup("meta");
        let x = MseedExtractor;
        for entry in repo.files() {
            let md = x.scan_metadata(&repo, entry).unwrap();
            assert_eq!(md.file.file_id, entry.id.0 as i64);
            assert_eq!(md.file.uri, entry.uri);
            assert_eq!(md.file.num_records as usize, md.records.len());
            assert!(md.file.num_samples > 0);
            assert!(md.bytes_read < entry.size, "metadata read must be partial");
            let total: i64 = md.records.iter().map(|r| r.num_samples).sum();
            assert_eq!(total, md.file.num_samples);
            // records ordered and locatable
            for w in md.records.windows(2) {
                assert!(w[0].byte_offset < w[1].byte_offset);
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn selective_extraction_matches_metadata() {
        let (dir, repo) = setup("extract");
        let x = MseedExtractor;
        let entry = &repo.files()[0];
        let md = x.scan_metadata(&repo, entry).unwrap();
        assert!(md.records.len() >= 2, "need multiple records");
        let pick = &md.records[1];
        let loc = RecordLocator {
            seq_no: pick.seq_no,
            byte_offset: pick.byte_offset as u64,
            record_length: pick.record_length as u32,
        };
        let data = x.extract_records(&repo, entry, &[loc]).unwrap();
        assert_eq!(data.len(), 1);
        assert_eq!(data[0].values.len() as i64, pick.num_samples);
        assert_eq!(data[0].start, pick.start_time);
        // D-table materialization timestamps every sample.
        let t = data[0].to_table(entry.id.0 as i64).unwrap();
        assert_eq!(t.num_rows() as i64, pick.num_samples);
        let first_time = t.row(0).unwrap()[2].clone();
        assert_eq!(first_time, Value::Timestamp(pick.start_time.micros()));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mismatched_locator_detected() {
        let (dir, repo) = setup("mismatch");
        let x = MseedExtractor;
        let entry = &repo.files()[0];
        let md = x.scan_metadata(&repo, entry).unwrap();
        let pick = &md.records[0];
        let loc = RecordLocator {
            seq_no: pick.seq_no + 999, // wrong expectation
            byte_offset: pick.byte_offset as u64,
            record_length: pick.record_length as u32,
        };
        assert!(matches!(
            x.extract_records(&repo, entry, &[loc]),
            Err(EtlError::Internal(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn meta_rows_fit_warehouse_schemas() {
        let (dir, repo) = setup("rows");
        let x = MseedExtractor;
        let md = x.scan_metadata(&repo, &repo.files()[0]).unwrap();
        let mut f = Table::empty(schema::files_schema());
        push_file_row(&mut f, &md.file).unwrap();
        assert_eq!(f.num_rows(), 1);
        let mut r = Table::empty(schema::records_schema());
        for row in &md.records {
            push_record_row(&mut r, row).unwrap();
        }
        assert_eq!(r.num_rows(), md.records.len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn remote_scan_and_extract_match_local() {
        let (dir, repo) = setup("remote");
        let remote = lazyetl_repo::RemoteSource::open(&dir).unwrap();
        let x = MseedExtractor;
        for (local_entry, remote_entry) in repo.files().iter().zip(remote.files()) {
            let local = x.scan_metadata(&repo, local_entry).unwrap();
            let over_wire = x.scan_metadata(&remote, remote_entry).unwrap();
            assert_eq!(local.file.num_records, over_wire.file.num_records);
            assert_eq!(local.records, over_wire.records);
            assert!(
                over_wire.bytes_read >= local.bytes_read,
                "read-ahead is honest"
            );
            let locs: Vec<RecordLocator> = local
                .records
                .iter()
                .map(|r| RecordLocator {
                    seq_no: r.seq_no,
                    byte_offset: r.byte_offset as u64,
                    record_length: r.record_length as u32,
                })
                .collect();
            let a = x.extract_records(&repo, local_entry, &locs).unwrap();
            let b = x.extract_records(&remote, remote_entry, &locs).unwrap();
            assert_eq!(a.len(), b.len());
            for (ra, rb) in a.iter().zip(&b) {
                assert_eq!(ra.start, rb.start);
                assert_eq!(ra.values, rb.values);
            }
        }
        assert!(remote.io_stats().fetch_requests > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn csv_extractor_roundtrips_groups() {
        use lazyetl_mseed::csv::write_csv_bytes;
        use lazyetl_mseed::SourceId;
        let dir = std::env::temp_dir().join(format!("lazyetl_extract_csv_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let src_id = SourceId::new("NL", "HGN", "", "BHZ").unwrap();
        let start = Timestamp::from_ymd_hms(2010, 1, 12, 0, 0, 0, 0);
        let samples: Vec<i32> = (0..1300).map(|i| (i * 37) % 911 - 455).collect();
        let bytes = write_csv_bytes(&src_id, start, 40.0, &samples).unwrap();
        std::fs::write(dir.join("a.csv"), &bytes).unwrap();
        let repo = Repository::open(&dir).unwrap();
        let x = CsvExtractor;
        let entry = &repo.files()[0];
        let md = x.scan_metadata(&repo, entry).unwrap();
        assert_eq!(md.file.station.as_deref(), Some("HGN"));
        assert_eq!(md.file.num_samples, 1300);
        assert_eq!(md.records.len(), 3, "1300 samples at 512/group");
        let locs: Vec<RecordLocator> = md
            .records
            .iter()
            .map(|r| RecordLocator {
                seq_no: r.seq_no,
                byte_offset: r.byte_offset as u64,
                record_length: r.record_length as u32,
            })
            .collect();
        // Local and remote extraction agree and reproduce the samples.
        let remote = lazyetl_repo::RemoteSource::open(&dir).unwrap();
        let local = x.extract_records(&repo, entry, &locs).unwrap();
        let wire = x
            .extract_records(&remote, remote.files().first().unwrap(), &locs)
            .unwrap();
        let flat: Vec<f64> = local.iter().flat_map(|r| r.values.clone()).collect();
        let expect: Vec<f64> = samples.iter().map(|&v| v as f64).collect();
        assert_eq!(flat, expect);
        assert_eq!(local[1].start, md.records[1].start_time);
        for (a, b) in local.iter().zip(&wire) {
            assert_eq!(a.start, b.start);
            assert_eq!(a.values, b.values);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
