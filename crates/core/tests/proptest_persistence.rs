//! Property: an arbitrary query mix, saved and reopened, yields
//! byte-identical result tables — and the reopened warehouse answers the
//! second run of the mix from its rehydrated cache (non-zero hit rate,
//! zero re-extraction).
//!
//! This is the end-to-end contract of the durable warm-restart path: the
//! v2 snapshot (tables + cache segments + manifest + journal) is a
//! faithful, complete image of the session it was taken from.

use lazyetl_core::warehouse::{Warehouse, WarehouseConfig};
use lazyetl_core::{save_warehouse, stray_files};
use lazyetl_mseed::gen::{generate_repository, GeneratorConfig};
use lazyetl_mseed::inventory::default_inventory;
use lazyetl_mseed::Timestamp;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT: AtomicU64 = AtomicU64::new(0);

/// The pool of queries mixes draw from: metadata-only, selective data,
/// grouped data, record-level predicates.
const POOL: [&str; 6] = [
    "SELECT network, station, COUNT(*) FROM mseed.files GROUP BY network, station",
    "SELECT F.station, MIN(D.sample_value), MAX(D.sample_value) FROM mseed.dataview \
     WHERE F.network = 'NL' AND F.channel = 'BHZ' GROUP BY F.station",
    "SELECT AVG(D.sample_value) FROM mseed.dataview WHERE F.station = 'ISK'",
    "SELECT COUNT(D.sample_value) FROM mseed.dataview \
     WHERE F.station IN ('HGN', 'WIT') AND F.channel = 'BHE'",
    "SELECT COUNT(*) FROM mseed.records WHERE seq_no = 1",
    "SELECT COUNT(D.sample_value), AVG(D.sample_value) FROM mseed.dataview \
     WHERE R.seq_no < 3 AND F.channel = 'BHZ'",
];

fn repo_dir() -> PathBuf {
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let root =
        std::env::temp_dir().join(format!("lazyetl_prop_persist_{}_{n}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    std::fs::create_dir_all(&root).unwrap();
    let stations: Vec<_> = default_inventory()
        .iter()
        .filter(|s| s.network == "NL" || s.station == "ISK")
        .cloned()
        .collect();
    let config = GeneratorConfig {
        stations,
        channels: vec!["BHZ".into(), "BHE".into()],
        start: Timestamp::from_ymd_hms(2010, 1, 12, 22, 0, 0, 0),
        file_duration_secs: 120,
        files_per_stream: 1,
        record_length: 4096,
        events_per_file: 0.2,
        seed: 0x9A_7E_55,
        ..Default::default()
    };
    generate_repository(&root, &config).unwrap();
    root
}

fn cfg(shards: usize) -> WarehouseConfig {
    WarehouseConfig {
        auto_refresh: false,
        cache_shards: shards,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn save_reopen_is_identity_and_warm(
        mix in prop::collection::vec(0usize..POOL.len(), 1..8),
        save_shards in 1usize..6,
        reopen_shards in 1usize..6,
    ) {
        let root = repo_dir();
        let saved = root.join("_saved");

        // Session 1: run the mix, remember every answer, save.
        let wh = Warehouse::open_lazy(&root, cfg(save_shards)).unwrap();
        let expected: Vec<_> = mix.iter().map(|&i| wh.query(POOL[i]).unwrap().table).collect();
        let report = save_warehouse(&wh, &saved).unwrap();
        prop_assert_eq!(report.epoch, 1);
        drop(wh);

        // Session 2: reopen (possibly with a different shard count — the
        // eager-fold path) and replay the identical mix.
        let re = Warehouse::open_saved(&root, &saved, cfg(reopen_shards)).unwrap();
        let mut hits = 0usize;
        let mut extracted = 0usize;
        let mut touched_data = false;
        for (&i, want) in mix.iter().zip(&expected) {
            let out = re.query(POOL[i]).unwrap();
            prop_assert_eq!(&out.table, want, "query {:?} diverged after reopen", POOL[i]);
            hits += out.report.cache_hits;
            extracted += out.report.records_extracted;
            touched_data |= out.report.rewrite.is_some()
                && out.report.rewrite.as_ref().unwrap().fetched_pairs > 0;
        }
        // Everything the mix needed was extracted before the save, so the
        // reopened warehouse serves it all from rehydrated segments.
        prop_assert_eq!(extracted, 0, "reopen must not re-extract");
        if touched_data {
            prop_assert!(hits > 0, "data queries must hit the rehydrated cache");
        }
        prop_assert!(stray_files(&saved).is_empty());
        std::fs::remove_dir_all(&root).ok();
    }
}
