//! Model-based property tests for the recycling cache: the real cache must
//! agree with a naive reference model under arbitrary operation sequences,
//! and its byte budget must never be exceeded.

use lazyetl_core::cache::{CacheLookup, RecyclingCache};
use lazyetl_mseed::Timestamp;
use lazyetl_store::{Column, ColumnData, DataType, Field, Schema, Table};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

fn table_of(rows: usize) -> Arc<Table> {
    let schema = Schema::new(vec![Field::new("v", DataType::Float64)]).unwrap();
    Arc::new(
        Table::new(
            schema,
            vec![Column::new(ColumnData::Float64(vec![0.5; rows]))],
        )
        .unwrap(),
    )
}

#[derive(Debug, Clone)]
enum Op {
    Insert {
        key: (i64, i64),
        rows: usize,
        mtime: i64,
    },
    Get {
        key: (i64, i64),
        mtime: i64,
    },
    InvalidateFile {
        file: i64,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let key = (0i64..4, 0i64..4);
    prop_oneof![
        (key.clone(), 1usize..40, 0i64..3).prop_map(|(key, rows, mtime)| Op::Insert {
            key,
            rows,
            mtime
        }),
        (key.clone(), 0i64..3).prop_map(|(key, mtime)| Op::Get { key, mtime }),
        (0i64..4).prop_map(|file| Op::InvalidateFile { file }),
    ]
}

/// Reference model: unbounded map of (key -> (rows, mtime)). The real
/// cache may evict (capacity) — so a real Miss is acceptable where the
/// model has an entry, but a real Hit must match the model exactly, and
/// staleness behaviour must agree whenever the entry is resident.
#[derive(Default)]
struct Model {
    entries: HashMap<(i64, i64), (usize, i64)>,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn cache_agrees_with_model(ops in prop::collection::vec(op_strategy(), 1..120), budget_rows in 10usize..200) {
        // Budget expressed in rows (8 bytes each).
        let cache = RecyclingCache::new(budget_rows * 8);
        let mut model = Model::default();
        for op in ops {
            match op {
                Op::Insert { key, rows, mtime } => {
                    cache.insert(key, table_of(rows), Timestamp(mtime));
                    if rows * 8 <= budget_rows * 8 {
                        model.entries.insert(key, (rows, mtime));
                    } else {
                        // Oversized entries are never admitted.
                        model.entries.remove(&key);
                    }
                }
                Op::Get { key, mtime } => {
                    match cache.get(key, Timestamp(mtime)) {
                        CacheLookup::Hit(t) => {
                            let (rows, stored_mtime) = model.entries.get(&key)
                                .copied()
                                .expect("hit without model entry");
                            prop_assert_eq!(stored_mtime, mtime, "hit must be fresh");
                            prop_assert_eq!(t.num_rows(), rows);
                        }
                        CacheLookup::Stale => {
                            let (_, stored_mtime) = model.entries.get(&key)
                                .copied()
                                .expect("stale without model entry");
                            prop_assert_ne!(stored_mtime, mtime, "stale means mtime moved");
                            model.entries.remove(&key);
                        }
                        CacheLookup::Miss => {
                            // Either never inserted or evicted; both allowed.
                        }
                    }
                }
                Op::InvalidateFile { file } => {
                    cache.invalidate_file(file);
                    model.entries.retain(|(f, _), _| *f != file);
                }
            }
            // Invariants after every operation.
            prop_assert!(cache.used_bytes() <= cache.budget_bytes(),
                "cache over budget: {} > {}", cache.used_bytes(), cache.budget_bytes());
            prop_assert!(cache.len() <= model.entries.len(),
                "cache holds {} entries, model only {}", cache.len(), model.entries.len());
        }
        // Stats sanity: lookups were all accounted.
        let s = cache.stats();
        prop_assert!(s.hits + s.misses + s.stale_drops > 0 || cache.len() == cache.len());
    }

    /// Pure LRU order: after touching a key it survives one eviction wave.
    /// Uses a single shard — strict global LRU ordering is only defined
    /// within one stripe (the sharded default approximates it per shard).
    #[test]
    fn lru_respects_recency(n in 3usize..12) {
        // Budget holds exactly n entries of 10 rows.
        let cache = RecyclingCache::with_shards(n * 80, 1);
        let mt = Timestamp(1);
        for i in 0..n as i64 {
            cache.insert((i, 0), table_of(10), mt);
        }
        // Touch entry 0 so entry 1 is the LRU victim.
        assert!(matches!(cache.get((0, 0), mt), CacheLookup::Hit(_)));
        cache.insert((100, 0), table_of(10), mt);
        prop_assert!(matches!(cache.get((0, 0), mt), CacheLookup::Hit(_)), "recently used survives");
        prop_assert!(matches!(cache.get((1, 0), mt), CacheLookup::Miss), "LRU victim evicted");
    }
}
