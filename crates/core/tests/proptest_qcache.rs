//! Model-based property tests for the result recycler: agreement with a
//! naive reference model under arbitrary operation sequences, byte-budget
//! and generation-invalidation invariants.

use lazyetl_core::qcache::QueryResultCache;
use lazyetl_store::{Column, ColumnData, DataType, Field, Schema, Table};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

fn table_of(rows: usize) -> Arc<Table> {
    let schema = Schema::new(vec![Field::new("v", DataType::Float64)]).unwrap();
    Arc::new(
        Table::new(
            schema,
            vec![Column::new(ColumnData::Float64(vec![1.25; rows]))],
        )
        .unwrap(),
    )
}

#[derive(Debug, Clone)]
enum Op {
    Insert {
        key: u8,
        rows: usize,
        generation: u64,
    },
    Get {
        key: u8,
        generation: u64,
    },
    Clear,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u8..6, 1usize..40, 0u64..3).prop_map(|(key, rows, generation)| Op::Insert {
            key,
            rows,
            generation
        }),
        4 => (0u8..6, 0u64..3).prop_map(|(key, generation)| Op::Get { key, generation }),
        1 => Just(Op::Clear),
    ]
}

fn fp(key: u8) -> String {
    format!("plan-{key}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn recycler_agrees_with_model(
        ops in prop::collection::vec(op_strategy(), 1..120),
        budget_rows in 10usize..200,
    ) {
        let cache = QueryResultCache::new(budget_rows * 8);
        // key -> (rows, generation); unbounded (never evicts).
        let mut model: HashMap<u8, (usize, u64)> = HashMap::new();
        for op in ops {
            match op {
                Op::Insert { key, rows, generation } => {
                    cache.insert(fp(key), table_of(rows), generation);
                    if rows * 8 <= budget_rows * 8 {
                        model.insert(key, (rows, generation));
                    } else {
                        model.remove(&key);
                    }
                }
                Op::Get { key, generation } => {
                    match cache.get(&fp(key), generation) {
                        Some(t) => {
                            let (rows, stored_gen) = model.get(&key)
                                .copied()
                                .expect("hit without model entry");
                            prop_assert_eq!(stored_gen, generation,
                                "a hit must come from the current generation");
                            prop_assert_eq!(t.num_rows(), rows);
                        }
                        None => {
                            // Never inserted, evicted, or invalidated by a
                            // generation move — in the last case the entry
                            // is gone from the real cache now; mirror it.
                            if let Some(&(_, stored_gen)) = model.get(&key) {
                                if stored_gen != generation {
                                    model.remove(&key);
                                }
                            }
                        }
                    }
                }
                Op::Clear => {
                    cache.clear();
                    model.clear();
                }
            }
            prop_assert!(cache.used_bytes() <= cache.budget_bytes(),
                "over budget: {} > {}", cache.used_bytes(), cache.budget_bytes());
            prop_assert!(cache.len() <= model.len(),
                "cache holds {} entries, model only {}", cache.len(), model.len());
        }
    }

    /// A generation bump invalidates everything admitted before it,
    /// regardless of operation interleaving.
    #[test]
    fn generation_bump_invalidates_all_prior(keys in prop::collection::vec(0u8..6, 1..10)) {
        let cache = QueryResultCache::new(1 << 20);
        for &k in &keys {
            cache.insert(fp(k), table_of(4), 0);
        }
        for &k in &keys {
            prop_assert!(cache.get(&fp(k), 1).is_none(), "gen-0 entry served at gen 1");
        }
        prop_assert!(cache.is_empty(), "all stale entries dropped on lookup");
    }

    /// LRU: the most recently *used* fingerprint survives eviction waves.
    #[test]
    fn lru_respects_recency(n in 3usize..12) {
        let cache = QueryResultCache::new(n * 80);
        for i in 0..n as u8 {
            cache.insert(fp(i), table_of(10), 0);
        }
        prop_assert!(cache.get(&fp(0), 0).is_some());
        cache.insert("newcomer".into(), table_of(10), 0);
        prop_assert!(cache.get(&fp(0), 0).is_some(), "recently used survives");
        prop_assert!(cache.get(&fp(1), 0).is_none(), "LRU victim evicted");
    }
}
