//! Cardinality and cost estimation over persisted column statistics.
//!
//! The planner's join reordering (see [`crate::optimizer::optimize_with_cost`])
//! needs relative sizes, not exact counts: which relation is smallest after
//! its filters, and how large each intermediate join result will be. The
//! estimates here follow the classic System-R recipe, upgraded with the
//! store's per-column statistics where they exist:
//!
//! * **scan** — the table's row count from [`ColumnStats::count`];
//! * **filter** — per-conjunct selectivity: `1/distinct` for equality (from
//!   the hash-sketch estimate), histogram interpolation for ranges
//!   ([`lazyetl_store::Histogram::fraction_le`]), `nulls/count` for `IS NULL`, and textbook
//!   defaults when statistics are missing or the range is NaN-tainted
//!   ([`ColumnStats::range_trusted`]);
//! * **join** — `|L|·|R| / max(V(L,a), V(R,b))` per equi-key pair;
//! * **source cost** — a per-table access-cost multiplier (federated remote
//!   mounts are slower than local ones; the warehouse's per-source latency
//!   stats know by how much), so the greedy join order defers expensive
//!   sources until the accumulated selectivity is largest.
//!
//! Every estimator returns `Option<f64>`: `None` means "no statistics" —
//! pre-upgrade snapshots open statless and the optimizer then keeps the
//! as-written plan (the old heuristics).

use crate::expr::{BinaryOp, Expr, UnaryOp};
use crate::plan::LogicalPlan;
use lazyetl_store::{Catalog, ColumnStats, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Default selectivity of an equality predicate without statistics.
pub const DEFAULT_EQ_SELECTIVITY: f64 = 0.1;
/// Default selectivity of a range predicate without statistics.
pub const DEFAULT_RANGE_SELECTIVITY: f64 = 1.0 / 3.0;
/// Default selectivity of a predicate the model cannot analyze.
pub const DEFAULT_UNKNOWN_SELECTIVITY: f64 = 0.25;

/// Statistics and access cost for one base table.
#[derive(Debug, Clone)]
pub struct TableCost {
    /// Per-column statistics (shared with the catalog's zone-map cache).
    pub stats: Arc<Vec<ColumnStats>>,
    /// Access-cost multiplier relative to a local scan (1.0 = local;
    /// latency-injected remote mounts report larger values).
    pub multiplier: f64,
}

/// A cost model: per-table statistics plus per-source cost multipliers.
#[derive(Debug, Clone, Default)]
pub struct CostModel {
    tables: BTreeMap<String, TableCost>,
}

impl CostModel {
    /// An empty model (every estimate is `None`; the optimizer falls back
    /// to as-written plans).
    pub fn new() -> CostModel {
        CostModel::default()
    }

    /// Build a model from a catalog's zone maps, all sources local.
    pub fn from_catalog(catalog: &Catalog) -> CostModel {
        let mut m = CostModel::new();
        for name in catalog.table_names() {
            if let Some(stats) = catalog.zone_map(&name) {
                m.tables.insert(
                    name,
                    TableCost {
                        stats,
                        multiplier: 1.0,
                    },
                );
            }
        }
        m
    }

    /// Register (or replace) statistics for a table.
    pub fn set_table(&mut self, name: &str, stats: Arc<Vec<ColumnStats>>) {
        let multiplier = self.tables.get(name).map(|t| t.multiplier).unwrap_or(1.0);
        self.tables
            .insert(name.to_string(), TableCost { stats, multiplier });
    }

    /// Set the access-cost multiplier for a table (no-op scaffolding if the
    /// table has no statistics yet: an entry with empty stats is created).
    pub fn set_multiplier(&mut self, name: &str, multiplier: f64) {
        let multiplier = if multiplier.is_finite() && multiplier > 0.0 {
            multiplier
        } else {
            1.0
        };
        self.tables
            .entry(name.to_string())
            .and_modify(|t| t.multiplier = multiplier)
            .or_insert_with(|| TableCost {
                stats: Arc::new(Vec::new()),
                multiplier,
            });
    }

    /// Statistics entry for a table, if known.
    pub fn table(&self, name: &str) -> Option<&TableCost> {
        self.tables.get(name)
    }

    /// Row count of a base table (max over its columns' counts).
    pub fn table_rows(&self, name: &str) -> Option<f64> {
        let t = self.tables.get(name)?;
        if t.stats.is_empty() {
            return None;
        }
        Some(t.stats.iter().map(|s| s.count).max().unwrap_or(0) as f64)
    }

    /// Largest access-cost multiplier among base tables under `plan`
    /// (1.0 when none are known — unknown tables are assumed local).
    pub fn access_multiplier(&self, plan: &LogicalPlan) -> f64 {
        let mut names = Vec::new();
        base_tables(plan, &mut names);
        names
            .iter()
            .filter_map(|n| self.tables.get(n.as_str()))
            .map(|t| t.multiplier)
            .fold(1.0, f64::max)
    }

    /// Find statistics for a (possibly alias-qualified) column referenced
    /// under `plan`: the qualifier is stripped and the base tables beneath
    /// the node are searched in order. Post-pushdown filters sit directly
    /// above their single scan, so the first match is the right one.
    pub fn column_stats_under<'a>(
        &'a self,
        plan: &LogicalPlan,
        column: &str,
    ) -> Option<&'a ColumnStats> {
        let leaf = column.rsplit('.').next().unwrap_or(column);
        let mut names = Vec::new();
        base_tables(plan, &mut names);
        names
            .iter()
            .filter_map(|n| self.tables.get(n.as_str()))
            .find_map(|t| t.stats.iter().find(|s| s.name == leaf))
    }

    /// Estimated output rows of a plan node. `None` when any base table
    /// lacks statistics (statless snapshot): the caller must fall back to
    /// heuristics rather than reorder on garbage.
    pub fn estimate_rows(&self, plan: &LogicalPlan) -> Option<f64> {
        match plan {
            LogicalPlan::TableScan { table, .. } => self.table_rows(table),
            // External data is not loaded yet; it is only estimable when
            // the caller registered a synthesized entry under its name
            // (the warehouse derives one from the R table's per-record
            // sample counts). Otherwise: statless fallback.
            LogicalPlan::ExternalScan { name, .. } => self.table_rows(name),
            LogicalPlan::InlineData { table, .. } => Some(table.num_rows() as f64),
            LogicalPlan::OneRow => Some(1.0),
            LogicalPlan::Filter { input, predicate } => {
                let rows = self.estimate_rows(input)?;
                Some(rows * self.selectivity(predicate, input))
            }
            LogicalPlan::Project { input, .. } | LogicalPlan::Sort { input, .. } => {
                self.estimate_rows(input)
            }
            // Duplicate elimination without column stats on the projected
            // expressions: keep the (sound) upper bound.
            LogicalPlan::Distinct { input } => self.estimate_rows(input),
            LogicalPlan::Limit { input, n } => Some(self.estimate_rows(input)?.min(*n as f64)),
            LogicalPlan::Aggregate { input, group, .. } => {
                let rows = self.estimate_rows(input)?;
                if group.is_empty() {
                    return Some(1.0);
                }
                // One output row per distinct group key: the product of the
                // keys' distinct counts, capped by the input size.
                let mut groups = 1.0f64;
                for (e, _) in group {
                    let d = match e {
                        Expr::Column(c) => self
                            .column_stats_under(input, c)
                            .and_then(|s| s.distinct)
                            .map(|d| d as f64),
                        _ => None,
                    };
                    groups *= d.unwrap_or_else(|| rows.sqrt().max(1.0));
                }
                Some(groups.min(rows).max(1.0))
            }
            LogicalPlan::Join {
                left, right, on, ..
            } => {
                let l = self.estimate_rows(left)?;
                let r = self.estimate_rows(right)?;
                Some(self.join_rows(l, r, left, right, on))
            }
        }
    }

    /// Estimated cost of materializing a plan node: its row estimate scaled
    /// by the most expensive source beneath it.
    pub fn estimate_cost(&self, plan: &LogicalPlan) -> Option<f64> {
        Some(self.estimate_rows(plan)? * self.access_multiplier(plan))
    }

    /// `|L ⋈ R|` for an equi-join: `|L|·|R|` divided, per key pair, by the
    /// larger of the two sides' distinct counts (the standard containment
    /// assumption). Unknown distinct counts fall back to the larger input,
    /// which prices the join as a key/foreign-key match.
    pub fn join_rows(
        &self,
        left_rows: f64,
        right_rows: f64,
        left: &LogicalPlan,
        right: &LogicalPlan,
        on: &[(Expr, Expr)],
    ) -> f64 {
        let mut rows = left_rows * right_rows;
        for (le, re) in on {
            let dl = self.key_distinct(left, le);
            let dr = self.key_distinct(right, re);
            let v = match (dl, dr) {
                (Some(a), Some(b)) => a.max(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => left_rows.max(right_rows).max(1.0),
            };
            rows /= v.max(1.0);
        }
        rows.max(0.0)
    }

    fn key_distinct(&self, side: &LogicalPlan, key: &Expr) -> Option<f64> {
        match key {
            Expr::Column(c) => self
                .column_stats_under(side, c)
                .and_then(|s| s.distinct)
                .map(|d| (d as f64).max(1.0)),
            _ => None,
        }
    }

    /// Estimated fraction of `context`'s rows satisfying `predicate`.
    /// Always in `[0, 1]`; missing statistics degrade to textbook defaults
    /// rather than `None` (a wrong selectivity only mis-ranks plans; all
    /// candidate orders are still correct).
    pub fn selectivity(&self, predicate: &Expr, context: &LogicalPlan) -> f64 {
        let s = match predicate {
            Expr::Literal(Value::Bool(true)) => 1.0,
            Expr::Literal(Value::Bool(false)) | Expr::Literal(Value::Null) => 0.0,
            Expr::Binary {
                left,
                op: BinaryOp::And,
                right,
            } => self.selectivity(left, context) * self.selectivity(right, context),
            Expr::Binary {
                left,
                op: BinaryOp::Or,
                right,
            } => {
                let a = self.selectivity(left, context);
                let b = self.selectivity(right, context);
                a + b - a * b
            }
            Expr::Unary {
                op: UnaryOp::Not,
                expr,
            } => 1.0 - self.selectivity(expr, context),
            Expr::Binary { left, op, right } if op.is_comparison() => {
                self.comparison_selectivity(left, *op, right, context)
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let s = self.range_selectivity(expr, low, high, context);
                if *negated {
                    1.0 - s
                } else {
                    s
                }
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let eq = self.eq_selectivity(expr, context);
                let s = (eq * list.len() as f64).min(1.0);
                if *negated {
                    1.0 - s
                } else {
                    s
                }
            }
            Expr::IsNull { expr, negated } => {
                let s = match &**expr {
                    Expr::Column(c) => self
                        .column_stats_under(context, c)
                        .filter(|st| st.count > 0)
                        .map(|st| st.nulls as f64 / st.count as f64)
                        .unwrap_or(DEFAULT_EQ_SELECTIVITY),
                    _ => DEFAULT_EQ_SELECTIVITY,
                };
                if *negated {
                    1.0 - s
                } else {
                    s
                }
            }
            _ => DEFAULT_UNKNOWN_SELECTIVITY,
        };
        s.clamp(0.0, 1.0)
    }

    fn comparison_selectivity(
        &self,
        left: &Expr,
        op: BinaryOp,
        right: &Expr,
        context: &LogicalPlan,
    ) -> f64 {
        // Orient to column-vs-literal; a flipped comparison flips the op.
        let (col, lit, op) = match (left, right) {
            (Expr::Column(c), Expr::Literal(v)) => (c, v, op),
            (Expr::Literal(v), Expr::Column(c)) => {
                let flipped = match op {
                    BinaryOp::Lt => BinaryOp::Gt,
                    BinaryOp::LtEq => BinaryOp::GtEq,
                    BinaryOp::Gt => BinaryOp::Lt,
                    BinaryOp::GtEq => BinaryOp::LtEq,
                    other => other,
                };
                (c, v, flipped)
            }
            _ => return DEFAULT_UNKNOWN_SELECTIVITY,
        };
        match op {
            BinaryOp::Eq => self.eq_selectivity(&Expr::Column(col.clone()), context),
            BinaryOp::NotEq => 1.0 - self.eq_selectivity(&Expr::Column(col.clone()), context),
            BinaryOp::Lt | BinaryOp::LtEq | BinaryOp::Gt | BinaryOp::GtEq => {
                let stats = match self.column_stats_under(context, col) {
                    Some(s) => s,
                    None => return DEFAULT_RANGE_SELECTIVITY,
                };
                let probe = match value_as_f64(lit) {
                    Some(p) => p,
                    None => return DEFAULT_RANGE_SELECTIVITY,
                };
                // A NaN-tainted range covers only part of the column; the
                // histogram fractions would silently drop the NaN rows.
                if !stats.range_trusted() {
                    return DEFAULT_RANGE_SELECTIVITY;
                }
                let frac_le = if let Some(h) = &stats.histogram {
                    h.fraction_le(probe)
                } else if let (Some(min), Some(max)) =
                    (value_as_f64_opt(&stats.min), value_as_f64_opt(&stats.max))
                {
                    interpolate(min, max, probe)
                } else {
                    return DEFAULT_RANGE_SELECTIVITY;
                };
                let not_null = non_null_fraction(stats);
                let s = match op {
                    BinaryOp::Lt | BinaryOp::LtEq => frac_le,
                    _ => 1.0 - frac_le,
                };
                s * not_null
            }
            _ => DEFAULT_UNKNOWN_SELECTIVITY,
        }
    }

    fn range_selectivity(
        &self,
        expr: &Expr,
        low: &Expr,
        high: &Expr,
        context: &LogicalPlan,
    ) -> f64 {
        let col = match expr {
            Expr::Column(c) => c,
            _ => return DEFAULT_RANGE_SELECTIVITY,
        };
        let stats = match self.column_stats_under(context, col) {
            Some(s) if s.range_trusted() => s,
            _ => return DEFAULT_RANGE_SELECTIVITY,
        };
        let lo = lit_f64(low);
        let hi = lit_f64(high);
        if let Some(h) = &stats.histogram {
            h.fraction_between(lo, hi) * non_null_fraction(stats)
        } else if let (Some(min), Some(max), Some(lo), Some(hi)) = (
            value_as_f64_opt(&stats.min),
            value_as_f64_opt(&stats.max),
            lo,
            hi,
        ) {
            (interpolate(min, max, hi) - interpolate(min, max, lo)).max(0.0)
                * non_null_fraction(stats)
        } else {
            DEFAULT_RANGE_SELECTIVITY
        }
    }

    fn eq_selectivity(&self, expr: &Expr, context: &LogicalPlan) -> f64 {
        let col = match expr {
            Expr::Column(c) => c,
            _ => return DEFAULT_EQ_SELECTIVITY,
        };
        match self.column_stats_under(context, col) {
            Some(s) => {
                if s.count == 0 {
                    return 0.0;
                }
                match s.distinct {
                    Some(d) if d > 0 => (1.0 / d as f64) * non_null_fraction(s),
                    _ => DEFAULT_EQ_SELECTIVITY,
                }
            }
            None => DEFAULT_EQ_SELECTIVITY,
        }
    }
}

fn non_null_fraction(s: &ColumnStats) -> f64 {
    if s.count == 0 {
        0.0
    } else {
        (s.count - s.nulls) as f64 / s.count as f64
    }
}

/// Linear interpolation of `P(x <= probe)` over a `[min, max]` range.
fn interpolate(min: f64, max: f64, probe: f64) -> f64 {
    if !probe.is_finite() || !min.is_finite() || !max.is_finite() {
        return 0.5;
    }
    if probe < min {
        0.0
    } else if probe >= max {
        1.0
    } else if max > min {
        (probe - min) / (max - min)
    } else {
        1.0
    }
}

fn lit_f64(e: &Expr) -> Option<f64> {
    match e {
        Expr::Literal(v) => value_as_f64(v),
        _ => None,
    }
}

fn value_as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::Int32(x) => Some(*x as f64),
        Value::Int64(x) => Some(*x as f64),
        Value::Float64(x) => Some(*x),
        Value::Timestamp(x) => Some(*x as f64),
        Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
        _ => None,
    }
}

fn value_as_f64_opt(v: &Option<Value>) -> Option<f64> {
    v.as_ref().and_then(value_as_f64)
}

/// Collect the names of catalog tables (and named external scans)
/// beneath `plan`, in plan order.
pub fn base_tables(plan: &LogicalPlan, out: &mut Vec<String>) {
    match plan {
        LogicalPlan::TableScan { table, .. } => out.push(table.clone()),
        LogicalPlan::ExternalScan { name, .. } => out.push(name.clone()),
        _ => {}
    }
    for c in plan.children() {
        base_tables(c, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazyetl_store::{column_stats, Column, DataType, Field, Schema};

    fn table_with(names_vals: &[(&str, Vec<i64>)]) -> (Schema, Vec<ColumnStats>) {
        let fields: Vec<Field> = names_vals
            .iter()
            .map(|(n, _)| Field::new(n, DataType::Int64))
            .collect();
        let schema = Schema::new(fields).unwrap();
        let stats = names_vals
            .iter()
            .map(|(n, vals)| {
                let values: Vec<Value> = vals.iter().map(|v| Value::Int64(*v)).collect();
                column_stats(n, &Column::from_values(DataType::Int64, &values).unwrap())
            })
            .collect();
        (schema, stats)
    }

    fn scan(table: &str, schema: &Schema) -> LogicalPlan {
        LogicalPlan::TableScan {
            table: table.to_string(),
            schema: schema.clone(),
        }
    }

    #[test]
    fn scan_rows_from_stats() {
        let (schema, stats) = table_with(&[("a", (0..100).collect())]);
        let mut m = CostModel::new();
        m.set_table("t", Arc::new(stats));
        assert_eq!(m.estimate_rows(&scan("t", &schema)), Some(100.0));
        // Unknown table: no estimate.
        assert_eq!(m.estimate_rows(&scan("u", &schema)), None);
    }

    #[test]
    fn filter_selectivity_uses_histogram() {
        let (schema, stats) = table_with(&[("a", (0..1000).collect())]);
        let mut m = CostModel::new();
        m.set_table("t", Arc::new(stats));
        let plan = LogicalPlan::Filter {
            input: Box::new(scan("t", &schema)),
            predicate: Expr::col("a").binary(BinaryOp::Lt, Expr::lit(Value::Int64(100))),
        };
        let est = m.estimate_rows(&plan).unwrap();
        assert!(
            (est - 100.0).abs() < 40.0,
            "a < 100 over uniform 0..1000 ≈ 100 rows, got {est}"
        );
    }

    #[test]
    fn equality_uses_distinct_estimate() {
        // 1000 rows, 10 distinct values.
        let vals: Vec<i64> = (0..1000).map(|i| i % 10).collect();
        let (schema, stats) = table_with(&[("a", vals)]);
        let mut m = CostModel::new();
        m.set_table("t", Arc::new(stats));
        let plan = LogicalPlan::Filter {
            input: Box::new(scan("t", &schema)),
            predicate: Expr::col("a").binary(BinaryOp::Eq, Expr::lit(Value::Int64(3))),
        };
        let est = m.estimate_rows(&plan).unwrap();
        assert!(
            (est - 100.0).abs() < 30.0,
            "a = 3 over 10 distinct values ≈ 100 rows, got {est}"
        );
    }

    #[test]
    fn join_rows_divide_by_key_distinct() {
        let (fs, fstats) = table_with(&[("id", (0..50).collect())]);
        let rvals: Vec<i64> = (0..500).map(|i| i % 50).collect();
        let (rs, rstats) = table_with(&[("id", rvals)]);
        let mut m = CostModel::new();
        m.set_table("f", Arc::new(fstats));
        m.set_table("r", Arc::new(rstats));
        let plan = LogicalPlan::Join {
            left: Box::new(scan("f", &fs)),
            right: Box::new(scan("r", &rs)),
            on: vec![(Expr::col("id"), Expr::col("id"))],
            right_label: "r".into(),
        };
        let est = m.estimate_rows(&plan).unwrap();
        // 50 × 500 / ~50 distinct ≈ 500.
        assert!((est - 500.0).abs() < 150.0, "FK join ≈ 500 rows, got {est}");
    }

    #[test]
    fn qualified_columns_strip_alias() {
        let (schema, stats) = table_with(&[("a", (0..100).collect())]);
        let mut m = CostModel::new();
        m.set_table("t", Arc::new(stats));
        // Alias projection as the planner emits it.
        let aliased = LogicalPlan::Project {
            input: Box::new(scan("t", &schema)),
            exprs: vec![(Expr::col("a"), "x.a".to_string())],
        };
        let plan = LogicalPlan::Filter {
            input: Box::new(aliased),
            predicate: Expr::col("x.a").binary(BinaryOp::Lt, Expr::lit(Value::Int64(50))),
        };
        let est = m.estimate_rows(&plan).unwrap();
        assert!(est > 10.0 && est < 90.0, "qualified lookup worked: {est}");
    }

    #[test]
    fn multipliers_scale_cost_not_rows() {
        let (schema, stats) = table_with(&[("a", (0..100).collect())]);
        let mut m = CostModel::new();
        m.set_table("t", Arc::new(stats));
        m.set_multiplier("t", 8.0);
        let plan = scan("t", &schema);
        assert_eq!(m.estimate_rows(&plan), Some(100.0));
        assert_eq!(m.estimate_cost(&plan), Some(800.0));
        // Bogus multipliers are ignored.
        m.set_multiplier("t", f64::NAN);
        assert_eq!(m.estimate_cost(&plan), Some(100.0));
    }

    #[test]
    fn nan_tainted_range_degrades_to_default() {
        let mut s = ColumnStats::empty("a");
        s.count = 100;
        s.nans = 1;
        s.min = Some(Value::Float64(0.0));
        s.max = Some(Value::Float64(1.0));
        let schema = Schema::new(vec![Field::new("a", DataType::Float64)]).unwrap();
        let mut m = CostModel::new();
        m.set_table("t", Arc::new(vec![s]));
        let plan = LogicalPlan::Filter {
            input: Box::new(scan("t", &schema)),
            predicate: Expr::col("a").binary(BinaryOp::Gt, Expr::lit(Value::Float64(2.0))),
        };
        // Trusted range would say ~0; NaN taint must keep the default.
        let est = m.estimate_rows(&plan).unwrap();
        assert!(
            (est - 100.0 * DEFAULT_RANGE_SELECTIVITY).abs() < 1.0,
            "NaN-tainted range uses default selectivity, got {est}"
        );
    }

    #[test]
    fn limit_and_aggregate_estimates() {
        let vals: Vec<i64> = (0..1000).map(|i| i % 20).collect();
        let (schema, stats) = table_with(&[("a", vals)]);
        let mut m = CostModel::new();
        m.set_table("t", Arc::new(stats));
        let lim = LogicalPlan::Limit {
            input: Box::new(scan("t", &schema)),
            n: 7,
        };
        assert_eq!(m.estimate_rows(&lim), Some(7.0));
        let agg = LogicalPlan::Aggregate {
            input: Box::new(scan("t", &schema)),
            group: vec![(Expr::col("a"), "a".into())],
            aggregates: vec![],
        };
        let est = m.estimate_rows(&agg).unwrap();
        assert!(
            (15.0..=30.0).contains(&est),
            "group by 20-distinct key ≈ 20 groups, got {est}"
        );
    }
}
