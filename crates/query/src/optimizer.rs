//! Compile-time plan optimization.
//!
//! Three rewrites run before execution, in order:
//!
//! 1. **Timestamp-literal coercion** — string literals compared against
//!    TIMESTAMP columns become microsecond timestamps, so the paper's
//!    Figure-1 queries (`R.start_time > '2010-01-12T00:00:00.000'`) compare
//!    numerically.
//! 2. **Constant folding** — literal-only subexpressions collapse.
//! 3. **Predicate pushdown** — conjunctions split and sink toward their
//!    scans: through projections (with substitution), sorts, distinct, and
//!    into join inputs. This is the compile-time half of the paper's lazy
//!    extraction (§3.1): after pushdown, "the selection predicates on the
//!    metadata are applied first", leaving data-side predicates sitting
//!    directly on the external scan where the runtime rewriter collects
//!    them.

use crate::cost::CostModel;
use crate::error::Result;
use crate::expr::{eval_binary_values, infer_type, resolve_column, Expr, UnaryOp};
use crate::plan::LogicalPlan;
use crate::planner::{conjoin, split_conjunction};
use crate::time::parse_iso_micros;
use lazyetl_store::{DataType, Schema, Value};

/// Run all optimizer passes (heuristic join order: as written).
pub fn optimize(plan: &LogicalPlan) -> Result<LogicalPlan> {
    let plan = coerce_timestamp_literals(plan)?;
    let plan = fold_constants(&plan);
    let plan = push_down_filters(&plan)?;
    let plan = prune_columns(&plan, None)?;
    Ok(plan)
}

/// Run all optimizer passes including cost-based join reordering.
///
/// Reordering only fires where the model can estimate every join input
/// (statless pre-upgrade snapshots produce no estimates, so their plans
/// keep the as-written order — the old heuristics).
pub fn optimize_with_cost(plan: &LogicalPlan, model: &CostModel) -> Result<LogicalPlan> {
    let plan = coerce_timestamp_literals(plan)?;
    let plan = fold_constants(&plan);
    let plan = push_down_filters(&plan)?;
    let plan = reorder_joins(&plan, model)?;
    let plan = prune_columns(&plan, None)?;
    Ok(plan)
}

// ---------------------------------------------------------------------------
// Pass 1: timestamp literal coercion
// ---------------------------------------------------------------------------

fn is_timestamp_expr(e: &Expr, schema: &Schema) -> bool {
    matches!(infer_type(e, schema), Ok(DataType::Timestamp))
}

fn coerce_literal(e: &Expr) -> Option<Expr> {
    if let Expr::Literal(Value::Utf8(s)) = e {
        parse_iso_micros(s).map(|us| Expr::Literal(Value::Timestamp(us)))
    } else {
        None
    }
}

fn coerce_in_expr(expr: &Expr, schema: &Schema) -> Expr {
    expr.transform(&mut |node| match &node {
        Expr::Binary { left, op, right } if op.is_comparison() => {
            if is_timestamp_expr(left, schema) {
                if let Some(lit) = coerce_literal(right) {
                    return Expr::Binary {
                        left: left.clone(),
                        op: *op,
                        right: Box::new(lit),
                    };
                }
            }
            if is_timestamp_expr(right, schema) {
                if let Some(lit) = coerce_literal(left) {
                    return Expr::Binary {
                        left: Box::new(lit),
                        op: *op,
                        right: right.clone(),
                    };
                }
            }
            node
        }
        Expr::Between {
            expr: tested,
            low,
            high,
            negated,
        } if is_timestamp_expr(tested, schema) => {
            let low2 = coerce_literal(low).unwrap_or_else(|| (**low).clone());
            let high2 = coerce_literal(high).unwrap_or_else(|| (**high).clone());
            Expr::Between {
                expr: tested.clone(),
                low: Box::new(low2),
                high: Box::new(high2),
                negated: *negated,
            }
        }
        Expr::InList {
            expr: tested,
            list,
            negated,
        } if is_timestamp_expr(tested, schema) => Expr::InList {
            expr: tested.clone(),
            list: list
                .iter()
                .map(|e| coerce_literal(e).unwrap_or_else(|| e.clone()))
                .collect(),
            negated: *negated,
        },
        _ => node,
    })
}

/// Coerce ISO-8601 string literals compared against timestamp expressions.
pub fn coerce_timestamp_literals(plan: &LogicalPlan) -> Result<LogicalPlan> {
    Ok(match plan {
        LogicalPlan::Filter { input, predicate } => {
            let new_input = coerce_timestamp_literals(input)?;
            let schema = new_input.schema()?;
            LogicalPlan::Filter {
                predicate: coerce_in_expr(predicate, &schema),
                input: Box::new(new_input),
            }
        }
        LogicalPlan::Project { input, exprs } => {
            let new_input = coerce_timestamp_literals(input)?;
            let schema = new_input.schema()?;
            LogicalPlan::Project {
                exprs: exprs
                    .iter()
                    .map(|(e, n)| (coerce_in_expr(e, &schema), n.clone()))
                    .collect(),
                input: Box::new(new_input),
            }
        }
        LogicalPlan::Aggregate {
            input,
            group,
            aggregates,
        } => {
            let new_input = coerce_timestamp_literals(input)?;
            LogicalPlan::Aggregate {
                input: Box::new(new_input),
                group: group.clone(),
                aggregates: aggregates.clone(),
            }
        }
        LogicalPlan::Join {
            left,
            right,
            on,
            right_label,
        } => LogicalPlan::Join {
            left: Box::new(coerce_timestamp_literals(left)?),
            right: Box::new(coerce_timestamp_literals(right)?),
            on: on.clone(),
            right_label: right_label.clone(),
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(coerce_timestamp_literals(input)?),
            keys: keys.clone(),
        },
        LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
            input: Box::new(coerce_timestamp_literals(input)?),
            n: *n,
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(coerce_timestamp_literals(input)?),
        },
        leaf => leaf.clone(),
    })
}

// ---------------------------------------------------------------------------
// Pass 2: constant folding
// ---------------------------------------------------------------------------

/// Try to evaluate an expression that references no columns.
pub fn try_eval_const(expr: &Expr) -> Option<Value> {
    match expr {
        Expr::Literal(v) => Some(v.clone()),
        Expr::Binary { left, op, right } => {
            let l = try_eval_const(left)?;
            // AND/OR can short-circuit on one constant side.
            let r = try_eval_const(right)?;
            eval_binary_values(*op, &l, &r).ok()
        }
        Expr::Unary { op, expr } => {
            let v = try_eval_const(expr)?;
            match op {
                UnaryOp::Not => v.as_bool().map(|b| Value::Bool(!b)).or(if v.is_null() {
                    Some(Value::Null)
                } else {
                    None
                }),
                UnaryOp::Neg => match v {
                    Value::Int32(x) => Some(Value::Int32(-x)),
                    Value::Int64(x) => Some(Value::Int64(-x)),
                    Value::Float64(x) => Some(Value::Float64(-x)),
                    Value::Null => Some(Value::Null),
                    _ => None,
                },
            }
        }
        Expr::IsNull { expr, negated } => {
            let v = try_eval_const(expr)?;
            Some(Value::Bool(v.is_null() != *negated))
        }
        _ => None,
    }
}

/// Fold constant subexpressions of a single expression.
pub fn fold_expr(expr: &Expr) -> Expr {
    expr.transform(&mut |node| {
        if matches!(node, Expr::Literal(_)) {
            return node;
        }
        match try_eval_const(&node) {
            Some(v) => Expr::Literal(v),
            None => node,
        }
    })
}

/// Fold constant subexpressions throughout the plan.
pub fn fold_constants(plan: &LogicalPlan) -> LogicalPlan {
    plan.transform_up(&mut |node| match node {
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input,
            predicate: fold_expr(&predicate),
        },
        LogicalPlan::Project { input, exprs } => LogicalPlan::Project {
            input,
            exprs: exprs.into_iter().map(|(e, n)| (fold_expr(&e), n)).collect(),
        },
        other => other,
    })
}

// ---------------------------------------------------------------------------
// Pass 3: predicate pushdown
// ---------------------------------------------------------------------------

fn columns_of(expr: &Expr) -> Vec<String> {
    let mut cols = Vec::new();
    expr.columns_used(&mut cols);
    cols
}

fn all_resolve(expr: &Expr, schema: &Schema) -> bool {
    columns_of(expr)
        .iter()
        .all(|c| resolve_column(schema, c).is_some())
}

/// Substitute projection outputs back into a predicate so it can move
/// below the projection, using the same qualifier-aware resolution rules
/// as column lookup (see [`crate::expr::resolve_name`]).
fn substitute_project(pred: &Expr, exprs: &[(Expr, String)]) -> Expr {
    pred.transform(&mut |node| {
        if let Expr::Column(name) = &node {
            if let Some(i) = crate::expr::resolve_name(exprs.iter().map(|(_, n)| n.as_str()), name)
            {
                return exprs[i].0.clone();
            }
        }
        node
    })
}

/// Push filter conjunctions toward their scans.
pub fn push_down_filters(plan: &LogicalPlan) -> Result<LogicalPlan> {
    Ok(match plan {
        LogicalPlan::Filter { input, predicate } => {
            let mut conjuncts = Vec::new();
            split_conjunction(predicate, &mut conjuncts);
            push_conjuncts(input, conjuncts)?
        }
        LogicalPlan::Project { input, exprs } => LogicalPlan::Project {
            input: Box::new(push_down_filters(input)?),
            exprs: exprs.clone(),
        },
        LogicalPlan::Aggregate {
            input,
            group,
            aggregates,
        } => LogicalPlan::Aggregate {
            input: Box::new(push_down_filters(input)?),
            group: group.clone(),
            aggregates: aggregates.clone(),
        },
        LogicalPlan::Join {
            left,
            right,
            on,
            right_label,
        } => LogicalPlan::Join {
            left: Box::new(push_down_filters(left)?),
            right: Box::new(push_down_filters(right)?),
            on: on.clone(),
            right_label: right_label.clone(),
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(push_down_filters(input)?),
            keys: keys.clone(),
        },
        LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
            input: Box::new(push_down_filters(input)?),
            n: *n,
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(push_down_filters(input)?),
        },
        leaf => leaf.clone(),
    })
}

/// Push a set of conjuncts into `plan`, wrapping what cannot sink.
fn push_conjuncts(plan: &LogicalPlan, conjuncts: Vec<Expr>) -> Result<LogicalPlan> {
    match plan {
        LogicalPlan::Filter { input, predicate } => {
            // Merge and continue downward.
            let mut all = conjuncts;
            split_conjunction(predicate, &mut all);
            push_conjuncts(input, all)
        }
        LogicalPlan::Project { input, exprs } => {
            let input_schema = input.schema()?;
            let mut sinkable = Vec::new();
            let mut stuck = Vec::new();
            for c in conjuncts {
                let substituted = substitute_project(&c, exprs);
                if all_resolve(&substituted, &input_schema) {
                    sinkable.push(substituted);
                } else {
                    stuck.push(c);
                }
            }
            let new_input = push_conjuncts(input, sinkable)?;
            let node = LogicalPlan::Project {
                input: Box::new(new_input),
                exprs: exprs.clone(),
            };
            Ok(wrap_filter(node, stuck))
        }
        LogicalPlan::Join {
            left,
            right,
            on,
            right_label,
        } => {
            let left_schema = left.schema()?;
            let right_schema = right.schema()?;
            let mut to_left = Vec::new();
            let mut to_right = Vec::new();
            let mut stuck = Vec::new();
            for c in conjuncts {
                if all_resolve(&c, &left_schema) {
                    to_left.push(c);
                } else if all_resolve(&c, &right_schema) {
                    to_right.push(c);
                } else {
                    stuck.push(c);
                }
            }
            let node = LogicalPlan::Join {
                left: Box::new(push_conjuncts(left, to_left)?),
                right: Box::new(push_conjuncts(right, to_right)?),
                on: on.clone(),
                right_label: right_label.clone(),
            };
            Ok(wrap_filter(node, stuck))
        }
        LogicalPlan::Sort { input, keys } => Ok(LogicalPlan::Sort {
            input: Box::new(push_conjuncts(input, conjuncts)?),
            keys: keys.clone(),
        }),
        LogicalPlan::Distinct { input } => Ok(LogicalPlan::Distinct {
            input: Box::new(push_conjuncts(input, conjuncts)?),
        }),
        // Not safe to push through Limit or Aggregate; optimize below and
        // leave the filter here.
        other => {
            let below = push_down_filters(other)?;
            Ok(wrap_filter(below, conjuncts))
        }
    }
}

fn wrap_filter(plan: LogicalPlan, conjuncts: Vec<Expr>) -> LogicalPlan {
    match conjoin(conjuncts) {
        Some(pred) => LogicalPlan::Filter {
            input: Box::new(plan),
            predicate: pred,
        },
        None => plan,
    }
}

// ---------------------------------------------------------------------------
// Pass 3b: cost-based join reordering
// ---------------------------------------------------------------------------

/// One relation of a flattened join chain.
struct JoinLeaf {
    plan: LogicalPlan,
    schema: Schema,
    label: String,
}

/// An equi-join edge between two leaves; `a_expr` resolves against
/// `leaves[a]`, `b_expr` against `leaves[b]`.
struct JoinEdge {
    a: usize,
    b: usize,
    a_expr: Expr,
    b_expr: Expr,
}

/// Reorder contiguous chains of inner equi-joins by estimated cost:
/// start from the cheapest relation (estimated rows × source access
/// multiplier), then greedily add the connected relation minimizing the
/// intermediate result, again weighted by the candidate's multiplier.
/// Expensive federated mounts therefore enter the chain as late as
/// possible — by the time their rows are touched, the accumulated
/// selectivity of every earlier join and filter applies to them in one
/// step. The rewritten chain is wrapped in a projection restoring the
/// original output schema, so the rewrite is transparent to everything
/// above it.
///
/// The pass is deliberately conservative — a chain keeps its as-written
/// order whenever any of these hold:
/// * fewer than three relations (two-way joins already pick the smaller
///   build side at run time);
/// * output column names are not globally unique (reordering would change
///   the join's duplicate-renaming);
/// * an ON-condition side spans more than one relation;
/// * the model cannot estimate every relation (statless snapshots).
pub fn reorder_joins(plan: &LogicalPlan, model: &CostModel) -> Result<LogicalPlan> {
    Ok(match plan {
        LogicalPlan::Join { .. } => reorder_chain(plan, model)?,
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(reorder_joins(input, model)?),
            predicate: predicate.clone(),
        },
        LogicalPlan::Project { input, exprs } => LogicalPlan::Project {
            input: Box::new(reorder_joins(input, model)?),
            exprs: exprs.clone(),
        },
        LogicalPlan::Aggregate {
            input,
            group,
            aggregates,
        } => LogicalPlan::Aggregate {
            input: Box::new(reorder_joins(input, model)?),
            group: group.clone(),
            aggregates: aggregates.clone(),
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(reorder_joins(input, model)?),
            keys: keys.clone(),
        },
        LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
            input: Box::new(reorder_joins(input, model)?),
            n: *n,
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(reorder_joins(input, model)?),
        },
        leaf => leaf.clone(),
    })
}

/// Flatten a maximal tree of Join nodes into its non-join leaves and raw
/// equi-edges. Leaves keep the `right_label` they carried where known.
fn flatten_chain(
    plan: &LogicalPlan,
    leaves: &mut Vec<(LogicalPlan, String)>,
    raw_edges: &mut Vec<(Expr, Expr)>,
) {
    match plan {
        LogicalPlan::Join {
            left,
            right,
            on,
            right_label,
        } => {
            flatten_chain(left, leaves, raw_edges);
            match &**right {
                LogicalPlan::Join { .. } => flatten_chain(right, leaves, raw_edges),
                other => leaves.push((other.clone(), right_label.clone())),
            }
            raw_edges.extend(on.iter().cloned());
        }
        other => leaves.push((other.clone(), String::new())),
    }
}

/// Keep a join chain's structure, recursing into its non-join subtrees.
fn keep_order(plan: &LogicalPlan, model: &CostModel) -> Result<LogicalPlan> {
    match plan {
        LogicalPlan::Join {
            left,
            right,
            on,
            right_label,
        } => Ok(LogicalPlan::Join {
            left: Box::new(keep_order(left, model)?),
            right: Box::new(keep_order(right, model)?),
            on: on.clone(),
            right_label: right_label.clone(),
        }),
        other => reorder_joins(other, model),
    }
}

fn reorder_chain(plan: &LogicalPlan, model: &CostModel) -> Result<LogicalPlan> {
    let original_schema = plan.schema()?;
    let mut raw_leaves = Vec::new();
    let mut raw_edges = Vec::new();
    flatten_chain(plan, &mut raw_leaves, &mut raw_edges);
    let n = raw_leaves.len();
    if n < 3 {
        return keep_order(plan, model);
    }

    let mut leaves = Vec::with_capacity(n);
    for (lp, label) in &raw_leaves {
        let schema = lp.schema()?;
        leaves.push(JoinLeaf {
            plan: lp.clone(),
            schema,
            label: label.clone(),
        });
    }

    // Output names must be globally unique, or reordering would change the
    // join's duplicate-renaming and break references above.
    let mut all_names = std::collections::BTreeSet::new();
    for l in &leaves {
        for f in &l.schema.fields {
            if !all_names.insert(f.name.clone()) {
                return keep_order(plan, model);
            }
        }
    }

    // Attribute each edge side to exactly one leaf.
    let mut edges = Vec::with_capacity(raw_edges.len());
    for (le, re) in &raw_edges {
        let owner = |e: &Expr| -> Option<usize> {
            let mut found = None;
            for (i, l) in leaves.iter().enumerate() {
                if all_resolve(e, &l.schema) {
                    if found.is_some() {
                        return None; // ambiguous (can't happen with unique names)
                    }
                    found = Some(i);
                }
            }
            found
        };
        match (owner(le), owner(re)) {
            (Some(a), Some(b)) if a != b => edges.push(JoinEdge {
                a,
                b,
                a_expr: le.clone(),
                b_expr: re.clone(),
            }),
            _ => return keep_order(plan, model),
        }
    }

    // Every relation must have an estimate and at least one edge.
    let mut rows = Vec::with_capacity(n);
    for l in &leaves {
        match model.estimate_rows(&l.plan) {
            Some(r) => rows.push(r),
            None => return keep_order(plan, model),
        }
    }
    for i in 0..n {
        if !edges.iter().any(|e| e.a == i || e.b == i) {
            return keep_order(plan, model);
        }
    }

    // Greedy: cheapest relation first (rows × access multiplier), then
    // repeatedly join the connected relation whose result — weighted by
    // its own multiplier — is cheapest.
    let cost = |i: usize| rows[i] * model.access_multiplier(&leaves[i].plan);
    let start = (0..n)
        .min_by(|&i, &j| cost(i).total_cmp(&cost(j)))
        .expect("n >= 3");
    let mut used = vec![false; n];
    used[start] = true;
    let mut order = vec![start];
    let mut cur = reorder_joins(&leaves[start].plan, model)?;
    for _ in 1..n {
        let mut best: Option<(f64, usize, LogicalPlan)> = None;
        for j in 0..n {
            if used[j] {
                continue;
            }
            // Orient every edge between the accumulated set and leaf j.
            let mut on = Vec::new();
            for e in &edges {
                if e.b == j && used[e.a] {
                    on.push((e.a_expr.clone(), e.b_expr.clone()));
                } else if e.a == j && used[e.b] {
                    on.push((e.b_expr.clone(), e.a_expr.clone()));
                }
            }
            if on.is_empty() {
                continue; // not yet connected
            }
            let label = if leaves[j].label.is_empty() {
                format!("j{j}")
            } else {
                leaves[j].label.clone()
            };
            let candidate = LogicalPlan::Join {
                left: Box::new(cur.clone()),
                right: Box::new(reorder_joins(&leaves[j].plan, model)?),
                on,
                right_label: label,
            };
            let est = match model.estimate_rows(&candidate) {
                Some(e) => e,
                None => return keep_order(plan, model),
            };
            let score = est * model.access_multiplier(&leaves[j].plan);
            let better = match &best {
                None => true,
                Some((s, bj, _)) => score < *s || (score == *s && j < *bj),
            };
            if better {
                best = Some((score, j, candidate));
            }
        }
        let (_, j, candidate) = match best {
            Some(b) => b,
            None => return keep_order(plan, model), // disconnected graph
        };
        used[j] = true;
        order.push(j);
        cur = candidate;
    }

    if order == (0..n).collect::<Vec<_>>() {
        // Chosen order is the as-written order: keep the original tree
        // (and its schema) untouched.
        return keep_order(plan, model);
    }

    // Restore the original column order so the rewrite is invisible above.
    let exprs: Vec<(Expr, String)> = original_schema
        .fields
        .iter()
        .map(|f| (Expr::Column(f.name.clone()), f.name.clone()))
        .collect();
    Ok(LogicalPlan::Project {
        input: Box::new(cur),
        exprs,
    })
}

// ---------------------------------------------------------------------------
// Pass 4: projection pruning
// ---------------------------------------------------------------------------

/// Names a node's parent actually consumes; `None` = everything.
type Required = Option<std::collections::BTreeSet<String>>;

fn require_all() -> Required {
    None
}

fn add_expr_columns(req: &mut std::collections::BTreeSet<String>, e: &Expr) {
    let mut cols = Vec::new();
    e.columns_used(&mut cols);
    req.extend(cols);
}

/// Is output name `name` needed by the requirement set?
fn is_required(req: &Required, name: &str, all_names: &[String]) -> bool {
    match req {
        None => true,
        Some(set) => set.iter().any(|want| {
            // A required reference matches this output if resolution over
            // the full output list picks exactly this column.
            crate::expr::resolve_name(all_names.iter().map(|s| s.as_str()), want)
                .map(|i| all_names[i] == name)
                .unwrap_or(false)
        }),
    }
}

/// Drop unused columns: narrow projections to what their consumers need and
/// insert narrowing projections on join inputs. Wide scans (the
/// de-normalized dataview exposes ~30 columns) otherwise drag every column
/// through joins and gathers.
pub fn prune_columns(plan: &LogicalPlan, required: Required) -> Result<LogicalPlan> {
    Ok(match plan {
        LogicalPlan::Project { input, exprs } => {
            let all_names: Vec<String> = exprs.iter().map(|(_, n)| n.clone()).collect();
            let kept: Vec<(Expr, String)> = exprs
                .iter()
                .filter(|(_, n)| is_required(&required, n, &all_names))
                .cloned()
                .collect();
            // Never prune to zero columns.
            let kept = if kept.is_empty() { exprs.clone() } else { kept };
            let mut child_req = std::collections::BTreeSet::new();
            for (e, _) in &kept {
                add_expr_columns(&mut child_req, e);
            }
            LogicalPlan::Project {
                input: Box::new(prune_columns(input, Some(child_req))?),
                exprs: kept,
            }
        }
        LogicalPlan::Filter { input, predicate } => {
            let required = match required {
                None => None,
                Some(mut set) => {
                    add_expr_columns(&mut set, predicate);
                    Some(set)
                }
            };
            LogicalPlan::Filter {
                input: Box::new(prune_columns(input, required)?),
                predicate: predicate.clone(),
            }
        }
        LogicalPlan::Aggregate {
            input,
            group,
            aggregates,
        } => {
            let mut child_req = std::collections::BTreeSet::new();
            for (e, _) in group.iter().chain(aggregates) {
                add_expr_columns(&mut child_req, e);
            }
            LogicalPlan::Aggregate {
                input: Box::new(prune_columns(input, Some(child_req))?),
                group: group.clone(),
                aggregates: aggregates.clone(),
            }
        }
        LogicalPlan::Join {
            left,
            right,
            on,
            right_label,
        } => {
            let left_schema = left.schema()?;
            let right_schema = right.schema()?;
            // Pruning may only proceed when the join performs no duplicate
            // renaming (all output names already distinct); otherwise
            // dropping a column could change downstream names.
            let has_dup = right_schema
                .fields
                .iter()
                .any(|f| left_schema.index_of(&f.name).is_some());
            let mut req = match (&required, has_dup) {
                (Some(set), false) => set.clone(),
                _ => {
                    // Keep everything below; still recurse for nested joins.
                    return Ok(LogicalPlan::Join {
                        left: Box::new(prune_columns(left, require_all())?),
                        right: Box::new(prune_columns(right, require_all())?),
                        on: on.clone(),
                        right_label: right_label.clone(),
                    });
                }
            };
            for (l, r) in on {
                add_expr_columns(&mut req, l);
                add_expr_columns(&mut req, r);
            }
            let side_req = |schema: &Schema| -> std::collections::BTreeSet<String> {
                req.iter()
                    .filter(|name| crate::expr::resolve_column(schema, name).is_some())
                    .cloned()
                    .collect()
            };
            LogicalPlan::Join {
                left: Box::new(prune_columns(left, Some(side_req(&left_schema)))?),
                right: Box::new(prune_columns(right, Some(side_req(&right_schema)))?),
                on: on.clone(),
                right_label: right_label.clone(),
            }
        }
        LogicalPlan::Sort { input, keys } => {
            let required = match required {
                None => None,
                Some(mut set) => {
                    for (e, _) in keys {
                        add_expr_columns(&mut set, e);
                    }
                    Some(set)
                }
            };
            LogicalPlan::Sort {
                input: Box::new(prune_columns(input, required)?),
                keys: keys.clone(),
            }
        }
        LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
            input: Box::new(prune_columns(input, required)?),
            n: *n,
        },
        // DISTINCT semantics depend on every column: keep all below.
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(prune_columns(input, require_all())?),
        },
        leaf => leaf.clone(),
    })
}

/// Collect the conjuncts of every Filter sitting directly above a leaf that
/// satisfies `is_target`. Used by the lazy rewriter to find "the selection
/// predicates on the metadata" and on the actual data.
pub fn predicates_above<F: Fn(&LogicalPlan) -> bool>(
    plan: &LogicalPlan,
    is_target: &F,
) -> Vec<Expr> {
    let mut out = Vec::new();
    fn walk<F: Fn(&LogicalPlan) -> bool>(plan: &LogicalPlan, is_target: &F, out: &mut Vec<Expr>) {
        if let LogicalPlan::Filter { input, predicate } = plan {
            if is_target(input) {
                split_conjunction(predicate, out);
            }
        }
        for c in plan.children() {
            walk(c, is_target, out);
        }
    }
    walk(plan, is_target, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinaryOp;
    use crate::planner::{plan_sql, TableSource};
    use lazyetl_store::{Catalog, Field, Table};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let files = Schema::new(vec![
            Field::new("file_id", DataType::Int64),
            Field::new("station", DataType::Utf8),
            Field::new("mtime", DataType::Timestamp),
        ])
        .unwrap();
        let records = Schema::new(vec![
            Field::new("file_id", DataType::Int64),
            Field::new("start_time", DataType::Timestamp),
        ])
        .unwrap();
        c.create_table("files", Table::empty(files)).unwrap();
        c.create_table("records", Table::empty(records)).unwrap();
        c
    }

    #[test]
    fn timestamp_literals_coerced() {
        let c = catalog();
        let src = TableSource::new(&c);
        let plan = plan_sql(
            "SELECT file_id FROM records WHERE start_time > '2010-01-12T00:00:00.000'",
            &src,
        )
        .unwrap();
        let opt = optimize(&plan).unwrap();
        let d = opt.display();
        assert!(
            d.contains("2010-01-12T00:00:00.000000"),
            "coerced literal shown as timestamp:\n{d}"
        );
        // The predicate value is a Timestamp literal, not a string.
        let preds = predicates_above(&opt, &|p| matches!(p, LogicalPlan::TableScan { .. }));
        assert_eq!(preds.len(), 1);
        match &preds[0] {
            Expr::Binary { right, .. } => {
                assert!(matches!(**right, Expr::Literal(Value::Timestamp(_))))
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn constants_fold() {
        let e = Expr::lit(Value::Int64(2)).binary(BinaryOp::Mul, Expr::lit(Value::Int64(21)));
        assert_eq!(fold_expr(&e), Expr::Literal(Value::Int64(42)));
        let e = Expr::col("x").binary(
            BinaryOp::Gt,
            Expr::lit(Value::Int64(1)).binary(BinaryOp::Add, Expr::lit(Value::Int64(1))),
        );
        let folded = fold_expr(&e);
        assert_eq!(folded.to_string(), "(x > 2)");
    }

    #[test]
    fn filters_sink_into_join_sides() {
        let c = catalog();
        let src = TableSource::new(&c);
        let plan = plan_sql(
            "SELECT f.station FROM files f JOIN records r ON f.file_id = r.file_id \
             WHERE f.station = 'ISK' AND r.start_time > '2010-01-01'",
            &src,
        )
        .unwrap();
        let opt = optimize(&plan).unwrap();
        let d = opt.display();
        // Both predicates must sit below the Join.
        let join_line = d.lines().position(|l| l.contains("Join")).unwrap();
        let f1 = d
            .lines()
            .position(|l| l.contains("station = 'ISK'"))
            .unwrap();
        let f2 = d.lines().position(|l| l.contains("start_time >")).unwrap();
        assert!(f1 > join_line, "station predicate below join:\n{d}");
        assert!(f2 > join_line, "time predicate below join:\n{d}");
    }

    #[test]
    fn pushdown_through_alias_projection() {
        let c = catalog();
        let src = TableSource::new(&c);
        let plan = plan_sql(
            "SELECT f.station FROM files f WHERE f.station = 'ISK'",
            &src,
        )
        .unwrap();
        let opt = optimize(&plan).unwrap();
        let d = opt.display();
        // Filter must sit directly on the scan (below the alias projection).
        let scan_line = d.lines().position(|l| l.contains("TableScan")).unwrap();
        let filter_line = d.lines().position(|l| l.contains("Filter")).unwrap();
        assert_eq!(
            filter_line + 1,
            scan_line,
            "filter directly above scan:\n{d}"
        );
    }

    #[test]
    fn cost_based_reorder_puts_smallest_first() {
        // Three tables with skewed sizes, written largest-first. The greedy
        // reorder must start from the smallest relation.
        let mut c = Catalog::new();
        let mk = |cols: Vec<(&str, Vec<i64>)>| -> Table {
            let schema = Schema::new(
                cols.iter()
                    .map(|(n, _)| Field::new(n, DataType::Int64))
                    .collect(),
            )
            .unwrap();
            let columns = cols
                .iter()
                .map(|(_, vals)| {
                    let values: Vec<Value> = vals.iter().map(|v| Value::Int64(*v)).collect();
                    lazyetl_store::Column::from_values(DataType::Int64, &values).unwrap()
                })
                .collect();
            Table::new(schema, columns).unwrap()
        };
        let big: Vec<i64> = (0..1000).map(|i| i % 100).collect();
        let mid: Vec<i64> = (0..100).collect();
        c.create_table("big", mk(vec![("k", big)])).unwrap();
        c.create_table("mid", mk(vec![("k", mid.clone()), ("k2", mid.clone())]))
            .unwrap();
        c.create_table("small", mk(vec![("k2", (0..10).collect())]))
            .unwrap();
        let src = TableSource::new(&c);
        let plan = plan_sql(
            "SELECT b.k FROM big b JOIN mid m ON b.k = m.k JOIN small s ON m.k2 = s.k2",
            &src,
        )
        .unwrap();
        let model = crate::cost::CostModel::from_catalog(&c);
        let opt = optimize_with_cost(&plan, &model).unwrap();
        let d = opt.display();
        let scans: Vec<&str> = d
            .lines()
            .filter(|l| l.contains("TableScan"))
            .map(|l| l.trim())
            .collect();
        assert_eq!(
            scans,
            vec!["TableScan: small", "TableScan: mid", "TableScan: big"],
            "smallest relation leads the join chain:\n{d}"
        );
        // The rewrite must not change the output schema.
        let base = optimize(&plan).unwrap();
        assert_eq!(opt.schema().unwrap(), base.schema().unwrap(), "plan:\n{d}");
    }

    #[test]
    fn statless_model_keeps_as_written_order() {
        let c = catalog(); // empty tables, but present stats
        let src = TableSource::new(&c);
        let plan = plan_sql(
            "SELECT f.station FROM files f JOIN records r ON f.file_id = r.file_id",
            &src,
        )
        .unwrap();
        // Empty model: no estimates at all — identical to plain optimize().
        let model = crate::cost::CostModel::new();
        let opt = optimize_with_cost(&plan, &model).unwrap();
        assert_eq!(opt, optimize(&plan).unwrap());
    }

    #[test]
    fn remote_multiplier_biases_join_order() {
        // Two candidate joins of identical estimated size; the one over the
        // expensive (remote) mount must enter the chain last, so the full
        // accumulated selectivity applies to its rows at first touch.
        let mut c = Catalog::new();
        let mk_keyed = |n: usize, key: &str| -> Table {
            let schema = Schema::new(vec![Field::new(key, DataType::Int64)]).unwrap();
            let values: Vec<Value> = (0..n).map(|v| Value::Int64(v as i64 % 50)).collect();
            Table::new(
                schema,
                vec![lazyetl_store::Column::from_values(DataType::Int64, &values).unwrap()],
            )
            .unwrap()
        };
        let hub = Table::new(
            Schema::new(vec![
                Field::new("a", DataType::Int64),
                Field::new("b", DataType::Int64),
            ])
            .unwrap(),
            vec![
                lazyetl_store::Column::from_values(
                    DataType::Int64,
                    &(0..50).map(Value::Int64).collect::<Vec<_>>(),
                )
                .unwrap(),
                lazyetl_store::Column::from_values(
                    DataType::Int64,
                    &(0..50).map(Value::Int64).collect::<Vec<_>>(),
                )
                .unwrap(),
            ],
        )
        .unwrap();
        c.create_table("hub", hub).unwrap();
        c.create_table("local_t", mk_keyed(400, "a")).unwrap();
        c.create_table("remote_t", mk_keyed(400, "b")).unwrap();
        let src = TableSource::new(&c);
        // Written remote-first, so keeping the as-written order would fail.
        let plan = plan_sql(
            "SELECT h.a FROM hub h JOIN remote_t r ON h.b = r.b JOIN local_t l ON h.a = l.a",
            &src,
        )
        .unwrap();
        let mut model = crate::cost::CostModel::from_catalog(&c);
        model.set_multiplier("remote_t", 10.0);
        let opt = optimize_with_cost(&plan, &model).unwrap();
        let d = opt.display();
        let pos = |t: &str| {
            d.lines()
                .position(|l| l.trim() == format!("TableScan: {t}"))
                .unwrap()
        };
        assert!(
            pos("local_t") < pos("remote_t"),
            "local relation joined before the equally-priced remote one:\n{d}"
        );
    }

    #[test]
    fn filter_not_pushed_through_limit() {
        let c = catalog();
        let src = TableSource::new(&c);
        // Build Filter over Limit manually (SQL can't express it directly).
        let inner = plan_sql("SELECT station FROM files LIMIT 5", &src).unwrap();
        let plan = LogicalPlan::Filter {
            input: Box::new(inner),
            predicate: Expr::col("station")
                .binary(BinaryOp::Eq, Expr::lit(Value::Utf8("ISK".into()))),
        };
        let opt = optimize(&plan).unwrap();
        let d = opt.display();
        let filter_line = d.lines().position(|l| l.contains("Filter")).unwrap();
        let limit_line = d.lines().position(|l| l.contains("Limit")).unwrap();
        assert!(filter_line < limit_line, "filter stays above limit:\n{d}");
    }
}
