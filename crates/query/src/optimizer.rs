//! Compile-time plan optimization.
//!
//! Three rewrites run before execution, in order:
//!
//! 1. **Timestamp-literal coercion** — string literals compared against
//!    TIMESTAMP columns become microsecond timestamps, so the paper's
//!    Figure-1 queries (`R.start_time > '2010-01-12T00:00:00.000'`) compare
//!    numerically.
//! 2. **Constant folding** — literal-only subexpressions collapse.
//! 3. **Predicate pushdown** — conjunctions split and sink toward their
//!    scans: through projections (with substitution), sorts, distinct, and
//!    into join inputs. This is the compile-time half of the paper's lazy
//!    extraction (§3.1): after pushdown, "the selection predicates on the
//!    metadata are applied first", leaving data-side predicates sitting
//!    directly on the external scan where the runtime rewriter collects
//!    them.

use crate::error::Result;
use crate::expr::{eval_binary_values, infer_type, resolve_column, Expr, UnaryOp};
use crate::plan::LogicalPlan;
use crate::planner::{conjoin, split_conjunction};
use crate::time::parse_iso_micros;
use lazyetl_store::{DataType, Schema, Value};

/// Run all optimizer passes.
pub fn optimize(plan: &LogicalPlan) -> Result<LogicalPlan> {
    let plan = coerce_timestamp_literals(plan)?;
    let plan = fold_constants(&plan);
    let plan = push_down_filters(&plan)?;
    let plan = prune_columns(&plan, None)?;
    Ok(plan)
}

// ---------------------------------------------------------------------------
// Pass 1: timestamp literal coercion
// ---------------------------------------------------------------------------

fn is_timestamp_expr(e: &Expr, schema: &Schema) -> bool {
    matches!(infer_type(e, schema), Ok(DataType::Timestamp))
}

fn coerce_literal(e: &Expr) -> Option<Expr> {
    if let Expr::Literal(Value::Utf8(s)) = e {
        parse_iso_micros(s).map(|us| Expr::Literal(Value::Timestamp(us)))
    } else {
        None
    }
}

fn coerce_in_expr(expr: &Expr, schema: &Schema) -> Expr {
    expr.transform(&mut |node| match &node {
        Expr::Binary { left, op, right } if op.is_comparison() => {
            if is_timestamp_expr(left, schema) {
                if let Some(lit) = coerce_literal(right) {
                    return Expr::Binary {
                        left: left.clone(),
                        op: *op,
                        right: Box::new(lit),
                    };
                }
            }
            if is_timestamp_expr(right, schema) {
                if let Some(lit) = coerce_literal(left) {
                    return Expr::Binary {
                        left: Box::new(lit),
                        op: *op,
                        right: right.clone(),
                    };
                }
            }
            node
        }
        Expr::Between {
            expr: tested,
            low,
            high,
            negated,
        } if is_timestamp_expr(tested, schema) => {
            let low2 = coerce_literal(low).unwrap_or_else(|| (**low).clone());
            let high2 = coerce_literal(high).unwrap_or_else(|| (**high).clone());
            Expr::Between {
                expr: tested.clone(),
                low: Box::new(low2),
                high: Box::new(high2),
                negated: *negated,
            }
        }
        Expr::InList {
            expr: tested,
            list,
            negated,
        } if is_timestamp_expr(tested, schema) => Expr::InList {
            expr: tested.clone(),
            list: list
                .iter()
                .map(|e| coerce_literal(e).unwrap_or_else(|| e.clone()))
                .collect(),
            negated: *negated,
        },
        _ => node,
    })
}

/// Coerce ISO-8601 string literals compared against timestamp expressions.
pub fn coerce_timestamp_literals(plan: &LogicalPlan) -> Result<LogicalPlan> {
    Ok(match plan {
        LogicalPlan::Filter { input, predicate } => {
            let new_input = coerce_timestamp_literals(input)?;
            let schema = new_input.schema()?;
            LogicalPlan::Filter {
                predicate: coerce_in_expr(predicate, &schema),
                input: Box::new(new_input),
            }
        }
        LogicalPlan::Project { input, exprs } => {
            let new_input = coerce_timestamp_literals(input)?;
            let schema = new_input.schema()?;
            LogicalPlan::Project {
                exprs: exprs
                    .iter()
                    .map(|(e, n)| (coerce_in_expr(e, &schema), n.clone()))
                    .collect(),
                input: Box::new(new_input),
            }
        }
        LogicalPlan::Aggregate {
            input,
            group,
            aggregates,
        } => {
            let new_input = coerce_timestamp_literals(input)?;
            LogicalPlan::Aggregate {
                input: Box::new(new_input),
                group: group.clone(),
                aggregates: aggregates.clone(),
            }
        }
        LogicalPlan::Join {
            left,
            right,
            on,
            right_label,
        } => LogicalPlan::Join {
            left: Box::new(coerce_timestamp_literals(left)?),
            right: Box::new(coerce_timestamp_literals(right)?),
            on: on.clone(),
            right_label: right_label.clone(),
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(coerce_timestamp_literals(input)?),
            keys: keys.clone(),
        },
        LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
            input: Box::new(coerce_timestamp_literals(input)?),
            n: *n,
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(coerce_timestamp_literals(input)?),
        },
        leaf => leaf.clone(),
    })
}

// ---------------------------------------------------------------------------
// Pass 2: constant folding
// ---------------------------------------------------------------------------

/// Try to evaluate an expression that references no columns.
pub fn try_eval_const(expr: &Expr) -> Option<Value> {
    match expr {
        Expr::Literal(v) => Some(v.clone()),
        Expr::Binary { left, op, right } => {
            let l = try_eval_const(left)?;
            // AND/OR can short-circuit on one constant side.
            let r = try_eval_const(right)?;
            eval_binary_values(*op, &l, &r).ok()
        }
        Expr::Unary { op, expr } => {
            let v = try_eval_const(expr)?;
            match op {
                UnaryOp::Not => v.as_bool().map(|b| Value::Bool(!b)).or(if v.is_null() {
                    Some(Value::Null)
                } else {
                    None
                }),
                UnaryOp::Neg => match v {
                    Value::Int32(x) => Some(Value::Int32(-x)),
                    Value::Int64(x) => Some(Value::Int64(-x)),
                    Value::Float64(x) => Some(Value::Float64(-x)),
                    Value::Null => Some(Value::Null),
                    _ => None,
                },
            }
        }
        Expr::IsNull { expr, negated } => {
            let v = try_eval_const(expr)?;
            Some(Value::Bool(v.is_null() != *negated))
        }
        _ => None,
    }
}

fn fold_expr(expr: &Expr) -> Expr {
    expr.transform(&mut |node| {
        if matches!(node, Expr::Literal(_)) {
            return node;
        }
        match try_eval_const(&node) {
            Some(v) => Expr::Literal(v),
            None => node,
        }
    })
}

/// Fold constant subexpressions throughout the plan.
pub fn fold_constants(plan: &LogicalPlan) -> LogicalPlan {
    plan.transform_up(&mut |node| match node {
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input,
            predicate: fold_expr(&predicate),
        },
        LogicalPlan::Project { input, exprs } => LogicalPlan::Project {
            input,
            exprs: exprs.into_iter().map(|(e, n)| (fold_expr(&e), n)).collect(),
        },
        other => other,
    })
}

// ---------------------------------------------------------------------------
// Pass 3: predicate pushdown
// ---------------------------------------------------------------------------

fn columns_of(expr: &Expr) -> Vec<String> {
    let mut cols = Vec::new();
    expr.columns_used(&mut cols);
    cols
}

fn all_resolve(expr: &Expr, schema: &Schema) -> bool {
    columns_of(expr)
        .iter()
        .all(|c| resolve_column(schema, c).is_some())
}

/// Substitute projection outputs back into a predicate so it can move
/// below the projection, using the same qualifier-aware resolution rules
/// as column lookup (see [`crate::expr::resolve_name`]).
fn substitute_project(pred: &Expr, exprs: &[(Expr, String)]) -> Expr {
    pred.transform(&mut |node| {
        if let Expr::Column(name) = &node {
            if let Some(i) = crate::expr::resolve_name(exprs.iter().map(|(_, n)| n.as_str()), name)
            {
                return exprs[i].0.clone();
            }
        }
        node
    })
}

/// Push filter conjunctions toward their scans.
pub fn push_down_filters(plan: &LogicalPlan) -> Result<LogicalPlan> {
    Ok(match plan {
        LogicalPlan::Filter { input, predicate } => {
            let mut conjuncts = Vec::new();
            split_conjunction(predicate, &mut conjuncts);
            push_conjuncts(input, conjuncts)?
        }
        LogicalPlan::Project { input, exprs } => LogicalPlan::Project {
            input: Box::new(push_down_filters(input)?),
            exprs: exprs.clone(),
        },
        LogicalPlan::Aggregate {
            input,
            group,
            aggregates,
        } => LogicalPlan::Aggregate {
            input: Box::new(push_down_filters(input)?),
            group: group.clone(),
            aggregates: aggregates.clone(),
        },
        LogicalPlan::Join {
            left,
            right,
            on,
            right_label,
        } => LogicalPlan::Join {
            left: Box::new(push_down_filters(left)?),
            right: Box::new(push_down_filters(right)?),
            on: on.clone(),
            right_label: right_label.clone(),
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(push_down_filters(input)?),
            keys: keys.clone(),
        },
        LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
            input: Box::new(push_down_filters(input)?),
            n: *n,
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(push_down_filters(input)?),
        },
        leaf => leaf.clone(),
    })
}

/// Push a set of conjuncts into `plan`, wrapping what cannot sink.
fn push_conjuncts(plan: &LogicalPlan, conjuncts: Vec<Expr>) -> Result<LogicalPlan> {
    match plan {
        LogicalPlan::Filter { input, predicate } => {
            // Merge and continue downward.
            let mut all = conjuncts;
            split_conjunction(predicate, &mut all);
            push_conjuncts(input, all)
        }
        LogicalPlan::Project { input, exprs } => {
            let input_schema = input.schema()?;
            let mut sinkable = Vec::new();
            let mut stuck = Vec::new();
            for c in conjuncts {
                let substituted = substitute_project(&c, exprs);
                if all_resolve(&substituted, &input_schema) {
                    sinkable.push(substituted);
                } else {
                    stuck.push(c);
                }
            }
            let new_input = push_conjuncts(input, sinkable)?;
            let node = LogicalPlan::Project {
                input: Box::new(new_input),
                exprs: exprs.clone(),
            };
            Ok(wrap_filter(node, stuck))
        }
        LogicalPlan::Join {
            left,
            right,
            on,
            right_label,
        } => {
            let left_schema = left.schema()?;
            let right_schema = right.schema()?;
            let mut to_left = Vec::new();
            let mut to_right = Vec::new();
            let mut stuck = Vec::new();
            for c in conjuncts {
                if all_resolve(&c, &left_schema) {
                    to_left.push(c);
                } else if all_resolve(&c, &right_schema) {
                    to_right.push(c);
                } else {
                    stuck.push(c);
                }
            }
            let node = LogicalPlan::Join {
                left: Box::new(push_conjuncts(left, to_left)?),
                right: Box::new(push_conjuncts(right, to_right)?),
                on: on.clone(),
                right_label: right_label.clone(),
            };
            Ok(wrap_filter(node, stuck))
        }
        LogicalPlan::Sort { input, keys } => Ok(LogicalPlan::Sort {
            input: Box::new(push_conjuncts(input, conjuncts)?),
            keys: keys.clone(),
        }),
        LogicalPlan::Distinct { input } => Ok(LogicalPlan::Distinct {
            input: Box::new(push_conjuncts(input, conjuncts)?),
        }),
        // Not safe to push through Limit or Aggregate; optimize below and
        // leave the filter here.
        other => {
            let below = push_down_filters(other)?;
            Ok(wrap_filter(below, conjuncts))
        }
    }
}

fn wrap_filter(plan: LogicalPlan, conjuncts: Vec<Expr>) -> LogicalPlan {
    match conjoin(conjuncts) {
        Some(pred) => LogicalPlan::Filter {
            input: Box::new(plan),
            predicate: pred,
        },
        None => plan,
    }
}

// ---------------------------------------------------------------------------
// Pass 4: projection pruning
// ---------------------------------------------------------------------------

/// Names a node's parent actually consumes; `None` = everything.
type Required = Option<std::collections::BTreeSet<String>>;

fn require_all() -> Required {
    None
}

fn add_expr_columns(req: &mut std::collections::BTreeSet<String>, e: &Expr) {
    let mut cols = Vec::new();
    e.columns_used(&mut cols);
    req.extend(cols);
}

/// Is output name `name` needed by the requirement set?
fn is_required(req: &Required, name: &str, all_names: &[String]) -> bool {
    match req {
        None => true,
        Some(set) => set.iter().any(|want| {
            // A required reference matches this output if resolution over
            // the full output list picks exactly this column.
            crate::expr::resolve_name(all_names.iter().map(|s| s.as_str()), want)
                .map(|i| all_names[i] == name)
                .unwrap_or(false)
        }),
    }
}

/// Drop unused columns: narrow projections to what their consumers need and
/// insert narrowing projections on join inputs. Wide scans (the
/// de-normalized dataview exposes ~30 columns) otherwise drag every column
/// through joins and gathers.
pub fn prune_columns(plan: &LogicalPlan, required: Required) -> Result<LogicalPlan> {
    Ok(match plan {
        LogicalPlan::Project { input, exprs } => {
            let all_names: Vec<String> = exprs.iter().map(|(_, n)| n.clone()).collect();
            let kept: Vec<(Expr, String)> = exprs
                .iter()
                .filter(|(_, n)| is_required(&required, n, &all_names))
                .cloned()
                .collect();
            // Never prune to zero columns.
            let kept = if kept.is_empty() { exprs.clone() } else { kept };
            let mut child_req = std::collections::BTreeSet::new();
            for (e, _) in &kept {
                add_expr_columns(&mut child_req, e);
            }
            LogicalPlan::Project {
                input: Box::new(prune_columns(input, Some(child_req))?),
                exprs: kept,
            }
        }
        LogicalPlan::Filter { input, predicate } => {
            let required = match required {
                None => None,
                Some(mut set) => {
                    add_expr_columns(&mut set, predicate);
                    Some(set)
                }
            };
            LogicalPlan::Filter {
                input: Box::new(prune_columns(input, required)?),
                predicate: predicate.clone(),
            }
        }
        LogicalPlan::Aggregate {
            input,
            group,
            aggregates,
        } => {
            let mut child_req = std::collections::BTreeSet::new();
            for (e, _) in group.iter().chain(aggregates) {
                add_expr_columns(&mut child_req, e);
            }
            LogicalPlan::Aggregate {
                input: Box::new(prune_columns(input, Some(child_req))?),
                group: group.clone(),
                aggregates: aggregates.clone(),
            }
        }
        LogicalPlan::Join {
            left,
            right,
            on,
            right_label,
        } => {
            let left_schema = left.schema()?;
            let right_schema = right.schema()?;
            // Pruning may only proceed when the join performs no duplicate
            // renaming (all output names already distinct); otherwise
            // dropping a column could change downstream names.
            let has_dup = right_schema
                .fields
                .iter()
                .any(|f| left_schema.index_of(&f.name).is_some());
            let mut req = match (&required, has_dup) {
                (Some(set), false) => set.clone(),
                _ => {
                    // Keep everything below; still recurse for nested joins.
                    return Ok(LogicalPlan::Join {
                        left: Box::new(prune_columns(left, require_all())?),
                        right: Box::new(prune_columns(right, require_all())?),
                        on: on.clone(),
                        right_label: right_label.clone(),
                    });
                }
            };
            for (l, r) in on {
                add_expr_columns(&mut req, l);
                add_expr_columns(&mut req, r);
            }
            let side_req = |schema: &Schema| -> std::collections::BTreeSet<String> {
                req.iter()
                    .filter(|name| crate::expr::resolve_column(schema, name).is_some())
                    .cloned()
                    .collect()
            };
            LogicalPlan::Join {
                left: Box::new(prune_columns(left, Some(side_req(&left_schema)))?),
                right: Box::new(prune_columns(right, Some(side_req(&right_schema)))?),
                on: on.clone(),
                right_label: right_label.clone(),
            }
        }
        LogicalPlan::Sort { input, keys } => {
            let required = match required {
                None => None,
                Some(mut set) => {
                    for (e, _) in keys {
                        add_expr_columns(&mut set, e);
                    }
                    Some(set)
                }
            };
            LogicalPlan::Sort {
                input: Box::new(prune_columns(input, required)?),
                keys: keys.clone(),
            }
        }
        LogicalPlan::Limit { input, n } => LogicalPlan::Limit {
            input: Box::new(prune_columns(input, required)?),
            n: *n,
        },
        // DISTINCT semantics depend on every column: keep all below.
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(prune_columns(input, require_all())?),
        },
        leaf => leaf.clone(),
    })
}

/// Collect the conjuncts of every Filter sitting directly above a leaf that
/// satisfies `is_target`. Used by the lazy rewriter to find "the selection
/// predicates on the metadata" and on the actual data.
pub fn predicates_above<F: Fn(&LogicalPlan) -> bool>(
    plan: &LogicalPlan,
    is_target: &F,
) -> Vec<Expr> {
    let mut out = Vec::new();
    fn walk<F: Fn(&LogicalPlan) -> bool>(plan: &LogicalPlan, is_target: &F, out: &mut Vec<Expr>) {
        if let LogicalPlan::Filter { input, predicate } = plan {
            if is_target(input) {
                split_conjunction(predicate, out);
            }
        }
        for c in plan.children() {
            walk(c, is_target, out);
        }
    }
    walk(plan, is_target, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinaryOp;
    use crate::planner::{plan_sql, TableSource};
    use lazyetl_store::{Catalog, Field, Table};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let files = Schema::new(vec![
            Field::new("file_id", DataType::Int64),
            Field::new("station", DataType::Utf8),
            Field::new("mtime", DataType::Timestamp),
        ])
        .unwrap();
        let records = Schema::new(vec![
            Field::new("file_id", DataType::Int64),
            Field::new("start_time", DataType::Timestamp),
        ])
        .unwrap();
        c.create_table("files", Table::empty(files)).unwrap();
        c.create_table("records", Table::empty(records)).unwrap();
        c
    }

    #[test]
    fn timestamp_literals_coerced() {
        let c = catalog();
        let src = TableSource::new(&c);
        let plan = plan_sql(
            "SELECT file_id FROM records WHERE start_time > '2010-01-12T00:00:00.000'",
            &src,
        )
        .unwrap();
        let opt = optimize(&plan).unwrap();
        let d = opt.display();
        assert!(
            d.contains("2010-01-12T00:00:00.000000"),
            "coerced literal shown as timestamp:\n{d}"
        );
        // The predicate value is a Timestamp literal, not a string.
        let preds = predicates_above(&opt, &|p| matches!(p, LogicalPlan::TableScan { .. }));
        assert_eq!(preds.len(), 1);
        match &preds[0] {
            Expr::Binary { right, .. } => {
                assert!(matches!(**right, Expr::Literal(Value::Timestamp(_))))
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn constants_fold() {
        let e = Expr::lit(Value::Int64(2)).binary(BinaryOp::Mul, Expr::lit(Value::Int64(21)));
        assert_eq!(fold_expr(&e), Expr::Literal(Value::Int64(42)));
        let e = Expr::col("x").binary(
            BinaryOp::Gt,
            Expr::lit(Value::Int64(1)).binary(BinaryOp::Add, Expr::lit(Value::Int64(1))),
        );
        let folded = fold_expr(&e);
        assert_eq!(folded.to_string(), "(x > 2)");
    }

    #[test]
    fn filters_sink_into_join_sides() {
        let c = catalog();
        let src = TableSource::new(&c);
        let plan = plan_sql(
            "SELECT f.station FROM files f JOIN records r ON f.file_id = r.file_id \
             WHERE f.station = 'ISK' AND r.start_time > '2010-01-01'",
            &src,
        )
        .unwrap();
        let opt = optimize(&plan).unwrap();
        let d = opt.display();
        // Both predicates must sit below the Join.
        let join_line = d.lines().position(|l| l.contains("Join")).unwrap();
        let f1 = d
            .lines()
            .position(|l| l.contains("station = 'ISK'"))
            .unwrap();
        let f2 = d.lines().position(|l| l.contains("start_time >")).unwrap();
        assert!(f1 > join_line, "station predicate below join:\n{d}");
        assert!(f2 > join_line, "time predicate below join:\n{d}");
    }

    #[test]
    fn pushdown_through_alias_projection() {
        let c = catalog();
        let src = TableSource::new(&c);
        let plan = plan_sql(
            "SELECT f.station FROM files f WHERE f.station = 'ISK'",
            &src,
        )
        .unwrap();
        let opt = optimize(&plan).unwrap();
        let d = opt.display();
        // Filter must sit directly on the scan (below the alias projection).
        let scan_line = d.lines().position(|l| l.contains("TableScan")).unwrap();
        let filter_line = d.lines().position(|l| l.contains("Filter")).unwrap();
        assert_eq!(
            filter_line + 1,
            scan_line,
            "filter directly above scan:\n{d}"
        );
    }

    #[test]
    fn filter_not_pushed_through_limit() {
        let c = catalog();
        let src = TableSource::new(&c);
        // Build Filter over Limit manually (SQL can't express it directly).
        let inner = plan_sql("SELECT station FROM files LIMIT 5", &src).unwrap();
        let plan = LogicalPlan::Filter {
            input: Box::new(inner),
            predicate: Expr::col("station")
                .binary(BinaryOp::Eq, Expr::lit(Value::Utf8("ISK".into()))),
        };
        let opt = optimize(&plan).unwrap();
        let d = opt.display();
        let filter_line = d.lines().position(|l| l.contains("Filter")).unwrap();
        let limit_line = d.lines().position(|l| l.contains("Limit")).unwrap();
        assert!(filter_line < limit_line, "filter stays above limit:\n{d}");
    }
}
