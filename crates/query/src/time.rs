//! Timestamp-literal parsing for the SQL layer.
//!
//! The paper's Figure 1 compares timestamp columns against string literals
//! like `'2010-01-12T22:15:00.000'`. The optimizer coerces such literals to
//! microsecond timestamps using this parser (kept local so the query crate
//! stays independent of the mSEED substrate).

/// Parse `YYYY-MM-DD[THH:MM:SS[.ffffff]]` (space accepted for `T`) into
/// microseconds since the Unix epoch. Returns `None` on any malformation.
pub fn parse_iso_micros(s: &str) -> Option<i64> {
    let s = s.trim();
    let (date, time) = match s.find(['T', ' ']) {
        Some(i) => (&s[..i], Some(&s[i + 1..])),
        None => (s, None),
    };
    let mut dp = date.split('-');
    let year: i64 = dp.next()?.parse().ok()?;
    let month: u32 = dp.next()?.parse().ok()?;
    let day: u32 = dp.next()?.parse().ok()?;
    if dp.next().is_some() || !(1..=12).contains(&month) || !(1..=31).contains(&day) {
        return None;
    }
    let (mut hour, mut minute, mut second, mut micros) = (0i64, 0i64, 0i64, 0i64);
    if let Some(t) = time {
        let (hms, frac) = match t.find('.') {
            Some(i) => (&t[..i], Some(&t[i + 1..])),
            None => (t, None),
        };
        let mut tp = hms.split(':');
        hour = tp.next()?.parse().ok()?;
        minute = tp.next()?.parse().ok()?;
        second = match tp.next() {
            Some(v) => v.parse().ok()?,
            None => 0,
        };
        if tp.next().is_some()
            || !(0..24).contains(&hour)
            || !(0..60).contains(&minute)
            || !(0..=60).contains(&second)
        {
            return None;
        }
        if let Some(frac) = frac {
            if frac.is_empty() || frac.len() > 6 || !frac.bytes().all(|b| b.is_ascii_digit()) {
                return None;
            }
            let mut val: i64 = frac.parse().ok()?;
            for _ in frac.len()..6 {
                val *= 10;
            }
            micros = val;
        }
    }
    // Howard Hinnant's days_from_civil.
    let y = if month <= 2 { year - 1 } else { year };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = (month as i64 + 9) % 12;
    let doy = (153 * mp + 2) / 5 + day as i64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    let days = era * 146_097 + doe - 719_468;
    Some((days * 86_400 + hour * 3_600 + minute * 60 + second) * 1_000_000 + micros)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        assert_eq!(parse_iso_micros("1970-01-01"), Some(0));
        assert_eq!(
            parse_iso_micros("2010-01-12T22:15:00.000"),
            Some(1_263_334_500_000_000)
        );
        assert_eq!(
            parse_iso_micros("2010-01-12 22:15:02.5"),
            Some(1_263_334_502_500_000)
        );
    }

    #[test]
    fn rejects_malformed() {
        for s in ["", "2010", "2010-13-01", "2010-01-12T25:00", "x-y-z"] {
            assert_eq!(parse_iso_micros(s), None, "{s:?}");
        }
    }

    #[test]
    fn leap_year_and_century_rules() {
        // 2000 is a leap year (divisible by 400).
        assert_eq!(parse_iso_micros("2000-02-29"), Some(951_782_400_000_000));
        // Day after Feb 29 lands on Mar 1.
        assert_eq!(
            parse_iso_micros("2000-03-01").unwrap() - parse_iso_micros("2000-02-29").unwrap(),
            86_400_000_000
        );
        // 2012-02-29 (ordinary leap year).
        assert_eq!(
            parse_iso_micros("2012-03-01").unwrap() - parse_iso_micros("2012-02-28").unwrap(),
            2 * 86_400_000_000
        );
    }

    #[test]
    fn pre_epoch_times_are_negative() {
        assert_eq!(parse_iso_micros("1969-12-31T23:59:59"), Some(-1_000_000));
        assert_eq!(parse_iso_micros("1969-12-31"), Some(-86_400_000_000));
    }

    #[test]
    fn fraction_digit_padding() {
        let base = parse_iso_micros("2010-01-12T00:00:00").unwrap();
        assert_eq!(
            parse_iso_micros("2010-01-12T00:00:00.1"),
            Some(base + 100_000)
        );
        assert_eq!(
            parse_iso_micros("2010-01-12T00:00:00.123456"),
            Some(base + 123_456)
        );
        assert_eq!(
            parse_iso_micros("2010-01-12T00:00:00.000001"),
            Some(base + 1)
        );
        // Seven digits, empty fraction, non-digits: rejected.
        assert_eq!(parse_iso_micros("2010-01-12T00:00:00.1234567"), None);
        assert_eq!(parse_iso_micros("2010-01-12T00:00:00."), None);
        assert_eq!(parse_iso_micros("2010-01-12T00:00:00.12a"), None);
    }

    #[test]
    fn hour_minute_without_seconds() {
        assert_eq!(
            parse_iso_micros("2010-01-12T22:15").unwrap(),
            parse_iso_micros("2010-01-12T22:15:00").unwrap()
        );
    }

    #[test]
    fn leap_second_value_is_tolerated() {
        // :60 is accepted (folds into the next minute arithmetically).
        let t60 = parse_iso_micros("2010-06-30T23:59:60").unwrap();
        let next = parse_iso_micros("2010-07-01T00:00:00").unwrap();
        assert_eq!(t60, next);
    }

    #[test]
    fn year_boundaries_are_consecutive() {
        let dec31 = parse_iso_micros("2009-12-31T23:59:59.999999").unwrap();
        let jan1 = parse_iso_micros("2010-01-01").unwrap();
        assert_eq!(jan1 - dec31, 1);
    }
}
