//! Recursive-descent SQL parser for the supported subset.
//!
//! Grammar (informal):
//! ```text
//! select   := SELECT [DISTINCT] items FROM table (JOIN table ON expr)*
//!             [WHERE expr] [GROUP BY exprs] [HAVING expr]
//!             [ORDER BY key (, key)*] [LIMIT int] [;]
//! expr     := or_expr
//! or_expr  := and_expr (OR and_expr)*
//! and_expr := not_expr (AND not_expr)*
//! not_expr := NOT not_expr | predicate
//! predicate:= additive [cmp additive | BETWEEN .. AND .. | IN (..) |
//!             LIKE .. | IS [NOT] NULL]
//! additive := multiplicative ((+|-) multiplicative)*
//! mult     := unary ((*|/|%) unary)*
//! unary    := - unary | primary
//! primary  := literal | ident[(args)] | qualified.column | ( expr ) | *
//! ```
//!
//! This is enough to run both Figure-1 queries of the paper verbatim, the
//! dataview view definition, and the analysis workloads.

use crate::ast::*;
use crate::error::{QueryError, Result};
use crate::expr::{AggFunc, BinaryOp, Expr, UnaryOp};
use crate::lexer::{tokenize, Symbol, Token, TokenKind};
use lazyetl_store::Value;

/// Parse one SQL statement.
pub fn parse(sql: &str) -> Result<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.parse_statement()?;
    p.expect_end()?;
    Ok(stmt)
}

/// Parse a statement and require it to be a SELECT.
pub fn parse_select(sql: &str) -> Result<SelectStmt> {
    match parse(sql)? {
        Statement::Select(s) => Ok(s),
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn advance(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> QueryError {
        QueryError::Parse {
            message: message.into(),
            offset: self.offset(),
        }
    }

    /// Consume a keyword (case-insensitive identifier) if present.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if let TokenKind::Ident(id) = self.peek() {
            if id == kw {
                self.advance();
                return true;
            }
        }
        false
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.error(format!("expected keyword {}", kw.to_uppercase())))
        }
    }

    fn eat_sym(&mut self, sym: Symbol) -> bool {
        if self.peek() == &TokenKind::Symbol(sym) {
            self.advance();
            return true;
        }
        false
    }

    fn expect_sym(&mut self, sym: Symbol) -> Result<()> {
        if self.eat_sym(sym) {
            Ok(())
        } else {
            Err(self.error(format!("expected {sym:?}")))
        }
    }

    fn expect_end(&mut self) -> Result<()> {
        self.eat_sym(Symbol::Semicolon);
        if self.peek() == &TokenKind::Eof {
            Ok(())
        } else {
            Err(self.error("unexpected trailing input"))
        }
    }

    fn parse_statement(&mut self) -> Result<Statement> {
        if self.eat_kw("select") {
            Ok(Statement::Select(self.parse_select_body()?))
        } else {
            Err(self.error("expected SELECT"))
        }
    }

    fn parse_select_body(&mut self) -> Result<SelectStmt> {
        let mut stmt = SelectStmt::empty();
        stmt.distinct = self.eat_kw("distinct");
        // projection list
        loop {
            if self.eat_sym(Symbol::Star) {
                stmt.items.push(SelectItem::Wildcard);
            } else {
                let expr = self.parse_expr()?;
                let alias = if self.eat_kw("as") {
                    Some(self.parse_ident()?)
                } else if let TokenKind::Ident(id) = self.peek() {
                    // bare alias, but not a clause keyword
                    let kw = [
                        "from", "where", "group", "having", "order", "limit", "join", "on",
                        "inner", "and", "or",
                    ];
                    if kw.contains(&id.as_str()) {
                        None
                    } else {
                        Some(self.parse_ident()?)
                    }
                } else {
                    None
                };
                stmt.items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat_sym(Symbol::Comma) {
                break;
            }
        }
        if self.eat_kw("from") {
            stmt.from = Some(self.parse_table_ref()?);
            loop {
                let inner = self.eat_kw("inner");
                if self.eat_kw("join") {
                    let table = self.parse_table_ref()?;
                    self.expect_kw("on")?;
                    let on = self.parse_expr()?;
                    stmt.joins.push(JoinClause { table, on });
                } else if inner {
                    return Err(self.error("expected JOIN after INNER"));
                } else {
                    break;
                }
            }
        }
        if self.eat_kw("where") {
            stmt.where_clause = Some(self.parse_expr()?);
        }
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                stmt.group_by.push(self.parse_expr()?);
                if !self.eat_sym(Symbol::Comma) {
                    break;
                }
            }
        }
        if self.eat_kw("having") {
            stmt.having = Some(self.parse_expr()?);
        }
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let expr = self.parse_expr()?;
                let desc = if self.eat_kw("desc") {
                    true
                } else {
                    self.eat_kw("asc");
                    false
                };
                stmt.order_by.push(OrderKey { expr, desc });
                if !self.eat_sym(Symbol::Comma) {
                    break;
                }
            }
        }
        if self.eat_kw("limit") {
            match self.advance() {
                TokenKind::IntLit(n) if n >= 0 => stmt.limit = Some(n as u64),
                _ => return Err(self.error("expected non-negative integer after LIMIT")),
            }
        }
        Ok(stmt)
    }

    fn parse_ident(&mut self) -> Result<String> {
        match self.advance() {
            TokenKind::Ident(id) => Ok(id),
            other => Err(self.error(format!("expected identifier, found {other:?}"))),
        }
    }

    /// Parse `name(.name)*` into a dotted string.
    fn parse_qualified_name(&mut self) -> Result<String> {
        let mut name = self.parse_ident()?;
        while self.eat_sym(Symbol::Dot) {
            name.push('.');
            name.push_str(&self.parse_ident()?);
        }
        Ok(name)
    }

    fn parse_table_ref(&mut self) -> Result<TableRef> {
        let name = self.parse_qualified_name()?;
        let alias = if self.eat_kw("as") {
            Some(self.parse_ident()?)
        } else if let TokenKind::Ident(id) = self.peek() {
            let kw = [
                "join", "inner", "on", "where", "group", "having", "order", "limit",
            ];
            if kw.contains(&id.as_str()) {
                None
            } else {
                Some(self.parse_ident()?)
            }
        } else {
            None
        };
        Ok(TableRef { name, alias })
    }

    /// Entry point for expressions.
    pub fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut left = self.parse_and()?;
        while self.eat_kw("or") {
            let right = self.parse_and()?;
            left = left.binary(BinaryOp::Or, right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut left = self.parse_not()?;
        while self.eat_kw("and") {
            let right = self.parse_not()?;
            left = left.binary(BinaryOp::And, right);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if self.eat_kw("not") {
            let inner = self.parse_not()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(inner),
            });
        }
        self.parse_predicate()
    }

    fn parse_predicate(&mut self) -> Result<Expr> {
        let left = self.parse_additive()?;
        // IS [NOT] NULL
        if self.eat_kw("is") {
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        let negated = if self.eat_kw("not") {
            // NOT BETWEEN / NOT IN / NOT LIKE
            true
        } else {
            false
        };
        if self.eat_kw("between") {
            let low = self.parse_additive()?;
            self.expect_kw("and")?;
            let high = self.parse_additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_kw("in") {
            self.expect_sym(Symbol::LParen)?;
            let mut list = Vec::new();
            loop {
                list.push(self.parse_expr()?);
                if !self.eat_sym(Symbol::Comma) {
                    break;
                }
            }
            self.expect_sym(Symbol::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.eat_kw("like") {
            let pattern = self.parse_additive()?;
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern: Box::new(pattern),
                negated,
            });
        }
        if negated {
            return Err(self.error("expected BETWEEN, IN or LIKE after NOT"));
        }
        // comparison?
        let op = match self.peek() {
            TokenKind::Symbol(Symbol::Eq) => Some(BinaryOp::Eq),
            TokenKind::Symbol(Symbol::NotEq) => Some(BinaryOp::NotEq),
            TokenKind::Symbol(Symbol::Lt) => Some(BinaryOp::Lt),
            TokenKind::Symbol(Symbol::LtEq) => Some(BinaryOp::LtEq),
            TokenKind::Symbol(Symbol::Gt) => Some(BinaryOp::Gt),
            TokenKind::Symbol(Symbol::GtEq) => Some(BinaryOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let right = self.parse_additive()?;
            return Ok(left.binary(op, right));
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Symbol(Symbol::Plus) => BinaryOp::Add,
                TokenKind::Symbol(Symbol::Minus) => BinaryOp::Sub,
                _ => break,
            };
            self.advance();
            let right = self.parse_multiplicative()?;
            left = left.binary(op, right);
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Symbol(Symbol::Star) => BinaryOp::Mul,
                TokenKind::Symbol(Symbol::Slash) => BinaryOp::Div,
                TokenKind::Symbol(Symbol::Percent) => BinaryOp::Mod,
                _ => break,
            };
            self.advance();
            let right = self.parse_unary()?;
            left = left.binary(op, right);
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.eat_sym(Symbol::Minus) {
            let inner = self.parse_unary()?;
            // Fold negative literals immediately.
            return Ok(match inner {
                Expr::Literal(Value::Int64(v)) => Expr::Literal(Value::Int64(-v)),
                Expr::Literal(Value::Float64(v)) => Expr::Literal(Value::Float64(-v)),
                other => Expr::Unary {
                    op: UnaryOp::Neg,
                    expr: Box::new(other),
                },
            });
        }
        if self.eat_sym(Symbol::Plus) {
            return self.parse_unary();
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            TokenKind::IntLit(v) => {
                self.advance();
                Ok(Expr::Literal(Value::Int64(v)))
            }
            TokenKind::FloatLit(v) => {
                self.advance();
                Ok(Expr::Literal(Value::Float64(v)))
            }
            TokenKind::StringLit(s) => {
                self.advance();
                Ok(Expr::Literal(Value::Utf8(s)))
            }
            TokenKind::Symbol(Symbol::LParen) => {
                self.advance();
                let e = self.parse_expr()?;
                self.expect_sym(Symbol::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(id) => {
                const RESERVED: [&str; 19] = [
                    "select", "from", "where", "group", "by", "having", "order", "limit", "join",
                    "inner", "on", "as", "distinct", "and", "or", "not", "between", "asc", "desc",
                ];
                if RESERVED.contains(&id.as_str()) {
                    return Err(self.error(format!("unexpected keyword {}", id.to_uppercase())));
                }
                match id.as_str() {
                    "true" => {
                        self.advance();
                        return Ok(Expr::Literal(Value::Bool(true)));
                    }
                    "false" => {
                        self.advance();
                        return Ok(Expr::Literal(Value::Bool(false)));
                    }
                    "null" => {
                        self.advance();
                        return Ok(Expr::Literal(Value::Null));
                    }
                    _ => {}
                }
                // function call?
                if self.tokens[self.pos + 1].kind == TokenKind::Symbol(Symbol::LParen) {
                    let name = self.parse_ident()?;
                    self.expect_sym(Symbol::LParen)?;
                    let agg = match name.as_str() {
                        "count" => Some(AggFunc::Count),
                        "sum" => Some(AggFunc::Sum),
                        "avg" => Some(AggFunc::Avg),
                        "min" => Some(AggFunc::Min),
                        "max" => Some(AggFunc::Max),
                        _ => None,
                    };
                    if let Some(func) = agg {
                        let distinct = self.eat_kw("distinct");
                        if self.eat_sym(Symbol::Star) {
                            self.expect_sym(Symbol::RParen)?;
                            if func != AggFunc::Count {
                                return Err(self.error("only COUNT may take *"));
                            }
                            return Ok(Expr::Aggregate {
                                func,
                                arg: None,
                                distinct,
                            });
                        }
                        let arg = self.parse_expr()?;
                        self.expect_sym(Symbol::RParen)?;
                        return Ok(Expr::Aggregate {
                            func,
                            arg: Some(Box::new(arg)),
                            distinct,
                        });
                    }
                    let mut args = Vec::new();
                    if !self.eat_sym(Symbol::RParen) {
                        loop {
                            args.push(self.parse_expr()?);
                            if !self.eat_sym(Symbol::Comma) {
                                break;
                            }
                        }
                        self.expect_sym(Symbol::RParen)?;
                    }
                    return Ok(Expr::Function { name, args });
                }
                // qualified column reference
                let name = self.parse_qualified_name()?;
                Ok(Expr::Column(name))
            }
            other => Err(self.error(format!("unexpected token {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The first Figure-1 query from the paper, verbatim.
    pub const FIGURE1_Q1: &str = "SELECT AVG(D.sample_value)
FROM mseed.dataview
WHERE F.station = 'ISK'
AND F.channel = 'BHE'
AND R.start_time > '2010-01-12T00:00:00.000'
AND R.start_time < '2010-01-12T23:59:59.999'
AND D.sample_time > '2010-01-12T22:15:00.000'
AND D.sample_time < '2010-01-12T22:15:02.000';";

    /// The second Figure-1 query from the paper, verbatim.
    pub const FIGURE1_Q2: &str = "SELECT F.station,
MIN(D.sample_value), MAX(D.sample_value)
FROM mseed.dataview
WHERE F.network = 'NL'
AND F.channel = 'BHZ'
GROUP BY F.station;";

    #[test]
    fn parses_figure1_q1_verbatim() {
        let stmt = parse_select(FIGURE1_Q1).unwrap();
        assert_eq!(stmt.items.len(), 1);
        assert_eq!(stmt.from.as_ref().unwrap().name, "mseed.dataview");
        let w = stmt.where_clause.unwrap();
        let mut cols = Vec::new();
        w.columns_used(&mut cols);
        assert!(cols.contains(&"f.station".to_string()));
        assert!(cols.contains(&"d.sample_time".to_string()));
        assert_eq!(cols.len(), 6);
    }

    #[test]
    fn parses_figure1_q2_verbatim() {
        let stmt = parse_select(FIGURE1_Q2).unwrap();
        assert_eq!(stmt.items.len(), 3);
        assert_eq!(stmt.group_by.len(), 1);
        match &stmt.items[1] {
            SelectItem::Expr { expr, .. } => match expr {
                Expr::Aggregate { func, .. } => assert_eq!(*func, AggFunc::Min),
                other => panic!("expected aggregate, got {other:?}"),
            },
            other => panic!("unexpected item {other:?}"),
        }
    }

    #[test]
    fn parses_joins() {
        let stmt = parse_select(
            "SELECT f.uri, r.seq FROM files f JOIN records r ON f.file_id = r.file_id \
             JOIN data d ON r.file_id = d.file_id AND r.seq = d.seq WHERE f.uri LIKE '%.mseed'",
        )
        .unwrap();
        assert_eq!(stmt.joins.len(), 2);
        assert_eq!(stmt.from.unwrap().alias, Some("f".into()));
        assert_eq!(stmt.joins[1].table.alias, Some("d".into()));
    }

    #[test]
    fn parses_order_limit_distinct() {
        let stmt = parse_select(
            "SELECT DISTINCT station FROM files ORDER BY station DESC, uri ASC LIMIT 10",
        )
        .unwrap();
        assert!(stmt.distinct);
        assert_eq!(stmt.order_by.len(), 2);
        assert!(stmt.order_by[0].desc);
        assert!(!stmt.order_by[1].desc);
        assert_eq!(stmt.limit, Some(10));
    }

    #[test]
    fn parses_arithmetic_precedence() {
        let stmt = parse_select("SELECT 1 + 2 * 3 FROM t").unwrap();
        match &stmt.items[0] {
            SelectItem::Expr { expr, .. } => {
                assert_eq!(expr.to_string(), "(1 + (2 * 3))");
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_not_between_in() {
        let stmt = parse_select("SELECT * FROM t WHERE a NOT BETWEEN 1 AND 2 AND b NOT IN (1, 2)")
            .unwrap();
        let w = stmt.where_clause.unwrap();
        let s = w.to_string();
        assert!(s.contains("NOT BETWEEN"));
        assert!(s.contains("NOT IN"));
    }

    #[test]
    fn parses_having_and_aliases() {
        let stmt = parse_select(
            "SELECT station AS s, COUNT(*) cnt FROM records GROUP BY station HAVING COUNT(*) > 5",
        )
        .unwrap();
        match &stmt.items[0] {
            SelectItem::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("s")),
            _ => panic!(),
        }
        match &stmt.items[1] {
            SelectItem::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("cnt")),
            _ => panic!(),
        }
        assert!(stmt.having.is_some());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("UPDATE t SET x = 1").is_err());
        assert!(parse("SELECT FROM").is_err());
        assert!(parse("SELECT a FROM t WHERE").is_err());
        assert!(parse("SELECT a FROM t LIMIT -1").is_err());
        assert!(parse("SELECT a FROM t extra garbage !").is_err());
        assert!(parse("SELECT SUM(*) FROM t").is_err());
    }

    #[test]
    fn select_without_from() {
        let stmt = parse_select("SELECT 1 + 1").unwrap();
        assert!(stmt.from.is_none());
        assert_eq!(stmt.items.len(), 1);
    }
}
