//! Translation of parsed SQL into logical plans.
//!
//! This is also where **view expansion** happens: a `FROM` reference that
//! names a non-materialized view is replaced by the view's own plan — the
//! paper's lazy-transformation mechanism ("view definitions are simply
//! expanded into the query", §3.2).

use crate::ast::{JoinClause, SelectItem, SelectStmt, TableRef};
use crate::error::{QueryError, Result};
use crate::expr::{resolve_column, BinaryOp, Expr, UnaryOp};
use crate::parser::parse_select;
use crate::plan::LogicalPlan;
use lazyetl_store::{Catalog, Schema, Value};
use std::collections::BTreeMap;

/// How a table name resolves.
#[derive(Debug, Clone)]
pub enum Resolved {
    /// A catalog-resident table.
    Table {
        /// Canonical catalog name.
        name: String,
        /// Its schema.
        schema: Schema,
    },
    /// An external table served by the ETL layer at query time.
    External {
        /// Logical name.
        name: String,
        /// Its schema.
        schema: Schema,
    },
    /// A non-materialized view to expand.
    View {
        /// Canonical name.
        name: String,
        /// `SELECT ...` definition.
        sql: String,
    },
}

/// Name resolution for the planner: catalog tables and views plus
/// registered external tables.
pub struct TableSource<'a> {
    catalog: &'a Catalog,
    externals: BTreeMap<String, Schema>,
}

impl<'a> TableSource<'a> {
    /// Source over a catalog with no external tables.
    pub fn new(catalog: &'a Catalog) -> TableSource<'a> {
        TableSource {
            catalog,
            externals: BTreeMap::new(),
        }
    }

    /// Register an external table (e.g. the lazy `data` table).
    pub fn with_external(mut self, name: &str, schema: Schema) -> TableSource<'a> {
        self.externals.insert(name.to_ascii_lowercase(), schema);
        self
    }

    /// Resolve `name`, trying the full name first, then stripping a schema
    /// prefix (`mseed.dataview` -> `dataview`).
    pub fn resolve(&self, name: &str) -> Option<Resolved> {
        let lower = name.to_ascii_lowercase();
        let candidates: Vec<&str> = match lower.split_once('.') {
            Some((_, rest)) => vec![lower.as_str(), rest],
            None => vec![lower.as_str()],
        };
        for cand in candidates {
            if let Some(schema) = self.externals.get(cand) {
                return Some(Resolved::External {
                    name: cand.to_string(),
                    schema: schema.clone(),
                });
            }
            if let Some(t) = self.catalog.table(cand) {
                return Some(Resolved::Table {
                    name: cand.to_string(),
                    schema: t.schema.clone(),
                });
            }
            if let Some(v) = self.catalog.view(cand) {
                return Some(Resolved::View {
                    name: cand.to_string(),
                    sql: v.sql.clone(),
                });
            }
        }
        None
    }
}

const MAX_VIEW_DEPTH: usize = 8;

/// Plan a parsed SELECT against a table source.
pub fn plan_select(stmt: &SelectStmt, source: &TableSource<'_>) -> Result<LogicalPlan> {
    plan_select_depth(stmt, source, 0)
}

/// Parse and plan a SQL string.
pub fn plan_sql(sql: &str, source: &TableSource<'_>) -> Result<LogicalPlan> {
    let stmt = parse_select(sql)?;
    plan_select(&stmt, source)
}

fn plan_table_ref(tref: &TableRef, source: &TableSource<'_>, depth: usize) -> Result<LogicalPlan> {
    if depth > MAX_VIEW_DEPTH {
        return Err(QueryError::Plan(format!(
            "view nesting deeper than {MAX_VIEW_DEPTH} (cycle?)"
        )));
    }
    let resolved = source
        .resolve(&tref.name)
        .ok_or_else(|| QueryError::Plan(format!("unknown table or view {:?}", tref.name)))?;
    let base = match resolved {
        Resolved::Table { name, schema } => LogicalPlan::TableScan {
            table: name,
            schema,
        },
        Resolved::External { name, schema } => LogicalPlan::ExternalScan { name, schema },
        Resolved::View { sql, .. } => {
            let inner = parse_select(&sql)?;
            plan_select_depth(&inner, source, depth + 1)?
        }
    };
    // Alias-qualify every output column so `f.station` resolves exactly and
    // duplicate names across join sides stay distinguishable.
    match &tref.alias {
        Some(alias) => {
            let schema = base.schema()?;
            let exprs = schema
                .fields
                .iter()
                .map(|f| {
                    (
                        Expr::Column(f.name.clone()),
                        format!("{alias}.{}", f.name.rsplit('.').next().unwrap_or(&f.name)),
                    )
                })
                .collect();
            Ok(LogicalPlan::Project {
                input: Box::new(base),
                exprs,
            })
        }
        None => Ok(base),
    }
}

/// Split a conjunction into its factors.
pub fn split_conjunction(expr: &Expr, out: &mut Vec<Expr>) {
    match expr {
        Expr::Binary {
            left,
            op: BinaryOp::And,
            right,
        } => {
            split_conjunction(left, out);
            split_conjunction(right, out);
        }
        other => out.push(other.clone()),
    }
}

/// Rebuild a conjunction from factors (`true` when empty).
pub fn conjoin(mut factors: Vec<Expr>) -> Option<Expr> {
    let first = if factors.is_empty() {
        return None;
    } else {
        factors.remove(0)
    };
    Some(factors.into_iter().fold(first, |acc, e| acc.and(e)))
}

fn expr_resolves(expr: &Expr, schema: &Schema) -> bool {
    let mut cols = Vec::new();
    expr.columns_used(&mut cols);
    !cols.is_empty() && cols.iter().all(|c| resolve_column(schema, c).is_some())
}

/// Normalize one ON-clause conjunct toward a recognizable equi-join:
/// constant-fold, strip double negation, unwrap boolean-literal
/// comparisons (`(a = b) = TRUE`, `FALSE <> (a = b)`), and rewrite
/// `NOT (a <> b)` to `a = b`. All rewrites preserve SQL three-valued
/// semantics under ON (NULL and FALSE both reject the row pair).
fn normalize_on_conjunct(c: &Expr) -> Expr {
    let mut e = crate::optimizer::fold_expr(c);
    loop {
        let next = match &e {
            // (expr = TRUE) / (TRUE = expr) / (expr <> FALSE) / (FALSE <> expr)
            Expr::Binary { left, op, right }
                if matches!(
                    (op, &**right),
                    (BinaryOp::Eq, Expr::Literal(Value::Bool(true)))
                        | (BinaryOp::NotEq, Expr::Literal(Value::Bool(false)))
                ) =>
            {
                (**left).clone()
            }
            Expr::Binary { left, op, right }
                if matches!(
                    (op, &**left),
                    (BinaryOp::Eq, Expr::Literal(Value::Bool(true)))
                        | (BinaryOp::NotEq, Expr::Literal(Value::Bool(false)))
                ) =>
            {
                (**right).clone()
            }
            Expr::Unary {
                op: UnaryOp::Not,
                expr,
            } => match &**expr {
                // NOT NOT e
                Expr::Unary {
                    op: UnaryOp::Not,
                    expr: inner,
                } => (**inner).clone(),
                // NOT (a <> b)  →  a = b
                Expr::Binary {
                    left,
                    op: BinaryOp::NotEq,
                    right,
                } => Expr::Binary {
                    left: left.clone(),
                    op: BinaryOp::Eq,
                    right: right.clone(),
                },
                _ => break,
            },
            _ => break,
        };
        e = next;
    }
    e
}

fn plan_joins(
    mut plan: LogicalPlan,
    joins: &[JoinClause],
    source: &TableSource<'_>,
    depth: usize,
) -> Result<LogicalPlan> {
    for j in joins {
        let right = plan_table_ref(&j.table, source, depth)?;
        let left_schema = plan.schema()?;
        let right_schema = right.schema()?;
        let mut conjuncts = Vec::new();
        split_conjunction(&normalize_on_conjunct(&j.on), &mut conjuncts);
        let mut on_pairs = Vec::new();
        let mut residual = Vec::new();
        for c in conjuncts {
            let c = normalize_on_conjunct(&c);
            // A conjunct folded to literal TRUE filters nothing: drop it.
            if matches!(c, Expr::Literal(Value::Bool(true))) {
                continue;
            }
            if let Expr::Binary {
                left: a,
                op: BinaryOp::Eq,
                right: b,
            } = &c
            {
                if expr_resolves(a, &left_schema) && expr_resolves(b, &right_schema) {
                    on_pairs.push(((**a).clone(), (**b).clone()));
                    continue;
                }
                if expr_resolves(b, &left_schema) && expr_resolves(a, &right_schema) {
                    on_pairs.push(((**b).clone(), (**a).clone()));
                    continue;
                }
            }
            residual.push(c);
        }
        if on_pairs.is_empty() {
            return Err(QueryError::Plan(format!(
                "JOIN ON {:?} has no equi-join condition",
                j.on.to_string()
            )));
        }
        let right_label = j.table.alias.clone().unwrap_or_else(|| {
            j.table
                .name
                .rsplit('.')
                .next()
                .unwrap_or(&j.table.name)
                .to_string()
        });
        plan = LogicalPlan::Join {
            left: Box::new(plan),
            right: Box::new(right),
            on: on_pairs,
            right_label,
        };
        if let Some(pred) = conjoin(residual) {
            plan = LogicalPlan::Filter {
                input: Box::new(plan),
                predicate: pred,
            };
        }
    }
    Ok(plan)
}

/// Collect every aggregate call in an expression tree.
fn collect_aggregates(expr: &Expr, out: &mut Vec<Expr>) {
    match expr {
        Expr::Aggregate { .. } => {
            if !out.contains(expr) {
                out.push(expr.clone());
            }
        }
        _ => {
            // Recurse through children via transform (read-only use).
            match expr {
                Expr::Binary { left, right, .. } => {
                    collect_aggregates(left, out);
                    collect_aggregates(right, out);
                }
                Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => {
                    collect_aggregates(expr, out)
                }
                Expr::Function { args, .. } => {
                    for a in args {
                        collect_aggregates(a, out);
                    }
                }
                Expr::Between {
                    expr, low, high, ..
                } => {
                    collect_aggregates(expr, out);
                    collect_aggregates(low, out);
                    collect_aggregates(high, out);
                }
                Expr::InList { expr, list, .. } => {
                    collect_aggregates(expr, out);
                    for e in list {
                        collect_aggregates(e, out);
                    }
                }
                Expr::Like { expr, pattern, .. } => {
                    collect_aggregates(expr, out);
                    collect_aggregates(pattern, out);
                }
                _ => {}
            }
        }
    }
}

/// Replace group-by expressions and aggregate calls with references to the
/// aggregate node's output columns.
fn rewrite_post_aggregate(
    expr: &Expr,
    group: &[(Expr, String)],
    aggregates: &[(Expr, String)],
) -> Expr {
    expr.transform(&mut |node| {
        for (g, name) in group {
            if &node == g {
                return Expr::Column(name.clone());
            }
        }
        for (a, name) in aggregates {
            if &node == a {
                return Expr::Column(name.clone());
            }
        }
        node
    })
}

fn unique_name(base: String, used: &mut Vec<String>) -> String {
    let name = if used.contains(&base) {
        let mut i = 2;
        loop {
            let cand = format!("{base}_{i}");
            if !used.contains(&cand) {
                break cand;
            }
            i += 1;
        }
    } else {
        base
    };
    used.push(name.clone());
    name
}

fn plan_select_depth(
    stmt: &SelectStmt,
    source: &TableSource<'_>,
    depth: usize,
) -> Result<LogicalPlan> {
    // FROM and JOINs.
    let mut plan = match &stmt.from {
        Some(tref) => plan_table_ref(tref, source, depth)?,
        None => LogicalPlan::OneRow,
    };
    plan = plan_joins(plan, &stmt.joins, source, depth)?;

    // WHERE.
    if let Some(pred) = &stmt.where_clause {
        if pred.contains_aggregate() {
            return Err(QueryError::Plan(
                "aggregate functions are not allowed in WHERE (use HAVING)".into(),
            ));
        }
        plan = LogicalPlan::Filter {
            input: Box::new(plan),
            predicate: pred.clone(),
        };
    }

    // Expand wildcard and collect projection expressions.
    let input_schema = plan.schema()?;
    let mut items: Vec<(Expr, Option<String>)> = Vec::new();
    for item in &stmt.items {
        match item {
            SelectItem::Wildcard => {
                // Keep input names verbatim (including `alias.` qualifiers):
                // stripping them would collapse `f.start_time` and
                // `r.start_time` into one ambiguous-looking name and break
                // qualified references against views defined with `*`.
                for f in &input_schema.fields {
                    items.push((Expr::Column(f.name.clone()), Some(f.name.clone())));
                }
            }
            SelectItem::Expr { expr, alias } => items.push((expr.clone(), alias.clone())),
        }
    }
    if items.is_empty() {
        return Err(QueryError::Plan("empty SELECT list".into()));
    }

    // GROUP BY may reference select-list aliases.
    let group_exprs: Vec<Expr> = stmt
        .group_by
        .iter()
        .map(|g| match g {
            Expr::Column(name) => items
                .iter()
                .find(|(_, alias)| alias.as_deref() == Some(name.as_str()))
                .map(|(e, _)| e.clone())
                .unwrap_or_else(|| g.clone()),
            other => other.clone(),
        })
        .collect();

    let needs_aggregate = !group_exprs.is_empty()
        || items.iter().any(|(e, _)| e.contains_aggregate())
        || stmt.having.as_ref().is_some_and(|h| h.contains_aggregate());

    let mut having = stmt.having.clone();
    let mut order_keys: Vec<(Expr, bool)> = stmt
        .order_by
        .iter()
        .map(|k| (k.expr.clone(), k.desc))
        .collect();

    if needs_aggregate {
        // Gather all aggregate calls appearing anywhere downstream.
        let mut aggs: Vec<Expr> = Vec::new();
        for (e, _) in &items {
            collect_aggregates(e, &mut aggs);
        }
        if let Some(h) = &having {
            collect_aggregates(h, &mut aggs);
        }
        for (e, _) in &order_keys {
            collect_aggregates(e, &mut aggs);
        }
        let mut used = Vec::new();
        let group: Vec<(Expr, String)> = group_exprs
            .iter()
            .map(|e| (e.clone(), unique_name(e.default_name(), &mut used)))
            .collect();
        let aggregates: Vec<(Expr, String)> = aggs
            .iter()
            .map(|e| (e.clone(), unique_name(e.default_name(), &mut used)))
            .collect();
        plan = LogicalPlan::Aggregate {
            input: Box::new(plan),
            group: group.clone(),
            aggregates: aggregates.clone(),
        };
        // Rewrite downstream expressions onto aggregate output columns.
        for (e, _) in &mut items {
            *e = rewrite_post_aggregate(e, &group, &aggregates);
        }
        if let Some(h) = having.take() {
            having = Some(rewrite_post_aggregate(&h, &group, &aggregates));
        }
        for (e, _) in &mut order_keys {
            *e = rewrite_post_aggregate(e, &group, &aggregates);
        }
    } else if stmt.having.is_some() {
        return Err(QueryError::Plan(
            "HAVING requires GROUP BY or aggregates".into(),
        ));
    }

    // HAVING.
    if let Some(h) = having {
        plan = LogicalPlan::Filter {
            input: Box::new(plan),
            predicate: h,
        };
    }

    // Projection with unique output names.
    let mut used = Vec::new();
    let exprs: Vec<(Expr, String)> = items
        .into_iter()
        .map(|(e, alias)| {
            let name = alias.unwrap_or_else(|| e.default_name());
            let name = unique_name(name, &mut used);
            (e, name)
        })
        .collect();
    let pre_project_schema = plan.schema()?;
    let project = LogicalPlan::Project {
        input: Box::new(plan),
        exprs: exprs.clone(),
    };
    let project_schema = project.schema()?;

    // ORDER BY: prefer sorting over projected output (aliases visible);
    // fall back to sorting the pre-projection rows.
    let mut plan = if order_keys.is_empty() {
        project
    } else {
        let all_over_output = order_keys
            .iter()
            .all(|(e, _)| crate::expr::infer_type(e, &project_schema).is_ok());
        if all_over_output {
            LogicalPlan::Sort {
                input: Box::new(project),
                keys: order_keys,
            }
        } else {
            let all_over_input = order_keys
                .iter()
                .all(|(e, _)| crate::expr::infer_type(e, &pre_project_schema).is_ok());
            if !all_over_input {
                return Err(QueryError::Plan(
                    "ORDER BY expression references unknown columns".into(),
                ));
            }
            // Sort beneath the projection.
            match project {
                LogicalPlan::Project { input, exprs } => LogicalPlan::Project {
                    input: Box::new(LogicalPlan::Sort {
                        input,
                        keys: order_keys,
                    }),
                    exprs,
                },
                _ => unreachable!("constructed above"),
            }
        }
    };

    if stmt.distinct {
        plan = LogicalPlan::Distinct {
            input: Box::new(plan),
        };
    }
    if let Some(n) = stmt.limit {
        plan = LogicalPlan::Limit {
            input: Box::new(plan),
            n,
        };
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazyetl_store::{DataType, Field, Table};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let files = Schema::new(vec![
            Field::new("file_id", DataType::Int64),
            Field::new("uri", DataType::Utf8),
            Field::new("station", DataType::Utf8),
            Field::new("network", DataType::Utf8),
            Field::new("channel", DataType::Utf8),
        ])
        .unwrap();
        let records = Schema::new(vec![
            Field::new("file_id", DataType::Int64),
            Field::new("seq_no", DataType::Int64),
            Field::new("start_time", DataType::Timestamp),
        ])
        .unwrap();
        let data = Schema::new(vec![
            Field::new("file_id", DataType::Int64),
            Field::new("seq_no", DataType::Int64),
            Field::new("sample_time", DataType::Timestamp),
            Field::new("sample_value", DataType::Float64),
        ])
        .unwrap();
        c.create_table("files", Table::empty(files)).unwrap();
        c.create_table("records", Table::empty(records)).unwrap();
        c.create_table("data", Table::empty(data)).unwrap();
        c.create_view(
            "dataview",
            "SELECT * FROM files f JOIN records r ON f.file_id = r.file_id \
             JOIN data d ON r.file_id = d.file_id AND r.seq_no = d.seq_no",
        )
        .unwrap();
        c
    }

    #[test]
    fn plans_simple_scan_filter_project() {
        let c = catalog();
        let src = TableSource::new(&c);
        let plan = plan_sql("SELECT uri FROM files WHERE station = 'ISK'", &src).unwrap();
        let d = plan.display();
        assert!(d.contains("Project: uri"));
        assert!(d.contains("Filter: (station = 'ISK')"));
        assert!(d.contains("TableScan: files"));
    }

    #[test]
    fn strips_schema_prefix() {
        let c = catalog();
        let src = TableSource::new(&c);
        let plan = plan_sql("SELECT uri FROM mseed.files", &src).unwrap();
        assert!(plan.display().contains("TableScan: files"));
    }

    #[test]
    fn expands_view_with_joins() {
        let c = catalog();
        let src = TableSource::new(&c);
        let plan = plan_sql(
            "SELECT AVG(D.sample_value) FROM mseed.dataview WHERE F.station = 'ISK'",
            &src,
        )
        .unwrap();
        let d = plan.display();
        assert!(d.contains("Join(inner)"), "view joins expanded:\n{d}");
        assert!(d.contains("TableScan: files"));
        assert!(d.contains("TableScan: data"));
        assert!(d.contains("Aggregate"));
    }

    #[test]
    fn external_table_resolution() {
        let c = catalog();
        let data_schema = c.table("data").unwrap().schema.clone();
        let src = TableSource::new(&c).with_external("extdata", data_schema);
        let plan = plan_sql("SELECT sample_value FROM extdata", &src).unwrap();
        assert!(plan.display().contains("ExternalScan: extdata"));
    }

    #[test]
    fn group_by_alias_and_having() {
        let c = catalog();
        let src = TableSource::new(&c);
        let plan = plan_sql(
            "SELECT station AS s, COUNT(*) AS cnt FROM files GROUP BY s HAVING COUNT(*) > 1 ORDER BY cnt DESC LIMIT 3",
            &src,
        )
        .unwrap();
        let d = plan.display();
        assert!(d.contains("Aggregate: groupBy=[station]"));
        assert!(d.contains("Limit: 3"));
        assert!(d.contains("Sort: cnt DESC"));
    }

    #[test]
    fn wildcard_expands() {
        let c = catalog();
        let src = TableSource::new(&c);
        let plan = plan_sql("SELECT * FROM records", &src).unwrap();
        let s = plan.schema().unwrap();
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn unknown_table_and_column_errors() {
        let c = catalog();
        let src = TableSource::new(&c);
        assert!(plan_sql("SELECT * FROM nothere", &src).is_err());
        let plan = plan_sql("SELECT missing_col FROM files", &src);
        // planning succeeds structurally; schema computation flags it
        if let Ok(p) = plan {
            assert!(p.schema().is_err());
        }
    }

    #[test]
    fn aggregates_in_where_rejected() {
        let c = catalog();
        let src = TableSource::new(&c);
        assert!(plan_sql("SELECT station FROM files WHERE COUNT(*) > 1", &src).is_err());
        assert!(plan_sql("SELECT station FROM files HAVING station <> ''", &src).is_err());
    }

    #[test]
    fn order_by_unprojected_column_sorts_below_project() {
        let c = catalog();
        let src = TableSource::new(&c);
        let plan = plan_sql("SELECT uri FROM files ORDER BY station", &src).unwrap();
        let d = plan.display();
        // Sort must be under the Project.
        let sort_pos = d.find("Sort").unwrap();
        let proj_pos = d.find("Project").unwrap();
        assert!(proj_pos < sort_pos, "plan:\n{d}");
    }

    #[test]
    fn equi_join_accepted_reversed_and_wrapped() {
        let c = catalog();
        let src = TableSource::new(&c);
        // Reversed: right-side column written first.
        let plan = plan_sql(
            "SELECT f.uri FROM files f JOIN records r ON r.file_id = f.file_id",
            &src,
        )
        .unwrap();
        assert!(plan.display().contains("Join(inner)"));
        // Wrapped in double negation: NOT (a <> b) is the same equi-join.
        let plan = plan_sql(
            "SELECT f.uri FROM files f JOIN records r ON NOT (f.file_id <> r.file_id)",
            &src,
        )
        .unwrap();
        let d = plan.display();
        assert!(
            d.contains("Join(inner): f.file_id = r.file_id"),
            "NOT(<>) normalized to equality:\n{d}"
        );
        // Wrapped in a constant-foldable boolean comparison.
        let plan = plan_sql(
            "SELECT f.uri FROM files f JOIN records r ON (f.file_id = r.file_id) = (1 = 1)",
            &src,
        )
        .unwrap();
        assert!(plan
            .display()
            .contains("Join(inner): f.file_id = r.file_id"));
    }

    #[test]
    fn tautological_on_conjunct_dropped() {
        let c = catalog();
        let src = TableSource::new(&c);
        let plan = plan_sql(
            "SELECT f.uri FROM files f JOIN records r ON f.file_id = r.file_id AND 1 = 1",
            &src,
        )
        .unwrap();
        let d = plan.display();
        assert!(d.contains("Join(inner): f.file_id = r.file_id"));
        // The 1 = 1 must neither survive as a residual filter nor as an
        // extra join condition.
        assert!(!d.contains("Filter: true"), "plan:\n{d}");
        // An ON clause that is nothing but tautology is still rejected —
        // there is no equi-join condition in it.
        assert!(plan_sql("SELECT f.uri FROM files f JOIN records r ON 1 = 1", &src).is_err());
    }

    #[test]
    fn join_residual_becomes_filter() {
        let c = catalog();
        let src = TableSource::new(&c);
        let plan = plan_sql(
            "SELECT f.uri FROM files f JOIN records r ON f.file_id = r.file_id AND r.seq_no > 5",
            &src,
        )
        .unwrap();
        let d = plan.display();
        assert!(d.contains("Filter: (r.seq_no > 5)"), "plan:\n{d}");
        assert!(
            plan_sql(
                "SELECT f.uri FROM files f JOIN records r ON r.seq_no > 5",
                &src
            )
            .is_err(),
            "join without equi-condition rejected"
        );
    }
}
