//! Error type for the query engine.

use lazyetl_store::StoreError;
use std::fmt;

/// Errors raised while parsing, planning, optimizing or executing queries.
#[derive(Debug)]
pub enum QueryError {
    /// Lexical or syntactic error with position info.
    Parse {
        /// Human-readable message.
        message: String,
        /// Byte offset in the SQL text.
        offset: usize,
    },
    /// Semantic error during planning (unknown column/table, bad types…).
    Plan(String),
    /// Runtime execution failure.
    Execution(String),
    /// Error from the storage layer.
    Store(StoreError),
    /// Error raised by an external table provider (lazy extraction).
    External(String),
}

impl QueryError {
    /// Stable machine-readable code for this error variant.
    ///
    /// Codes are part of the serving wire protocol (the server's error
    /// frame carries `code` + rendered message): once published they
    /// never change meaning, only new codes are added. Remote clients
    /// dispatch on the code, not on the human-readable text.
    pub fn code(&self) -> &'static str {
        match self {
            QueryError::Parse { .. } => "query.parse",
            QueryError::Plan(_) => "query.plan",
            QueryError::Execution(_) => "query.execution",
            QueryError::Store(_) => "query.store",
            QueryError::External(_) => "query.external",
        }
    }
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Parse { message, offset } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            QueryError::Plan(m) => write!(f, "planning error: {m}"),
            QueryError::Execution(m) => write!(f, "execution error: {m}"),
            QueryError::Store(e) => write!(f, "storage error: {e}"),
            QueryError::External(m) => write!(f, "external source error: {m}"),
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for QueryError {
    fn from(e: StoreError) -> Self {
        QueryError::Store(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, QueryError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_distinct() {
        let variants = [
            QueryError::Parse {
                message: "x".into(),
                offset: 0,
            },
            QueryError::Plan("x".into()),
            QueryError::Execution("x".into()),
            QueryError::External("x".into()),
        ];
        let codes: Vec<&str> = variants.iter().map(|e| e.code()).collect();
        assert_eq!(
            codes,
            [
                "query.parse",
                "query.plan",
                "query.execution",
                "query.external"
            ]
        );
        let mut dedup = codes.clone();
        dedup.dedup();
        assert_eq!(codes, dedup);
    }
}
