//! Execution counters: how much work the executor did, and how it did it.
//!
//! One [`ExecMetrics`] instance is typically owned by a warehouse and
//! shared (by reference) across every query it runs; the counters are
//! atomics, so concurrent queries update them without synchronization
//! beyond the hardware's. [`ExecMetrics::snapshot`] produces the plain
//! [`ExecCounters`] struct surfaced through warehouse stats and the
//! serving layer's stats frame.

use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative executor counters (all monotone).
#[derive(Debug, Default)]
pub struct ExecMetrics {
    /// Rows produced by leaf scans (resident tables, injected extraction
    /// results, external full scans).
    pub rows_scanned: AtomicU64,
    /// Rows skipped because a scan's zone map proved its filter empty.
    pub rows_pruned: AtomicU64,
    /// Expression batches evaluated through the vectorized kernel path.
    pub vectorized_batches: AtomicU64,
    /// Expression batches the kernels declined (row-at-a-time fallback).
    pub scalar_fallbacks: AtomicU64,
    /// Morsels handed to the worker pool by parallel operators.
    pub morsels_dispatched: AtomicU64,
    /// Operator pipelines that actually ran on more than one thread.
    pub parallel_pipelines: AtomicU64,
    /// Nanoseconds spent merging per-morsel/per-partition results back
    /// into one ordered table (the serial tail of every parallel
    /// operator).
    pub merge_ns: AtomicU64,
    /// Record-level pruning passes served by the ordered time index's
    /// binary-search seek (vs. a linear candidate sweep).
    pub index_seeks: AtomicU64,
    /// Time-index entries record-level pruning examined — the seeked
    /// slice width under index seek, every candidate under the sweep.
    pub index_rows_examined: AtomicU64,
    /// Query plans the optimizer costed with table statistics.
    pub plans_estimated: AtomicU64,
    /// Result rows the cost model predicted, summed over costed plans.
    pub estimated_rows: AtomicU64,
    /// Result rows those plans actually produced.
    pub actual_rows: AtomicU64,
    /// Sum of |estimated − actual| over costed plans: the cumulative
    /// cardinality-estimation error the stats frame reports.
    pub estimate_abs_error: AtomicU64,
}

impl ExecMetrics {
    /// A fresh all-zero counter set.
    pub fn new() -> ExecMetrics {
        ExecMetrics::default()
    }

    #[inline]
    pub(crate) fn add_rows_scanned(&self, n: u64) {
        self.rows_scanned.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn add_rows_pruned(&self, n: u64) {
        self.rows_pruned.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn add_vectorized_batch(&self) {
        self.vectorized_batches.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn add_scalar_fallback(&self) {
        self.scalar_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn add_morsels_dispatched(&self, n: u64) {
        self.morsels_dispatched.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn add_parallel_pipeline(&self) {
        self.parallel_pipelines.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn add_merge_ns(&self, ns: u64) {
        self.merge_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Record one record-level pruning pass: whether the ordered time
    /// index served it, and how many entries it examined. Called by the
    /// warehouse's run-time rewriter (outside this crate).
    pub fn add_index_prune(&self, used_seek: bool, entries_examined: u64) {
        if used_seek {
            self.index_seeks.fetch_add(1, Ordering::Relaxed);
        }
        self.index_rows_examined
            .fetch_add(entries_examined, Ordering::Relaxed);
    }

    /// Record one costed plan's predicted vs. actual result cardinality.
    pub fn add_estimate(&self, estimated: u64, actual: u64) {
        self.plans_estimated.fetch_add(1, Ordering::Relaxed);
        self.estimated_rows.fetch_add(estimated, Ordering::Relaxed);
        self.actual_rows.fetch_add(actual, Ordering::Relaxed);
        self.estimate_abs_error
            .fetch_add(estimated.abs_diff(actual), Ordering::Relaxed);
    }

    /// Point-in-time copy of all counters.
    pub fn snapshot(&self) -> ExecCounters {
        ExecCounters {
            rows_scanned: self.rows_scanned.load(Ordering::Relaxed),
            rows_pruned: self.rows_pruned.load(Ordering::Relaxed),
            vectorized_batches: self.vectorized_batches.load(Ordering::Relaxed),
            scalar_fallbacks: self.scalar_fallbacks.load(Ordering::Relaxed),
            morsels_dispatched: self.morsels_dispatched.load(Ordering::Relaxed),
            parallel_pipelines: self.parallel_pipelines.load(Ordering::Relaxed),
            merge_ns: self.merge_ns.load(Ordering::Relaxed),
            index_seeks: self.index_seeks.load(Ordering::Relaxed),
            index_rows_examined: self.index_rows_examined.load(Ordering::Relaxed),
            plans_estimated: self.plans_estimated.load(Ordering::Relaxed),
            estimated_rows: self.estimated_rows.load(Ordering::Relaxed),
            actual_rows: self.actual_rows.load(Ordering::Relaxed),
            estimate_abs_error: self.estimate_abs_error.load(Ordering::Relaxed),
        }
    }
}

/// Plain copy of [`ExecMetrics`] for reports and stats frames.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecCounters {
    /// Rows produced by leaf scans.
    pub rows_scanned: u64,
    /// Rows skipped by zone-map pruning.
    pub rows_pruned: u64,
    /// Expression batches evaluated vectorized.
    pub vectorized_batches: u64,
    /// Expression batches that fell back to the scalar evaluator.
    pub scalar_fallbacks: u64,
    /// Morsels handed to the worker pool by parallel operators.
    pub morsels_dispatched: u64,
    /// Operator pipelines that ran on more than one thread.
    pub parallel_pipelines: u64,
    /// Nanoseconds spent in ordered result merges.
    pub merge_ns: u64,
    /// Pruning passes served by the ordered time index.
    pub index_seeks: u64,
    /// Time-index entries examined by record-level pruning.
    pub index_rows_examined: u64,
    /// Plans costed with table statistics.
    pub plans_estimated: u64,
    /// Predicted result rows, summed over costed plans.
    pub estimated_rows: u64,
    /// Actual result rows of those plans.
    pub actual_rows: u64,
    /// Cumulative |estimated − actual| over costed plans.
    pub estimate_abs_error: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let m = ExecMetrics::new();
        m.add_rows_scanned(10);
        m.add_rows_scanned(5);
        m.add_rows_pruned(7);
        m.add_vectorized_batch();
        m.add_scalar_fallback();
        m.add_morsels_dispatched(3);
        m.add_parallel_pipeline();
        m.add_merge_ns(250);
        m.add_index_prune(true, 4);
        m.add_index_prune(false, 9);
        m.add_estimate(100, 80);
        m.add_estimate(10, 30);
        let s = m.snapshot();
        assert_eq!(s.rows_scanned, 15);
        assert_eq!(s.rows_pruned, 7);
        assert_eq!(s.vectorized_batches, 1);
        assert_eq!(s.scalar_fallbacks, 1);
        assert_eq!(s.morsels_dispatched, 3);
        assert_eq!(s.parallel_pipelines, 1);
        assert_eq!(s.merge_ns, 250);
        assert_eq!(s.index_seeks, 1, "only the seek-served pass counts");
        assert_eq!(s.index_rows_examined, 13);
        assert_eq!(s.plans_estimated, 2);
        assert_eq!(s.estimated_rows, 110);
        assert_eq!(s.actual_rows, 110);
        assert_eq!(s.estimate_abs_error, 40, "errors do not cancel out");
    }
}
