//! Execution counters: how much work the executor did, and how it did it.
//!
//! One [`ExecMetrics`] instance is typically owned by a warehouse and
//! shared (by reference) across every query it runs; the counters are
//! atomics, so concurrent queries update them without synchronization
//! beyond the hardware's. [`ExecMetrics::snapshot`] produces the plain
//! [`ExecCounters`] struct surfaced through warehouse stats and the
//! serving layer's stats frame.

use std::sync::atomic::{AtomicU64, Ordering};

/// Cumulative executor counters (all monotone).
#[derive(Debug, Default)]
pub struct ExecMetrics {
    /// Rows produced by leaf scans (resident tables, injected extraction
    /// results, external full scans).
    pub rows_scanned: AtomicU64,
    /// Rows skipped because a scan's zone map proved its filter empty.
    pub rows_pruned: AtomicU64,
    /// Expression batches evaluated through the vectorized kernel path.
    pub vectorized_batches: AtomicU64,
    /// Expression batches the kernels declined (row-at-a-time fallback).
    pub scalar_fallbacks: AtomicU64,
    /// Morsels handed to the worker pool by parallel operators.
    pub morsels_dispatched: AtomicU64,
    /// Operator pipelines that actually ran on more than one thread.
    pub parallel_pipelines: AtomicU64,
    /// Nanoseconds spent merging per-morsel/per-partition results back
    /// into one ordered table (the serial tail of every parallel
    /// operator).
    pub merge_ns: AtomicU64,
}

impl ExecMetrics {
    /// A fresh all-zero counter set.
    pub fn new() -> ExecMetrics {
        ExecMetrics::default()
    }

    #[inline]
    pub(crate) fn add_rows_scanned(&self, n: u64) {
        self.rows_scanned.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn add_rows_pruned(&self, n: u64) {
        self.rows_pruned.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn add_vectorized_batch(&self) {
        self.vectorized_batches.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn add_scalar_fallback(&self) {
        self.scalar_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn add_morsels_dispatched(&self, n: u64) {
        self.morsels_dispatched.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn add_parallel_pipeline(&self) {
        self.parallel_pipelines.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn add_merge_ns(&self, ns: u64) {
        self.merge_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Point-in-time copy of all counters.
    pub fn snapshot(&self) -> ExecCounters {
        ExecCounters {
            rows_scanned: self.rows_scanned.load(Ordering::Relaxed),
            rows_pruned: self.rows_pruned.load(Ordering::Relaxed),
            vectorized_batches: self.vectorized_batches.load(Ordering::Relaxed),
            scalar_fallbacks: self.scalar_fallbacks.load(Ordering::Relaxed),
            morsels_dispatched: self.morsels_dispatched.load(Ordering::Relaxed),
            parallel_pipelines: self.parallel_pipelines.load(Ordering::Relaxed),
            merge_ns: self.merge_ns.load(Ordering::Relaxed),
        }
    }
}

/// Plain copy of [`ExecMetrics`] for reports and stats frames.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecCounters {
    /// Rows produced by leaf scans.
    pub rows_scanned: u64,
    /// Rows skipped by zone-map pruning.
    pub rows_pruned: u64,
    /// Expression batches evaluated vectorized.
    pub vectorized_batches: u64,
    /// Expression batches that fell back to the scalar evaluator.
    pub scalar_fallbacks: u64,
    /// Morsels handed to the worker pool by parallel operators.
    pub morsels_dispatched: u64,
    /// Operator pipelines that ran on more than one thread.
    pub parallel_pipelines: u64,
    /// Nanoseconds spent in ordered result merges.
    pub merge_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let m = ExecMetrics::new();
        m.add_rows_scanned(10);
        m.add_rows_scanned(5);
        m.add_rows_pruned(7);
        m.add_vectorized_batch();
        m.add_scalar_fallback();
        m.add_morsels_dispatched(3);
        m.add_parallel_pipeline();
        m.add_merge_ns(250);
        let s = m.snapshot();
        assert_eq!(s.rows_scanned, 15);
        assert_eq!(s.rows_pruned, 7);
        assert_eq!(s.vectorized_batches, 1);
        assert_eq!(s.scalar_fallbacks, 1);
        assert_eq!(s.morsels_dispatched, 3);
        assert_eq!(s.parallel_pipelines, 1);
        assert_eq!(s.merge_ns, 250);
    }
}
