//! Scalar expressions: representation, typing, and columnar evaluation.
//!
//! Expressions are shared by the AST, logical plans and the executor. The
//! evaluator is column-at-a-time: given a [`Table`], an expression produces
//! a whole [`Column`] — the execution style of the paper's host system.

use crate::error::{QueryError, Result};
use lazyetl_store::{Column, DataType, Schema, Table, Value};
use std::fmt;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// Logical AND (three-valued).
    And,
    /// Logical OR (three-valued).
    Or,
    /// `=`
    Eq,
    /// `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (always yields DOUBLE)
    Div,
    /// `%`
    Mod,
}

impl BinaryOp {
    /// True for the six comparison operators.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq
        )
    }

    /// SQL spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Mod => "%",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Logical NOT.
    Not,
    /// Numeric negation.
    Neg,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(expr)` / `COUNT(*)`
    Count,
    /// `SUM(expr)`
    Sum,
    /// `AVG(expr)`
    Avg,
    /// `MIN(expr)`
    Min,
    /// `MAX(expr)`
    Max,
}

impl AggFunc {
    /// SQL spelling.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }
}

/// A scalar (or aggregate) expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference, possibly qualified (`f.station`), lower-cased.
    Column(String),
    /// Literal value.
    Literal(Value),
    /// Binary operation.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Scalar function call.
    Function {
        /// Lower-cased function name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Aggregate call (only valid inside an Aggregate plan node).
    Aggregate {
        /// Which aggregate.
        func: AggFunc,
        /// Argument (`None` = `COUNT(*)`).
        arg: Option<Box<Expr>>,
        /// DISTINCT modifier.
        distinct: bool,
    },
    /// `expr BETWEEN low AND high`.
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
        /// NOT BETWEEN.
        negated: bool,
    },
    /// `expr IN (list)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate values.
        list: Vec<Expr>,
        /// NOT IN.
        negated: bool,
    },
    /// `expr LIKE pattern` (`%` and `_` wildcards).
    Like {
        /// Tested expression.
        expr: Box<Expr>,
        /// Pattern (usually a literal).
        pattern: Box<Expr>,
        /// NOT LIKE.
        negated: bool,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// IS NOT NULL.
        negated: bool,
    },
}

impl Expr {
    /// Shorthand: column reference.
    pub fn col(name: &str) -> Expr {
        Expr::Column(name.to_ascii_lowercase())
    }

    /// Shorthand: literal.
    pub fn lit(v: Value) -> Expr {
        Expr::Literal(v)
    }

    /// Shorthand: `self op other`.
    pub fn binary(self, op: BinaryOp, other: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(self),
            op,
            right: Box::new(other),
        }
    }

    /// Shorthand: conjunction.
    pub fn and(self, other: Expr) -> Expr {
        self.binary(BinaryOp::And, other)
    }

    /// Collect every column name referenced by this expression.
    pub fn columns_used(&self, out: &mut Vec<String>) {
        match self {
            Expr::Column(name) => out.push(name.clone()),
            Expr::Literal(_) => {}
            Expr::Binary { left, right, .. } => {
                left.columns_used(out);
                right.columns_used(out);
            }
            Expr::Unary { expr, .. } => expr.columns_used(out),
            Expr::Function { args, .. } => {
                for a in args {
                    a.columns_used(out);
                }
            }
            Expr::Aggregate { arg, .. } => {
                if let Some(a) = arg {
                    a.columns_used(out);
                }
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.columns_used(out);
                low.columns_used(out);
                high.columns_used(out);
            }
            Expr::InList { expr, list, .. } => {
                expr.columns_used(out);
                for e in list {
                    e.columns_used(out);
                }
            }
            Expr::Like { expr, pattern, .. } => {
                expr.columns_used(out);
                pattern.columns_used(out);
            }
            Expr::IsNull { expr, .. } => expr.columns_used(out),
        }
    }

    /// True if any sub-expression is an aggregate call.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Aggregate { .. } => true,
            Expr::Column(_) | Expr::Literal(_) => false,
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::Unary { expr, .. } => expr.contains_aggregate(),
            Expr::Function { args, .. } => args.iter().any(|a| a.contains_aggregate()),
            Expr::Between {
                expr, low, high, ..
            } => expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate(),
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(|e| e.contains_aggregate())
            }
            Expr::Like { expr, pattern, .. } => {
                expr.contains_aggregate() || pattern.contains_aggregate()
            }
            Expr::IsNull { expr, .. } => expr.contains_aggregate(),
        }
    }

    /// Apply `f` to every node bottom-up, rebuilding the tree.
    pub fn transform(&self, f: &mut impl FnMut(Expr) -> Expr) -> Expr {
        let rebuilt = match self {
            Expr::Column(_) | Expr::Literal(_) => self.clone(),
            Expr::Binary { left, op, right } => Expr::Binary {
                left: Box::new(left.transform(f)),
                op: *op,
                right: Box::new(right.transform(f)),
            },
            Expr::Unary { op, expr } => Expr::Unary {
                op: *op,
                expr: Box::new(expr.transform(f)),
            },
            Expr::Function { name, args } => Expr::Function {
                name: name.clone(),
                args: args.iter().map(|a| a.transform(f)).collect(),
            },
            Expr::Aggregate {
                func,
                arg,
                distinct,
            } => Expr::Aggregate {
                func: *func,
                arg: arg.as_ref().map(|a| Box::new(a.transform(f))),
                distinct: *distinct,
            },
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => Expr::Between {
                expr: Box::new(expr.transform(f)),
                low: Box::new(low.transform(f)),
                high: Box::new(high.transform(f)),
                negated: *negated,
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => Expr::InList {
                expr: Box::new(expr.transform(f)),
                list: list.iter().map(|e| e.transform(f)).collect(),
                negated: *negated,
            },
            Expr::Like {
                expr,
                pattern,
                negated,
            } => Expr::Like {
                expr: Box::new(expr.transform(f)),
                pattern: Box::new(pattern.transform(f)),
                negated: *negated,
            },
            Expr::IsNull { expr, negated } => Expr::IsNull {
                expr: Box::new(expr.transform(f)),
                negated: *negated,
            },
        };
        f(rebuilt)
    }

    /// A display name for an unaliased projection of this expression.
    pub fn default_name(&self) -> String {
        match self {
            Expr::Column(name) => name.rsplit('.').next().unwrap_or(name).to_string(),
            Expr::Aggregate { func, arg, .. } => match arg {
                Some(a) => format!("{}({})", func.name().to_ascii_lowercase(), a.default_name()),
                None => format!("{}(*)", func.name().to_ascii_lowercase()),
            },
            other => other.to_string(),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(name) => write!(f, "{name}"),
            Expr::Literal(Value::Utf8(s)) => write!(f, "'{s}'"),
            Expr::Literal(v) => {
                if let Value::Timestamp(_) = v {
                    write!(f, "'{v}'")
                } else {
                    write!(f, "{v}")
                }
            }
            Expr::Binary { left, op, right } => write!(f, "({left} {} {right})", op.symbol()),
            Expr::Unary { op, expr } => match op {
                UnaryOp::Not => write!(f, "(NOT {expr})"),
                UnaryOp::Neg => write!(f, "(-{expr})"),
            },
            Expr::Function { name, args } => {
                let parts: Vec<String> = args.iter().map(|a| a.to_string()).collect();
                write!(f, "{name}({})", parts.join(", "))
            }
            Expr::Aggregate {
                func,
                arg,
                distinct,
            } => {
                let d = if *distinct { "DISTINCT " } else { "" };
                match arg {
                    Some(a) => write!(f, "{}({d}{a})", func.name()),
                    None => write!(f, "{}(*)", func.name()),
                }
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => write!(
                f,
                "({expr} {}BETWEEN {low} AND {high})",
                if *negated { "NOT " } else { "" }
            ),
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let parts: Vec<String> = list.iter().map(|e| e.to_string()).collect();
                write!(
                    f,
                    "({expr} {}IN ({}))",
                    if *negated { "NOT " } else { "" },
                    parts.join(", ")
                )
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => write!(
                f,
                "({expr} {}LIKE {pattern})",
                if *negated { "NOT " } else { "" }
            ),
            Expr::IsNull { expr, negated } => {
                write!(f, "({expr} IS {}NULL)", if *negated { "NOT " } else { "" })
            }
        }
    }
}

/// Resolve a possibly-qualified column name against a schema.
///
/// Resolution order: exact match; then suffix match (`f.station` matches
/// field `station`; `station` matches a unique field `…&#46;station`). This is
/// what lets the paper's Figure-1 queries qualify view columns with the
/// origin-table aliases F/R/D.
pub fn resolve_column(schema: &Schema, name: &str) -> Option<usize> {
    resolve_name(schema.fields.iter().map(|f| f.name.as_str()), name)
}

/// Resolve a possibly-qualified column reference against a list of output
/// names (shared by schema resolution and projection substitution).
///
/// Rules, in order:
/// 1. exact match;
/// 2. qualified reference (`r.start_time`): matches an *unqualified* name
///    equal to the suffix, or a qualified name with the **same** qualifier
///    — a name qualified with a *different* alias (`f.start_time`) must
///    NOT match, otherwise predicates silently filter the wrong table;
/// 3. unqualified reference: unique suffix match under any qualifier.
pub fn resolve_name<'a>(
    names: impl Iterator<Item = &'a str> + Clone,
    query: &str,
) -> Option<usize> {
    if let Some(i) = names.clone().position(|n| n == query) {
        return Some(i);
    }
    let matches: Vec<usize> = if let Some((qual, suffix)) = query.rsplit_once('.') {
        let qual_tail = qual.rsplit('.').next().unwrap_or(qual);
        names
            .enumerate()
            .filter(|(_, n)| match n.rsplit_once('.') {
                None => *n == suffix,
                Some((fq, fs)) => fs == suffix && fq.rsplit('.').next() == Some(qual_tail),
            })
            .map(|(i, _)| i)
            .collect()
    } else {
        names
            .enumerate()
            .filter(|(_, n)| n.rsplit('.').next() == Some(query))
            .map(|(i, _)| i)
            .collect()
    };
    if matches.len() == 1 {
        Some(matches[0])
    } else {
        None
    }
}

/// Infer the output type of an expression against an input schema.
pub fn infer_type(expr: &Expr, schema: &Schema) -> Result<DataType> {
    Ok(match expr {
        Expr::Column(name) => {
            let idx = resolve_column(schema, name)
                .ok_or_else(|| QueryError::Plan(format!("unknown column {name:?}")))?;
            schema.fields[idx].data_type
        }
        Expr::Literal(v) => v.data_type().unwrap_or(DataType::Utf8),
        Expr::Binary { left, op, right } => {
            if op.is_comparison() || matches!(op, BinaryOp::And | BinaryOp::Or) {
                DataType::Bool
            } else if *op == BinaryOp::Div {
                DataType::Float64
            } else {
                let lt = infer_type(left, schema)?;
                let rt = infer_type(right, schema)?;
                numeric_supertype(lt, rt)?
            }
        }
        Expr::Unary { op, expr } => match op {
            UnaryOp::Not => DataType::Bool,
            UnaryOp::Neg => infer_type(expr, schema)?,
        },
        Expr::Function { name, args } => {
            check_function_arity(name, args.len()).map_err(QueryError::Plan)?;
            match name.as_str() {
                "abs" | "round" | "floor" | "ceil" => {
                    let t = infer_type(&args[0], schema)?;
                    if t == DataType::Int32 || t == DataType::Int64 {
                        t
                    } else {
                        DataType::Float64
                    }
                }
                "sqrt" | "exp" | "ln" | "power" => DataType::Float64,
                "lower" | "upper" => DataType::Utf8,
                "length" => DataType::Int64,
                "coalesce" => infer_type(&args[0], schema)?,
                other => return Err(QueryError::Plan(format!("unknown function {other:?}"))),
            }
        }
        Expr::Aggregate { func, arg, .. } => match func {
            AggFunc::Count => DataType::Int64,
            AggFunc::Avg => DataType::Float64,
            AggFunc::Sum => match arg {
                Some(a) => match infer_type(a, schema)? {
                    DataType::Float64 => DataType::Float64,
                    _ => DataType::Int64,
                },
                None => DataType::Int64,
            },
            AggFunc::Min | AggFunc::Max => match arg {
                Some(a) => infer_type(a, schema)?,
                None => return Err(QueryError::Plan("MIN/MAX need an argument".into())),
            },
        },
        Expr::Between { .. } | Expr::InList { .. } | Expr::Like { .. } | Expr::IsNull { .. } => {
            DataType::Bool
        }
    })
}

fn numeric_supertype(a: DataType, b: DataType) -> Result<DataType> {
    use DataType::*;
    Ok(match (a, b) {
        (Float64, _) | (_, Float64) => Float64,
        (Timestamp, Int32) | (Timestamp, Int64) | (Int32, Timestamp) | (Int64, Timestamp) => {
            Timestamp
        }
        (Timestamp, Timestamp) => Int64, // difference of timestamps
        (Int64, _) | (_, Int64) => Int64,
        (Int32, Int32) => Int32,
        _ => {
            return Err(QueryError::Plan(format!(
                "no numeric supertype for {a} and {b}"
            )))
        }
    })
}

/// SQL LIKE with `%` (any run) and `_` (single char) wildcards.
pub fn like_match(text: &str, pattern: &str) -> bool {
    fn inner(t: &[char], p: &[char]) -> bool {
        match p.first() {
            None => t.is_empty(),
            Some('%') => {
                // Collapse consecutive %.
                let rest = &p[1..];
                (0..=t.len()).any(|k| inner(&t[k..], rest))
            }
            Some('_') => !t.is_empty() && inner(&t[1..], &p[1..]),
            Some(c) => t.first() == Some(c) && inner(&t[1..], &p[1..]),
        }
    }
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    inner(&t, &p)
}

/// Evaluate a scalar value binary operation under SQL NULL semantics.
pub fn eval_binary_values(op: BinaryOp, l: &Value, r: &Value) -> Result<Value> {
    use BinaryOp::*;
    match op {
        And => Ok(match (l.as_bool(), r.as_bool(), l.is_null(), r.is_null()) {
            (Some(false), _, _, _) | (_, Some(false), _, _) => Value::Bool(false),
            (Some(true), Some(true), _, _) => Value::Bool(true),
            _ => Value::Null,
        }),
        Or => Ok(match (l.as_bool(), r.as_bool(), l.is_null(), r.is_null()) {
            (Some(true), _, _, _) | (_, Some(true), _, _) => Value::Bool(true),
            (Some(false), Some(false), _, _) => Value::Bool(false),
            _ => Value::Null,
        }),
        Eq | NotEq | Lt | LtEq | Gt | GtEq => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            let ord = l
                .sql_cmp(r)
                .ok_or_else(|| QueryError::Execution(format!("cannot compare {l} with {r}")))?;
            let b = match op {
                Eq => ord == std::cmp::Ordering::Equal,
                NotEq => ord != std::cmp::Ordering::Equal,
                Lt => ord == std::cmp::Ordering::Less,
                LtEq => ord != std::cmp::Ordering::Greater,
                Gt => ord == std::cmp::Ordering::Greater,
                GtEq => ord != std::cmp::Ordering::Less,
                _ => unreachable!(),
            };
            Ok(Value::Bool(b))
        }
        Add | Sub | Mul | Div | Mod => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            // Timestamp arithmetic: ts ± integer µs, ts - ts.
            match (l, r, op) {
                (Value::Timestamp(a), Value::Timestamp(b), Sub) => return Ok(Value::Int64(a - b)),
                (Value::Timestamp(a), _, Add) => {
                    let d = r
                        .as_i64()
                        .ok_or_else(|| QueryError::Execution("timestamp + non-integer".into()))?;
                    return Ok(Value::Timestamp(a + d));
                }
                (Value::Timestamp(a), _, Sub) => {
                    let d = r
                        .as_i64()
                        .ok_or_else(|| QueryError::Execution("timestamp - non-integer".into()))?;
                    return Ok(Value::Timestamp(a - d));
                }
                _ => {}
            }
            let fl = l
                .as_f64()
                .ok_or_else(|| QueryError::Execution(format!("non-numeric operand {l}")))?;
            let fr = r
                .as_f64()
                .ok_or_else(|| QueryError::Execution(format!("non-numeric operand {r}")))?;
            // Integer-preserving arithmetic when both sides are integers
            // and the op is not division.
            let both_int = matches!(l, Value::Int32(_) | Value::Int64(_))
                && matches!(r, Value::Int32(_) | Value::Int64(_));
            if both_int && op != Div {
                let a = l.as_i64().unwrap();
                let b = r.as_i64().unwrap();
                let v = match op {
                    Add => a.checked_add(b),
                    Sub => a.checked_sub(b),
                    Mul => a.checked_mul(b),
                    Mod => {
                        if b == 0 {
                            return Ok(Value::Null); // SQL: x % 0 -> NULL
                        }
                        a.checked_rem(b)
                    }
                    _ => unreachable!(),
                }
                .ok_or_else(|| QueryError::Execution("integer overflow".into()))?;
                let narrow = matches!(l, Value::Int32(_)) && matches!(r, Value::Int32(_));
                return Ok(if narrow && i32::try_from(v).is_ok() {
                    Value::Int32(v as i32)
                } else {
                    Value::Int64(v)
                });
            }
            let v = match op {
                Add => fl + fr,
                Sub => fl - fr,
                Mul => fl * fr,
                Div => {
                    if fr == 0.0 {
                        return Ok(Value::Null); // SQL: x / 0 -> NULL
                    }
                    fl / fr
                }
                Mod => {
                    if fr == 0.0 {
                        return Ok(Value::Null);
                    }
                    fl % fr
                }
                _ => unreachable!(),
            };
            Ok(Value::Float64(v))
        }
    }
}

/// Validate a scalar function's argument count; the message names the
/// function and the expected arity.
fn check_function_arity(name: &str, actual: usize) -> std::result::Result<(), String> {
    let expected: Option<usize> = match name {
        "abs" | "round" | "floor" | "ceil" | "sqrt" | "exp" | "ln" | "lower" | "upper"
        | "length" => Some(1),
        "power" => Some(2),
        "coalesce" => {
            if actual == 0 {
                return Err("coalesce needs at least one argument".into());
            }
            None
        }
        _ => None, // unknown names are rejected by type inference
    };
    match expected {
        Some(n) if n != actual => Err(format!(
            "{name} takes {n} argument{}, got {actual}",
            if n == 1 { "" } else { "s" }
        )),
        _ => Ok(()),
    }
}

fn eval_function(name: &str, args: &[Value]) -> Result<Value> {
    check_function_arity(name, args.len()).map_err(QueryError::Execution)?;
    let num = |v: &Value| -> Result<Option<f64>> {
        if v.is_null() {
            return Ok(None);
        }
        v.as_f64()
            .map(Some)
            .ok_or_else(|| QueryError::Execution(format!("{name}: non-numeric argument {v}")))
    };
    Ok(match name {
        "abs" => match &args[0] {
            Value::Null => Value::Null,
            Value::Int32(v) => Value::Int32(v.saturating_abs()),
            Value::Int64(v) => Value::Int64(v.saturating_abs()),
            Value::Float64(v) => Value::Float64(v.abs()),
            other => return Err(QueryError::Execution(format!("abs: bad argument {other}"))),
        },
        "round" => match num(&args[0])? {
            None => Value::Null,
            Some(v) => match &args[0] {
                Value::Int32(_) | Value::Int64(_) => args[0].clone(),
                _ => Value::Float64(v.round()),
            },
        },
        "floor" => match num(&args[0])? {
            None => Value::Null,
            Some(v) => match &args[0] {
                Value::Int32(_) | Value::Int64(_) => args[0].clone(),
                _ => Value::Float64(v.floor()),
            },
        },
        "ceil" => match num(&args[0])? {
            None => Value::Null,
            Some(v) => match &args[0] {
                Value::Int32(_) | Value::Int64(_) => args[0].clone(),
                _ => Value::Float64(v.ceil()),
            },
        },
        "sqrt" => match num(&args[0])? {
            None => Value::Null,
            Some(v) => Value::Float64(v.sqrt()),
        },
        "exp" => match num(&args[0])? {
            None => Value::Null,
            Some(v) => Value::Float64(v.exp()),
        },
        "ln" => match num(&args[0])? {
            None => Value::Null,
            Some(v) => Value::Float64(v.ln()),
        },
        "power" => match (num(&args[0])?, num(&args[1])?) {
            (Some(a), Some(b)) => Value::Float64(a.powf(b)),
            _ => Value::Null,
        },
        "lower" => match &args[0] {
            Value::Null => Value::Null,
            Value::Utf8(s) => Value::Utf8(s.to_lowercase()),
            other => {
                return Err(QueryError::Execution(format!(
                    "lower: bad argument {other}"
                )))
            }
        },
        "upper" => match &args[0] {
            Value::Null => Value::Null,
            Value::Utf8(s) => Value::Utf8(s.to_uppercase()),
            other => {
                return Err(QueryError::Execution(format!(
                    "upper: bad argument {other}"
                )))
            }
        },
        "length" => match &args[0] {
            Value::Null => Value::Null,
            Value::Utf8(s) => Value::Int64(s.chars().count() as i64),
            other => {
                return Err(QueryError::Execution(format!(
                    "length: bad argument {other}"
                )))
            }
        },
        "coalesce" => args
            .iter()
            .find(|v| !v.is_null())
            .cloned()
            .unwrap_or(Value::Null),
        other => return Err(QueryError::Execution(format!("unknown function {other:?}"))),
    })
}

/// Evaluate an expression for one row of a table.
pub fn eval_row(expr: &Expr, table: &Table, row: usize) -> Result<Value> {
    match expr {
        Expr::Column(name) => {
            let idx = resolve_column(&table.schema, name)
                .ok_or_else(|| QueryError::Execution(format!("unknown column {name:?}")))?;
            Ok(table.columns[idx].get(row)?)
        }
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Binary { left, op, right } => {
            let l = eval_row(left, table, row)?;
            // Short-circuit AND/OR on the already-known left side.
            if *op == BinaryOp::And && l.as_bool() == Some(false) {
                return Ok(Value::Bool(false));
            }
            if *op == BinaryOp::Or && l.as_bool() == Some(true) {
                return Ok(Value::Bool(true));
            }
            let r = eval_row(right, table, row)?;
            eval_binary_values(*op, &l, &r)
        }
        Expr::Unary { op, expr } => {
            let v = eval_row(expr, table, row)?;
            match op {
                UnaryOp::Not => Ok(match v.as_bool() {
                    Some(b) => Value::Bool(!b),
                    None => Value::Null,
                }),
                UnaryOp::Neg => Ok(match v {
                    Value::Null => Value::Null,
                    Value::Int32(x) => Value::Int32(-x),
                    Value::Int64(x) => Value::Int64(-x),
                    Value::Float64(x) => Value::Float64(-x),
                    other => return Err(QueryError::Execution(format!("cannot negate {other}"))),
                }),
            }
        }
        Expr::Function { name, args } => {
            let vals: Vec<Value> = args
                .iter()
                .map(|a| eval_row(a, table, row))
                .collect::<Result<_>>()?;
            eval_function(name, &vals)
        }
        Expr::Aggregate { .. } => Err(QueryError::Execution(
            "aggregate expression outside of GROUP BY context".into(),
        )),
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = eval_row(expr, table, row)?;
            let lo = eval_row(low, table, row)?;
            let hi = eval_row(high, table, row)?;
            let ge = eval_binary_values(BinaryOp::GtEq, &v, &lo)?;
            let le = eval_binary_values(BinaryOp::LtEq, &v, &hi)?;
            let both = eval_binary_values(BinaryOp::And, &ge, &le)?;
            Ok(match (both.as_bool(), *negated) {
                (Some(b), neg) => Value::Bool(b != neg),
                (None, _) => Value::Null,
            })
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval_row(expr, table, row)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut saw_null = false;
            for candidate in list {
                let c = eval_row(candidate, table, row)?;
                match v.sql_eq(&c) {
                    Some(true) => return Ok(Value::Bool(!negated)),
                    Some(false) => {}
                    None => saw_null = true,
                }
            }
            if saw_null {
                Ok(Value::Null)
            } else {
                Ok(Value::Bool(*negated))
            }
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = eval_row(expr, table, row)?;
            let p = eval_row(pattern, table, row)?;
            match (v.as_str(), p.as_str()) {
                (Some(t), Some(pat)) => Ok(Value::Bool(like_match(t, pat) != *negated)),
                _ if v.is_null() || p.is_null() => Ok(Value::Null),
                _ => Err(QueryError::Execution(
                    "LIKE requires string operands".into(),
                )),
            }
        }
        Expr::IsNull { expr, negated } => {
            let v = eval_row(expr, table, row)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
    }
}

/// Evaluate an expression over all rows, producing a column.
///
/// Common shapes (bare column references, column-vs-literal comparisons,
/// boolean combinations of those) run as tight typed loops; everything else
/// falls back to row-at-a-time interpretation.
pub fn eval_expr(expr: &Expr, table: &Table) -> Result<Column> {
    if let Some(col) = eval_vectorized(expr, table)? {
        return Ok(col);
    }
    let out_type = infer_type(expr, &table.schema)?;
    let mut col = Column::empty(out_type);
    for row in 0..table.num_rows() {
        let v = eval_row(expr, table, row)?;
        // Coerce to the inferred column type where the valueside differs
        // (e.g. int-preserving round over a Float64-typed expression).
        let v = coerce_value(v, out_type);
        col.push(v).map_err(QueryError::Store)?;
    }
    Ok(col)
}

/// Tri-state vector used by the vectorized boolean kernels:
/// `Some(bool)` = definite, `None` = SQL NULL.
type BoolVec = Vec<Option<bool>>;

fn bools_to_column(bools: BoolVec) -> Result<Column> {
    let mut values = Vec::with_capacity(bools.len());
    let mut validity = Vec::with_capacity(bools.len());
    let mut has_null = false;
    for b in bools {
        match b {
            Some(v) => {
                values.push(v);
                validity.push(true);
            }
            None => {
                values.push(false);
                validity.push(false);
                has_null = true;
            }
        }
    }
    let data = lazyetl_store::ColumnData::Bool(values);
    if has_null {
        Column::with_validity(data, validity).map_err(QueryError::Store)
    } else {
        Ok(Column::new(data))
    }
}

/// Vectorized comparison of a column against a literal. Returns `None`
/// when the type pairing has no fast kernel.
fn compare_column_literal(
    col: &Column,
    op: BinaryOp,
    lit: &Value,
    literal_on_left: bool,
) -> Option<BoolVec> {
    use lazyetl_store::ColumnData as CD;
    use std::cmp::Ordering;
    let decide = |ord: Ordering| -> bool {
        let ord = if literal_on_left { ord.reverse() } else { ord };
        match op {
            BinaryOp::Eq => ord == Ordering::Equal,
            BinaryOp::NotEq => ord != Ordering::Equal,
            BinaryOp::Lt => ord == Ordering::Less,
            BinaryOp::LtEq => ord != Ordering::Greater,
            BinaryOp::Gt => ord == Ordering::Greater,
            BinaryOp::GtEq => ord != Ordering::Less,
            _ => unreachable!("caller checks is_comparison"),
        }
    };
    let n = col.len();
    let nullable = col.null_count() > 0;
    macro_rules! kernel {
        ($data:expr, $target:expr, $cmp:expr) => {{
            let mut out: BoolVec = Vec::with_capacity(n);
            for (i, v) in $data.iter().enumerate() {
                if nullable && col.is_null(i) {
                    out.push(None);
                } else {
                    out.push(Some(decide($cmp(v, $target))));
                }
            }
            Some(out)
        }};
    }
    match (col.data(), lit) {
        (CD::Int64(d), _) | (CD::Timestamp(d), _) => {
            let t = lit.as_i64()?;
            kernel!(d, &t, |a: &i64, b: &i64| a.cmp(b))
        }
        (CD::Int32(d), Value::Int32(_) | Value::Int64(_)) => {
            let t = lit.as_i64()?;
            kernel!(d, &t, |a: &i32, b: &i64| (*a as i64).cmp(b))
        }
        (CD::Int32(d), Value::Float64(t)) => {
            kernel!(d, t, |a: &i32, b: &f64| (*a as f64).total_cmp(b))
        }
        (CD::Float64(d), _) => {
            let t = lit.as_f64()?;
            kernel!(d, &t, |a: &f64, b: &f64| a.total_cmp(b))
        }
        (CD::Utf8(d), Value::Utf8(t)) => {
            kernel!(d, t, |a: &String, b: &String| a.as_str().cmp(b.as_str()))
        }
        _ => None,
    }
}

/// Fast-path evaluation; `Ok(None)` means "no kernel, use the interpreter".
fn eval_vectorized(expr: &Expr, table: &Table) -> Result<Option<Column>> {
    match expr {
        Expr::Column(name) => {
            let idx = match resolve_column(&table.schema, name) {
                Some(i) => i,
                None => return Ok(None), // let the interpreter report the error path
            };
            Ok(Some(table.columns[idx].clone()))
        }
        Expr::Binary { left, op, right } if op.is_comparison() => {
            let (col_expr, lit, literal_on_left) = match (&**left, &**right) {
                (Expr::Column(_), Expr::Literal(v)) => (&**left, v, false),
                (Expr::Literal(v), Expr::Column(_)) => (&**right, v, true),
                _ => return Ok(None),
            };
            if lit.is_null() {
                return Ok(None); // NULL comparisons: interpreter handles 3VL
            }
            let Expr::Column(name) = col_expr else {
                return Ok(None);
            };
            let Some(idx) = resolve_column(&table.schema, name) else {
                return Ok(None);
            };
            match compare_column_literal(&table.columns[idx], *op, lit, literal_on_left) {
                Some(bools) => Ok(Some(bools_to_column(bools)?)),
                None => Ok(None),
            }
        }
        Expr::Binary { left, op, right } if matches!(op, BinaryOp::And | BinaryOp::Or) => {
            let Some(l) = eval_vectorized(left, table)? else {
                return Ok(None);
            };
            let Some(r) = eval_vectorized(right, table)? else {
                return Ok(None);
            };
            if l.data_type() != DataType::Bool || r.data_type() != DataType::Bool {
                return Ok(None);
            }
            let (lazyetl_store::ColumnData::Bool(ld), lazyetl_store::ColumnData::Bool(rd)) =
                (l.data(), r.data())
            else {
                return Ok(None);
            };
            let is_and = *op == BinaryOp::And;
            let mut out: BoolVec = Vec::with_capacity(ld.len());
            for i in 0..ld.len() {
                let a = if l.is_null(i) { None } else { Some(ld[i]) };
                let b = if r.is_null(i) { None } else { Some(rd[i]) };
                out.push(if is_and {
                    match (a, b) {
                        (Some(false), _) | (_, Some(false)) => Some(false),
                        (Some(true), Some(true)) => Some(true),
                        _ => None,
                    }
                } else {
                    match (a, b) {
                        (Some(true), _) | (_, Some(true)) => Some(true),
                        (Some(false), Some(false)) => Some(false),
                        _ => None,
                    }
                });
            }
            Ok(Some(bools_to_column(out)?))
        }
        _ => Ok(None),
    }
}

/// Losslessly coerce a value toward a target type where SQL allows it.
fn coerce_value(v: Value, target: DataType) -> Value {
    match (&v, target) {
        (Value::Int32(x), DataType::Int64) => Value::Int64(*x as i64),
        (Value::Int32(x), DataType::Float64) => Value::Float64(*x as f64),
        (Value::Int64(x), DataType::Float64) => Value::Float64(*x as f64),
        (Value::Int64(x), DataType::Timestamp) => Value::Timestamp(*x),
        _ => v,
    }
}

/// Evaluate a predicate to a boolean selection mask (NULL -> false).
pub fn eval_predicate_mask(expr: &Expr, table: &Table) -> Result<Vec<bool>> {
    if let Some(col) = eval_vectorized(expr, table)? {
        if let lazyetl_store::ColumnData::Bool(d) = col.data() {
            return Ok(d
                .iter()
                .enumerate()
                .map(|(i, &b)| b && !col.is_null(i))
                .collect());
        }
    }
    let mut mask = Vec::with_capacity(table.num_rows());
    for row in 0..table.num_rows() {
        let v = eval_row(expr, table, row)?;
        mask.push(v.as_bool().unwrap_or(false));
    }
    Ok(mask)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazyetl_store::Field;

    fn test_table() -> Table {
        let schema = Schema::new(vec![
            Field::new("station", DataType::Utf8),
            Field::new("value", DataType::Float64),
            Field::nullable("qual", DataType::Int32),
            Field::new("t", DataType::Timestamp),
        ])
        .unwrap();
        let mut t = Table::empty(schema);
        t.append_row(vec![
            Value::Utf8("ISK".into()),
            Value::Float64(1.5),
            Value::Int32(80),
            Value::Timestamp(1_000_000),
        ])
        .unwrap();
        t.append_row(vec![
            Value::Utf8("HGN".into()),
            Value::Float64(-2.0),
            Value::Null,
            Value::Timestamp(2_000_000),
        ])
        .unwrap();
        t
    }

    #[test]
    fn column_resolution_with_qualifiers() {
        let t = test_table();
        assert_eq!(resolve_column(&t.schema, "station"), Some(0));
        assert_eq!(resolve_column(&t.schema, "f.station"), Some(0));
        assert_eq!(resolve_column(&t.schema, "x.y.station"), Some(0));
        assert_eq!(resolve_column(&t.schema, "missing"), None);
    }

    #[test]
    fn comparison_and_nulls() {
        let t = test_table();
        let p = Expr::col("qual").binary(BinaryOp::Gt, Expr::lit(Value::Int32(50)));
        let mask = eval_predicate_mask(&p, &t).unwrap();
        assert_eq!(mask, vec![true, false], "NULL row filtered out");
    }

    #[test]
    fn three_valued_logic() {
        let t = test_table();
        // NULL OR TRUE = TRUE even though qual is NULL in row 1.
        let p = Expr::col("qual")
            .binary(BinaryOp::Gt, Expr::lit(Value::Int32(50)))
            .binary(BinaryOp::Or, Expr::lit(Value::Bool(true)));
        let mask = eval_predicate_mask(&p, &t).unwrap();
        assert_eq!(mask, vec![true, true]);
        // NULL AND FALSE = FALSE.
        let v = eval_binary_values(BinaryOp::And, &Value::Null, &Value::Bool(false)).unwrap();
        assert_eq!(v, Value::Bool(false));
        let v = eval_binary_values(BinaryOp::And, &Value::Null, &Value::Bool(true)).unwrap();
        assert!(v.is_null());
    }

    #[test]
    fn arithmetic_types() {
        let v = eval_binary_values(BinaryOp::Add, &Value::Int32(1), &Value::Int32(2)).unwrap();
        assert_eq!(v, Value::Int32(3));
        let v = eval_binary_values(BinaryOp::Div, &Value::Int32(1), &Value::Int32(2)).unwrap();
        assert_eq!(v, Value::Float64(0.5));
        let v = eval_binary_values(BinaryOp::Div, &Value::Int32(1), &Value::Int32(0)).unwrap();
        assert!(v.is_null(), "division by zero is NULL");
        let v = eval_binary_values(BinaryOp::Add, &Value::Timestamp(10), &Value::Int64(5)).unwrap();
        assert_eq!(v, Value::Timestamp(15));
        let v =
            eval_binary_values(BinaryOp::Sub, &Value::Timestamp(10), &Value::Timestamp(4)).unwrap();
        assert_eq!(v, Value::Int64(6));
        assert!(
            eval_binary_values(BinaryOp::Add, &Value::Int64(i64::MAX), &Value::Int64(1)).is_err()
        );
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("BHZ", "BH%"));
        assert!(like_match("BHZ", "B_Z"));
        assert!(!like_match("BHZ", "B_"));
        assert!(like_match("", "%"));
        assert!(like_match("abc", "%c"));
        assert!(like_match("abc", "%%c"));
        assert!(!like_match("abc", "_"));
        assert!(like_match("a%b", "a%b")); // literal percent matched by wildcard
    }

    #[test]
    fn between_and_in() {
        let t = test_table();
        let p = Expr::Between {
            expr: Box::new(Expr::col("value")),
            low: Box::new(Expr::lit(Value::Float64(0.0))),
            high: Box::new(Expr::lit(Value::Float64(2.0))),
            negated: false,
        };
        assert_eq!(eval_predicate_mask(&p, &t).unwrap(), vec![true, false]);
        let p = Expr::InList {
            expr: Box::new(Expr::col("station")),
            list: vec![
                Expr::lit(Value::Utf8("HGN".into())),
                Expr::lit(Value::Utf8("WIT".into())),
            ],
            negated: false,
        };
        assert_eq!(eval_predicate_mask(&p, &t).unwrap(), vec![false, true]);
    }

    #[test]
    fn functions() {
        let t = test_table();
        let c = eval_expr(
            &Expr::Function {
                name: "abs".into(),
                args: vec![Expr::col("value")],
            },
            &t,
        )
        .unwrap();
        assert_eq!(c.get(1).unwrap(), Value::Float64(2.0));
        let c = eval_expr(
            &Expr::Function {
                name: "lower".into(),
                args: vec![Expr::col("station")],
            },
            &t,
        )
        .unwrap();
        assert_eq!(c.get(0).unwrap(), Value::Utf8("isk".into()));
        let c = eval_expr(
            &Expr::Function {
                name: "coalesce".into(),
                args: vec![Expr::col("qual"), Expr::lit(Value::Int32(-1))],
            },
            &t,
        )
        .unwrap();
        assert_eq!(c.get(1).unwrap(), Value::Int32(-1));
    }

    #[test]
    fn wrong_function_arity_is_an_error_not_a_panic() {
        let t = test_table();
        for (name, args) in [
            ("abs", vec![]),
            ("abs", vec![Expr::col("value"), Expr::col("value")]),
            ("power", vec![Expr::lit(Value::Int64(2))]),
            ("sqrt", vec![]),
            ("coalesce", vec![]),
        ] {
            let f = Expr::Function {
                name: name.into(),
                args: args.clone(),
            };
            assert!(
                infer_type(&f, &t.schema).is_err(),
                "{name}/{} must fail type inference",
                args.len()
            );
            assert!(
                eval_expr(&f, &t).is_err(),
                "{name}/{} must fail evaluation",
                args.len()
            );
        }
    }

    #[test]
    fn is_null_and_not() {
        let t = test_table();
        let p = Expr::IsNull {
            expr: Box::new(Expr::col("qual")),
            negated: false,
        };
        assert_eq!(eval_predicate_mask(&p, &t).unwrap(), vec![false, true]);
        let p = Expr::Unary {
            op: UnaryOp::Not,
            expr: Box::new(Expr::IsNull {
                expr: Box::new(Expr::col("qual")),
                negated: false,
            }),
        };
        assert_eq!(eval_predicate_mask(&p, &t).unwrap(), vec![true, false]);
    }

    #[test]
    fn type_inference() {
        let t = test_table();
        assert_eq!(
            infer_type(&Expr::col("value"), &t.schema).unwrap(),
            DataType::Float64
        );
        assert_eq!(
            infer_type(
                &Expr::col("qual").binary(BinaryOp::Add, Expr::lit(Value::Int32(1))),
                &t.schema
            )
            .unwrap(),
            DataType::Int32
        );
        assert_eq!(
            infer_type(
                &Expr::Aggregate {
                    func: AggFunc::Avg,
                    arg: Some(Box::new(Expr::col("value"))),
                    distinct: false
                },
                &t.schema
            )
            .unwrap(),
            DataType::Float64
        );
        assert!(infer_type(&Expr::col("nope"), &t.schema).is_err());
    }

    #[test]
    fn display_roundtrips_visually() {
        let e = Expr::col("f.station").binary(BinaryOp::Eq, Expr::lit(Value::Utf8("ISK".into())));
        assert_eq!(e.to_string(), "(f.station = 'ISK')");
        assert_eq!(e.default_name(), "(f.station = 'ISK')");
        assert_eq!(Expr::col("d.sample_value").default_name(), "sample_value");
        let agg = Expr::Aggregate {
            func: AggFunc::Avg,
            arg: Some(Box::new(Expr::col("d.sample_value"))),
            distinct: false,
        };
        assert_eq!(agg.default_name(), "avg(sample_value)");
    }

    #[test]
    fn columns_used_collects() {
        let e = Expr::col("a")
            .binary(BinaryOp::Add, Expr::col("b"))
            .binary(BinaryOp::Gt, Expr::lit(Value::Int32(0)));
        let mut cols = Vec::new();
        e.columns_used(&mut cols);
        assert_eq!(cols, vec!["a".to_string(), "b".to_string()]);
        assert!(!e.contains_aggregate());
    }
}
