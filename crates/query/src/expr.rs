//! Scalar expressions: representation, typing, and columnar evaluation.
//!
//! Expressions are shared by the AST, logical plans and the executor. The
//! evaluator is column-at-a-time: given a [`Table`], an expression produces
//! a whole [`Column`] — the execution style of the paper's host system.

use crate::error::{QueryError, Result};
use lazyetl_store::{Column, DataType, Schema, Table, Value};
use std::fmt;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// Logical AND (three-valued).
    And,
    /// Logical OR (three-valued).
    Or,
    /// `=`
    Eq,
    /// `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (always yields DOUBLE)
    Div,
    /// `%`
    Mod,
}

impl BinaryOp {
    /// True for the six comparison operators.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq
        )
    }

    /// SQL spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Mod => "%",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Logical NOT.
    Not,
    /// Numeric negation.
    Neg,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(expr)` / `COUNT(*)`
    Count,
    /// `SUM(expr)`
    Sum,
    /// `AVG(expr)`
    Avg,
    /// `MIN(expr)`
    Min,
    /// `MAX(expr)`
    Max,
}

impl AggFunc {
    /// SQL spelling.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }
}

/// A scalar (or aggregate) expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference, possibly qualified (`f.station`), lower-cased.
    Column(String),
    /// Literal value.
    Literal(Value),
    /// Binary operation.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Scalar function call.
    Function {
        /// Lower-cased function name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Aggregate call (only valid inside an Aggregate plan node).
    Aggregate {
        /// Which aggregate.
        func: AggFunc,
        /// Argument (`None` = `COUNT(*)`).
        arg: Option<Box<Expr>>,
        /// DISTINCT modifier.
        distinct: bool,
    },
    /// `expr BETWEEN low AND high`.
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
        /// NOT BETWEEN.
        negated: bool,
    },
    /// `expr IN (list)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate values.
        list: Vec<Expr>,
        /// NOT IN.
        negated: bool,
    },
    /// `expr LIKE pattern` (`%` and `_` wildcards).
    Like {
        /// Tested expression.
        expr: Box<Expr>,
        /// Pattern (usually a literal).
        pattern: Box<Expr>,
        /// NOT LIKE.
        negated: bool,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// IS NOT NULL.
        negated: bool,
    },
}

impl Expr {
    /// Shorthand: column reference.
    pub fn col(name: &str) -> Expr {
        Expr::Column(name.to_ascii_lowercase())
    }

    /// Shorthand: literal.
    pub fn lit(v: Value) -> Expr {
        Expr::Literal(v)
    }

    /// Shorthand: `self op other`.
    pub fn binary(self, op: BinaryOp, other: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(self),
            op,
            right: Box::new(other),
        }
    }

    /// Shorthand: conjunction.
    pub fn and(self, other: Expr) -> Expr {
        self.binary(BinaryOp::And, other)
    }

    /// Collect every column name referenced by this expression.
    pub fn columns_used(&self, out: &mut Vec<String>) {
        match self {
            Expr::Column(name) => out.push(name.clone()),
            Expr::Literal(_) => {}
            Expr::Binary { left, right, .. } => {
                left.columns_used(out);
                right.columns_used(out);
            }
            Expr::Unary { expr, .. } => expr.columns_used(out),
            Expr::Function { args, .. } => {
                for a in args {
                    a.columns_used(out);
                }
            }
            Expr::Aggregate { arg, .. } => {
                if let Some(a) = arg {
                    a.columns_used(out);
                }
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.columns_used(out);
                low.columns_used(out);
                high.columns_used(out);
            }
            Expr::InList { expr, list, .. } => {
                expr.columns_used(out);
                for e in list {
                    e.columns_used(out);
                }
            }
            Expr::Like { expr, pattern, .. } => {
                expr.columns_used(out);
                pattern.columns_used(out);
            }
            Expr::IsNull { expr, .. } => expr.columns_used(out),
        }
    }

    /// True if any sub-expression is an aggregate call.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Aggregate { .. } => true,
            Expr::Column(_) | Expr::Literal(_) => false,
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::Unary { expr, .. } => expr.contains_aggregate(),
            Expr::Function { args, .. } => args.iter().any(|a| a.contains_aggregate()),
            Expr::Between {
                expr, low, high, ..
            } => expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate(),
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(|e| e.contains_aggregate())
            }
            Expr::Like { expr, pattern, .. } => {
                expr.contains_aggregate() || pattern.contains_aggregate()
            }
            Expr::IsNull { expr, .. } => expr.contains_aggregate(),
        }
    }

    /// Apply `f` to every node bottom-up, rebuilding the tree.
    pub fn transform(&self, f: &mut impl FnMut(Expr) -> Expr) -> Expr {
        let rebuilt = match self {
            Expr::Column(_) | Expr::Literal(_) => self.clone(),
            Expr::Binary { left, op, right } => Expr::Binary {
                left: Box::new(left.transform(f)),
                op: *op,
                right: Box::new(right.transform(f)),
            },
            Expr::Unary { op, expr } => Expr::Unary {
                op: *op,
                expr: Box::new(expr.transform(f)),
            },
            Expr::Function { name, args } => Expr::Function {
                name: name.clone(),
                args: args.iter().map(|a| a.transform(f)).collect(),
            },
            Expr::Aggregate {
                func,
                arg,
                distinct,
            } => Expr::Aggregate {
                func: *func,
                arg: arg.as_ref().map(|a| Box::new(a.transform(f))),
                distinct: *distinct,
            },
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => Expr::Between {
                expr: Box::new(expr.transform(f)),
                low: Box::new(low.transform(f)),
                high: Box::new(high.transform(f)),
                negated: *negated,
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => Expr::InList {
                expr: Box::new(expr.transform(f)),
                list: list.iter().map(|e| e.transform(f)).collect(),
                negated: *negated,
            },
            Expr::Like {
                expr,
                pattern,
                negated,
            } => Expr::Like {
                expr: Box::new(expr.transform(f)),
                pattern: Box::new(pattern.transform(f)),
                negated: *negated,
            },
            Expr::IsNull { expr, negated } => Expr::IsNull {
                expr: Box::new(expr.transform(f)),
                negated: *negated,
            },
        };
        f(rebuilt)
    }

    /// A display name for an unaliased projection of this expression.
    pub fn default_name(&self) -> String {
        match self {
            Expr::Column(name) => name.rsplit('.').next().unwrap_or(name).to_string(),
            Expr::Aggregate { func, arg, .. } => match arg {
                Some(a) => format!("{}({})", func.name().to_ascii_lowercase(), a.default_name()),
                None => format!("{}(*)", func.name().to_ascii_lowercase()),
            },
            other => other.to_string(),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(name) => write!(f, "{name}"),
            Expr::Literal(Value::Utf8(s)) => write!(f, "'{s}'"),
            Expr::Literal(v) => {
                if let Value::Timestamp(_) = v {
                    write!(f, "'{v}'")
                } else {
                    write!(f, "{v}")
                }
            }
            Expr::Binary { left, op, right } => write!(f, "({left} {} {right})", op.symbol()),
            Expr::Unary { op, expr } => match op {
                UnaryOp::Not => write!(f, "(NOT {expr})"),
                UnaryOp::Neg => write!(f, "(-{expr})"),
            },
            Expr::Function { name, args } => {
                let parts: Vec<String> = args.iter().map(|a| a.to_string()).collect();
                write!(f, "{name}({})", parts.join(", "))
            }
            Expr::Aggregate {
                func,
                arg,
                distinct,
            } => {
                let d = if *distinct { "DISTINCT " } else { "" };
                match arg {
                    Some(a) => write!(f, "{}({d}{a})", func.name()),
                    None => write!(f, "{}(*)", func.name()),
                }
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => write!(
                f,
                "({expr} {}BETWEEN {low} AND {high})",
                if *negated { "NOT " } else { "" }
            ),
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let parts: Vec<String> = list.iter().map(|e| e.to_string()).collect();
                write!(
                    f,
                    "({expr} {}IN ({}))",
                    if *negated { "NOT " } else { "" },
                    parts.join(", ")
                )
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => write!(
                f,
                "({expr} {}LIKE {pattern})",
                if *negated { "NOT " } else { "" }
            ),
            Expr::IsNull { expr, negated } => {
                write!(f, "({expr} IS {}NULL)", if *negated { "NOT " } else { "" })
            }
        }
    }
}

/// Resolve a possibly-qualified column name against a schema.
///
/// Resolution order: exact match; then suffix match (`f.station` matches
/// field `station`; `station` matches a unique field `…&#46;station`). This is
/// what lets the paper's Figure-1 queries qualify view columns with the
/// origin-table aliases F/R/D.
pub fn resolve_column(schema: &Schema, name: &str) -> Option<usize> {
    resolve_name(schema.fields.iter().map(|f| f.name.as_str()), name)
}

/// Resolve a possibly-qualified column reference against a list of output
/// names (shared by schema resolution and projection substitution).
///
/// Rules, in order:
/// 1. exact match;
/// 2. qualified reference (`r.start_time`): matches an *unqualified* name
///    equal to the suffix, or a qualified name with the **same** qualifier
///    — a name qualified with a *different* alias (`f.start_time`) must
///    NOT match, otherwise predicates silently filter the wrong table;
/// 3. unqualified reference: unique suffix match under any qualifier.
pub fn resolve_name<'a>(
    names: impl Iterator<Item = &'a str> + Clone,
    query: &str,
) -> Option<usize> {
    if let Some(i) = names.clone().position(|n| n == query) {
        return Some(i);
    }
    let matches: Vec<usize> = if let Some((qual, suffix)) = query.rsplit_once('.') {
        let qual_tail = qual.rsplit('.').next().unwrap_or(qual);
        names
            .enumerate()
            .filter(|(_, n)| match n.rsplit_once('.') {
                None => *n == suffix,
                Some((fq, fs)) => fs == suffix && fq.rsplit('.').next() == Some(qual_tail),
            })
            .map(|(i, _)| i)
            .collect()
    } else {
        names
            .enumerate()
            .filter(|(_, n)| n.rsplit('.').next() == Some(query))
            .map(|(i, _)| i)
            .collect()
    };
    if matches.len() == 1 {
        Some(matches[0])
    } else {
        None
    }
}

/// Infer the output type of an expression against an input schema.
pub fn infer_type(expr: &Expr, schema: &Schema) -> Result<DataType> {
    Ok(match expr {
        Expr::Column(name) => {
            let idx = resolve_column(schema, name)
                .ok_or_else(|| QueryError::Plan(format!("unknown column {name:?}")))?;
            schema.fields[idx].data_type
        }
        Expr::Literal(v) => v.data_type().unwrap_or(DataType::Utf8),
        Expr::Binary { left, op, right } => {
            if op.is_comparison() || matches!(op, BinaryOp::And | BinaryOp::Or) {
                DataType::Bool
            } else if *op == BinaryOp::Div {
                DataType::Float64
            } else {
                let lt = infer_type(left, schema)?;
                let rt = infer_type(right, schema)?;
                numeric_supertype(lt, rt)?
            }
        }
        Expr::Unary { op, expr } => match op {
            UnaryOp::Not => DataType::Bool,
            UnaryOp::Neg => infer_type(expr, schema)?,
        },
        Expr::Function { name, args } => {
            check_function_arity(name, args.len()).map_err(QueryError::Plan)?;
            match name.as_str() {
                "abs" | "round" | "floor" | "ceil" => {
                    let t = infer_type(&args[0], schema)?;
                    if t == DataType::Int32 || t == DataType::Int64 {
                        t
                    } else {
                        DataType::Float64
                    }
                }
                "sqrt" | "exp" | "ln" | "power" => DataType::Float64,
                "lower" | "upper" => DataType::Utf8,
                "length" => DataType::Int64,
                "coalesce" => infer_type(&args[0], schema)?,
                other => return Err(QueryError::Plan(format!("unknown function {other:?}"))),
            }
        }
        Expr::Aggregate { func, arg, .. } => match func {
            AggFunc::Count => DataType::Int64,
            AggFunc::Avg => DataType::Float64,
            AggFunc::Sum => match arg {
                Some(a) => match infer_type(a, schema)? {
                    DataType::Float64 => DataType::Float64,
                    _ => DataType::Int64,
                },
                None => DataType::Int64,
            },
            AggFunc::Min | AggFunc::Max => match arg {
                Some(a) => infer_type(a, schema)?,
                None => return Err(QueryError::Plan("MIN/MAX need an argument".into())),
            },
        },
        Expr::Between { .. } | Expr::InList { .. } | Expr::Like { .. } | Expr::IsNull { .. } => {
            DataType::Bool
        }
    })
}

fn numeric_supertype(a: DataType, b: DataType) -> Result<DataType> {
    use DataType::*;
    Ok(match (a, b) {
        (Float64, _) | (_, Float64) => Float64,
        (Timestamp, Int32) | (Timestamp, Int64) | (Int32, Timestamp) | (Int64, Timestamp) => {
            Timestamp
        }
        (Timestamp, Timestamp) => Int64, // difference of timestamps
        (Int64, _) | (_, Int64) => Int64,
        (Int32, Int32) => Int32,
        _ => {
            return Err(QueryError::Plan(format!(
                "no numeric supertype for {a} and {b}"
            )))
        }
    })
}

/// SQL LIKE with `%` (any run) and `_` (single char) wildcards.
pub fn like_match(text: &str, pattern: &str) -> bool {
    fn inner(t: &[char], p: &[char]) -> bool {
        match p.first() {
            None => t.is_empty(),
            Some('%') => {
                // Collapse consecutive %.
                let rest = &p[1..];
                (0..=t.len()).any(|k| inner(&t[k..], rest))
            }
            Some('_') => !t.is_empty() && inner(&t[1..], &p[1..]),
            Some(c) => t.first() == Some(c) && inner(&t[1..], &p[1..]),
        }
    }
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    inner(&t, &p)
}

/// Evaluate a scalar value binary operation under SQL NULL semantics.
pub fn eval_binary_values(op: BinaryOp, l: &Value, r: &Value) -> Result<Value> {
    use BinaryOp::*;
    match op {
        And => Ok(match (l.as_bool(), r.as_bool(), l.is_null(), r.is_null()) {
            (Some(false), _, _, _) | (_, Some(false), _, _) => Value::Bool(false),
            (Some(true), Some(true), _, _) => Value::Bool(true),
            _ => Value::Null,
        }),
        Or => Ok(match (l.as_bool(), r.as_bool(), l.is_null(), r.is_null()) {
            (Some(true), _, _, _) | (_, Some(true), _, _) => Value::Bool(true),
            (Some(false), Some(false), _, _) => Value::Bool(false),
            _ => Value::Null,
        }),
        Eq | NotEq | Lt | LtEq | Gt | GtEq => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            let ord = l
                .sql_cmp(r)
                .ok_or_else(|| QueryError::Execution(format!("cannot compare {l} with {r}")))?;
            let b = match op {
                Eq => ord == std::cmp::Ordering::Equal,
                NotEq => ord != std::cmp::Ordering::Equal,
                Lt => ord == std::cmp::Ordering::Less,
                LtEq => ord != std::cmp::Ordering::Greater,
                Gt => ord == std::cmp::Ordering::Greater,
                GtEq => ord != std::cmp::Ordering::Less,
                _ => unreachable!(),
            };
            Ok(Value::Bool(b))
        }
        Add | Sub | Mul | Div | Mod => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            // Timestamp arithmetic: ts ± integer µs, ts - ts.
            match (l, r, op) {
                (Value::Timestamp(a), Value::Timestamp(b), Sub) => return Ok(Value::Int64(a - b)),
                (Value::Timestamp(a), _, Add) => {
                    let d = r
                        .as_i64()
                        .ok_or_else(|| QueryError::Execution("timestamp + non-integer".into()))?;
                    return Ok(Value::Timestamp(a + d));
                }
                (Value::Timestamp(a), _, Sub) => {
                    let d = r
                        .as_i64()
                        .ok_or_else(|| QueryError::Execution("timestamp - non-integer".into()))?;
                    return Ok(Value::Timestamp(a - d));
                }
                _ => {}
            }
            let fl = l
                .as_f64()
                .ok_or_else(|| QueryError::Execution(format!("non-numeric operand {l}")))?;
            let fr = r
                .as_f64()
                .ok_or_else(|| QueryError::Execution(format!("non-numeric operand {r}")))?;
            // Integer-preserving arithmetic when both sides are integers
            // and the op is not division.
            let both_int = matches!(l, Value::Int32(_) | Value::Int64(_))
                && matches!(r, Value::Int32(_) | Value::Int64(_));
            if both_int && op != Div {
                let a = l.as_i64().unwrap();
                let b = r.as_i64().unwrap();
                let v = match op {
                    Add => a.checked_add(b),
                    Sub => a.checked_sub(b),
                    Mul => a.checked_mul(b),
                    Mod => {
                        if b == 0 {
                            return Ok(Value::Null); // SQL: x % 0 -> NULL
                        }
                        a.checked_rem(b)
                    }
                    _ => unreachable!(),
                }
                .ok_or_else(|| QueryError::Execution("integer overflow".into()))?;
                let narrow = matches!(l, Value::Int32(_)) && matches!(r, Value::Int32(_));
                return Ok(if narrow && i32::try_from(v).is_ok() {
                    Value::Int32(v as i32)
                } else {
                    Value::Int64(v)
                });
            }
            let v = match op {
                Add => fl + fr,
                Sub => fl - fr,
                Mul => fl * fr,
                Div => {
                    if fr == 0.0 {
                        return Ok(Value::Null); // SQL: x / 0 -> NULL
                    }
                    fl / fr
                }
                Mod => {
                    if fr == 0.0 {
                        return Ok(Value::Null);
                    }
                    fl % fr
                }
                _ => unreachable!(),
            };
            Ok(Value::Float64(v))
        }
    }
}

/// Validate a scalar function's argument count; the message names the
/// function and the expected arity.
fn check_function_arity(name: &str, actual: usize) -> std::result::Result<(), String> {
    let expected: Option<usize> = match name {
        "abs" | "round" | "floor" | "ceil" | "sqrt" | "exp" | "ln" | "lower" | "upper"
        | "length" => Some(1),
        "power" => Some(2),
        "coalesce" => {
            if actual == 0 {
                return Err("coalesce needs at least one argument".into());
            }
            None
        }
        _ => None, // unknown names are rejected by type inference
    };
    match expected {
        Some(n) if n != actual => Err(format!(
            "{name} takes {n} argument{}, got {actual}",
            if n == 1 { "" } else { "s" }
        )),
        _ => Ok(()),
    }
}

fn eval_function(name: &str, args: &[Value]) -> Result<Value> {
    check_function_arity(name, args.len()).map_err(QueryError::Execution)?;
    let num = |v: &Value| -> Result<Option<f64>> {
        if v.is_null() {
            return Ok(None);
        }
        v.as_f64()
            .map(Some)
            .ok_or_else(|| QueryError::Execution(format!("{name}: non-numeric argument {v}")))
    };
    Ok(match name {
        "abs" => match &args[0] {
            Value::Null => Value::Null,
            Value::Int32(v) => Value::Int32(v.saturating_abs()),
            Value::Int64(v) => Value::Int64(v.saturating_abs()),
            Value::Float64(v) => Value::Float64(v.abs()),
            other => return Err(QueryError::Execution(format!("abs: bad argument {other}"))),
        },
        "round" => match num(&args[0])? {
            None => Value::Null,
            Some(v) => match &args[0] {
                Value::Int32(_) | Value::Int64(_) => args[0].clone(),
                _ => Value::Float64(v.round()),
            },
        },
        "floor" => match num(&args[0])? {
            None => Value::Null,
            Some(v) => match &args[0] {
                Value::Int32(_) | Value::Int64(_) => args[0].clone(),
                _ => Value::Float64(v.floor()),
            },
        },
        "ceil" => match num(&args[0])? {
            None => Value::Null,
            Some(v) => match &args[0] {
                Value::Int32(_) | Value::Int64(_) => args[0].clone(),
                _ => Value::Float64(v.ceil()),
            },
        },
        "sqrt" => match num(&args[0])? {
            None => Value::Null,
            Some(v) => Value::Float64(v.sqrt()),
        },
        "exp" => match num(&args[0])? {
            None => Value::Null,
            Some(v) => Value::Float64(v.exp()),
        },
        "ln" => match num(&args[0])? {
            None => Value::Null,
            Some(v) => Value::Float64(v.ln()),
        },
        "power" => match (num(&args[0])?, num(&args[1])?) {
            (Some(a), Some(b)) => Value::Float64(a.powf(b)),
            _ => Value::Null,
        },
        "lower" => match &args[0] {
            Value::Null => Value::Null,
            Value::Utf8(s) => Value::Utf8(s.to_lowercase()),
            other => {
                return Err(QueryError::Execution(format!(
                    "lower: bad argument {other}"
                )))
            }
        },
        "upper" => match &args[0] {
            Value::Null => Value::Null,
            Value::Utf8(s) => Value::Utf8(s.to_uppercase()),
            other => {
                return Err(QueryError::Execution(format!(
                    "upper: bad argument {other}"
                )))
            }
        },
        "length" => match &args[0] {
            Value::Null => Value::Null,
            Value::Utf8(s) => Value::Int64(s.chars().count() as i64),
            other => {
                return Err(QueryError::Execution(format!(
                    "length: bad argument {other}"
                )))
            }
        },
        "coalesce" => args
            .iter()
            .find(|v| !v.is_null())
            .cloned()
            .unwrap_or(Value::Null),
        other => return Err(QueryError::Execution(format!("unknown function {other:?}"))),
    })
}

/// Evaluate an expression for one row of a table.
pub fn eval_row(expr: &Expr, table: &Table, row: usize) -> Result<Value> {
    match expr {
        Expr::Column(name) => {
            let idx = resolve_column(&table.schema, name)
                .ok_or_else(|| QueryError::Execution(format!("unknown column {name:?}")))?;
            Ok(table.columns[idx].get(row)?)
        }
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Binary { left, op, right } => {
            let l = eval_row(left, table, row)?;
            // Short-circuit AND/OR on the already-known left side.
            if *op == BinaryOp::And && l.as_bool() == Some(false) {
                return Ok(Value::Bool(false));
            }
            if *op == BinaryOp::Or && l.as_bool() == Some(true) {
                return Ok(Value::Bool(true));
            }
            let r = eval_row(right, table, row)?;
            eval_binary_values(*op, &l, &r)
        }
        Expr::Unary { op, expr } => {
            let v = eval_row(expr, table, row)?;
            match op {
                UnaryOp::Not => Ok(match v.as_bool() {
                    Some(b) => Value::Bool(!b),
                    None => Value::Null,
                }),
                UnaryOp::Neg => Ok(match v {
                    Value::Null => Value::Null,
                    Value::Int32(x) => Value::Int32(-x),
                    Value::Int64(x) => Value::Int64(-x),
                    Value::Float64(x) => Value::Float64(-x),
                    other => return Err(QueryError::Execution(format!("cannot negate {other}"))),
                }),
            }
        }
        Expr::Function { name, args } => {
            let vals: Vec<Value> = args
                .iter()
                .map(|a| eval_row(a, table, row))
                .collect::<Result<_>>()?;
            eval_function(name, &vals)
        }
        Expr::Aggregate { .. } => Err(QueryError::Execution(
            "aggregate expression outside of GROUP BY context".into(),
        )),
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = eval_row(expr, table, row)?;
            let lo = eval_row(low, table, row)?;
            let hi = eval_row(high, table, row)?;
            let ge = eval_binary_values(BinaryOp::GtEq, &v, &lo)?;
            let le = eval_binary_values(BinaryOp::LtEq, &v, &hi)?;
            let both = eval_binary_values(BinaryOp::And, &ge, &le)?;
            Ok(match (both.as_bool(), *negated) {
                (Some(b), neg) => Value::Bool(b != neg),
                (None, _) => Value::Null,
            })
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval_row(expr, table, row)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut saw_null = false;
            for candidate in list {
                let c = eval_row(candidate, table, row)?;
                match v.sql_eq(&c) {
                    Some(true) => return Ok(Value::Bool(!negated)),
                    Some(false) => {}
                    None => saw_null = true,
                }
            }
            if saw_null {
                Ok(Value::Null)
            } else {
                Ok(Value::Bool(*negated))
            }
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = eval_row(expr, table, row)?;
            let p = eval_row(pattern, table, row)?;
            match (v.as_str(), p.as_str()) {
                (Some(t), Some(pat)) => Ok(Value::Bool(like_match(t, pat) != *negated)),
                _ if v.is_null() || p.is_null() => Ok(Value::Null),
                _ => Err(QueryError::Execution(
                    "LIKE requires string operands".into(),
                )),
            }
        }
        Expr::IsNull { expr, negated } => {
            let v = eval_row(expr, table, row)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
    }
}

/// Knobs for the columnar evaluator: whether the typed kernel fast paths
/// run, and where to report what happened.
#[derive(Debug, Clone, Copy)]
pub struct EvalOptions<'a> {
    /// Try the store's typed kernels before the row interpreter. `false`
    /// forces the scalar reference path (the E15 ablation baseline).
    pub vectorized: bool,
    /// Counters to bump (vectorized batches / scalar fallbacks).
    pub metrics: Option<&'a crate::metrics::ExecMetrics>,
}

impl Default for EvalOptions<'_> {
    fn default() -> Self {
        EvalOptions {
            vectorized: true,
            metrics: None,
        }
    }
}

/// Evaluate an expression over all rows, producing a column.
///
/// Expression shapes with typed kernels (column/literal and
/// column/column comparisons and arithmetic, Kleene AND/OR/NOT, BETWEEN,
/// literal IN lists, IS NULL) run batch-at-a-time on the store's
/// [`kernels`](lazyetl_store::kernels); everything else — and any batch a
/// kernel declines (unsupported type pairing, integer overflow) — falls
/// back to row-at-a-time interpretation, which remains the semantic
/// reference.
pub fn eval_expr(expr: &Expr, table: &Table) -> Result<Column> {
    eval_expr_opts(expr, table, &EvalOptions::default())
}

/// [`eval_expr`] with explicit [`EvalOptions`].
pub fn eval_expr_opts(expr: &Expr, table: &Table, opts: &EvalOptions<'_>) -> Result<Column> {
    if opts.vectorized {
        if let Some(col) = eval_vectorized(expr, table)? {
            if let Some(m) = opts.metrics {
                m.add_vectorized_batch();
            }
            return Ok(col);
        }
        if let Some(m) = opts.metrics {
            m.add_scalar_fallback();
        }
    }
    eval_expr_scalar(expr, table)
}

/// The row-at-a-time reference evaluator (no kernels). Public so the
/// kernel-throughput bench and the proptest oracle can pin the scalar
/// baseline explicitly.
pub fn eval_expr_scalar(expr: &Expr, table: &Table) -> Result<Column> {
    let out_type = infer_type(expr, &table.schema)?;
    let mut col = Column::empty(out_type);
    for row in 0..table.num_rows() {
        let v = eval_row(expr, table, row)?;
        // Coerce to the inferred column type where the valueside differs
        // (e.g. int-preserving round over a Float64-typed expression).
        let v = coerce_value(v, out_type);
        col.push(v).map_err(QueryError::Store)?;
    }
    Ok(col)
}

/// Map a comparison [`BinaryOp`] onto the store's kernel operator.
fn cmp_op(op: BinaryOp) -> Option<lazyetl_store::CmpOp> {
    use lazyetl_store::CmpOp as K;
    Some(match op {
        BinaryOp::Eq => K::Eq,
        BinaryOp::NotEq => K::NotEq,
        BinaryOp::Lt => K::Lt,
        BinaryOp::LtEq => K::LtEq,
        BinaryOp::Gt => K::Gt,
        BinaryOp::GtEq => K::GtEq,
        _ => return None,
    })
}

/// Map an arithmetic [`BinaryOp`] onto the store's kernel operator.
fn arith_op(op: BinaryOp) -> Option<lazyetl_store::ArithOp> {
    use lazyetl_store::ArithOp as K;
    Some(match op {
        BinaryOp::Add => K::Add,
        BinaryOp::Sub => K::Sub,
        BinaryOp::Mul => K::Mul,
        BinaryOp::Div => K::Div,
        BinaryOp::Mod => K::Mod,
        _ => return None,
    })
}

/// Evaluate a boolean-typed sub-expression to a [`BoolMask`], vectorized.
fn eval_mask(expr: &Expr, table: &Table) -> Result<Option<lazyetl_store::BoolMask>> {
    Ok(eval_vectorized(expr, table)?.and_then(|col| lazyetl_store::BoolMask::from_column(&col)))
}

/// Evaluate an operand to a column for a kernel, borrowing the table's
/// storage when the operand is a bare column reference (no data copy) and
/// materializing otherwise. `None` = no vectorized path for this operand.
fn operand<'t>(expr: &Expr, table: &'t Table) -> Result<Option<std::borrow::Cow<'t, Column>>> {
    use std::borrow::Cow;
    if let Expr::Column(name) = expr {
        return Ok(
            resolve_column(&table.schema, name).map(|idx| Cow::Borrowed(&table.columns[idx]))
        );
    }
    Ok(eval_vectorized(expr, table)?.map(Cow::Owned))
}

/// Fast-path evaluation; `Ok(None)` means "no kernel, use the interpreter".
///
/// The dispatch table (each arm declines to the scalar path when its
/// kernel has no coverage for the concrete types):
///
/// | expression shape                 | kernel                         |
/// |----------------------------------|--------------------------------|
/// | `col`                            | zero-copy column clone         |
/// | `col CMP lit` / `lit CMP col`    | `kernels::compare_scalar`      |
/// | `expr CMP expr`                  | `kernels::compare_columns`     |
/// | `expr ARITH lit` (either side)   | `kernels::arith_scalar`        |
/// | `expr ARITH expr`                | `kernels::arith_columns`       |
/// | `expr AND/OR expr`, `NOT expr`   | Kleene mask combinators        |
/// | `expr BETWEEN lit AND lit`       | two compares + AND (+ NOT)     |
/// | `expr [NOT] IN (literals)`       | `kernels::in_list_scalar`      |
/// | `expr IS [NOT] NULL`             | `kernels::is_null_mask`        |
fn eval_vectorized(expr: &Expr, table: &Table) -> Result<Option<Column>> {
    use lazyetl_store::kernels;
    match expr {
        Expr::Column(name) => {
            let idx = match resolve_column(&table.schema, name) {
                Some(i) => i,
                None => return Ok(None), // let the interpreter report the error path
            };
            Ok(Some(table.columns[idx].clone()))
        }
        Expr::Binary { left, op, right } if op.is_comparison() => {
            let k = cmp_op(*op).expect("comparison checked");
            // One-literal shapes run the scalar-comparand kernel against
            // the other side (borrowed when it's a bare column).
            match (&**left, &**right) {
                (l_expr, Expr::Literal(lit)) if !matches!(l_expr, Expr::Literal(_)) => {
                    let Some(col) = operand(l_expr, table)? else {
                        return Ok(None);
                    };
                    Ok(kernels::compare_scalar(&col, k, lit).map(|m| m.into_column()))
                }
                (Expr::Literal(lit), r_expr) => {
                    let Some(col) = operand(r_expr, table)? else {
                        return Ok(None);
                    };
                    // lit CMP col ⇔ col CMP' lit with the operator flipped.
                    Ok(kernels::compare_scalar(&col, k.flip(), lit).map(|m| m.into_column()))
                }
                _ => {
                    let Some(l) = operand(left, table)? else {
                        return Ok(None);
                    };
                    let Some(r) = operand(right, table)? else {
                        return Ok(None);
                    };
                    Ok(kernels::compare_columns(&l, &r, k).map(|m| m.into_column()))
                }
            }
        }
        Expr::Binary { left, op, right } if matches!(op, BinaryOp::And | BinaryOp::Or) => {
            let Some(l) = eval_mask(left, table)? else {
                return Ok(None);
            };
            let Some(r) = eval_mask(right, table)? else {
                return Ok(None);
            };
            let out = if *op == BinaryOp::And {
                l.and(&r)
            } else {
                l.or(&r)
            };
            Ok(Some(out.into_column()))
        }
        Expr::Binary { left, op, right } => {
            let Some(k) = arith_op(*op) else {
                return Ok(None);
            };
            match (&**left, &**right) {
                (l_expr, Expr::Literal(lit)) if !matches!(l_expr, Expr::Literal(_)) => {
                    let Some(col) = operand(l_expr, table)? else {
                        return Ok(None);
                    };
                    Ok(kernels::arith_scalar(&col, k, lit, false))
                }
                (Expr::Literal(lit), r_expr) => {
                    let Some(col) = operand(r_expr, table)? else {
                        return Ok(None);
                    };
                    Ok(kernels::arith_scalar(&col, k, lit, true))
                }
                _ => {
                    let Some(l) = operand(left, table)? else {
                        return Ok(None);
                    };
                    let Some(r) = operand(right, table)? else {
                        return Ok(None);
                    };
                    Ok(kernels::arith_columns(&l, &r, k))
                }
            }
        }
        Expr::Unary {
            op: UnaryOp::Not,
            expr,
        } => Ok(eval_mask(expr, table)?.map(|m| m.not().into_column())),
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let Some(col) = operand(expr, table)? else {
                return Ok(None);
            };
            let bound =
                |b: &Expr, op: lazyetl_store::CmpOp| -> Result<Option<lazyetl_store::BoolMask>> {
                    match b {
                        Expr::Literal(lit) => Ok(kernels::compare_scalar(&col, op, lit)),
                        other => Ok(operand(other, table)?
                            .and_then(|bc| kernels::compare_columns(&col, &bc, op))),
                    }
                };
            let Some(ge) = bound(low, lazyetl_store::CmpOp::GtEq)? else {
                return Ok(None);
            };
            let Some(le) = bound(high, lazyetl_store::CmpOp::LtEq)? else {
                return Ok(None);
            };
            let both = ge.and(&le);
            let out = if *negated { both.not() } else { both };
            Ok(Some(out.into_column()))
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let lits: Option<Vec<Value>> = list
                .iter()
                .map(|e| match e {
                    Expr::Literal(v) => Some(v.clone()),
                    _ => None,
                })
                .collect();
            let Some(lits) = lits else {
                return Ok(None);
            };
            let Some(col) = operand(expr, table)? else {
                return Ok(None);
            };
            Ok(kernels::in_list_scalar(&col, &lits, *negated).map(|m| m.into_column()))
        }
        Expr::IsNull { expr, negated } => Ok(
            operand(expr, table)?.map(|col| kernels::is_null_mask(&col, *negated).into_column())
        ),
        _ => Ok(None),
    }
}

/// Losslessly coerce a value toward a target type where SQL allows it.
fn coerce_value(v: Value, target: DataType) -> Value {
    match (&v, target) {
        (Value::Int32(x), DataType::Int64) => Value::Int64(*x as i64),
        (Value::Int32(x), DataType::Float64) => Value::Float64(*x as f64),
        (Value::Int64(x), DataType::Float64) => Value::Float64(*x as f64),
        (Value::Int64(x), DataType::Timestamp) => Value::Timestamp(*x),
        _ => v,
    }
}

/// Evaluate a predicate to a boolean selection mask (NULL -> false).
pub fn eval_predicate_mask(expr: &Expr, table: &Table) -> Result<Vec<bool>> {
    eval_predicate_mask_opts(expr, table, &EvalOptions::default())
}

/// [`eval_predicate_mask`] with explicit [`EvalOptions`]. The vectorized
/// path collapses the kernel mask straight to a packed `Vec<bool>`
/// without materializing a boolean column.
pub fn eval_predicate_mask_opts(
    expr: &Expr,
    table: &Table,
    opts: &EvalOptions<'_>,
) -> Result<Vec<bool>> {
    if opts.vectorized {
        if let Some(mask) = eval_mask(expr, table)? {
            if let Some(m) = opts.metrics {
                m.add_vectorized_batch();
            }
            return Ok(mask.into_selection());
        }
        if let Some(m) = opts.metrics {
            m.add_scalar_fallback();
        }
    }
    eval_predicate_mask_scalar(expr, table)
}

/// Row-at-a-time reference for [`eval_predicate_mask`].
pub fn eval_predicate_mask_scalar(expr: &Expr, table: &Table) -> Result<Vec<bool>> {
    let mut mask = Vec::with_capacity(table.num_rows());
    for row in 0..table.num_rows() {
        let v = eval_row(expr, table, row)?;
        mask.push(v.as_bool().unwrap_or(false));
    }
    Ok(mask)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazyetl_store::Field;

    fn test_table() -> Table {
        let schema = Schema::new(vec![
            Field::new("station", DataType::Utf8),
            Field::new("value", DataType::Float64),
            Field::nullable("qual", DataType::Int32),
            Field::new("t", DataType::Timestamp),
        ])
        .unwrap();
        let mut t = Table::empty(schema);
        t.append_row(vec![
            Value::Utf8("ISK".into()),
            Value::Float64(1.5),
            Value::Int32(80),
            Value::Timestamp(1_000_000),
        ])
        .unwrap();
        t.append_row(vec![
            Value::Utf8("HGN".into()),
            Value::Float64(-2.0),
            Value::Null,
            Value::Timestamp(2_000_000),
        ])
        .unwrap();
        t
    }

    #[test]
    fn column_resolution_with_qualifiers() {
        let t = test_table();
        assert_eq!(resolve_column(&t.schema, "station"), Some(0));
        assert_eq!(resolve_column(&t.schema, "f.station"), Some(0));
        assert_eq!(resolve_column(&t.schema, "x.y.station"), Some(0));
        assert_eq!(resolve_column(&t.schema, "missing"), None);
    }

    #[test]
    fn comparison_and_nulls() {
        let t = test_table();
        let p = Expr::col("qual").binary(BinaryOp::Gt, Expr::lit(Value::Int32(50)));
        let mask = eval_predicate_mask(&p, &t).unwrap();
        assert_eq!(mask, vec![true, false], "NULL row filtered out");
    }

    #[test]
    fn three_valued_logic() {
        let t = test_table();
        // NULL OR TRUE = TRUE even though qual is NULL in row 1.
        let p = Expr::col("qual")
            .binary(BinaryOp::Gt, Expr::lit(Value::Int32(50)))
            .binary(BinaryOp::Or, Expr::lit(Value::Bool(true)));
        let mask = eval_predicate_mask(&p, &t).unwrap();
        assert_eq!(mask, vec![true, true]);
        // NULL AND FALSE = FALSE.
        let v = eval_binary_values(BinaryOp::And, &Value::Null, &Value::Bool(false)).unwrap();
        assert_eq!(v, Value::Bool(false));
        let v = eval_binary_values(BinaryOp::And, &Value::Null, &Value::Bool(true)).unwrap();
        assert!(v.is_null());
    }

    #[test]
    fn arithmetic_types() {
        let v = eval_binary_values(BinaryOp::Add, &Value::Int32(1), &Value::Int32(2)).unwrap();
        assert_eq!(v, Value::Int32(3));
        let v = eval_binary_values(BinaryOp::Div, &Value::Int32(1), &Value::Int32(2)).unwrap();
        assert_eq!(v, Value::Float64(0.5));
        let v = eval_binary_values(BinaryOp::Div, &Value::Int32(1), &Value::Int32(0)).unwrap();
        assert!(v.is_null(), "division by zero is NULL");
        let v = eval_binary_values(BinaryOp::Add, &Value::Timestamp(10), &Value::Int64(5)).unwrap();
        assert_eq!(v, Value::Timestamp(15));
        let v =
            eval_binary_values(BinaryOp::Sub, &Value::Timestamp(10), &Value::Timestamp(4)).unwrap();
        assert_eq!(v, Value::Int64(6));
        assert!(
            eval_binary_values(BinaryOp::Add, &Value::Int64(i64::MAX), &Value::Int64(1)).is_err()
        );
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("BHZ", "BH%"));
        assert!(like_match("BHZ", "B_Z"));
        assert!(!like_match("BHZ", "B_"));
        assert!(like_match("", "%"));
        assert!(like_match("abc", "%c"));
        assert!(like_match("abc", "%%c"));
        assert!(!like_match("abc", "_"));
        assert!(like_match("a%b", "a%b")); // literal percent matched by wildcard
    }

    #[test]
    fn between_and_in() {
        let t = test_table();
        let p = Expr::Between {
            expr: Box::new(Expr::col("value")),
            low: Box::new(Expr::lit(Value::Float64(0.0))),
            high: Box::new(Expr::lit(Value::Float64(2.0))),
            negated: false,
        };
        assert_eq!(eval_predicate_mask(&p, &t).unwrap(), vec![true, false]);
        let p = Expr::InList {
            expr: Box::new(Expr::col("station")),
            list: vec![
                Expr::lit(Value::Utf8("HGN".into())),
                Expr::lit(Value::Utf8("WIT".into())),
            ],
            negated: false,
        };
        assert_eq!(eval_predicate_mask(&p, &t).unwrap(), vec![false, true]);
    }

    #[test]
    fn functions() {
        let t = test_table();
        let c = eval_expr(
            &Expr::Function {
                name: "abs".into(),
                args: vec![Expr::col("value")],
            },
            &t,
        )
        .unwrap();
        assert_eq!(c.get(1).unwrap(), Value::Float64(2.0));
        let c = eval_expr(
            &Expr::Function {
                name: "lower".into(),
                args: vec![Expr::col("station")],
            },
            &t,
        )
        .unwrap();
        assert_eq!(c.get(0).unwrap(), Value::Utf8("isk".into()));
        let c = eval_expr(
            &Expr::Function {
                name: "coalesce".into(),
                args: vec![Expr::col("qual"), Expr::lit(Value::Int32(-1))],
            },
            &t,
        )
        .unwrap();
        assert_eq!(c.get(1).unwrap(), Value::Int32(-1));
    }

    #[test]
    fn wrong_function_arity_is_an_error_not_a_panic() {
        let t = test_table();
        for (name, args) in [
            ("abs", vec![]),
            ("abs", vec![Expr::col("value"), Expr::col("value")]),
            ("power", vec![Expr::lit(Value::Int64(2))]),
            ("sqrt", vec![]),
            ("coalesce", vec![]),
        ] {
            let f = Expr::Function {
                name: name.into(),
                args: args.clone(),
            };
            assert!(
                infer_type(&f, &t.schema).is_err(),
                "{name}/{} must fail type inference",
                args.len()
            );
            assert!(
                eval_expr(&f, &t).is_err(),
                "{name}/{} must fail evaluation",
                args.len()
            );
        }
    }

    #[test]
    fn is_null_and_not() {
        let t = test_table();
        let p = Expr::IsNull {
            expr: Box::new(Expr::col("qual")),
            negated: false,
        };
        assert_eq!(eval_predicate_mask(&p, &t).unwrap(), vec![false, true]);
        let p = Expr::Unary {
            op: UnaryOp::Not,
            expr: Box::new(Expr::IsNull {
                expr: Box::new(Expr::col("qual")),
                negated: false,
            }),
        };
        assert_eq!(eval_predicate_mask(&p, &t).unwrap(), vec![true, false]);
    }

    #[test]
    fn type_inference() {
        let t = test_table();
        assert_eq!(
            infer_type(&Expr::col("value"), &t.schema).unwrap(),
            DataType::Float64
        );
        assert_eq!(
            infer_type(
                &Expr::col("qual").binary(BinaryOp::Add, Expr::lit(Value::Int32(1))),
                &t.schema
            )
            .unwrap(),
            DataType::Int32
        );
        assert_eq!(
            infer_type(
                &Expr::Aggregate {
                    func: AggFunc::Avg,
                    arg: Some(Box::new(Expr::col("value"))),
                    distinct: false
                },
                &t.schema
            )
            .unwrap(),
            DataType::Float64
        );
        assert!(infer_type(&Expr::col("nope"), &t.schema).is_err());
    }

    #[test]
    fn display_roundtrips_visually() {
        let e = Expr::col("f.station").binary(BinaryOp::Eq, Expr::lit(Value::Utf8("ISK".into())));
        assert_eq!(e.to_string(), "(f.station = 'ISK')");
        assert_eq!(e.default_name(), "(f.station = 'ISK')");
        assert_eq!(Expr::col("d.sample_value").default_name(), "sample_value");
        let agg = Expr::Aggregate {
            func: AggFunc::Avg,
            arg: Some(Box::new(Expr::col("d.sample_value"))),
            distinct: false,
        };
        assert_eq!(agg.default_name(), "avg(sample_value)");
    }

    #[test]
    fn columns_used_collects() {
        let e = Expr::col("a")
            .binary(BinaryOp::Add, Expr::col("b"))
            .binary(BinaryOp::Gt, Expr::lit(Value::Int32(0)));
        let mut cols = Vec::new();
        e.columns_used(&mut cols);
        assert_eq!(cols, vec!["a".to_string(), "b".to_string()]);
        assert!(!e.contains_aggregate());
    }
}
