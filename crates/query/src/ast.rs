//! Abstract syntax tree for the supported SQL subset.

use crate::expr::Expr;

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `SELECT ...`
    Select(SelectStmt),
}

/// One item of the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// An expression with an optional alias.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// `AS alias`, lower-cased.
        alias: Option<String>,
    },
}

/// A table reference in FROM, optionally joined.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Possibly schema-qualified name (`mseed.dataview`), lower-cased.
    pub name: String,
    /// Optional alias.
    pub alias: Option<String>,
}

/// One `JOIN table ON cond` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinClause {
    /// The joined table.
    pub table: TableRef,
    /// The ON condition (equi-join conditions are extracted at planning).
    pub on: Expr,
}

/// One ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// Sort expression.
    pub expr: Expr,
    /// True for DESC.
    pub desc: bool,
}

/// A `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// DISTINCT modifier.
    pub distinct: bool,
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// Base table (None allows `SELECT 1`).
    pub from: Option<TableRef>,
    /// JOIN clauses, in order.
    pub joins: Vec<JoinClause>,
    /// WHERE predicate.
    pub where_clause: Option<Expr>,
    /// GROUP BY expressions.
    pub group_by: Vec<Expr>,
    /// HAVING predicate.
    pub having: Option<Expr>,
    /// ORDER BY keys.
    pub order_by: Vec<OrderKey>,
    /// LIMIT row count.
    pub limit: Option<u64>,
}

impl SelectStmt {
    /// An empty SELECT skeleton (used by the parser).
    pub fn empty() -> SelectStmt {
        SelectStmt {
            distinct: false,
            items: Vec::new(),
            from: None,
            joins: Vec::new(),
            where_clause: None,
            group_by: Vec::new(),
            having: None,
            order_by: Vec::new(),
            limit: None,
        }
    }
}
