//! Maintainability classification for incremental result maintenance.
//!
//! The result recycler keeps final query results keyed by optimized-plan
//! fingerprint. When a refresh folds **insert-only** repository changes
//! into the warehouse (new files appear; nothing modified or removed),
//! many resident results can be *patched* from the delta instead of being
//! recomputed — the incremental-view-maintenance move that turns K
//! pollers into K subscribers paying O(delta).
//!
//! The soundness argument rides on the warehouse's file-id partitioning:
//! newly added files get **fresh** `file_id`s, so for any plan whose joins
//! all carry a `file_id` equi-key, `Q(old ∪ Δ) = Q(old) ∪ Q(Δ)` — the
//! cross terms (old rows joined against delta rows) vanish because the old
//! and new `file_id` sets are disjoint. This module decides, per optimized
//! plan, which of three classes it falls into:
//!
//! * [`Maintainability::Maintainable`] — filter/project/join cores
//!   (append the delta's result rows) and single root aggregations over
//!   such cores (merge SUM/COUNT/MIN/MAX/AVG group states);
//! * [`Maintainability::TimeScoped`] — not patchable, but structurally
//!   sound for *scoped invalidation*: if the plan's sample-time window is
//!   disjoint from the delta's record coverage, the delta provably
//!   contributes no rows and the cached result stays valid as-is;
//! * [`Maintainability::Opaque`] — anything else falls back to the
//!   pre-existing behaviour (drop on refresh, recompute on next query).

use crate::expr::{infer_type, AggFunc, Expr};
use crate::plan::LogicalPlan;
use lazyetl_store::DataType;

/// How one aggregate output column merges with its delta counterpart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeSpec {
    /// `COUNT(...)`: add the two counts.
    Count,
    /// Integer `SUM`: checked i64 addition (overflow ⇒ recompute).
    SumInt,
    /// Float `SUM`: f64 addition.
    SumFloat,
    /// `MIN`: keep the SQL-smaller value.
    Min,
    /// `MAX`: keep the SQL-larger value.
    Max,
    /// `AVG`: recomputed from hidden SUM/COUNT companion columns the
    /// augmented plan carries at these absolute column positions.
    Avg {
        /// Absolute column index of the companion SUM in the state table.
        sum_col: usize,
        /// Absolute column index of the companion COUNT.
        cnt_col: usize,
    },
}

/// How a maintainable plan's cached state absorbs a delta result.
#[derive(Debug, Clone)]
pub enum MaintKind {
    /// Filter/project/join core: delta result rows are appended verbatim.
    Append,
    /// Root aggregation: group states merge column-wise.
    Aggregate {
        /// Leading group-by columns of the state table.
        group_cols: usize,
        /// One merge rule per aggregate column (visible + hidden), in
        /// state-table column order starting at `group_cols`.
        merges: Vec<MergeSpec>,
        /// The projection the planner put above the aggregate, re-applied
        /// to the merged state to produce the user-visible table. `None`
        /// when the aggregate itself is the plan root.
        post_project: Option<Vec<(Expr, String)>>,
    },
}

/// A plan the recycler can patch incrementally.
#[derive(Debug, Clone)]
pub struct MaintPlan {
    /// The plan to execute instead of the original: identical except that
    /// every `AVG` gains hidden `SUM`/`COUNT` companions and the planner's
    /// top projection is peeled off (the state table keeps raw group
    /// columns so delta groups can be matched). Running it over the delta
    /// tables yields exactly the rows/states to fold in.
    pub exec_plan: LogicalPlan,
    /// How the cached state absorbs a delta result.
    pub kind: MaintKind,
    /// Base tables the plan reads (scan leaf names, sorted, deduplicated).
    pub tables: Vec<String>,
}

/// Outcome of [`classify`].
#[derive(Debug, Clone)]
pub enum Maintainability {
    /// Patchable from insert-only deltas.
    Maintainable(MaintPlan),
    /// Not patchable, but safe to keep when the plan's sample-time window
    /// is disjoint from the delta's record time coverage.
    TimeScoped {
        /// Base tables the plan reads.
        tables: Vec<String>,
    },
    /// No incremental guarantees: invalidate on any intersecting refresh.
    Opaque,
}

/// Scan leaf names of `plan`, sorted and deduplicated.
pub fn referenced_tables(plan: &LogicalPlan) -> Vec<String> {
    let mut names = Vec::new();
    fn walk(plan: &LogicalPlan, names: &mut Vec<String>) {
        match plan {
            LogicalPlan::TableScan { table, .. } => names.push(table.clone()),
            LogicalPlan::ExternalScan { name, .. } => names.push(name.clone()),
            _ => {}
        }
        for c in plan.children() {
            walk(c, names);
        }
    }
    walk(plan, &mut names);
    names.sort();
    names.dedup();
    names
}

/// Is one ON pair a `file_id = file_id` equi-key (possibly qualified)?
fn is_file_id_pair(l: &Expr, r: &Expr) -> bool {
    let suffix_is =
        |e: &Expr| matches!(e, Expr::Column(name) if name.rsplit('.').next() == Some("file_id"));
    suffix_is(l) && suffix_is(r)
}

/// Does every join in the tree carry a `file_id` equi-key? (The delta
/// partition property: old and delta rows can never pair up.)
fn joins_partition_by_file_id(plan: &LogicalPlan) -> bool {
    !plan.any_node(&mut |n| {
        matches!(n, LogicalPlan::Join { on, .. }
            if !on.iter().any(|(l, r)| is_file_id_pair(l, r)))
    })
}

/// Structural check for the appendable core: scans, filters, projections
/// and `file_id`-keyed joins only. Anything else (aggregates, sorts,
/// limits, distinct, inline data) disqualifies the subtree.
fn core_ok(plan: &LogicalPlan) -> bool {
    match plan {
        LogicalPlan::TableScan { .. } | LogicalPlan::ExternalScan { .. } | LogicalPlan::OneRow => {
            true
        }
        LogicalPlan::Filter { input, .. } => core_ok(input),
        LogicalPlan::Project { input, .. } => core_ok(input),
        LogicalPlan::Join {
            left, right, on, ..
        } => on.iter().any(|(l, r)| is_file_id_pair(l, r)) && core_ok(left) && core_ok(right),
        _ => false,
    }
}

/// Does any scan leaf expose a `sample_time` column? (Witnesses that the
/// data table participates in the join tree, so every delta-derived output
/// row carries a delta data row — the premise of time-scoped keeps.)
fn has_sample_time_leaf(plan: &LogicalPlan) -> bool {
    let leaf_has = |schema: &lazyetl_store::Schema| schema.index_of("sample_time").is_some();
    let mut found = false;
    fn walk(
        plan: &LogicalPlan,
        found: &mut bool,
        leaf_has: &dyn Fn(&lazyetl_store::Schema) -> bool,
    ) {
        if let LogicalPlan::TableScan { schema, .. } | LogicalPlan::ExternalScan { schema, .. } =
            plan
        {
            if leaf_has(schema) {
                *found = true;
            }
        }
        for c in plan.children() {
            walk(c, found, leaf_has);
        }
    }
    walk(plan, &mut found, &leaf_has);
    found
}

/// Classify an optimized plan for incremental maintenance.
///
/// Accepted maintainable shapes (everything else degrades gracefully):
///
/// * `core` — filters/projections over `file_id`-keyed joins of scans:
///   **append** the delta's rows;
/// * `Aggregate(core)` or `Project(Aggregate(core))` with non-DISTINCT
///   `COUNT`/`SUM`/`MIN`/`MAX`/`AVG` calls: **merge** group states; new
///   groups append in delta first-appearance order, matching what a full
///   recompute over `old ∪ Δ` would produce.
pub fn classify(plan: &LogicalPlan) -> Maintainability {
    let tables = referenced_tables(plan);
    if core_ok(plan) {
        return Maintainability::Maintainable(MaintPlan {
            exec_plan: plan.clone(),
            kind: MaintKind::Append,
            tables,
        });
    }
    // Peel the planner's top projection off a root aggregation.
    let (agg, post_project) = match plan {
        LogicalPlan::Project { input, exprs } => (input.as_ref(), Some(exprs.clone())),
        other => (other, None),
    };
    if let LogicalPlan::Aggregate {
        input,
        group,
        aggregates,
    } = agg
    {
        if core_ok(input) {
            if let Some(m) = aggregate_maint(input, group, aggregates, post_project, tables.clone())
            {
                return Maintainability::Maintainable(m);
            }
        }
    }
    if joins_partition_by_file_id(plan) && has_sample_time_leaf(plan) {
        return Maintainability::TimeScoped { tables };
    }
    Maintainability::Opaque
}

/// Build the augmented aggregate plan and its merge rules, or `None` when
/// an aggregate call is outside the mergeable set (DISTINCT, name clash).
fn aggregate_maint(
    input: &LogicalPlan,
    group: &[(Expr, String)],
    aggregates: &[(Expr, String)],
    post_project: Option<Vec<(Expr, String)>>,
    tables: Vec<String>,
) -> Option<MaintPlan> {
    let in_schema = input.schema().ok()?;
    let mut merges: Vec<MergeSpec> = Vec::with_capacity(aggregates.len());
    // Hidden SUM/COUNT companions for every AVG, appended after the
    // visible aggregates so existing column positions are untouched.
    let mut aux: Vec<(Expr, String)> = Vec::new();
    let existing: Vec<&str> = group
        .iter()
        .chain(aggregates.iter())
        .map(|(_, n)| n.as_str())
        .collect();
    let sum_spec = |arg: &Expr| -> Option<MergeSpec> {
        let sum_expr = Expr::Aggregate {
            func: AggFunc::Sum,
            arg: Some(Box::new(arg.clone())),
            distinct: false,
        };
        match infer_type(&sum_expr, &in_schema).ok()? {
            DataType::Float64 => Some(MergeSpec::SumFloat),
            _ => Some(MergeSpec::SumInt),
        }
    };
    for (i, (e, _)) in aggregates.iter().enumerate() {
        let Expr::Aggregate {
            func,
            arg,
            distinct: false,
        } = e
        else {
            return None; // DISTINCT or non-aggregate expression
        };
        let spec = match func {
            AggFunc::Count => MergeSpec::Count,
            AggFunc::Min => MergeSpec::Min,
            AggFunc::Max => MergeSpec::Max,
            AggFunc::Sum => sum_spec(arg.as_deref()?)?,
            AggFunc::Avg => {
                let arg = arg.as_deref()?;
                let sum_name = format!("__maint_sum{i}");
                let cnt_name = format!("__maint_cnt{i}");
                if existing.contains(&sum_name.as_str()) || existing.contains(&cnt_name.as_str()) {
                    return None;
                }
                // Positions of the companions once appended: after group
                // columns, visible aggregates and previously queued aux.
                let base = group.len() + aggregates.len() + aux.len();
                aux.push((
                    Expr::Aggregate {
                        func: AggFunc::Sum,
                        arg: Some(Box::new(arg.clone())),
                        distinct: false,
                    },
                    sum_name,
                ));
                aux.push((
                    Expr::Aggregate {
                        func: AggFunc::Count,
                        arg: Some(Box::new(arg.clone())),
                        distinct: false,
                    },
                    cnt_name,
                ));
                MergeSpec::Avg {
                    sum_col: base,
                    cnt_col: base + 1,
                }
            }
        };
        merges.push(spec);
    }
    // Merge rules for the companions themselves (they are plain SUM/COUNT
    // columns of the state table).
    let mut aux_specs = Vec::with_capacity(aux.len());
    for (e, _) in &aux {
        let Expr::Aggregate { func, arg, .. } = e else {
            unreachable!("aux entries are built as aggregates above");
        };
        aux_specs.push(match func {
            AggFunc::Count => MergeSpec::Count,
            _ => sum_spec(arg.as_deref()?)?,
        });
    }
    merges.extend(aux_specs);
    if post_project.is_none() && !aux.is_empty() {
        // No projection to hide the companions behind: the visible table
        // would leak them. The planner always wraps aggregates in a
        // projection, so this only guards hand-built plans.
        return None;
    }
    let mut all_aggs = aggregates.to_vec();
    all_aggs.extend(aux);
    Some(MaintPlan {
        exec_plan: LogicalPlan::Aggregate {
            input: Box::new(input.clone()),
            group: group.to_vec(),
            aggregates: all_aggs,
        },
        kind: MaintKind::Aggregate {
            group_cols: group.len(),
            merges,
            post_project,
        },
        tables,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{plan_select, TableSource};
    use crate::{optimize, parse_select};
    use lazyetl_store::{Catalog, DataType, Field, Schema, Table};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let files = Schema::new(vec![
            Field::new("file_id", DataType::Int64),
            Field::new("station", DataType::Utf8),
        ])
        .unwrap();
        let records = Schema::new(vec![
            Field::new("file_id", DataType::Int64),
            Field::new("seq_no", DataType::Int64),
            Field::new("start_time", DataType::Timestamp),
        ])
        .unwrap();
        let data = Schema::new(vec![
            Field::new("file_id", DataType::Int64),
            Field::new("seq_no", DataType::Int64),
            Field::new("sample_time", DataType::Timestamp),
            Field::new("sample_value", DataType::Float64),
        ])
        .unwrap();
        c.create_table("files", Table::empty(files)).unwrap();
        c.create_table("records", Table::empty(records)).unwrap();
        c.create_table("data", Table::empty(data)).unwrap();
        c
    }

    fn plan(sql: &str) -> LogicalPlan {
        let c = catalog();
        let stmt = parse_select(sql).unwrap();
        let p = plan_select(&stmt, &TableSource::new(&c)).unwrap();
        optimize(&p).unwrap()
    }

    #[test]
    fn filter_project_core_is_appendable() {
        let p = plan("SELECT station FROM files WHERE station = 'ISK'");
        match classify(&p) {
            Maintainability::Maintainable(m) => {
                assert!(matches!(m.kind, MaintKind::Append));
                assert_eq!(m.tables, vec!["files"]);
            }
            other => panic!("expected maintainable, got {other:?}"),
        }
    }

    #[test]
    fn file_id_join_core_is_appendable() {
        let p = plan(
            "SELECT f.station, d.sample_value FROM files f \
             JOIN data d ON f.file_id = d.file_id WHERE d.sample_value > 1.0",
        );
        match classify(&p) {
            Maintainability::Maintainable(m) => {
                assert!(matches!(m.kind, MaintKind::Append));
                assert_eq!(m.tables, vec!["data", "files"]);
            }
            other => panic!("expected maintainable, got {other:?}"),
        }
    }

    #[test]
    fn root_aggregate_merges_and_avg_gains_companions() {
        let p = plan(
            "SELECT f.station, COUNT(*), SUM(d.sample_value), AVG(d.sample_value) \
             FROM files f JOIN data d ON f.file_id = d.file_id GROUP BY f.station",
        );
        let Maintainability::Maintainable(m) = classify(&p) else {
            panic!("expected maintainable");
        };
        let MaintKind::Aggregate {
            group_cols,
            merges,
            post_project,
        } = &m.kind
        else {
            panic!("expected aggregate kind");
        };
        assert_eq!(*group_cols, 1);
        // COUNT, SUM(float), AVG + hidden SUM/COUNT companions.
        assert_eq!(
            merges.as_slice(),
            &[
                MergeSpec::Count,
                MergeSpec::SumFloat,
                MergeSpec::Avg {
                    sum_col: 4,
                    cnt_col: 5
                },
                MergeSpec::SumFloat,
                MergeSpec::Count,
            ]
        );
        assert!(post_project.is_some(), "planner's top projection is peeled");
        let LogicalPlan::Aggregate { aggregates, .. } = &m.exec_plan else {
            panic!("exec plan root is the aggregate");
        };
        assert_eq!(aggregates.len(), 5, "3 visible + 2 companions");
    }

    #[test]
    fn sort_over_data_join_is_time_scoped() {
        let p = plan(
            "SELECT d.sample_value FROM files f JOIN data d ON f.file_id = d.file_id \
             WHERE d.sample_time > '2010-01-01T00:00:00.000' ORDER BY d.sample_value",
        );
        assert!(matches!(classify(&p), Maintainability::TimeScoped { .. }));
    }

    #[test]
    fn non_file_id_join_and_distinct_are_opaque() {
        let p = plan("SELECT f.station FROM files f JOIN records r ON f.station = r.seq_no");
        assert!(matches!(classify(&p), Maintainability::Opaque));
        let p = plan("SELECT COUNT(DISTINCT station) FROM files");
        assert!(matches!(classify(&p), Maintainability::Opaque));
        // Metadata-only ORDER BY: no sample_time leaf, so not even
        // time-scoped.
        let p = plan("SELECT station FROM files ORDER BY station");
        assert!(matches!(classify(&p), Maintainability::Opaque));
    }
}
